//! Long-horizon integration: the MAPE controller rides a time-varying
//! input over many hours of simulated time — the paper's opening premise
//! ("data arrives at a fast, and time-varying rate") as a soak test.

use autrascale::{AuTraScaleConfig, ControllerEvent, MapeController};
use autrascale_flinkctl::FlinkCluster;
use autrascale_streamsim::rate_generators as generators;
use autrascale_streamsim::{JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig};

fn pipeline() -> JobGraph {
    JobGraph::linear(vec![
        OperatorSpec::source("Source", 40_000.0),
        OperatorSpec::transform("Work", 6_000.0, 1.0).with_sync_coeff(0.03),
        OperatorSpec::sink("Sink", 30_000.0),
    ])
    .unwrap()
}

fn controller_config() -> AuTraScaleConfig {
    AuTraScaleConfig {
        target_latency_ms: 180.0,
        policy_interval: 120.0,
        policy_running_time: 120.0,
        bootstrap_m: 3,
        max_bo_iters: 10,
        n_num: 3,
        rate_change_threshold: 0.2,
        ..Default::default()
    }
}

fn soak(
    profile: RateProfile,
    seed: u64,
    hours: f64,
) -> (MapeController, FlinkCluster, Vec<ControllerEvent>) {
    let sim = Simulation::new(SimulationConfig {
        job: pipeline(),
        profile,
        seed,
        restart_downtime: 5.0,
        ..Default::default()
    })
    .unwrap();
    let mut cluster = FlinkCluster::new(sim);
    cluster.submit(&[1, 2, 1]).unwrap();
    cluster.run_for(120.0).expect("fixed positive duration");
    let mut controller = MapeController::new(controller_config());
    let mut events = Vec::new();
    let deadline = hours * 3600.0;
    while cluster.now() < deadline {
        cluster
            .run_for(controller_config().policy_interval)
            .expect("fixed positive duration");
        events.extend(controller.activate(&mut cluster).unwrap());
    }
    (controller, cluster, events)
}

#[test]
fn diurnal_day_builds_a_model_library_and_keeps_up() {
    // One compressed "day": a 4-hour sinusoid between 8k and 20k records/s.
    let profile = generators::diurnal(14_000.0, 6_000.0, 4.0 * 3600.0, 1_800.0);
    let (controller, mut cluster, events) = soak(profile, 31, 4.5);

    // The library accumulated models for several distinct rates.
    assert!(
        controller.library().len() >= 3,
        "library has {} models",
        controller.library().len()
    );
    // At least one rate change was handled through transfer or warm start.
    assert!(
        events.iter().any(|e| matches!(
            e,
            ControllerEvent::Transferred(_) | ControllerEvent::RateAwareWarmStarted(_)
        )),
        "no transfer happened across the day"
    );

    // End state: healthy.
    cluster.run_for(600.0).expect("fixed positive duration");
    let m = cluster.metrics_over(300.0).unwrap();
    assert!(m.keeping_up(0.05), "{m:?}");
}

#[test]
fn bursty_traffic_recovers_between_bursts() {
    // 10-minute bursts to 3x the base rate every 40 minutes.
    let profile = generators::bursty(8_000.0, 24_000.0, 2_400.0, 600.0, 3);
    let (_, mut cluster, _) = soak(profile, 32, 3.0);
    cluster.run_for(600.0).expect("fixed positive duration");
    let m = cluster.metrics_over(300.0).unwrap();
    // After the last burst the job has settled back at the base rate.
    assert!((m.producer_rate - 8_000.0).abs() < 100.0);
    assert!(m.keeping_up(0.05), "{m:?}");
    assert!(m.processing_latency_ms < 180.0, "{m:?}");
}

#[test]
fn random_walk_rates_never_wedge_the_controller() {
    let profile = generators::random_walk(
        9,
        12_000.0,
        3_000.0,
        1_800.0,
        4.0 * 3600.0,
        6_000.0,
        24_000.0,
    );
    let (controller, mut cluster, events) = soak(profile, 33, 4.0);
    // The controller stayed live the whole run (activations never error;
    // soak() would have panicked otherwise) and kept learning.
    assert!(!events.is_empty());
    assert!(controller.library().len() >= 2);
    // Parallelism stayed inside the cluster's bounds at all times (the
    // final deployment being valid implies every deploy was accepted).
    let p = cluster.parallelism().to_vec();
    assert!(p.iter().all(|&v| (1..=50).contains(&v)), "{p:?}");
    cluster.run_for(600.0).expect("fixed positive duration");
    assert!(cluster.metrics_over(300.0).is_some());
}

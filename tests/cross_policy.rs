//! Cross-policy integration: AuTraScale and the baselines drive identical
//! clusters through the same `JobControl` trait, and the paper's
//! comparative claims hold as invariants.

use autrascale::{Algorithm1, AuTraScaleConfig, ThroughputOptimizer};
use autrascale_baselines::{DrsConfig, DrsPolicy, Ds2Config, Ds2Policy, RateMetric};
use autrascale_flinkctl::FlinkCluster;
use autrascale_streamsim::{JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig};

const RATE: f64 = 20_000.0;
const TARGET_MS: f64 = 140.0;

fn job() -> JobGraph {
    JobGraph::linear(vec![
        OperatorSpec::source("Source", 25_000.0),
        OperatorSpec::transform("Work", 6_000.0, 1.0)
            .with_sync_coeff(0.04)
            .with_comm_cost_ms(2.5),
        OperatorSpec::sink("Sink", 30_000.0),
    ])
    .unwrap()
}

fn fresh(seed: u64) -> FlinkCluster {
    let sim = Simulation::new(SimulationConfig {
        job: job(),
        profile: RateProfile::constant(RATE),
        seed,
        restart_downtime: 5.0,
        ..Default::default()
    })
    .unwrap();
    let mut fc = FlinkCluster::new(sim);
    fc.submit(&[1, 1, 1]).unwrap();
    fc.run_for(60.0);
    fc
}

fn steady_latency(cluster: &mut FlinkCluster) -> (f64, f64) {
    cluster.run_for(400.0);
    let m = cluster.metrics_over(120.0).unwrap();
    (m.processing_latency_ms, m.throughput)
}

#[test]
fn every_policy_scales_the_bottleneck() {
    // All three policies must identify Work as the operator to scale.
    let cfg = AuTraScaleConfig {
        target_latency_ms: TARGET_MS,
        policy_running_time: 120.0,
        bootstrap_m: 3,
        max_bo_iters: 12,
        ..Default::default()
    };

    let mut c1 = fresh(10);
    let thr = ThroughputOptimizer::new(&cfg).run(&mut c1).unwrap();
    let alg1 = Algorithm1::new(&cfg, thr.final_parallelism.clone(), 50);
    let autra = alg1.run(&mut c1, Vec::new()).unwrap();
    assert!(
        autra.final_parallelism[1] >= 4,
        "AuTraScale {:?}",
        autra.final_parallelism
    );

    let mut c2 = fresh(11);
    let ds2 = Ds2Policy::new(Ds2Config {
        policy_running_time: 120.0,
        ..Default::default()
    })
    .run(&mut c2)
    .unwrap();
    assert!(
        ds2.final_parallelism[1] >= 4,
        "DS2 {:?}",
        ds2.final_parallelism
    );

    let mut c3 = fresh(12);
    let drs = DrsPolicy::new(DrsConfig {
        target_latency_ms: TARGET_MS,
        rate_metric: RateMetric::True,
        policy_running_time: 120.0,
        max_iters: 8,
    })
    .run(&mut c3)
    .unwrap();
    assert!(
        drs.final_parallelism[1] >= 4,
        "DRS {:?}",
        drs.final_parallelism
    );
}

#[test]
fn autrascale_meets_latency_where_ds2_does_not_try() {
    let cfg = AuTraScaleConfig {
        target_latency_ms: TARGET_MS,
        policy_running_time: 120.0,
        bootstrap_m: 3,
        max_bo_iters: 12,
        ..Default::default()
    };
    let mut c1 = fresh(20);
    let thr = ThroughputOptimizer::new(&cfg).run(&mut c1).unwrap();
    let alg1 = Algorithm1::new(&cfg, thr.final_parallelism, 50);
    let autra = alg1.run(&mut c1, Vec::new()).unwrap();
    let (autra_latency, autra_tp) = steady_latency(&mut c1);

    let mut c2 = fresh(21);
    let _ = Ds2Policy::new(Ds2Config {
        policy_running_time: 120.0,
        ..Default::default()
    })
    .run(&mut c2)
    .unwrap();
    let (_, ds2_tp) = steady_latency(&mut c2);

    // AuTraScale commits to the latency target; DS2 only to throughput.
    assert!(autra.meets_qos, "{autra:?}");
    assert!(
        autra_latency <= TARGET_MS * 1.15,
        "steady latency {autra_latency}"
    );
    // Both keep up with the rate.
    assert!(autra_tp >= RATE * 0.93, "{autra_tp}");
    assert!(ds2_tp >= RATE * 0.93, "{ds2_tp}");
}

#[test]
fn drs_observed_uses_at_least_as_much_as_drs_true() {
    let total = |v: &[u32]| v.iter().map(|&p| u64::from(p)).sum::<u64>();
    let run = |metric: RateMetric, seed: u64| {
        let mut fc = fresh(seed);
        DrsPolicy::new(DrsConfig {
            target_latency_ms: TARGET_MS,
            rate_metric: metric,
            policy_running_time: 120.0,
            max_iters: 8,
        })
        .run(&mut fc)
        .unwrap()
    };
    let with_true = run(RateMetric::True, 30);
    let with_observed = run(RateMetric::Observed, 30);
    assert!(
        total(&with_observed.final_parallelism) >= total(&with_true.final_parallelism),
        "observed {:?} vs true {:?}",
        with_observed.final_parallelism,
        with_true.final_parallelism
    );
}

#[test]
fn external_cap_separates_autrascale_from_ds2_termination() {
    // A Redis-like cap: AuTraScale's throughput phase stops via the
    // repeated-recommendation condition; DS2 burns its whole budget.
    let capped = JobGraph::linear(vec![
        OperatorSpec::source("Source", 25_000.0),
        OperatorSpec::sink("Sink", 1_500.0).with_external_limit(6_000.0),
    ])
    .unwrap();
    let build = |seed| {
        let sim = Simulation::new(SimulationConfig {
            job: capped.clone(),
            profile: RateProfile::constant(15_000.0),
            seed,
            restart_downtime: 5.0,
            ..Default::default()
        })
        .unwrap();
        FlinkCluster::new(sim)
    };

    let cfg = AuTraScaleConfig {
        policy_running_time: 120.0,
        max_throughput_iters: 8,
        ..Default::default()
    };
    let mut c1 = build(40);
    let autra = ThroughputOptimizer::new(&cfg).run(&mut c1).unwrap();
    assert!(!autra.reached_input_rate);
    assert!(
        autra.iterations < 8,
        "terminated early, got {}",
        autra.iterations
    );

    let mut c2 = build(41);
    let ds2 = Ds2Policy::new(Ds2Config {
        policy_running_time: 120.0,
        max_iters: 8,
        ..Default::default()
    })
    .run(&mut c2)
    .unwrap();
    assert!(!ds2.converged);
    assert_eq!(ds2.iterations, 8, "DS2 has no early-out on capped jobs");
}

//! Cross-policy integration: AuTraScale and the baselines drive identical
//! clusters through the same `JobControl` trait, and the paper's
//! comparative claims hold as invariants.

use autrascale::{Algorithm1, AuTraScaleConfig, ThroughputOptimizer};
use autrascale_baselines::{DrsConfig, DrsPolicy, Ds2Config, Ds2Policy, RateMetric};
use autrascale_flinkctl::FlinkCluster;
use autrascale_streamsim::{JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig};

const RATE: f64 = 20_000.0;
const TARGET_MS: f64 = 140.0;

fn job() -> JobGraph {
    JobGraph::linear(vec![
        OperatorSpec::source("Source", 25_000.0),
        OperatorSpec::transform("Work", 6_000.0, 1.0)
            .with_sync_coeff(0.04)
            .with_comm_cost_ms(2.5),
        OperatorSpec::sink("Sink", 30_000.0),
    ])
    .unwrap()
}

fn fresh(seed: u64) -> FlinkCluster {
    let sim = Simulation::new(SimulationConfig {
        job: job(),
        profile: RateProfile::constant(RATE),
        seed,
        restart_downtime: 5.0,
        ..Default::default()
    })
    .unwrap();
    let mut fc = FlinkCluster::new(sim);
    fc.submit(&[1, 1, 1]).unwrap();
    fc.run_for(60.0).expect("fixed positive duration");
    fc
}

fn steady_latency(cluster: &mut FlinkCluster) -> (f64, f64) {
    cluster.run_for(400.0).expect("fixed positive duration");
    let m = cluster.metrics_over(120.0).unwrap();
    (m.processing_latency_ms, m.throughput)
}

#[test]
fn every_policy_scales_the_bottleneck() {
    // All three policies must identify Work as the operator to scale.
    let cfg = AuTraScaleConfig {
        target_latency_ms: TARGET_MS,
        policy_running_time: 120.0,
        bootstrap_m: 3,
        max_bo_iters: 12,
        ..Default::default()
    };

    let mut c1 = fresh(10);
    let thr = ThroughputOptimizer::new(&cfg).run(&mut c1).unwrap();
    let alg1 = Algorithm1::new(&cfg, thr.final_parallelism.clone(), 50);
    let autra = alg1.run(&mut c1, Vec::new()).unwrap();
    assert!(
        autra.final_parallelism[1] >= 4,
        "AuTraScale {:?}",
        autra.final_parallelism
    );

    let mut c2 = fresh(11);
    let ds2 = Ds2Policy::new(Ds2Config {
        policy_running_time: 120.0,
        ..Default::default()
    })
    .run(&mut c2)
    .unwrap();
    assert!(
        ds2.final_parallelism[1] >= 4,
        "DS2 {:?}",
        ds2.final_parallelism
    );

    let mut c3 = fresh(12);
    let drs = DrsPolicy::new(DrsConfig {
        target_latency_ms: TARGET_MS,
        rate_metric: RateMetric::True,
        policy_running_time: 120.0,
        max_iters: 8,
    })
    .run(&mut c3)
    .unwrap();
    assert!(
        drs.final_parallelism[1] >= 4,
        "DRS {:?}",
        drs.final_parallelism
    );
}

#[test]
fn autrascale_meets_latency_where_ds2_does_not_try() {
    let cfg = AuTraScaleConfig {
        target_latency_ms: TARGET_MS,
        policy_running_time: 120.0,
        bootstrap_m: 3,
        max_bo_iters: 12,
        ..Default::default()
    };
    let mut c1 = fresh(20);
    let thr = ThroughputOptimizer::new(&cfg).run(&mut c1).unwrap();
    let alg1 = Algorithm1::new(&cfg, thr.final_parallelism, 50);
    let autra = alg1.run(&mut c1, Vec::new()).unwrap();
    let (autra_latency, autra_tp) = steady_latency(&mut c1);

    let mut c2 = fresh(21);
    let _ = Ds2Policy::new(Ds2Config {
        policy_running_time: 120.0,
        ..Default::default()
    })
    .run(&mut c2)
    .unwrap();
    let (_, ds2_tp) = steady_latency(&mut c2);

    // AuTraScale commits to the latency target; DS2 only to throughput.
    assert!(autra.meets_qos, "{autra:?}");
    assert!(
        autra_latency <= TARGET_MS * 1.15,
        "steady latency {autra_latency}"
    );
    // Both keep up with the rate.
    assert!(autra_tp >= RATE * 0.93, "{autra_tp}");
    assert!(ds2_tp >= RATE * 0.93, "{ds2_tp}");
}

#[test]
fn drs_observed_uses_at_least_as_much_as_drs_true() {
    let total = |v: &[u32]| v.iter().map(|&p| u64::from(p)).sum::<u64>();
    let run = |metric: RateMetric, seed: u64| {
        let mut fc = fresh(seed);
        DrsPolicy::new(DrsConfig {
            target_latency_ms: TARGET_MS,
            rate_metric: metric,
            policy_running_time: 120.0,
            max_iters: 8,
        })
        .run(&mut fc)
        .unwrap()
    };
    let with_true = run(RateMetric::True, 30);
    let with_observed = run(RateMetric::Observed, 30);
    assert!(
        total(&with_observed.final_parallelism) >= total(&with_true.final_parallelism),
        "observed {:?} vs true {:?}",
        with_observed.final_parallelism,
        with_true.final_parallelism
    );
}

#[test]
fn external_cap_separates_autrascale_from_ds2_termination() {
    // A Redis-like cap: AuTraScale's throughput phase stops via the
    // repeated-recommendation condition; DS2 burns its whole budget.
    let capped = JobGraph::linear(vec![
        OperatorSpec::source("Source", 25_000.0),
        OperatorSpec::sink("Sink", 1_500.0).with_external_limit(6_000.0),
    ])
    .unwrap();
    let build = |seed| {
        let sim = Simulation::new(SimulationConfig {
            job: capped.clone(),
            profile: RateProfile::constant(15_000.0),
            seed,
            restart_downtime: 5.0,
            ..Default::default()
        })
        .unwrap();
        FlinkCluster::new(sim)
    };

    let cfg = AuTraScaleConfig {
        policy_running_time: 120.0,
        max_throughput_iters: 8,
        ..Default::default()
    };
    let mut c1 = build(40);
    let autra = ThroughputOptimizer::new(&cfg).run(&mut c1).unwrap();
    assert!(!autra.reached_input_rate);
    assert!(
        autra.iterations < 8,
        "terminated early, got {}",
        autra.iterations
    );

    let mut c2 = build(41);
    let ds2 = Ds2Policy::new(Ds2Config {
        policy_running_time: 120.0,
        max_iters: 8,
        ..Default::default()
    })
    .run(&mut c2)
    .unwrap();
    assert!(!ds2.converged);
    assert_eq!(ds2.iterations, 8, "DS2 has no early-out on capped jobs");
}

/// Cross-policy regressions on the ISSUE 7 failure-mode battery: every
/// policy drives the same seeded scenario cluster, and SLO violations
/// are counted the same way for all of them — metric emissions of
/// `job_processingLatencyMs` above the target over the policy's run.
mod scenario_battery {
    use super::*;
    use autrascale_baselines::queueing;
    use autrascale_metricsdb::Query;
    use autrascale_streamsim::metrics::PROCESSING_LATENCY_MS;
    use autrascale_workloads::scenarios::{self, Scenario};

    fn scenario_cluster(s: &Scenario, seed: u64, warmup_secs: f64) -> FlinkCluster {
        let sim = s.build(seed).expect("scenario builds");
        let mut fc = FlinkCluster::new(sim);
        fc.submit(&s.initial_parallelism).expect("submit");
        fc.run_for(warmup_secs).expect("fixed positive duration");
        fc
    }

    /// Latency metric emissions above `target` in `[from, now]`.
    fn violation_points(fc: &FlinkCluster, from: f64, target: f64) -> usize {
        let store = fc.simulation().store();
        store
            .select(&Query::new(PROCESSING_LATENCY_MS, from, fc.now()))
            .unwrap()
            .into_iter()
            .flat_map(|(_, pts)| pts)
            .filter(|p| p.value > target)
            .count()
    }

    fn bo_config(s: &Scenario, constrained: bool) -> AuTraScaleConfig {
        let base = AuTraScaleConfig {
            target_latency_ms: s.target_latency_ms,
            alpha: 0.3,
            policy_running_time: 60.0,
            bootstrap_m: 3,
            max_bo_iters: 8,
            ..Default::default()
        };
        if constrained {
            base.with_constrained_acquisition(0.9)
        } else {
            base
        }
    }

    #[test]
    fn flash_crowd_constrained_bo_beats_unconstrained_on_wall_clock_violations() {
        // Same comparison as tests/scenarios.rs, but measured in violating
        // metric windows rather than violating evaluations — the number an
        // operator actually sees on a dashboard.
        let s = scenarios::flash_crowd();
        let counts: Vec<usize> = [false, true]
            .into_iter()
            .map(|constrained| {
                let mut fc = scenario_cluster(&s, 0xC0DE, 960.0);
                let from = fc.now();
                let alg = Algorithm1::new(
                    &bo_config(&s, constrained),
                    s.initial_parallelism.clone(),
                    s.as_workload().p_max(),
                );
                alg.run(&mut fc, Vec::new()).expect("bo runs");
                violation_points(&fc, from, s.target_latency_ms)
            })
            .collect();
        assert!(
            counts[1] < counts[0],
            "constrained {} >= unconstrained {} violating windows",
            counts[1],
            counts[0]
        );
    }

    #[test]
    fn multi_sink_ds2_converges_but_only_constrained_bo_commits_to_the_slo() {
        // On the fan-out scenario DS2 converges (the external cap is not
        // binding at the base rate) but optimizes throughput only; the
        // constrained BO must additionally end parked on a configuration
        // that meets the latency target.
        let s = scenarios::multi_sink_limited();
        let mut c1 = scenario_cluster(&s, 0xD52, 60.0);
        let ds2 = Ds2Policy::new(Ds2Config {
            policy_running_time: 60.0,
            max_iters: 6,
            ..Default::default()
        })
        .run(&mut c1)
        .expect("ds2 runs");
        assert!(ds2.converged, "{ds2:?}");

        let run_bo = || {
            let mut fc = scenario_cluster(&s, 0xD52, 60.0);
            let from = fc.now();
            let alg = Algorithm1::new(
                &bo_config(&s, true),
                s.initial_parallelism.clone(),
                s.as_workload().p_max(),
            );
            let outcome = alg.run(&mut fc, Vec::new()).expect("bo runs");
            (outcome, violation_points(&fc, from, s.target_latency_ms))
        };
        let (bo, windows) = run_bo();
        assert!(
            bo.final_latency_ms <= s.target_latency_ms,
            "BO parked on an SLO-violating config: {bo:?}"
        );
        // Seeded regression: the violating-window count is reproducible.
        let (_, repeat) = run_bo();
        assert_eq!(windows, repeat);
    }

    #[test]
    fn drs_meets_latency_on_hot_keys_and_counts_are_seeded() {
        let s = scenarios::hot_keys();
        let run = || {
            let mut fc = scenario_cluster(&s, 0xD125, 60.0);
            let from = fc.now();
            let outcome = DrsPolicy::new(DrsConfig {
                target_latency_ms: s.target_latency_ms,
                rate_metric: RateMetric::True,
                policy_running_time: 60.0,
                max_iters: 8,
            })
            .run(&mut fc)
            .expect("drs runs");
            (outcome, violation_points(&fc, from, s.target_latency_ms))
        };
        let (a, a_count) = run();
        let (b, b_count) = run();
        // Seeded regression: identical runs, identical counts.
        assert_eq!(a.final_parallelism, b.final_parallelism);
        assert_eq!(a_count, b_count);
    }

    #[test]
    fn constrained_bo_final_config_is_queueing_stable_at_the_peak() {
        // Whatever configuration constrained BO settles on during the
        // flash crowd must satisfy the M/M/k stability bound for the
        // aggregation stage at the peak rate — feasibility implies
        // queueing stability, never the reverse.
        let s = scenarios::flash_crowd();
        let mut fc = scenario_cluster(&s, 0xF1A5, 960.0);
        let alg = Algorithm1::new(
            &bo_config(&s, true),
            s.initial_parallelism.clone(),
            s.as_workload().p_max(),
        );
        let bo = alg.run(&mut fc, Vec::new()).expect("bo runs");
        let peak_rate = 30_000.0;
        let agg_service_rate = 6_000.0;
        let k_min = queueing::min_stable_servers(peak_rate, agg_service_rate, 20);
        assert!(
            bo.final_parallelism[1] >= k_min,
            "Agg parallelism {} below stability bound {k_min}",
            bo.final_parallelism[1]
        );
    }

    #[test]
    fn cascading_failure_violation_windows_ordered_and_deterministic() {
        let s = scenarios::cascading_failure();
        let run = |constrained: bool| {
            let mut fc = scenario_cluster(&s, 0xCA5C, 200.0);
            let from = fc.now();
            let alg = Algorithm1::new(
                &bo_config(&s, constrained),
                s.initial_parallelism.clone(),
                s.as_workload().p_max(),
            );
            let outcome = alg.run(&mut fc, Vec::new()).expect("bo runs");
            (outcome, violation_points(&fc, from, s.target_latency_ms))
        };
        let (_, unconstrained_windows) = run(false);
        let (constrained_outcome, constrained_windows) = run(true);
        assert!(
            constrained_windows <= unconstrained_windows,
            "constrained {constrained_windows} > unconstrained {unconstrained_windows}"
        );
        let (repeat_outcome, repeat_windows) = run(true);
        assert_eq!(constrained_windows, repeat_windows);
        assert_eq!(
            constrained_outcome.final_parallelism,
            repeat_outcome.final_parallelism
        );
    }
}

//! Proactive-forecasting regression battery (ISSUE 9).
//!
//! Compares the MAPE loop with [`AuTraScaleConfig::proactive_forecasting`]
//! on vs off at an equal simulated-time budget on the seeded diurnal and
//! flash-crowd scenarios. SLO-violating `policy_interval` windows are
//! counted post-hoc from the metric store over the *whole* run, so
//! optimization probes and restart downtime are charged to the mode that
//! incurred them.
//!
//! Pinned guarantees:
//! - flash-crowd: proactive gives strictly fewer violating windows;
//! - battery-wide: proactive is never worse than reactive;
//! - steady rate: proactive-on is bit-identical to the reactive default
//!   (the forecaster sees no coming change and consumes no randomness);
//! - both modes are deterministic at a fixed seed.

use autrascale::{AuTraScaleConfig, ControllerEvent, MapeController};
use autrascale_flinkctl::FlinkCluster;
use autrascale_streamsim::metrics;
use autrascale_workloads::scenarios::{diurnal, flash_crowd, Scenario};

/// Budget-matched controller config; `proactive` toggles only the
/// forecasting front-end.
fn config(s: &Scenario, proactive: bool) -> AuTraScaleConfig {
    let cfg = AuTraScaleConfig {
        target_latency_ms: s.target_latency_ms,
        policy_running_time: 60.0,
        bootstrap_m: 3,
        max_bo_iters: 5,
        n_num: 3,
        ..Default::default()
    };
    if proactive {
        cfg.with_proactive_forecasting()
    } else {
        cfg
    }
}

/// SLO-violating `window`-second windows over `[0, now]`, judged by the
/// mean of the job processing-latency series in each window.
fn violating_windows(fc: &FlinkCluster, target_ms: f64, window: f64) -> usize {
    let store = fc.simulation().store();
    let key = metrics::job_key(metrics::PROCESSING_LATENCY_MS);
    let end = fc.now();
    let mut count = 0;
    let mut t = 0.0;
    while t < end {
        let mean = store
            .window_mean(&key, t, (t + window).min(end))
            .expect("finite bounds")
            .unwrap_or(0.0);
        if mean > target_ms {
            count += 1;
        }
        t += window;
    }
    count
}

struct RunOutcome {
    violating_windows: usize,
    events: Vec<ControllerEvent>,
    final_parallelism: Vec<u32>,
    slo_violations: usize,
}

/// Drives the MAPE loop on the scenario until `horizon_secs` of simulated
/// time have passed, then scores the whole run.
fn run(s: &Scenario, seed: u64, proactive: bool, horizon_secs: f64) -> RunOutcome {
    let mut fc = FlinkCluster::new(s.build(seed).expect("scenario builds"));
    fc.submit(&s.initial_parallelism).expect("submit");
    fc.run_for(60.0).expect("warmup");
    let cfg = config(s, proactive);
    let interval = cfg.policy_interval;
    let target = cfg.target_latency_ms;
    let mut ctrl = MapeController::new(cfg);
    let mut events = Vec::new();
    while fc.now() < horizon_secs {
        events.extend(ctrl.activate(&mut fc).expect("activation"));
        fc.run_for(interval).expect("interval advance");
    }
    RunOutcome {
        violating_windows: violating_windows(&fc, target, interval),
        events,
        final_parallelism: fc.parallelism().to_vec(),
        slo_violations: ctrl.slo_violations(),
    }
}

fn forecast_events(events: &[ControllerEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, ControllerEvent::RateForecasted { .. }))
        .count()
}

#[test]
fn proactive_strictly_beats_reactive_on_flash_crowd() {
    let s = flash_crowd();
    let horizon = 2_400.0;
    let reactive = run(&s, 42, false, horizon);
    let proactive = run(&s, 42, true, horizon);
    assert!(
        forecast_events(&proactive.events) > 0,
        "proactive mode never forecast a rate change: {:?}",
        proactive.events
    );
    assert!(
        proactive.violating_windows < reactive.violating_windows,
        "proactive {} windows vs reactive {} windows",
        proactive.violating_windows,
        reactive.violating_windows
    );
}

#[test]
fn proactive_is_never_worse_battery_wide() {
    for (s, horizon) in [(diurnal(), 1_500.0), (flash_crowd(), 2_400.0)] {
        let reactive = run(&s, 7, false, horizon);
        let proactive = run(&s, 7, true, horizon);
        assert!(
            proactive.violating_windows <= reactive.violating_windows,
            "{}: proactive {} windows vs reactive {}",
            s.name,
            proactive.violating_windows,
            reactive.violating_windows
        );
    }
}

#[test]
fn steady_rate_parity_proactive_on_equals_off() {
    // On a constant rate the forecaster predicts no change and consumes
    // no randomness, so enabling proactive mode must change nothing:
    // same events, same deployments, same violation count, bit for bit.
    let mut s = diurnal();
    s.profile = autrascale_streamsim::RateProfile::constant(10_000.0);
    let reactive = run(&s, 11, false, 900.0);
    let proactive = run(&s, 11, true, 900.0);
    assert_eq!(
        format!("{:?}", reactive.events),
        format!("{:?}", proactive.events)
    );
    assert_eq!(reactive.final_parallelism, proactive.final_parallelism);
    assert_eq!(reactive.slo_violations, proactive.slo_violations);
    assert_eq!(reactive.violating_windows, proactive.violating_windows);
}

#[test]
fn proactive_runs_are_deterministic() {
    let s = flash_crowd();
    let a = run(&s, 13, true, 1_200.0);
    let b = run(&s, 13, true, 1_200.0);
    assert_eq!(format!("{:?}", a.events), format!("{:?}", b.events));
    assert_eq!(a.final_parallelism, b.final_parallelism);
    assert_eq!(a.violating_windows, b.violating_windows);
}

#[test]
#[ignore]
fn debug_dump_flash_crowd() {
    let s = flash_crowd();
    for proactive in [false, true] {
        let mut fc = FlinkCluster::new(s.build(42).expect("scenario builds"));
        fc.submit(&s.initial_parallelism).expect("submit");
        fc.run_for(60.0).expect("warmup");
        let cfg = config(&s, proactive);
        let mut ctrl = MapeController::new(cfg.clone());
        println!("=== proactive={proactive} ===");
        while fc.now() < 2_400.0 {
            let t0 = fc.now();
            let evs = ctrl.activate(&mut fc).expect("activation");
            for e in &evs {
                let tag = match e {
                    ControllerEvent::ThroughputOptimized(_) => "ThroughputOptimized".into(),
                    ControllerEvent::SteadyRateOptimized(o) => {
                        format!("SteadyRateOptimized slo={}", o.slo_violations)
                    }
                    ControllerEvent::Transferred(o) => {
                        format!("Transferred slo={}", o.slo_violations)
                    }
                    ControllerEvent::RateAwareWarmStarted(o) => {
                        format!("RateAware slo={}", o.slo_violations)
                    }
                    ControllerEvent::RateChangeDetected { old, new } => {
                        format!("RateChange {old:.0}->{new:.0}")
                    }
                    ControllerEvent::RateForecasted { current, predicted } => {
                        format!("Forecast {current:.0}->{predicted:.0}")
                    }
                    ControllerEvent::NoActionNeeded => "NoAction".into(),
                };
                println!(
                    "t={t0:8.1} -> t={:8.1}  {tag}  par={:?}",
                    fc.now(),
                    fc.parallelism()
                );
            }
            fc.run_for(cfg.policy_interval).expect("advance");
        }
        println!(
            "violating={}",
            violating_windows(&fc, cfg.target_latency_ms, cfg.policy_interval)
        );
    }
}

//! Determinism integration: identical seeds must reproduce identical
//! behavior across the whole stack — simulator, metrics, GP fits, BO
//! suggestions, and complete controller runs.

use autrascale::{Algorithm1, AuTraScaleConfig, ThroughputOptimizer};
use autrascale_flinkctl::FlinkCluster;
use autrascale_streamsim::{
    EngineKind, JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig,
};

fn job() -> JobGraph {
    JobGraph::linear(vec![
        OperatorSpec::source("Source", 20_000.0),
        OperatorSpec::transform("Map", 6_000.0, 1.3).with_sync_coeff(0.06),
        OperatorSpec::sink("Sink", 15_000.0),
    ])
    .unwrap()
}

fn cluster(seed: u64) -> FlinkCluster {
    let sim = Simulation::new(SimulationConfig {
        job: job(),
        profile: RateProfile::constant(12_000.0),
        seed,
        restart_downtime: 5.0,
        ..Default::default()
    })
    .unwrap();
    FlinkCluster::new(sim)
}

fn config() -> AuTraScaleConfig {
    AuTraScaleConfig {
        target_latency_ms: 140.0,
        policy_running_time: 90.0,
        bootstrap_m: 3,
        max_bo_iters: 8,
        ..Default::default()
    }
}

#[test]
fn throughput_phase_is_bit_identical() {
    let run = |seed| {
        let mut fc = cluster(seed);
        ThroughputOptimizer::new(&config()).run(&mut fc).unwrap()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.final_parallelism, b.final_parallelism);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.final_throughput.to_bits(), b.final_throughput.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (sa, sb) in a.history.iter().zip(&b.history) {
        assert_eq!(sa.parallelism, sb.parallelism);
        assert_eq!(sa.throughput.to_bits(), sb.throughput.to_bits());
    }
}

#[test]
fn algorithm1_trace_is_identical() {
    let run = |seed| {
        let mut fc = cluster(seed);
        let cfg = config();
        let thr = ThroughputOptimizer::new(&cfg).run(&mut fc).unwrap();
        let alg1 = Algorithm1::new(&cfg, thr.final_parallelism, 40);
        alg1.run(&mut fc, Vec::new()).unwrap()
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a.final_parallelism, b.final_parallelism);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.history.len(), b.history.len());
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(ra.parallelism, rb.parallelism);
        assert_eq!(ra.score.to_bits(), rb.score.to_bits());
    }
}

#[test]
fn different_seeds_diverge_somewhere() {
    let run = |seed| {
        let mut fc = cluster(seed);
        fc.submit(&[1, 2, 1]).unwrap();
        fc.run_for(120.0).expect("fixed positive duration");
        fc.metrics_over(60.0).unwrap()
    };
    let a = run(1);
    let b = run(2);
    // Same configuration, different noise: aggregates must differ at the
    // bit level (they share the mean, not the exact value).
    assert_ne!(
        a.processing_latency_ms.to_bits(),
        b.processing_latency_ms.to_bits()
    );
}

/// Runs `script` against both simulator engines on identical configs and
/// asserts the determinism-hash trajectories (one hash per checkpoint)
/// and final snapshots are bit-identical. Each scenario below covers
/// 10 000 steps (1 000 simulated seconds at dt = 0.1).
fn assert_engine_parity(
    profile: impl Fn() -> RateProfile,
    seed: u64,
    script: impl Fn(&mut Simulation) -> Vec<u64>,
) {
    let build = |engine| {
        Simulation::new(SimulationConfig {
            job: job(),
            profile: profile(),
            seed,
            restart_downtime: 5.0,
            engine,
            ..Default::default()
        })
        .unwrap()
    };
    let mut event = build(EngineKind::EventDriven);
    let mut tick = build(EngineKind::Tick);
    let event_hashes = script(&mut event);
    let tick_hashes = script(&mut tick);
    assert_eq!(
        event_hashes, tick_hashes,
        "state-hash trajectories diverged between engines"
    );
    assert_eq!(event.snapshot(), tick.snapshot());
    assert_eq!(tick.fast_forwarded_windows(), 0);
}

/// Checkpoint helper: advance and record the determinism hash.
fn advance(sim: &mut Simulation, secs: f64, hashes: &mut Vec<u64>) {
    sim.run_for(secs).unwrap();
    hashes.push(sim.state_hash());
}

#[test]
fn engines_agree_over_10k_steps_with_mid_trace_fault() {
    assert_engine_parity(
        || RateProfile::constant(9_000.0),
        31,
        |sim| {
            let mut hashes = Vec::new();
            sim.deploy(&[1, 2, 1]).unwrap();
            advance(sim, 400.0, &mut hashes);
            sim.inject_slowdown(1, 0.35, 123.4).unwrap();
            advance(sim, 100.0, &mut hashes); // degraded
            advance(sim, 500.0, &mut hashes); // expiry + recovery
            hashes
        },
    );
}

#[test]
fn engines_agree_over_10k_steps_with_rate_switches() {
    assert_engine_parity(
        || {
            RateProfile::piecewise(vec![
                (0.0, 6_000.0),
                (200.0, 12_000.0),
                (450.0, 3_000.0),
                (700.0, 9_000.0),
            ])
        },
        32,
        |sim| {
            let mut hashes = Vec::new();
            sim.deploy(&[1, 2, 1]).unwrap();
            for _ in 0..10 {
                advance(sim, 100.0, &mut hashes);
            }
            hashes
        },
    );
}

#[test]
fn engines_agree_over_10k_steps_with_deploy_downtime() {
    assert_engine_parity(
        || RateProfile::constant(8_000.0),
        33,
        |sim| {
            let mut hashes = Vec::new();
            sim.deploy(&[1, 1, 1]).unwrap();
            advance(sim, 300.0, &mut hashes);
            sim.deploy(&[1, 3, 1]).unwrap(); // savepoint + restart
            advance(sim, 2.5, &mut hashes); // mid-downtime
            advance(sim, 397.5, &mut hashes); // recovery + drain
            sim.deploy(&[1, 2, 1]).unwrap(); // scale back down
            advance(sim, 300.0, &mut hashes);
            hashes
        },
    );
}

#[test]
fn event_engine_skips_windows_yet_matches_tick_hash() {
    // A provisioned constant-rate job goes quiescent: the event engine
    // must fast-forward most windows and still land on the tick engine's
    // exact state hash after 10k steps.
    let build = |engine| {
        Simulation::new(SimulationConfig {
            job: job(),
            profile: RateProfile::constant(7_000.0),
            seed: 34,
            engine,
            ..Default::default()
        })
        .unwrap()
    };
    let mut event = build(EngineKind::EventDriven);
    let mut tick = build(EngineKind::Tick);
    for sim in [&mut event, &mut tick] {
        sim.deploy(&[1, 2, 1]).unwrap();
        sim.run_for(1_000.0).unwrap();
    }
    assert!(
        event.fast_forwarded_windows() > 150,
        "only {} of ~200 windows were fast-forwarded",
        event.fast_forwarded_windows()
    );
    assert_eq!(tick.fast_forwarded_windows(), 0);
    assert_eq!(event.state_hash(), tick.state_hash());
    assert_eq!(event.snapshot(), tick.snapshot());
}

#[test]
fn simulation_replay_matches_metrics_store() {
    // Re-running the same simulation must reproduce every stored metric
    // window (spot-check throughput).
    let series = |seed| {
        let mut fc = cluster(seed);
        fc.submit(&[1, 2, 1]).unwrap();
        fc.run_for(180.0).expect("fixed positive duration");
        let store = fc.simulation().store();
        store
            .select(&autrascale_metricsdb::Query::new(
                autrascale_streamsim::metrics::JOB_THROUGHPUT,
                0.0,
                1e9,
            ))
            .unwrap()
            .into_iter()
            .flat_map(|(_, pts)| pts)
            .map(|p| (p.time.to_bits(), p.value.to_bits()))
            .collect::<Vec<_>>()
    };
    let a = series(5);
    let b = series(5);
    assert_eq!(a.len(), b.len());
    assert_eq!(a, b);
}

//! Determinism integration: identical seeds must reproduce identical
//! behavior across the whole stack — simulator, metrics, GP fits, BO
//! suggestions, and complete controller runs.

use autrascale::{Algorithm1, AuTraScaleConfig, ThroughputOptimizer};
use autrascale_flinkctl::FlinkCluster;
use autrascale_streamsim::{JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig};

fn job() -> JobGraph {
    JobGraph::linear(vec![
        OperatorSpec::source("Source", 20_000.0),
        OperatorSpec::transform("Map", 6_000.0, 1.3).with_sync_coeff(0.06),
        OperatorSpec::sink("Sink", 15_000.0),
    ])
    .unwrap()
}

fn cluster(seed: u64) -> FlinkCluster {
    let sim = Simulation::new(SimulationConfig {
        job: job(),
        profile: RateProfile::constant(12_000.0),
        seed,
        restart_downtime: 5.0,
        ..Default::default()
    })
    .unwrap();
    FlinkCluster::new(sim)
}

fn config() -> AuTraScaleConfig {
    AuTraScaleConfig {
        target_latency_ms: 140.0,
        policy_running_time: 90.0,
        bootstrap_m: 3,
        max_bo_iters: 8,
        ..Default::default()
    }
}

#[test]
fn throughput_phase_is_bit_identical() {
    let run = |seed| {
        let mut fc = cluster(seed);
        ThroughputOptimizer::new(&config()).run(&mut fc).unwrap()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.final_parallelism, b.final_parallelism);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.final_throughput.to_bits(), b.final_throughput.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (sa, sb) in a.history.iter().zip(&b.history) {
        assert_eq!(sa.parallelism, sb.parallelism);
        assert_eq!(sa.throughput.to_bits(), sb.throughput.to_bits());
    }
}

#[test]
fn algorithm1_trace_is_identical() {
    let run = |seed| {
        let mut fc = cluster(seed);
        let cfg = config();
        let thr = ThroughputOptimizer::new(&cfg).run(&mut fc).unwrap();
        let alg1 = Algorithm1::new(&cfg, thr.final_parallelism, 40);
        alg1.run(&mut fc, Vec::new()).unwrap()
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a.final_parallelism, b.final_parallelism);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.history.len(), b.history.len());
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(ra.parallelism, rb.parallelism);
        assert_eq!(ra.score.to_bits(), rb.score.to_bits());
    }
}

#[test]
fn different_seeds_diverge_somewhere() {
    let run = |seed| {
        let mut fc = cluster(seed);
        fc.submit(&[1, 2, 1]).unwrap();
        fc.run_for(120.0);
        fc.metrics_over(60.0).unwrap()
    };
    let a = run(1);
    let b = run(2);
    // Same configuration, different noise: aggregates must differ at the
    // bit level (they share the mean, not the exact value).
    assert_ne!(
        a.processing_latency_ms.to_bits(),
        b.processing_latency_ms.to_bits()
    );
}

#[test]
fn simulation_replay_matches_metrics_store() {
    // Re-running the same simulation must reproduce every stored metric
    // window (spot-check throughput).
    let series = |seed| {
        let mut fc = cluster(seed);
        fc.submit(&[1, 2, 1]).unwrap();
        fc.run_for(180.0);
        let store = fc.simulation().store();
        store
            .select(&autrascale_metricsdb::Query::new(
                autrascale_streamsim::metrics::JOB_THROUGHPUT,
                0.0,
                1e9,
            ))
            .into_iter()
            .flat_map(|(_, pts)| pts)
            .map(|p| (p.time.to_bits(), p.value.to_bits()))
            .collect::<Vec<_>>()
    };
    let a = series(5);
    let b = series(5);
    assert_eq!(a.len(), b.len());
    assert_eq!(a, b);
}

//! Seeded scenario-battery regressions (ISSUE 7): every failure mode in
//! `autrascale_workloads::scenarios` is exercised end-to-end through
//! Algorithm 1, and the SLO-safe constrained acquisition must never be
//! worse than — and on the violation-heavy scenarios strictly better
//! than — the unconstrained acquisition at an equal observation budget.
//!
//! The comparisons are inequalities rather than pinned literals so they
//! hold across the sim engines (both CI feature legs run this file) and
//! RNG backends; determinism tests pin each count against itself.

use autrascale::{Algorithm1, AuTraScaleConfig, ElasticityOutcome};
use autrascale_flinkctl::FlinkCluster;
use autrascale_workloads::scenarios::{self, Scenario};

/// Observation-budget-matched config for a scenario; `constrained`
/// toggles only the acquisition gate.
fn config(s: &Scenario, constrained: bool) -> AuTraScaleConfig {
    let base = AuTraScaleConfig {
        target_latency_ms: s.target_latency_ms,
        // Resource-frugal operator: α = 0.3 weights the resource term
        // heavily, so under-provisioned (SLO-violating) configurations
        // score highest — the regime where an unguarded acquisition
        // actively chases violations and the gate has to earn its keep.
        alpha: 0.3,
        policy_running_time: 60.0,
        bootstrap_m: 3,
        max_bo_iters: 8,
        ..Default::default()
    };
    if constrained {
        base.with_constrained_acquisition(0.9)
    } else {
        base
    }
}

/// Runs Algorithm 1 on the scenario after `warmup_secs` of settling
/// (placing the optimization window over the scenario's stress phase).
fn run(s: &Scenario, seed: u64, warmup_secs: f64, constrained: bool) -> ElasticityOutcome {
    let sim = s.build(seed).expect("scenario builds");
    let mut fc = FlinkCluster::new(sim);
    fc.submit(&s.initial_parallelism).expect("submit");
    fc.run_for(warmup_secs).expect("fixed positive duration");
    let cfg = config(s, constrained);
    let alg = Algorithm1::new(&cfg, s.initial_parallelism.clone(), s.as_workload().p_max());
    alg.run(&mut fc, Vec::new()).expect("algorithm 1 runs")
}

/// Warmup placing Algorithm 1's search window over each scenario's
/// stress phase (spike at 900 s, cascade at 600–1200 s, …).
fn warmup_for(s: &Scenario) -> f64 {
    match s.name {
        // Search starts once the ramp tops out (900 s + 60 s ramp), so
        // the whole observation budget is spent at the 30k peak.
        "flash-crowd" => 960.0,
        "cascading-failure" => 200.0,
        _ => 60.0,
    }
}

#[test]
fn constrained_never_worse_across_the_battery() {
    // Aggregate across the battery: the gate can lose a round to GP
    // misprediction on a non-stationary profile, but summed over every
    // failure mode it must not increase violations.
    let mut total_unconstrained = 0usize;
    let mut total_constrained = 0usize;
    for s in scenarios::all_scenarios() {
        let warmup = warmup_for(&s);
        let unconstrained = run(&s, 0xBEEF, warmup, false);
        let constrained = run(&s, 0xBEEF, warmup, true);
        total_unconstrained += unconstrained.slo_violations;
        total_constrained += constrained.slo_violations;
    }
    assert!(
        total_constrained <= total_unconstrained,
        "battery total: constrained {total_constrained} > unconstrained {total_unconstrained}"
    );
}

#[test]
fn flash_crowd_constrained_strictly_fewer_violations() {
    let s = scenarios::flash_crowd();
    let unconstrained = run(&s, 0xF1A5, 960.0, false);
    let constrained = run(&s, 0xF1A5, 960.0, true);
    assert!(
        constrained.slo_violations < unconstrained.slo_violations,
        "constrained {} vs unconstrained {}",
        constrained.slo_violations,
        unconstrained.slo_violations
    );
}

#[test]
fn cascading_failure_constrained_strictly_fewer_violations() {
    let s = scenarios::cascading_failure();
    let unconstrained = run(&s, 0xCA5C, 200.0, false);
    let constrained = run(&s, 0xCA5C, 200.0, true);
    assert!(
        constrained.slo_violations < unconstrained.slo_violations,
        "constrained {} vs unconstrained {}",
        constrained.slo_violations,
        unconstrained.slo_violations
    );
}

#[test]
fn violation_counts_are_seed_deterministic() {
    for s in [scenarios::flash_crowd(), scenarios::cascading_failure()] {
        let warmup = warmup_for(&s);
        for constrained in [false, true] {
            let a = run(&s, 0xD00D, warmup, constrained);
            let b = run(&s, 0xD00D, warmup, constrained);
            assert_eq!(
                a.slo_violations, b.slo_violations,
                "{} constrained={constrained} not deterministic",
                s.name
            );
            assert_eq!(a.final_parallelism, b.final_parallelism);
            assert_eq!(a.iterations, b.iterations);
        }
    }
}

#[test]
fn constrained_budget_matches_unconstrained() {
    // Equal observation budget: both modes see the same bootstrap design
    // and the same iteration cap; neither may exceed it.
    let s = scenarios::flash_crowd();
    let unconstrained = run(&s, 0xBEEF, 400.0, false);
    let constrained = run(&s, 0xBEEF, 400.0, true);
    assert_eq!(
        constrained.bootstrap_samples,
        unconstrained.bootstrap_samples
    );
    assert!(constrained.iterations <= 8);
    assert!(unconstrained.iterations <= 8);
}

#[test]
fn hot_keys_scenario_reaches_feasible_configuration() {
    // The skewed aggregation has a narrow feasible region; the
    // constrained run must still terminate inside it.
    let s = scenarios::hot_keys();
    let outcome = run(&s, 0x5EED, 60.0, true);
    assert!(
        outcome.final_latency_ms <= s.target_latency_ms * 1.5,
        "{outcome:?}"
    );
}

#[test]
fn heterogeneous_and_multi_sink_scenarios_complete() {
    for s in [
        scenarios::heterogeneous_machines(),
        scenarios::multi_sink_limited(),
    ] {
        let outcome = run(&s, 0x0DD5, 60.0, true);
        assert!(outcome.iterations >= 1, "{}: {outcome:?}", s.name);
        assert_eq!(
            outcome.slo_violations,
            autrascale::count_slo_violations(&outcome.history, s.target_latency_ms),
            "{}",
            s.name
        );
    }
}

#[test]
fn diurnal_scenario_converges_off_peak() {
    let s = scenarios::diurnal();
    let outcome = run(&s, 0xD1A1, 60.0, true);
    assert!(outcome.iterations >= 1);
    // The sinusoid never exceeds the agg chain's scalable capacity, so a
    // feasible configuration exists and the search should find one.
    assert!(outcome.final_latency_ms.is_finite());
}

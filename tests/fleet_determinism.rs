//! Fleet concurrency-determinism battery (ISSUE 10).
//!
//! Concurrency in the fleet scheduler must be *pure parallelism*: a
//! fleet of N jobs advanced concurrently is bit-identical per job to
//! the same N jobs advanced serially in job-ID order, and a single-job
//! fleet is bit-identical to driving the bare `MapeController` loop
//! yourself. Both contracts are pinned here under both simulator
//! engines (explicitly per test, and again per CI feature leg via the
//! `tick-engine` matrix entry), alongside a 1k-job smoke that checks
//! per-job metric retention keeps every shard bounded.

use autrascale::{AuTraScaleConfig, ControllerEvent, ElasticityOutcome, MapeController};
use autrascale_fleet::{
    Admission, Fleet, FleetConfig, JobOutcome, JobSpec, ResumeState, WorkloadFeatures,
};
use autrascale_flinkctl::FlinkCluster;
use autrascale_streamsim::{
    EngineKind, JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig,
};

const ENGINES: [EngineKind; 2] = [EngineKind::EventDriven, EngineKind::Tick];

fn sim_config(rate: f64, seed: u64, engine: EngineKind) -> SimulationConfig {
    let job = JobGraph::linear(vec![
        OperatorSpec::source("Source", 30_000.0),
        OperatorSpec::sink("Sink", 5_000.0)
            .with_sync_coeff(0.02)
            .with_comm_cost_ms(3.0),
    ])
    .unwrap();
    SimulationConfig {
        job,
        profile: RateProfile::constant(rate),
        seed,
        engine,
        restart_downtime: 2.0,
        ..Default::default()
    }
}

fn controller_config() -> AuTraScaleConfig {
    AuTraScaleConfig {
        target_latency_ms: 150.0,
        policy_interval: 30.0,
        policy_running_time: 60.0,
        bootstrap_m: 3,
        max_bo_iters: 4,
        n_num: 3,
        ..Default::default()
    }
}

fn spec(id: u64, rate: f64, engine: EngineKind) -> JobSpec {
    JobSpec {
        id,
        sim: sim_config(rate, 0xF1EE7 + id, engine),
        controller: controller_config(),
        initial_parallelism: vec![1, 1],
        features: WorkloadFeatures::of_job(2, 20, rate, 150.0),
        resume: None,
    }
}

/// Bitwise fingerprint of an `ElasticityOutcome`: every float via
/// `to_bits`, so two outcomes compare equal iff they are bit-identical.
type OutcomeBits = (Vec<u32>, u64, u64, u64, usize, usize, bool, usize);

fn outcome_bits(o: &ElasticityOutcome) -> OutcomeBits {
    (
        o.final_parallelism.clone(),
        o.final_latency_ms.to_bits(),
        o.final_throughput.to_bits(),
        o.final_score.to_bits(),
        o.iterations,
        o.bootstrap_samples,
        o.meets_qos,
        o.slo_violations,
    )
}

/// Every optimization outcome in a round's events, bit-fingerprinted.
fn round_outcome_bits(outcomes: &[JobOutcome]) -> Vec<(u64, Vec<OutcomeBits>)> {
    outcomes
        .iter()
        .map(|o| {
            let bits = o
                .events
                .iter()
                .filter_map(|e| match e {
                    ControllerEvent::SteadyRateOptimized(out)
                    | ControllerEvent::Transferred(out)
                    | ControllerEvent::RateAwareWarmStarted(out) => Some(outcome_bits(out)),
                    _ => None,
                })
                .collect();
            (o.id, bits)
        })
        .collect()
}

#[test]
fn sixty_four_job_fleet_concurrent_matches_serial_bitwise() {
    for engine in ENGINES {
        let build = || {
            let mut fleet = Fleet::new(FleetConfig {
                shard_count: 7, // deliberately not a divisor of 64
                retention_secs: Some(240.0),
                ..Default::default()
            });
            for id in 0..64u64 {
                // A spread of rates so jobs tune toward different
                // configurations and cross-job transfer has real variety.
                let rate = 6_000.0 + 150.0 * id as f64;
                fleet.admit(spec(id, rate, engine)).unwrap();
            }
            fleet
        };
        let mut concurrent = build();
        let mut serial = build();
        for round in 0..2 {
            let a = concurrent.advance_round(60.0).unwrap();
            let b = serial.advance_round_serial(60.0).unwrap();
            // Per-job state hashes, bitwise.
            let hash_key = |outs: &[JobOutcome]| {
                outs.iter()
                    .map(|o| (o.id, o.state_hash))
                    .collect::<Vec<_>>()
            };
            assert_eq!(hash_key(&a), hash_key(&b), "{engine:?} round {round}");
            // Every ElasticityOutcome, bitwise.
            assert_eq!(
                round_outcome_bits(&a),
                round_outcome_bits(&b),
                "{engine:?} round {round}"
            );
            // And the full event streams (order + every field).
            let events_key = |outs: &[JobOutcome]| {
                outs.iter()
                    .map(|o| format!("{:?}", o.events))
                    .collect::<Vec<_>>()
            };
            assert_eq!(events_key(&a), events_key(&b), "{engine:?} round {round}");
        }
        assert_eq!(concurrent.state_hashes(), serial.state_hashes());
        // The shared library converged to the same donors either way.
        assert_eq!(
            concurrent.library().donor_ids(),
            serial.library().donor_ids()
        );
    }
}

#[test]
fn shard_count_never_changes_results() {
    let engine = EngineKind::default();
    let run = |shard_count: usize| {
        let mut fleet = Fleet::new(FleetConfig {
            shard_count,
            ..Default::default()
        });
        for id in 0..6u64 {
            fleet
                .admit(spec(id, 8_000.0 + 500.0 * id as f64, engine))
                .unwrap();
        }
        fleet.advance_round(60.0).unwrap();
        fleet.state_hashes()
    };
    let one = run(1);
    assert_eq!(one, run(3));
    assert_eq!(one, run(64));
}

#[test]
fn single_job_fleet_matches_bare_controller_bitwise() {
    for engine in ENGINES {
        // The fleet path — retention ON, to prove the clamp keeps even an
        // actively evicting fleet on the bare controller's trajectory.
        let mut fleet = Fleet::new(FleetConfig {
            retention_secs: Some(120.0),
            ..Default::default()
        });
        fleet.admit(spec(42, 10_000.0, engine)).unwrap();
        let mut fleet_events = Vec::new();
        for _ in 0..3 {
            let outcomes = fleet.advance_round(60.0).unwrap();
            fleet_events.push(format!("{:?}", outcomes.first().unwrap().events));
        }

        // The bare reference: same sim, same config, same round chunking.
        let sim = Simulation::new(sim_config(10_000.0, 0xF1EE7 + 42, engine)).unwrap();
        let mut cluster = FlinkCluster::new(sim);
        cluster.submit(&[1, 1]).unwrap();
        let mut ctrl = MapeController::new(controller_config());
        let mut bare_events = Vec::new();
        for _ in 0..3 {
            let events = ctrl.run_loop(&mut cluster, 60.0).unwrap();
            bare_events.push(format!("{events:?}"));
        }

        assert_eq!(fleet_events, bare_events, "{engine:?}");
        let fleet_job = fleet.job(42).unwrap();
        assert_eq!(
            fleet_job.state_hash(),
            cluster.simulation().state_hash(),
            "{engine:?}"
        );
        assert_eq!(
            fleet_job.cluster().parallelism(),
            cluster.parallelism(),
            "{engine:?}"
        );
        // Retention actually ran (the fleet holds fewer points) yet the
        // trajectories above stayed bitwise equal.
        assert!(
            fleet.metrics().shard_points(42) < cluster.simulation().store().total_points(),
            "{engine:?}: retention should have evicted dead history"
        );
    }
}

#[test]
fn transfer_admission_seeds_from_nearest_donor() {
    let engine = EngineKind::default();
    let mut fleet = Fleet::new(FleetConfig::default());
    // Two donors at well-separated rates.
    fleet.admit(spec(1, 6_000.0, engine)).unwrap();
    fleet.admit(spec(2, 14_000.0, engine)).unwrap();
    fleet.advance_round(60.0).unwrap();
    assert_eq!(fleet.library().len(), 2);
    // A newcomer near donor 2's rate must inherit from donor 2 and its
    // first tuning must go through the transfer cascade.
    let admission = fleet.admit(spec(3, 13_500.0, engine)).unwrap();
    assert_eq!(admission, Admission::Transferred { donor: 2 });
    let outcomes = fleet.advance_round(60.0).unwrap();
    let newcomer = outcomes.iter().find(|o| o.id == 3).unwrap();
    assert!(
        newcomer
            .events
            .iter()
            .any(|e| matches!(e, ControllerEvent::Transferred(_))),
        "{:?}",
        newcomer.events
    );
}

#[test]
fn thousand_job_smoke_keeps_every_shard_bounded() {
    let engine = EngineKind::default();
    // Tune one donor to produce a checkpoint, then resume 1000 jobs from
    // it — the steady-state fleet the bench measures, where activations
    // are cheap NoAction loops.
    let mut donor = Fleet::new(FleetConfig::default());
    donor.admit(spec(0, 10_000.0, engine)).unwrap();
    donor.advance_round(60.0).unwrap();
    let tuned = donor.job(0).unwrap();
    let resume = ResumeState {
        rate: tuned.controller().current_rate().unwrap(),
        base: tuned.controller().base().unwrap().to_vec(),
        library: tuned.controller().library().clone(),
    };
    let parallelism = tuned.cluster().parallelism().to_vec();

    let mut fleet = Fleet::new(FleetConfig {
        retention_secs: Some(60.0),
        shard_count: 16,
        ..Default::default()
    });
    for id in 0..1_000u64 {
        let mut s = spec(id, 10_000.0, engine);
        s.initial_parallelism = parallelism.clone();
        s.resume = Some(resume.clone());
        assert_eq!(fleet.admit(s).unwrap(), Admission::Resumed);
    }
    assert_eq!(fleet.metrics().shard_count(), 1_000);

    // Warm up past the retention horizon, then measure two consecutive
    // rounds: with eviction active, per-shard footprints must stop
    // growing (bounded memory at fleet scale).
    fleet.advance_round(120.0).unwrap();
    fleet.advance_round(30.0).unwrap();
    let before: Vec<usize> = (0..1_000)
        .map(|id| fleet.metrics().shard_points(id))
        .collect();
    fleet.advance_round(30.0).unwrap();
    let after: Vec<usize> = (0..1_000)
        .map(|id| fleet.metrics().shard_points(id))
        .collect();
    for (id, (b, a)) in before.iter().zip(&after).enumerate() {
        assert!(a <= b, "job {id}: shard grew {b} -> {a} despite retention");
        assert!(*a > 0, "job {id}: retention evicted the live window");
    }
    // Absolute bound: the keep window is max(cap=60, policy windows=60)
    // plus one 30 s round in flight — far below unbounded growth (180 s
    // of history by now).
    let max_points = after.iter().max().copied().unwrap_or(0);
    let full_history = fleet
        .jobs()
        .iter()
        .map(|j| j.cluster().now())
        .fold(0.0f64, f64::max);
    assert!(
        max_points > 0 && full_history >= 180.0,
        "smoke preconditions: {max_points} points, {full_history} secs"
    );
}

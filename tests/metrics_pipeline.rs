//! Metrics-pipeline integration: values emitted by the simulator flow
//! through the time-series store and the flinkctl aggregator unchanged in
//! meaning — conservation laws and unit consistency across crate
//! boundaries.

use autrascale_flinkctl::FlinkCluster;
use autrascale_metricsdb::Query;
use autrascale_streamsim::{
    metrics, JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig,
};

fn cluster(rate: f64, seed: u64) -> FlinkCluster {
    let job = JobGraph::linear(vec![
        OperatorSpec::source("Source", 30_000.0),
        OperatorSpec::transform("Split", 20_000.0, 2.0),
        OperatorSpec::transform("Filter", 50_000.0, 0.5),
        OperatorSpec::sink("Sink", 40_000.0),
    ])
    .unwrap();
    let sim = Simulation::new(SimulationConfig {
        job,
        profile: RateProfile::constant(rate),
        seed,
        ..Default::default()
    })
    .unwrap();
    FlinkCluster::new(sim)
}

#[test]
fn flow_conservation_through_selectivities() {
    let mut fc = cluster(10_000.0, 1);
    fc.submit(&[1, 1, 1, 1]).unwrap();
    fc.run_for(180.0).expect("fixed positive duration");
    let m = fc.metrics_over(60.0).unwrap();

    let split = m.operator("Split").unwrap();
    let filter = m.operator("Filter").unwrap();
    let sink = m.operator("Sink").unwrap();

    // Split doubles, Filter halves: sink input ≈ source input.
    assert!(
        (split.output_rate - 2.0 * split.input_rate).abs() < 0.1 * split.input_rate,
        "split in {} out {}",
        split.input_rate,
        split.output_rate
    );
    assert!(
        (filter.output_rate - 0.5 * filter.input_rate).abs() < 0.1 * filter.input_rate,
        "filter in {} out {}",
        filter.input_rate,
        filter.output_rate
    );
    // Each operator's input is its predecessor's output.
    assert!(
        (filter.input_rate - split.output_rate).abs() < 0.05 * split.output_rate,
        "{} vs {}",
        filter.input_rate,
        split.output_rate
    );
    assert!((sink.input_rate - filter.output_rate).abs() < 0.05 * filter.output_rate.max(1.0));
    // End to end: sink rate ≈ producer rate (steady state, selectivity 1).
    assert!((m.sink_rate - m.producer_rate).abs() < 0.1 * m.producer_rate);
}

#[test]
fn aggregator_matches_raw_store_contents() {
    let mut fc = cluster(10_000.0, 2);
    fc.submit(&[1, 2, 1, 1]).unwrap();
    fc.run_for(120.0).expect("fixed positive duration");
    let m = fc.metrics_over(60.0).unwrap();
    let store = fc.simulation().store();
    let (from, to) = m.window;

    // Throughput aggregate equals the mean of the raw series.
    let raw: Vec<f64> = store
        .select(&Query::new(metrics::JOB_THROUGHPUT, from, to))
        .unwrap()
        .into_iter()
        .flat_map(|(_, pts)| pts)
        .map(|p| p.value)
        .collect();
    let mean = raw.iter().sum::<f64>() / raw.len() as f64;
    assert!((m.throughput - mean).abs() < 1e-9);

    // Per-operator totals equal subtask sums from the raw store.
    let split = m.operator("Split").unwrap();
    let mut sum = 0.0;
    for subtask in 0..2 {
        let key = metrics::instance_key(metrics::TRUE_PROCESSING_RATE, "Split", subtask);
        sum += store.window_mean(&key, from, to).unwrap().unwrap();
    }
    assert!((split.true_rate_total - sum).abs() < 1e-9);
}

#[test]
fn records_are_conserved_through_kafka() {
    let mut fc = cluster(8_000.0, 3);
    fc.submit(&[1, 1, 1, 1]).unwrap();
    fc.run_for(300.0).expect("fixed positive duration");
    let sim = fc.simulation();
    // produced = consumed + lag (within a tick of slack).
    let produced = 8_000.0 * sim.now();
    let lag = sim.kafka_lag();
    let m = fc.metrics_over(250.0).unwrap();
    let consumed_estimate = m.throughput * sim.now();
    assert!(
        (produced - (consumed_estimate + lag)).abs() < produced * 0.05,
        "produced {produced}, consumed≈{consumed_estimate}, lag {lag}"
    );
}

#[test]
fn true_rate_is_capability_not_flow() {
    // At 20% utilization the observed rate tracks the flow while the true
    // rate tracks the capability — the paper's core metric distinction.
    let mut fc = cluster(4_000.0, 4);
    fc.submit(&[1, 1, 1, 1]).unwrap();
    fc.run_for(180.0).expect("fixed positive duration");
    let m = fc.metrics_over(60.0).unwrap();
    let split = m.operator("Split").unwrap();
    // Observed ≈ 4k (the flow), true ≈ 20k (the capability).
    assert!(
        split.observed_rate_total < 6_000.0,
        "observed {}",
        split.observed_rate_total
    );
    assert!(
        split.true_rate_total > 15_000.0,
        "true {}",
        split.true_rate_total
    );
}

#[test]
fn event_time_latency_includes_pending() {
    // Under-provision so Kafka accumulates: event-time latency must
    // exceed processing latency by the pending time.
    let mut fc = cluster(25_000.0, 5);
    fc.submit(&[1, 1, 1, 1]).unwrap();
    fc.run_for(300.0).expect("fixed positive duration");
    let m = fc.metrics_over(60.0).unwrap();
    let event = m.event_time_latency_ms.expect("job is consuming");
    assert!(
        event > m.processing_latency_ms * 3.0,
        "event {event} vs processing {}",
        m.processing_latency_ms
    );
    assert!(m.kafka_lag > 100_000.0);
}

//! End-to-end integration: the full AuTraScale pipeline (throughput
//! optimization → bootstrap → Algorithm 1 → model library → Algorithm 2)
//! against the simulated cluster, spanning every crate in the workspace.

use autrascale::{
    Algorithm1, AuTraScaleConfig, ModelLibrary, ThroughputOptimizer, TransferLearner,
};
use autrascale_flinkctl::{FlinkCluster, JobControl, JobStatus};
use autrascale_streamsim::{JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig};

fn pipeline() -> JobGraph {
    JobGraph::linear(vec![
        OperatorSpec::source("Source", 30_000.0),
        OperatorSpec::transform("Map", 8_000.0, 1.0).with_sync_coeff(0.05),
        OperatorSpec::sink("Sink", 7_000.0)
            .with_sync_coeff(0.03)
            .with_comm_cost_ms(3.0),
    ])
    .unwrap()
}

fn cluster_at(rate: f64, seed: u64) -> FlinkCluster {
    let sim = Simulation::new(SimulationConfig {
        job: pipeline(),
        profile: RateProfile::constant(rate),
        seed,
        restart_downtime: 5.0,
        ..Default::default()
    })
    .unwrap();
    FlinkCluster::new(sim)
}

fn config() -> AuTraScaleConfig {
    AuTraScaleConfig {
        target_latency_ms: 150.0,
        policy_running_time: 120.0,
        bootstrap_m: 3,
        max_bo_iters: 15,
        n_num: 4,
        ..Default::default()
    }
}

#[test]
fn full_pipeline_meets_qos_from_cold_start() {
    let mut cluster = cluster_at(18_000.0, 1);
    let cfg = config();

    // Phase 1: throughput.
    let thr = ThroughputOptimizer::new(&cfg).run(&mut cluster).unwrap();
    assert!(thr.reached_input_rate, "{thr:?}");
    // Map needs ≥ 3 at 8k/instance for 18k; Sink ≥ 3 at 7k.
    assert!(thr.final_parallelism[1] >= 3, "{:?}", thr.final_parallelism);
    assert!(thr.final_parallelism[2] >= 3, "{:?}", thr.final_parallelism);

    // Phase 2: Algorithm 1 to the latency target.
    let alg1 = Algorithm1::new(
        &cfg,
        thr.final_parallelism.clone(),
        cluster.max_parallelism(),
    );
    let outcome = alg1.run(&mut cluster, Vec::new()).unwrap();
    assert!(outcome.meets_qos, "{outcome:?}");
    assert!(outcome.final_latency_ms <= cfg.target_latency_ms);
    assert!(alg1.space().contains(&outcome.final_parallelism));

    // The cluster is actually running the reported configuration.
    assert_eq!(cluster.status(), JobStatus::Running);
    assert_eq!(cluster.parallelism(), outcome.final_parallelism.as_slice());

    // Steady state after the controller walks away.
    cluster.run_for(300.0).expect("fixed positive duration");
    let metrics = cluster.metrics_over(100.0).unwrap();
    assert!(metrics.keeping_up(0.05), "{metrics:?}");
    assert!(metrics.processing_latency_ms <= cfg.target_latency_ms * 1.2);
}

#[test]
fn model_transfers_to_a_higher_rate() {
    let cfg = config();

    // Train at 12k.
    let mut cluster = cluster_at(12_000.0, 2);
    let thr = ThroughputOptimizer::new(&cfg).run(&mut cluster).unwrap();
    let alg1 = Algorithm1::new(
        &cfg,
        thr.final_parallelism.clone(),
        cluster.max_parallelism(),
    );
    let trained = alg1.run(&mut cluster, Vec::new()).unwrap();
    assert!(
        trained.dataset.len() >= 4,
        "enough samples to transfer from"
    );
    let mut library = ModelLibrary::new();
    library.insert(12_000.0, trained.dataset);

    // Transfer to 18k on a fresh deployment.
    let mut cluster = cluster_at(18_000.0, 3);
    cluster.submit(&thr.final_parallelism).unwrap();
    cluster.run_for(60.0).expect("fixed positive duration");
    let thr_new = ThroughputOptimizer::new(&cfg).run(&mut cluster).unwrap();
    let tl = TransferLearner::new(&cfg, thr_new.final_parallelism, cluster.max_parallelism());
    let prior = library.closest(18_000.0).unwrap().clone();
    let outcome = tl.run(&mut cluster, &prior, Vec::new()).unwrap();

    // Transfer must converge within its budget and leave a valid config.
    assert!(tl.algorithm1().space().contains(&outcome.final_parallelism));
    // Real iterations should be far fewer than a cold-start bootstrap +
    // BO run (the whole point of Algorithm 2).
    assert!(
        outcome.iterations <= cfg.n_num + cfg.max_bo_iters,
        "{}",
        outcome.iterations
    );
}

#[test]
fn controller_survives_a_rate_drop() {
    // Scale-down via the full controller: rate falls 18k → 9k.
    use autrascale::{ControllerEvent, MapeController};
    let sim = Simulation::new(SimulationConfig {
        job: pipeline(),
        profile: RateProfile::piecewise(vec![(0.0, 18_000.0), (4_000.0, 9_000.0)]),
        seed: 4,
        restart_downtime: 5.0,
        ..Default::default()
    })
    .unwrap();
    let mut cluster = FlinkCluster::new(sim);
    cluster.submit(&[1, 3, 3]).unwrap();
    cluster.run_for(60.0).expect("fixed positive duration");
    let mut controller = MapeController::new(config());
    let first = controller.activate(&mut cluster).unwrap();
    assert!(first
        .iter()
        .any(|e| matches!(e, ControllerEvent::SteadyRateOptimized(_))));
    let parallelism_at_18k: u32 = cluster.parallelism().iter().sum();

    // Move past the drop and reactivate.
    while cluster.now() < 4_100.0 {
        cluster.run_for(120.0).expect("fixed positive duration");
    }
    let events = controller.activate(&mut cluster).unwrap();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ControllerEvent::RateChangeDetected { .. })),
        "{events:?}"
    );
    assert_eq!(controller.library().len(), 2);

    // The job should end up leaner at the lower rate.
    let parallelism_at_9k: u32 = cluster.parallelism().iter().sum();
    assert!(
        parallelism_at_9k <= parallelism_at_18k,
        "{parallelism_at_9k} > {parallelism_at_18k}"
    );
}

#[test]
fn controller_recovers_from_operator_degradation() {
    // Failure injection: Map degrades to 40% capacity mid-run. The next
    // controller activation must detect the QoS violation and re-run
    // Algorithm 1, ending with a configuration that keeps up again.
    use autrascale::MapeController;

    let mut cluster = cluster_at(15_000.0, 9);
    cluster.submit(&[1, 2, 3]).unwrap();
    cluster.run_for(60.0).expect("fixed positive duration");
    let mut controller = MapeController::new(config());
    controller.activate(&mut cluster).unwrap();
    cluster.run_for(120.0).expect("fixed positive duration");
    let before = cluster.metrics_over(60.0).unwrap();
    assert!(before.keeping_up(0.05), "healthy baseline expected");

    // Degrade Map for a long stretch (the fault outlives the recovery).
    cluster
        .simulation_mut()
        .inject_slowdown(1, 0.4, 1_000_000.0)
        .unwrap();
    cluster.run_for(180.0).expect("fixed positive duration");
    let degraded = cluster.metrics_over(60.0).unwrap();
    assert!(
        !degraded.keeping_up(0.05) || degraded.processing_latency_ms > config().target_latency_ms,
        "fault should violate QoS: {degraded:?}"
    );

    // Recovery: the controller scales Map up against the degraded rate.
    let map_before: u32 = cluster.parallelism()[1];
    controller.activate(&mut cluster).unwrap();
    cluster.run_for(400.0).expect("fixed positive duration");
    let after = cluster.metrics_over(120.0).unwrap();
    assert!(
        after.keeping_up(0.05),
        "controller must restore throughput: {after:?}"
    );
    assert!(
        cluster.parallelism()[1] > map_before,
        "Map should have been scaled up: {:?}",
        cluster.parallelism()
    );
}

#[test]
fn throughput_optimizer_handles_branching_dags() {
    // Diamond: Source fans out to two branches whose outputs both feed a
    // join sink. The sink's target input is the SUM of both branches
    // (each successor receives the full upstream output), so Eq. 3 must
    // provision it for ~2× the source rate.
    let ops = vec![
        OperatorSpec::source("Source", 30_000.0),
        OperatorSpec::transform("Left", 12_000.0, 1.0).with_sync_coeff(0.02),
        OperatorSpec::transform("Right", 12_000.0, 1.0).with_sync_coeff(0.02),
        OperatorSpec::sink("Join", 9_000.0).with_sync_coeff(0.02),
    ];
    let job = JobGraph::new(ops, vec![(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
    let sim = Simulation::new(SimulationConfig {
        job,
        profile: RateProfile::constant(10_000.0),
        seed: 17,
        restart_downtime: 5.0,
        ..Default::default()
    })
    .unwrap();
    let mut cluster = FlinkCluster::new(sim);
    let outcome = ThroughputOptimizer::new(&config())
        .run(&mut cluster)
        .unwrap();
    assert!(outcome.reached_input_rate, "{outcome:?}");

    let join_index = cluster
        .simulation()
        .job()
        .index_of("Join")
        .expect("Join exists");
    // Join sees ~20k records/s at ~9k per instance ⇒ at least 3.
    assert!(
        outcome.final_parallelism[join_index] >= 3,
        "join under-provisioned: {:?}",
        outcome.final_parallelism
    );
    // Each branch sees ~10k at 12k per instance ⇒ 1 suffices.
    for name in ["Left", "Right"] {
        let i = cluster.simulation().job().index_of(name).unwrap();
        assert!(
            outcome.final_parallelism[i] <= 2,
            "{name} over-provisioned: {:?}",
            outcome.final_parallelism
        );
    }
}

#[test]
fn rate_aware_warm_start_kicks_in_after_two_models() {
    // §VII future work: with use_rate_aware_warm_start and ≥ 2 stored
    // models, a rate change is handled by the joint (k, rate) model
    // instead of Algorithm 2.
    use autrascale::{ControllerEvent, MapeController};
    let sim = Simulation::new(SimulationConfig {
        job: pipeline(),
        profile: RateProfile::piecewise(vec![
            (0.0, 10_000.0),
            (4_000.0, 16_000.0),
            (9_000.0, 13_000.0),
        ]),
        seed: 23,
        restart_downtime: 5.0,
        ..Default::default()
    })
    .unwrap();
    let mut cluster = FlinkCluster::new(sim);
    cluster.submit(&[1, 2, 2]).unwrap();
    cluster.run_for(60.0).expect("fixed positive duration");
    let cfg = AuTraScaleConfig {
        use_rate_aware_warm_start: true,
        ..config()
    };
    let mut controller = MapeController::new(cfg);

    // Model 1 at 10k (cold start), model 2 at 16k (Algorithm 2: only one
    // model exists so far, the joint model needs two).
    controller.activate(&mut cluster).unwrap();
    while cluster.now() < 4_100.0 {
        cluster.run_for(120.0).expect("fixed positive duration");
    }
    let second = controller.activate(&mut cluster).unwrap();
    assert!(
        second
            .iter()
            .any(|e| matches!(e, ControllerEvent::Transferred(_))),
        "second rate uses Algorithm 2: {second:?}"
    );
    assert_eq!(controller.library().len(), 2);

    // Third rate (13k, between the trained ones): the joint model takes
    // over and interpolates.
    while cluster.now() < 9_100.0 {
        cluster.run_for(120.0).expect("fixed positive duration");
    }
    let third = controller.activate(&mut cluster).unwrap();
    assert!(
        third
            .iter()
            .any(|e| matches!(e, ControllerEvent::RateAwareWarmStarted(_))),
        "third rate should use the joint model: {third:?}"
    );
    assert_eq!(controller.library().len(), 3);
}

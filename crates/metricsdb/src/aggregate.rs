//! Reducers over windows of data points.

use crate::series::DataPoint;

/// Errors from reducers with constrained parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateError {
    /// Percentile rank outside `[0, 100]` (or NaN).
    PercentileOutOfRange(f64),
    /// Downsampling bucket width that is not positive and finite.
    BadBucketWidth(f64),
    /// A NaN window bound or retention horizon. NaN compares false
    /// against every timestamp, so accepting it would silently produce
    /// an empty window (or a retention no-op) and hide the upstream bug
    /// that computed it.
    BadBound(f64),
}

impl std::fmt::Display for AggregateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateError::PercentileOutOfRange(q) => {
                write!(f, "percentile out of range: {q} (want 0..=100)")
            }
            AggregateError::BadBucketWidth(w) => {
                write!(f, "bucket width must be positive and finite, got {w}")
            }
            AggregateError::BadBound(b) => {
                write!(
                    f,
                    "window bound / retention horizon must not be NaN, got {b}"
                )
            }
        }
    }
}

impl std::error::Error for AggregateError {}

/// Arithmetic mean of the values; `None` for an empty window.
pub fn mean(points: &[DataPoint]) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    Some(points.iter().map(|p| p.value).sum::<f64>() / points.len() as f64)
}

/// Minimum value; `None` for an empty window.
pub fn min(points: &[DataPoint]) -> Option<f64> {
    points.iter().map(|p| p.value).min_by(f64::total_cmp)
}

/// Maximum value; `None` for an empty window.
pub fn max(points: &[DataPoint]) -> Option<f64> {
    points.iter().map(|p| p.value).max_by(f64::total_cmp)
}

/// Percentile in `[0, 100]` with linear interpolation between order
/// statistics (the "linear" / type-7 method used by numpy and Prometheus).
/// `Ok(None)` for an empty window;
/// [`AggregateError::PercentileOutOfRange`] for a rank outside `[0, 100]`.
pub fn percentile(points: &[DataPoint], q: f64) -> Result<Option<f64>, AggregateError> {
    if !(0.0..=100.0).contains(&q) {
        return Err(AggregateError::PercentileOutOfRange(q));
    }
    if points.is_empty() {
        return Ok(None);
    }
    let mut values: Vec<f64> = points.iter().map(|p| p.value).collect();
    values.sort_by(f64::total_cmp);
    let rank = q / 100.0 * (values.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let (Some(&vlo), Some(&vhi)) = (values.get(lo), values.get(hi)) else {
        // Unreachable: 0 ≤ rank ≤ len−1, so floor/ceil stay in bounds.
        return Ok(values.last().copied());
    };
    if lo == hi {
        Ok(Some(vlo))
    } else {
        let frac = rank - lo as f64;
        Ok(Some(vlo * (1.0 - frac) + vhi * frac))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(values: &[f64]) -> Vec<DataPoint> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| DataPoint {
                time: i as f64,
                value: v,
            })
            .collect()
    }

    #[test]
    fn empty_window_gives_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(percentile(&[], 50.0), Ok(None));
    }

    #[test]
    fn mean_min_max() {
        let p = pts(&[3.0, 1.0, 2.0]);
        assert_eq!(mean(&p), Some(2.0));
        assert_eq!(min(&p), Some(1.0));
        assert_eq!(max(&p), Some(3.0));
    }

    #[test]
    fn percentile_median_interpolates() {
        let p = pts(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(percentile(&p, 50.0), Ok(Some(2.5)));
        assert_eq!(percentile(&p, 0.0), Ok(Some(1.0)));
        assert_eq!(percentile(&p, 100.0), Ok(Some(4.0)));
    }

    #[test]
    fn percentile_unsorted_input() {
        let p = pts(&[9.0, 1.0, 5.0]);
        assert_eq!(percentile(&p, 50.0), Ok(Some(5.0)));
    }

    #[test]
    fn p99_of_uniform_ramp() {
        let values: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let p = pts(&values);
        assert_eq!(percentile(&p, 99.0), Ok(Some(99.0)));
    }

    #[test]
    fn percentile_rejects_bad_q_without_panicking() {
        // Regression for the R1 lint fix: out-of-range ranks used to abort
        // the process via assert!; they are now a typed error.
        assert_eq!(
            percentile(&pts(&[1.0]), 101.0),
            Err(AggregateError::PercentileOutOfRange(101.0))
        );
        assert_eq!(
            percentile(&pts(&[1.0]), -0.5),
            Err(AggregateError::PercentileOutOfRange(-0.5))
        );
        assert!(percentile(&pts(&[1.0]), f64::NAN).is_err());
    }
}

/// Average rate of change over the window: `(vₙ − v₀) / (tₙ − t₀)` per
/// second. `None` for fewer than two points or a zero-length window.
/// This is how trend metrics (e.g. Kafka lag growth) are derived.
pub fn derivative(points: &[DataPoint]) -> Option<f64> {
    let first = points.first()?;
    let last = points.last()?;
    let dt = last.time - first.time;
    if dt <= 0.0 {
        return None;
    }
    Some((last.value - first.value) / dt)
}

#[cfg(test)]
mod derivative_tests {
    use super::*;

    #[test]
    fn derivative_of_linear_ramp() {
        let points: Vec<DataPoint> = (0..10)
            .map(|i| DataPoint {
                time: i as f64,
                value: 3.0 * i as f64 + 1.0,
            })
            .collect();
        assert!((derivative(&points).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn derivative_needs_two_distinct_times() {
        assert_eq!(derivative(&[]), None);
        let single = [DataPoint {
            time: 1.0,
            value: 5.0,
        }];
        assert_eq!(derivative(&single), None);
        let same_t = [
            DataPoint {
                time: 1.0,
                value: 5.0,
            },
            DataPoint {
                time: 1.0,
                value: 9.0,
            },
        ];
        assert_eq!(derivative(&same_t), None);
    }

    #[test]
    fn derivative_sign_tracks_trend() {
        let falling = [
            DataPoint {
                time: 0.0,
                value: 10.0,
            },
            DataPoint {
                time: 5.0,
                value: 0.0,
            },
        ];
        assert!(derivative(&falling).unwrap() < 0.0);
    }
}

//! Per-job sharding over [`MetricStore`] for multi-tenant control planes.
//!
//! A fleet scheduler runs thousands of jobs, each emitting its own metric
//! series. One flat store would make every query scan (and every retention
//! pass lock) the union of all jobs' series; a [`ShardedMetricStore`] keys
//! one [`MetricStore`] per job id instead. Shards are `Arc`-shared so a
//! simulator that already owns its store can be *registered* (adopted)
//! rather than copied, and the map is a `BTreeMap` so shard iteration
//! order is deterministic regardless of registration order.
//!
//! Retention is the point: [`ShardedMetricStore::apply_retention`] evicts
//! one job's history without touching any other shard, which is what keeps
//! a 1k-job fleet's memory bounded (see the fleet determinism battery's
//! 1k-job smoke test).

use crate::aggregate::AggregateError;
use crate::store::MetricStore;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A deterministic map of job id → metric-store shard.
#[derive(Debug, Default)]
pub struct ShardedMetricStore {
    shards: RwLock<BTreeMap<u64, Arc<MetricStore>>>,
}

impl ShardedMetricStore {
    /// An empty sharded store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopts an existing store as the shard for `job_id`, replacing (and
    /// returning) the previous shard if one was registered.
    pub fn register(&self, job_id: u64, store: Arc<MetricStore>) -> Option<Arc<MetricStore>> {
        self.shards.write().insert(job_id, store)
    }

    /// The shard for `job_id`, if registered.
    pub fn shard(&self, job_id: u64) -> Option<Arc<MetricStore>> {
        self.shards.read().get(&job_id).cloned()
    }

    /// The shard for `job_id`, creating an empty one when absent.
    pub fn shard_or_create(&self, job_id: u64) -> Arc<MetricStore> {
        if let Some(existing) = self.shard(job_id) {
            return existing;
        }
        let mut guard = self.shards.write();
        Arc::clone(
            guard
                .entry(job_id)
                .or_insert_with(|| Arc::new(MetricStore::new())),
        )
    }

    /// Unregisters (and returns) the shard for `job_id` — a retired job's
    /// metrics drop with the last external `Arc`.
    pub fn remove(&self, job_id: u64) -> Option<Arc<MetricStore>> {
        self.shards.write().remove(&job_id)
    }

    /// Registered job ids, ascending.
    pub fn shard_ids(&self) -> Vec<u64> {
        self.shards.read().keys().copied().collect()
    }

    /// Number of registered shards.
    pub fn shard_count(&self) -> usize {
        self.shards.read().len()
    }

    /// `true` when no shard is registered.
    pub fn is_empty(&self) -> bool {
        self.shards.read().is_empty()
    }

    /// Total stored points across every shard.
    pub fn total_points(&self) -> usize {
        self.shards.read().values().map(|s| s.total_points()).sum()
    }

    /// Stored points in one shard; 0 when the shard is absent.
    pub fn shard_points(&self, job_id: u64) -> usize {
        self.shard(job_id).map_or(0, |s| s.total_points())
    }

    /// Drops points older than `horizon` from one shard, returning the
    /// number of points evicted (0 when the shard is absent). NaN horizons
    /// are rejected like [`MetricStore::apply_retention`].
    pub fn apply_retention(&self, job_id: u64, horizon: f64) -> Result<usize, AggregateError> {
        match self.shard(job_id) {
            Some(shard) => shard.apply_retention(horizon),
            None => Ok(0),
        }
    }

    /// Applies one retention horizon to every shard, returning the total
    /// points evicted. Fails atomically-before-side-effects on a NaN
    /// horizon (no shard is touched).
    pub fn apply_retention_all(&self, horizon: f64) -> Result<usize, AggregateError> {
        if horizon.is_nan() {
            return Err(AggregateError::BadBound(horizon));
        }
        let shards: Vec<Arc<MetricStore>> = self.shards.read().values().cloned().collect();
        let mut evicted = 0;
        for shard in shards {
            evicted += shard.apply_retention(horizon)?;
        }
        Ok(evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SeriesKey;

    fn filled(points: usize) -> Arc<MetricStore> {
        let store = Arc::new(MetricStore::new());
        let key = SeriesKey::new("m");
        for i in 0..points {
            store.append(&key, i as f64, 1.0).unwrap();
        }
        store
    }

    #[test]
    fn register_and_lookup_roundtrip() {
        let sharded = ShardedMetricStore::new();
        assert!(sharded.is_empty());
        assert!(sharded.shard(7).is_none());
        assert!(sharded.register(7, filled(3)).is_none());
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.shard(7).unwrap().total_points(), 3);
        // Re-registering replaces and hands back the old shard.
        let old = sharded.register(7, filled(5)).unwrap();
        assert_eq!(old.total_points(), 3);
        assert_eq!(sharded.shard_points(7), 5);
    }

    #[test]
    fn shard_or_create_is_idempotent() {
        let sharded = ShardedMetricStore::new();
        let a = sharded.shard_or_create(1);
        a.append(&SeriesKey::new("m"), 0.0, 1.0).unwrap();
        let b = sharded.shard_or_create(1);
        assert_eq!(b.total_points(), 1);
        assert_eq!(sharded.shard_count(), 1);
    }

    #[test]
    fn shard_ids_are_sorted_regardless_of_registration_order() {
        let sharded = ShardedMetricStore::new();
        for id in [9, 2, 5, 1] {
            sharded.register(id, filled(1));
        }
        assert_eq!(sharded.shard_ids(), vec![1, 2, 5, 9]);
    }

    #[test]
    fn retention_is_per_shard() {
        let sharded = ShardedMetricStore::new();
        sharded.register(1, filled(10));
        sharded.register(2, filled(10));
        assert_eq!(sharded.apply_retention(1, 5.0), Ok(5));
        assert_eq!(sharded.shard_points(1), 5);
        assert_eq!(sharded.shard_points(2), 10);
        assert_eq!(sharded.apply_retention(99, 5.0), Ok(0));
        assert_eq!(sharded.apply_retention_all(8.0), Ok(3 + 8));
        assert_eq!(sharded.total_points(), 2 + 2);
    }

    #[test]
    fn nan_horizon_is_rejected_before_any_eviction() {
        let sharded = ShardedMetricStore::new();
        sharded.register(1, filled(4));
        assert!(matches!(
            sharded.apply_retention(1, f64::NAN),
            Err(AggregateError::BadBound(_))
        ));
        assert!(matches!(
            sharded.apply_retention_all(f64::NAN),
            Err(AggregateError::BadBound(_))
        ));
        assert_eq!(sharded.total_points(), 4);
    }

    #[test]
    fn remove_drops_the_shard() {
        let sharded = ShardedMetricStore::new();
        sharded.register(3, filled(2));
        assert_eq!(sharded.remove(3).unwrap().total_points(), 2);
        assert!(sharded.remove(3).is_none());
        assert_eq!(sharded.total_points(), 0);
    }
}

//! A single time-ordered series of (timestamp, value) points.

use crate::aggregate::AggregateError;
use serde::{Deserialize, Serialize};

/// One observation in a series. Timestamps are simulation seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Simulation time in seconds.
    pub time: f64,
    /// Observed value.
    pub value: f64,
}

/// A time-ordered vector of points. Appends must be monotone in time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Series {
    points: Vec<DataPoint>,
}

impl Series {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point; returns `false` (and drops the point) if its
    /// timestamp is non-finite, its value is non-finite, or its timestamp
    /// is older than the last one.
    ///
    /// Rejecting NaN/∞ timestamps here protects the sortedness invariant
    /// that [`Series::window`] and [`Series::retain_from`] binary-search
    /// on — a NaN compares false against everything, so it would slip
    /// past the monotonicity check and corrupt every later query.
    /// Rejecting NaN/∞ *values* protects every reducer downstream: one
    /// NaN poisons `mean`, sorts last under `total_cmp` so `p100` returns
    /// NaN, and corrupts any forecaster fit on the series.
    pub fn push(&mut self, time: f64, value: f64) -> bool {
        if !time.is_finite() || !value.is_finite() {
            return false;
        }
        if let Some(last) = self.points.last() {
            if time < last.time {
                return false;
            }
        }
        self.points.push(DataPoint { time, value });
        true
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points.
    pub fn points(&self) -> &[DataPoint] {
        &self.points
    }

    /// The most recent point.
    pub fn last(&self) -> Option<DataPoint> {
        self.points.last().copied()
    }

    /// Values with `from <= t <= to`, using binary search on the sorted
    /// timestamps.
    ///
    /// A NaN bound is a typed [`AggregateError::BadBound`] — a NaN
    /// compares false against everything, so treating it as "empty
    /// window" would silently hide an upstream arithmetic bug. Infinite
    /// bounds stay meaningful and saturate: `from = -∞` starts at the
    /// first point, `to = +∞` ends at the last. An inverted finite range
    /// (`from > to`) is an empty window, not an error.
    pub fn window(&self, from: f64, to: f64) -> Result<&[DataPoint], AggregateError> {
        if from.is_nan() {
            return Err(AggregateError::BadBound(from));
        }
        if to.is_nan() {
            return Err(AggregateError::BadBound(to));
        }
        if from > to || self.points.is_empty() {
            return Ok(&[]);
        }
        let start = self.points.partition_point(|p| p.time < from);
        let end = self.points.partition_point(|p| p.time <= to);
        // start <= end because from <= to here; get() keeps this total.
        Ok(self.points.get(start..end).unwrap_or(&[]))
    }

    /// Drops every point strictly older than `horizon` (retention).
    /// Returns the number of points removed.
    ///
    /// A NaN horizon is a typed [`AggregateError::BadBound`]: a
    /// miscomputed retention horizon must not silently stop eviction
    /// (NaN partitions before every point, so the old behavior was a
    /// permanent no-op). `+∞` drops everything; `-∞` keeps everything.
    pub fn retain_from(&mut self, horizon: f64) -> Result<usize, AggregateError> {
        if horizon.is_nan() {
            return Err(AggregateError::BadBound(horizon));
        }
        let cut = self.points.partition_point(|p| p.time < horizon);
        self.points.drain(..cut);
        Ok(cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_monotone_only() {
        let mut s = Series::new();
        assert!(s.push(1.0, 10.0));
        assert!(s.push(1.0, 11.0)); // equal timestamps allowed
        assert!(s.push(2.0, 12.0));
        assert!(!s.push(0.5, 13.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn window_bounds_are_inclusive() {
        let mut s = Series::new();
        for i in 0..10 {
            s.push(i as f64, i as f64);
        }
        let w = s.window(2.0, 5.0).unwrap();
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].time, 2.0);
        assert_eq!(w[3].time, 5.0);
    }

    #[test]
    fn window_empty_cases() {
        let s = Series::new();
        assert!(s.window(0.0, 1.0).unwrap().is_empty());
        let mut s = Series::new();
        s.push(5.0, 1.0);
        assert!(s.window(6.0, 7.0).unwrap().is_empty());
        assert!(s.window(3.0, 2.0).unwrap().is_empty());
    }

    #[test]
    fn retention_drops_old_points() {
        let mut s = Series::new();
        for i in 0..10 {
            s.push(i as f64, 0.0);
        }
        assert_eq!(s.retain_from(4.0), Ok(4));
        assert_eq!(s.len(), 6);
        assert_eq!(s.points()[0].time, 4.0);
    }

    #[test]
    fn non_finite_timestamps_rejected() {
        let mut s = Series::new();
        assert!(s.push(1.0, 10.0));
        assert!(!s.push(f64::NAN, 11.0));
        assert!(!s.push(f64::INFINITY, 12.0));
        assert!(!s.push(f64::NEG_INFINITY, 13.0));
        assert_eq!(s.len(), 1);
        // The series stays queryable: a NaN timestamp would have poisoned
        // the partition_point binary searches behind window/retain_from.
        assert!(s.push(2.0, 14.0));
        assert_eq!(s.window(0.0, 3.0).unwrap().len(), 2);
    }

    #[test]
    fn non_finite_values_rejected() {
        let mut s = Series::new();
        assert!(s.push(1.0, 10.0));
        assert!(!s.push(2.0, f64::NAN));
        assert!(!s.push(2.0, f64::INFINITY));
        assert!(!s.push(2.0, f64::NEG_INFINITY));
        assert!(s.push(2.0, 12.0));
        assert_eq!(s.len(), 2);
        // Rejected points must not advance the monotonicity cursor: a
        // point at the same timestamp still lands after a rejected one.
        assert!(s.push(2.0, 13.0));
        assert_eq!(s.len(), 3);
    }

    /// Regression: before the fix, one NaN value slipped into the series
    /// and poisoned every aggregate (`p100` returns NaN because NaN sorts
    /// last under `total_cmp`, `mean` propagates it, `downsample` averages
    /// it into its bucket).
    #[test]
    fn aggregates_stay_finite_after_attempted_non_finite_push() {
        use crate::aggregate;
        let mut s = Series::new();
        for i in 0..8 {
            s.push(i as f64, 1.0 + i as f64);
        }
        s.push(8.0, f64::NAN);
        s.push(8.0, f64::INFINITY);
        s.push(9.0, 9.0);

        let w = s.window(0.0, 100.0).unwrap();
        let p100 = aggregate::percentile(w, 100.0).unwrap().unwrap();
        assert!(p100.is_finite(), "p100 poisoned: {p100}");
        assert_eq!(p100, 9.0);
        let m = aggregate::mean(w).unwrap();
        assert!(m.is_finite(), "mean poisoned: {m}");
        for p in s.downsample(4.0).unwrap() {
            assert!(p.value.is_finite(), "downsample poisoned at {}", p.time);
        }
    }

    #[test]
    fn nan_window_bounds_are_typed_errors() {
        let mut s = Series::new();
        s.push(1.0, 1.0);
        assert!(matches!(
            s.window(f64::NAN, 2.0),
            Err(AggregateError::BadBound(_))
        ));
        assert!(matches!(
            s.window(0.0, f64::NAN),
            Err(AggregateError::BadBound(_))
        ));
        assert!(matches!(
            s.retain_from(f64::NAN),
            Err(AggregateError::BadBound(_))
        ));
        // The error must not mutate: eviction did not silently run.
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn infinite_bounds_saturate() {
        let mut s = Series::new();
        for i in 0..4 {
            s.push(i as f64, i as f64);
        }
        assert_eq!(s.window(f64::NEG_INFINITY, f64::INFINITY).unwrap().len(), 4);
        assert_eq!(s.window(f64::NEG_INFINITY, 1.0).unwrap().len(), 2);
        let mut keep = s.clone();
        assert_eq!(keep.retain_from(f64::NEG_INFINITY), Ok(0));
        assert_eq!(keep.len(), 4);
        let mut drop_all = s;
        assert_eq!(drop_all.retain_from(f64::INFINITY), Ok(4));
        assert!(drop_all.is_empty());
    }

    #[test]
    fn last_returns_newest() {
        let mut s = Series::new();
        s.push(1.0, 5.0);
        s.push(2.0, 7.0);
        assert_eq!(s.last().unwrap().value, 7.0);
    }
}

impl Series {
    /// Downsamples into fixed `bucket_secs` buckets, one mean point per
    /// non-empty bucket (timestamped at the bucket start). Used for
    /// plotting and long-horizon summaries. A bucket width that is not
    /// positive and finite is a typed error, not a panic.
    pub fn downsample(&self, bucket_secs: f64) -> Result<Vec<DataPoint>, AggregateError> {
        if !bucket_secs.is_finite() || bucket_secs <= 0.0 {
            return Err(AggregateError::BadBucketWidth(bucket_secs));
        }
        let mut out: Vec<DataPoint> = Vec::new();
        // (bucket start, running sum, point count) of the open bucket. The
        // Option replaces a NEG_INFINITY sentinel so no float equality is
        // needed to detect "no bucket yet"; bucket starts from the same
        // floor() computation are bit-identical, so to_bits comparison is
        // exact by construction.
        let mut open: Option<(f64, f64, usize)> = None;
        for p in self.points() {
            let start = (p.time / bucket_secs).floor() * bucket_secs;
            match open.as_mut() {
                Some((bs, sum, count)) if bs.to_bits() == start.to_bits() => {
                    *sum += p.value;
                    *count += 1;
                }
                _ => {
                    if let Some((bs, sum, count)) = open.take() {
                        out.push(DataPoint {
                            time: bs,
                            value: sum / count as f64,
                        });
                    }
                    open = Some((start, p.value, 1));
                }
            }
        }
        if let Some((bs, sum, count)) = open {
            out.push(DataPoint {
                time: bs,
                value: sum / count as f64,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod downsample_tests {
    use super::*;

    #[test]
    fn downsample_means_per_bucket() {
        let mut s = Series::new();
        for i in 0..10 {
            s.push(i as f64, i as f64); // values 0..9 at t 0..9
        }
        let d = s.downsample(5.0).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].time, 0.0);
        assert!((d[0].value - 2.0).abs() < 1e-12); // mean of 0..=4
        assert_eq!(d[1].time, 5.0);
        assert!((d[1].value - 7.0).abs() < 1e-12); // mean of 5..=9
    }

    #[test]
    fn downsample_skips_empty_buckets() {
        let mut s = Series::new();
        s.push(0.0, 1.0);
        s.push(100.0, 3.0);
        let d = s.downsample(10.0).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[1].time, 100.0);
    }

    #[test]
    fn downsample_empty_series() {
        assert!(Series::new().downsample(1.0).unwrap().is_empty());
    }

    #[test]
    fn downsample_rejects_bad_buckets_without_panicking() {
        // Regression for the R1 lint fix: a non-positive bucket used to
        // abort via assert!; it is now a typed error.
        let s = Series::new();
        assert_eq!(s.downsample(0.0), Err(AggregateError::BadBucketWidth(0.0)));
        assert_eq!(
            s.downsample(-1.0),
            Err(AggregateError::BadBucketWidth(-1.0))
        );
        assert!(s.downsample(f64::NAN).is_err());
        assert!(s.downsample(f64::INFINITY).is_err());
    }
}

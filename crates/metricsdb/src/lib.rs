//! An in-memory tagged time-series store — the InfluxDB/Prometheus stand-in.
//!
//! The paper's Monitor module stores Flink and Kafka metrics in a
//! third-party time-series database and the Analyze module reads windowed
//! aggregates back (§IV). The controller only ever consumes *aggregates
//! over recent windows*, so this crate provides exactly that surface:
//!
//! * [`MetricStore`] — a concurrent map of tagged series
//!   (`name{tag=value,…} → [(t, v)]`);
//! * [`Query`] — time-window selection with tag filters;
//! * [`aggregate`] — mean / min / max / last / percentile reducers.
//!
//! Writes are monotone in time per series (simulation time only moves
//! forward); out-of-order writes are rejected rather than silently
//! reordered, which catches simulator bugs early.
//!
//! # Example
//!
//! ```
//! use autrascale_metricsdb::{MetricStore, SeriesKey};
//!
//! let store = MetricStore::new();
//! let key = SeriesKey::new("task_true_processing_rate")
//!     .tag("operator", "FlatMap")
//!     .tag("subtask", "0");
//! store.append(&key, 1.0, 52_000.0).unwrap();
//! store.append(&key, 2.0, 54_000.0).unwrap();
//! let mean = store.window_mean(&key, 0.0, 10.0).unwrap().unwrap();
//! assert!((mean - 53_000.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod aggregate;
mod series;
mod shard;
mod store;

pub use aggregate::{derivative, max, mean, min, percentile, AggregateError};
pub use series::{DataPoint, Series};
pub use shard::ShardedMetricStore;
pub use store::{AppendError, MetricStore, Query, SeriesKey};

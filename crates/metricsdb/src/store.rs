//! The concurrent tagged-series store.

use crate::aggregate;
use crate::series::{DataPoint, Series};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one series: a metric name plus sorted tags, e.g.
/// `task_true_processing_rate{operator="FlatMap",subtask="0"}`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeriesKey {
    name: String,
    tags: BTreeMap<String, String>,
}

impl SeriesKey {
    /// A key with no tags.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tags: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a tag, builder-style.
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tags.insert(key.into(), value.into());
        self
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tag value lookup.
    pub fn tag_value(&self, key: &str) -> Option<&str> {
        self.tags.get(key).map(String::as_str)
    }

    /// `true` iff this key has every tag in `filter` with equal values.
    pub fn matches_tags(&self, filter: &BTreeMap<String, String>) -> bool {
        filter.iter().all(|(k, v)| self.tags.get(k) == Some(v))
    }
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.tags.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.tags.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}=\"{v}\"")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A window query over one metric name with optional tag filters.
#[derive(Debug, Clone)]
pub struct Query {
    name: String,
    tags: BTreeMap<String, String>,
    from: f64,
    to: f64,
}

impl Query {
    /// Query over `[from, to]` for metric `name`.
    pub fn new(name: impl Into<String>, from: f64, to: f64) -> Self {
        Self {
            name: name.into(),
            tags: BTreeMap::new(),
            from,
            to,
        }
    }

    /// Restricts to series carrying this tag value.
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tags.insert(key.into(), value.into());
        self
    }
}

/// Errors when appending to the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendError {
    /// The point's timestamp precedes the series' newest point.
    OutOfOrder,
    /// The value was NaN or infinite.
    NonFiniteValue,
}

impl fmt::Display for AppendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppendError::OutOfOrder => write!(f, "out-of-order timestamp"),
            AppendError::NonFiniteValue => write!(f, "non-finite value"),
        }
    }
}

impl std::error::Error for AppendError {}

/// The store: a lock-protected map of series. Metric emission happens on
/// the simulator thread while experiment harnesses read concurrently, so
/// interior mutability with a `parking_lot::RwLock` keeps the API `&self`.
#[derive(Debug, Default)]
pub struct MetricStore {
    series: RwLock<BTreeMap<SeriesKey, Series>>,
}

impl MetricStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one observation.
    pub fn append(&self, key: &SeriesKey, time: f64, value: f64) -> Result<(), AppendError> {
        if !value.is_finite() {
            return Err(AppendError::NonFiniteValue);
        }
        let mut guard = self.series.write();
        let series = guard.entry(key.clone()).or_default();
        if series.push(time, value) {
            Ok(())
        } else {
            Err(AppendError::OutOfOrder)
        }
    }

    /// Appends many observations to one series under a single lock
    /// acquisition and key lookup. Non-finite values are skipped and
    /// out-of-order points rejected per point, matching a loop of
    /// [`append`](Self::append) calls that ignores errors. Returns the
    /// number of points actually stored.
    pub fn append_batch(&self, key: &SeriesKey, points: &[(f64, f64)]) -> usize {
        if points.is_empty() {
            return 0;
        }
        let mut guard = self.series.write();
        let series = guard.entry(key.clone()).or_default();
        points
            .iter()
            .filter(|&&(time, value)| value.is_finite() && series.push(time, value))
            .count()
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.read().len()
    }

    /// Total stored points across every series — the store's memory
    /// footprint in data points. Fleet schedulers use this to assert that
    /// per-job retention keeps each shard bounded.
    pub fn total_points(&self) -> usize {
        self.series.read().values().map(Series::len).sum()
    }

    /// All keys for a metric name.
    pub fn keys_for(&self, name: &str) -> Vec<SeriesKey> {
        self.series
            .read()
            .keys()
            .filter(|k| k.name() == name)
            .cloned()
            .collect()
    }

    /// Runs a query, returning each matching series' window. A NaN query
    /// bound is a typed [`aggregate::AggregateError::BadBound`]; infinite
    /// bounds saturate (see [`Series::window`]).
    pub fn select(
        &self,
        query: &Query,
    ) -> Result<Vec<(SeriesKey, Vec<DataPoint>)>, aggregate::AggregateError> {
        validate_bounds(query.from, query.to)?;
        Ok(self
            .series
            .read()
            .iter()
            .filter(|(k, _)| k.name() == query.name && k.matches_tags(&query.tags))
            .map(|(k, s)| {
                // Bounds were validated above, so window cannot fail.
                let pts = s.window(query.from, query.to).unwrap_or_default();
                (k.clone(), pts.to_vec())
            })
            .collect())
    }

    /// Latest point of one exact series.
    pub fn last(&self, key: &SeriesKey) -> Option<DataPoint> {
        self.series.read().get(key).and_then(Series::last)
    }

    /// Mean of one exact series over a window; `Ok(None)` when the series
    /// is missing or the window empty, `Err` for a NaN bound.
    pub fn window_mean(
        &self,
        key: &SeriesKey,
        from: f64,
        to: f64,
    ) -> Result<Option<f64>, aggregate::AggregateError> {
        validate_bounds(from, to)?;
        let guard = self.series.read();
        Ok(guard
            .get(key)
            .and_then(|s| aggregate::mean(s.window(from, to).unwrap_or_default())))
    }

    /// Percentile of one exact series over a window; `Ok(None)` when the
    /// series is missing or the window empty, `Err` for a rank outside
    /// `[0, 100]` or a NaN bound.
    pub fn window_percentile(
        &self,
        key: &SeriesKey,
        from: f64,
        to: f64,
        q: f64,
    ) -> Result<Option<f64>, aggregate::AggregateError> {
        validate_bounds(from, to)?;
        let guard = self.series.read();
        match guard.get(key) {
            Some(s) => aggregate::percentile(s.window(from, to).unwrap_or_default(), q),
            None => aggregate::percentile(&[], q),
        }
    }

    /// Per-series window means for every series of a metric matching the
    /// query tags. Used by the Metric Aggregator to e.g. sum the true rate
    /// across the subtasks of an operator.
    pub fn grouped_window_mean(
        &self,
        query: &Query,
    ) -> Result<Vec<(SeriesKey, f64)>, aggregate::AggregateError> {
        Ok(self
            .select(query)?
            .into_iter()
            .filter_map(|(k, pts)| aggregate::mean(&pts).map(|m| (k, m)))
            .collect())
    }

    /// Drops points older than `horizon` from every series, returning the
    /// total number of points removed. A NaN horizon is a typed error —
    /// before this contract it silently stopped eviction for every series
    /// (NaN partitions before every point). `+∞` drops everything.
    pub fn apply_retention(&self, horizon: f64) -> Result<usize, aggregate::AggregateError> {
        if horizon.is_nan() {
            return Err(aggregate::AggregateError::BadBound(horizon));
        }
        Ok(self
            .series
            .write()
            .values_mut()
            .map(|s| s.retain_from(horizon).unwrap_or(0))
            .sum())
    }

    /// Removes all series (a new job run starts with a clean slate).
    pub fn clear(&self) {
        self.series.write().clear();
    }
}

/// Rejects NaN window bounds before any per-series work, so query methods
/// fail atomically instead of partially evaluating.
fn validate_bounds(from: f64, to: f64) -> Result<(), aggregate::AggregateError> {
    if from.is_nan() {
        return Err(aggregate::AggregateError::BadBound(from));
    }
    if to.is_nan() {
        return Err(aggregate::AggregateError::BadBound(to));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_like_prometheus() {
        let k = SeriesKey::new("rate").tag("op", "Map").tag("subtask", "1");
        assert_eq!(k.to_string(), "rate{op=\"Map\",subtask=\"1\"}");
        assert_eq!(SeriesKey::new("up").to_string(), "up");
    }

    #[test]
    fn append_and_query_roundtrip() {
        let store = MetricStore::new();
        let k = SeriesKey::new("latency").tag("job", "wc");
        store.append(&k, 1.0, 100.0).unwrap();
        store.append(&k, 2.0, 200.0).unwrap();
        let results = store.select(&Query::new("latency", 0.0, 10.0)).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1.len(), 2);
    }

    #[test]
    fn rejects_out_of_order_and_nonfinite() {
        let store = MetricStore::new();
        let k = SeriesKey::new("m");
        store.append(&k, 5.0, 1.0).unwrap();
        assert_eq!(store.append(&k, 4.0, 1.0), Err(AppendError::OutOfOrder));
        assert_eq!(
            store.append(&k, 6.0, f64::NAN),
            Err(AppendError::NonFiniteValue)
        );
    }

    #[test]
    fn tag_filter_selects_subset() {
        let store = MetricStore::new();
        for sub in 0..3 {
            let k = SeriesKey::new("rate")
                .tag("op", "Map")
                .tag("subtask", sub.to_string());
            store.append(&k, 1.0, sub as f64).unwrap();
        }
        let k2 = SeriesKey::new("rate").tag("op", "Sink").tag("subtask", "0");
        store.append(&k2, 1.0, 99.0).unwrap();

        let only_map = store
            .select(&Query::new("rate", 0.0, 2.0).tag("op", "Map"))
            .unwrap();
        assert_eq!(only_map.len(), 3);
        let all = store.select(&Query::new("rate", 0.0, 2.0)).unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn grouped_window_mean_per_series() {
        let store = MetricStore::new();
        for sub in 0..2 {
            let k = SeriesKey::new("rate").tag("subtask", sub.to_string());
            store.append(&k, 1.0, 10.0 * (sub + 1) as f64).unwrap();
            store.append(&k, 2.0, 20.0 * (sub + 1) as f64).unwrap();
        }
        let means = store
            .grouped_window_mean(&Query::new("rate", 0.0, 3.0))
            .unwrap();
        assert_eq!(means.len(), 2);
        let total: f64 = means.iter().map(|(_, m)| m).sum();
        assert!((total - (15.0 + 30.0)).abs() < 1e-12);
    }

    #[test]
    fn append_batch_matches_append_loop() {
        let batched = MetricStore::new();
        let looped = MetricStore::new();
        let k = SeriesKey::new("rate").tag("op", "Map");
        let points = [(1.0, 10.0), (2.0, f64::NAN), (3.0, 30.0), (2.5, 99.0)];

        let stored = batched.append_batch(&k, &points);
        for &(t, v) in &points {
            let _ = looped.append(&k, t, v);
        }

        // NaN skipped, out-of-order (2.5 after 3.0) rejected.
        assert_eq!(stored, 2);
        let a = batched.select(&Query::new("rate", 0.0, 10.0)).unwrap();
        let b = looped.select(&Query::new("rate", 0.0, 10.0)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0].1.len(), 2);
    }

    #[test]
    fn append_batch_empty_is_noop() {
        let store = MetricStore::new();
        assert_eq!(store.append_batch(&SeriesKey::new("m"), &[]), 0);
        assert_eq!(store.series_count(), 0);
    }

    #[test]
    fn retention_and_clear() {
        let store = MetricStore::new();
        let k = SeriesKey::new("m");
        for i in 0..10 {
            store.append(&k, i as f64, 0.0).unwrap();
        }
        assert_eq!(store.apply_retention(5.0), Ok(5));
        store.clear();
        assert_eq!(store.series_count(), 0);
    }

    #[test]
    fn nan_bounds_are_typed_errors() {
        use crate::aggregate::AggregateError;
        let store = MetricStore::new();
        let k = SeriesKey::new("m");
        store.append(&k, 1.0, 1.0).unwrap();
        assert!(matches!(
            store.select(&Query::new("m", f64::NAN, 2.0)),
            Err(AggregateError::BadBound(_))
        ));
        assert!(matches!(
            store.window_mean(&k, 0.0, f64::NAN),
            Err(AggregateError::BadBound(_))
        ));
        assert!(matches!(
            store.window_percentile(&k, f64::NAN, 1.0, 50.0),
            Err(AggregateError::BadBound(_))
        ));
        assert!(matches!(
            store.grouped_window_mean(&Query::new("m", f64::NAN, 1.0)),
            Err(AggregateError::BadBound(_))
        ));
        // Regression: a NaN horizon used to be a silent retention no-op;
        // it must now surface and leave the series untouched.
        assert!(matches!(
            store.apply_retention(f64::NAN),
            Err(AggregateError::BadBound(_))
        ));
        let all = store.select(&Query::new("m", 0.0, 10.0)).unwrap();
        assert_eq!(all[0].1.len(), 1);
    }

    #[test]
    fn infinite_retention_horizon_drops_everything() {
        let store = MetricStore::new();
        let k = SeriesKey::new("m");
        for i in 0..5 {
            store.append(&k, i as f64, 0.0).unwrap();
        }
        assert_eq!(store.apply_retention(f64::INFINITY), Ok(5));
        assert_eq!(store.apply_retention(f64::NEG_INFINITY), Ok(0));
    }

    #[test]
    fn concurrent_writers_do_not_lose_points() {
        use std::sync::Arc;
        let store = Arc::new(MetricStore::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let k = SeriesKey::new("m").tag("writer", t.to_string());
                    for i in 0..1000 {
                        store.append(&k, i as f64, i as f64).unwrap();
                    }
                });
            }
        });
        let results = store.select(&Query::new("m", 0.0, 1e9)).unwrap();
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|(_, pts)| pts.len() == 1000));
    }
}

//! Property-based tests for the aggregate reducers: percentile order
//! statistics and downsampling invariants on randomly generated series,
//! including negative timestamps (simulation warm-up offsets) — the
//! regime where `(t / bucket).floor()` bucket assignment is easiest to
//! get wrong.

use autrascale_metricsdb::{aggregate, DataPoint, Series};
use proptest::prelude::*;

/// Strategy: 1–64 finite values in a range wide enough to exercise
/// interpolation without overflowing intermediate sums.
fn values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6f64..1.0e6, 1..64)
}

fn pts(values: &[f64]) -> Vec<DataPoint> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| DataPoint {
            time: i as f64,
            value: v,
        })
        .collect()
}

/// Strategy: a series with a (possibly negative) start time and jittered
/// positive spacing, plus a bucket width.
fn series_and_bucket() -> impl Strategy<Value = (Series, f64)> {
    (
        -1.0e4f64..1.0e4,
        proptest::collection::vec((0.01f64..30.0, -1.0e6f64..1.0e6), 1..64),
        0.1f64..100.0,
    )
        .prop_map(|(start, steps, bucket)| {
            let mut s = Series::new();
            let mut t = start;
            for (dt, v) in steps {
                t += dt;
                assert!(s.push(t, v), "finite monotone pushes are accepted");
            }
            (s, bucket)
        })
}

proptest! {
    #[test]
    fn percentile_is_monotone_in_q(vals in values(), qa in 0.0f64..100.0, qb in 0.0f64..100.0) {
        let points = pts(&vals);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let plo = aggregate::percentile(&points, lo).unwrap().unwrap();
        let phi = aggregate::percentile(&points, hi).unwrap().unwrap();
        prop_assert!(plo <= phi, "p{lo} = {plo} > p{hi} = {phi}");
    }

    #[test]
    fn percentile_endpoints_are_min_and_max(vals in values()) {
        let points = pts(&vals);
        let min = aggregate::min(&points).unwrap();
        let max = aggregate::max(&points).unwrap();
        prop_assert_eq!(aggregate::percentile(&points, 0.0).unwrap().unwrap(), min);
        prop_assert_eq!(aggregate::percentile(&points, 100.0).unwrap().unwrap(), max);
    }

    #[test]
    fn percentile_interpolation_is_bounded_by_neighbors(vals in values(), q in 0.0f64..100.0) {
        // The type-7 interpolated value must lie between the two sorted
        // order statistics it interpolates (and hence within [min, max]).
        let points = pts(&vals);
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = q / 100.0 * (sorted.len() - 1) as f64;
        let vlo = sorted[rank.floor() as usize];
        let vhi = sorted[rank.ceil() as usize];
        let p = aggregate::percentile(&points, q).unwrap().unwrap();
        prop_assert!(vlo <= p && p <= vhi, "p{q} = {p} outside [{vlo}, {vhi}]");
    }

    #[test]
    fn downsample_means_are_bounded_by_bucket_extremes((s, bucket) in series_and_bucket()) {
        let down = s.downsample(bucket).unwrap();
        prop_assert!(!down.is_empty());
        prop_assert!(down.len() <= s.len());
        for d in &down {
            // Points of this bucket: bucket-start timestamps come from the
            // same floor() computation, so the membership test is exact.
            let members: Vec<f64> = s
                .points()
                .iter()
                .filter(|p| ((p.time / bucket).floor() * bucket).to_bits() == d.time.to_bits())
                .map(|p| p.value)
                .collect();
            prop_assert!(!members.is_empty(), "bucket at {} has no members", d.time);
            let lo = members.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = members.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            // The mean of n values in [lo, hi] stays in [lo, hi] up to
            // accumulation rounding.
            let slack = 1e-9 * (1.0 + hi.abs().max(lo.abs()));
            prop_assert!(
                d.value >= lo - slack && d.value <= hi + slack,
                "bucket mean {} outside [{lo}, {hi}]",
                d.value
            );
        }
    }

    #[test]
    fn downsample_emits_one_point_per_occupied_bucket((s, bucket) in series_and_bucket()) {
        // Holds for negative timestamps too: floor() (not integer
        // truncation) keeps bucket assignment monotone below zero.
        let down = s.downsample(bucket).unwrap();
        for w in down.windows(2) {
            prop_assert!(w[0].time < w[1].time);
        }
        // The series is time-sorted and floor() is monotone, so points of
        // one bucket are consecutive: dedup yields the occupied buckets
        // in emission order, which must match the output exactly.
        let mut starts: Vec<u64> = s
            .points()
            .iter()
            .map(|p| ((p.time / bucket).floor() * bucket).to_bits())
            .collect();
        starts.dedup();
        prop_assert_eq!(starts.len(), down.len());
        for (expected, d) in starts.iter().zip(&down) {
            prop_assert_eq!(*expected, d.time.to_bits());
        }
    }
}

//! Command implementations.

use crate::args::{Policy, SimulateOptions};
use autrascale::{AuTraScaleConfig, MapeController};
use autrascale_baselines::{DrsConfig, DrsPolicy, Ds2Config, Ds2Policy, RateMetric};
use autrascale_flinkctl::FlinkCluster;
use autrascale_streamsim::{rate_generators, RateProfile, Simulation};
use autrascale_workloads::{nexmark_q11, nexmark_q5, wordcount, yahoo, Workload};
use std::io::Write as _;

/// Resolves a workload by CLI name.
fn workload_by_name(name: &str) -> Result<Workload, String> {
    match name.to_ascii_lowercase().as_str() {
        "wordcount" | "wc" => Ok(wordcount()),
        "yahoo" => Ok(yahoo()),
        "q5" | "nexmark-q5" => Ok(nexmark_q5()),
        "q11" | "nexmark-q11" => Ok(nexmark_q11()),
        other => Err(format!(
            "unknown workload {other:?} (try: wordcount, yahoo, q5, q11)"
        )),
    }
}

/// `autrasctl workloads`
pub fn list_workloads() {
    println!(
        "{:<12} {:>10} {:>12} {:>8} {:>10}",
        "name", "operators", "rate (r/s)", "P_max", "l_t (ms)"
    );
    for w in autrascale_workloads::all_paper_workloads() {
        println!(
            "{:<12} {:>10} {:>12.0} {:>8} {:>10.0}",
            w.name.to_ascii_lowercase(),
            w.num_operators(),
            w.input_rate,
            w.p_max(),
            w.target_latency_ms
        );
    }
}

/// `autrasctl topology --workload x`
pub fn print_topology(name: &str) {
    let workload = match workload_by_name(name) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!("{} — {} operators", workload.name, workload.num_operators());
    for (i, op) in workload.job.operators().iter().enumerate() {
        let succ = workload.job.successors(i);
        let arrow = if succ.is_empty() {
            "(sink)".to_string()
        } else {
            format!(
                "→ {}",
                succ.iter()
                    .map(|&s| workload.job.operators()[s].name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        let limit = op
            .external_limit
            .map(|l| format!(", external limit {l:.0}/s"))
            .unwrap_or_default();
        println!(
            "  [{i}] {:<14} base {:>9.0}/s  selectivity {:>4.2}  σ={:<5.3}{limit} {arrow}",
            op.name, op.base_rate, op.selectivity, op.sync_coeff
        );
    }
}

/// One timeline row of a simulate run.
struct TimelineRow {
    minute: f64,
    parallelism: Vec<u32>,
    throughput: f64,
    producer: f64,
    latency_ms: f64,
    lag: f64,
}

/// `autrasctl simulate …`
pub fn simulate(options: &SimulateOptions) -> Result<(), String> {
    let mut workload = workload_by_name(&options.workload)?;
    if let Some(lt) = options.latency_target {
        workload.target_latency_ms = lt;
    }
    let rate = options.rate.unwrap_or(workload.input_rate);
    let profile = match &options.profile {
        Some(spec) => parse_profile(spec)?,
        None => RateProfile::constant(rate),
    };
    let sim = Simulation::new(workload.config_with_profile(profile, options.seed))
        .map_err(|e| e.to_string())?;
    let mut cluster = FlinkCluster::new(sim);

    let n = workload.num_operators();
    let initial = match &options.policy {
        Policy::Static(p) => {
            if p.len() != n {
                return Err(format!(
                    "static parallelism has {} entries, {} has {n} operators",
                    p.len(),
                    workload.name
                ));
            }
            p.clone()
        }
        _ => vec![1; n],
    };
    cluster.submit(&initial).map_err(|e| e.to_string())?;

    println!(
        "{} @ {:.0} records/s — policy {:?}, target latency {:.0} ms, seed {}",
        workload.name, rate, options.policy, workload.target_latency_ms, options.seed
    );

    // Run the policy (static needs none).
    let config = AuTraScaleConfig {
        target_latency_ms: workload.target_latency_ms,
        policy_running_time: 300.0,
        policy_interval: 60.0,
        ..Default::default()
    };
    match &options.policy {
        Policy::AuTraScale => {
            cluster.run_for(60.0).expect("fixed positive duration");
            let mut controller = MapeController::new(config.clone());
            controller
                .activate(&mut cluster)
                .map_err(|e| e.to_string())?;
        }
        Policy::Ds2 => {
            let policy = Ds2Policy::new(Ds2Config {
                policy_running_time: config.policy_running_time,
                ..Default::default()
            });
            policy.run(&mut cluster).map_err(|e| e.to_string())?;
        }
        Policy::DrsTrue | Policy::DrsObserved => {
            let metric = if matches!(options.policy, Policy::DrsTrue) {
                RateMetric::True
            } else {
                RateMetric::Observed
            };
            let policy = DrsPolicy::new(DrsConfig {
                target_latency_ms: workload.target_latency_ms,
                rate_metric: metric,
                policy_running_time: config.policy_running_time,
                max_iters: 8,
            });
            policy.run(&mut cluster).map_err(|e| e.to_string())?;
        }
        Policy::Static(_) => {}
    }

    // Timeline: observe for `duration` seconds AFTER the policy phase
    // (the search itself can consume hours of simulated time).
    let deadline = cluster.now() + options.duration;
    let mut rows: Vec<TimelineRow> = Vec::new();
    println!(
        "\n{:>7} {:>18} {:>12} {:>12} {:>12} {:>14}",
        "minute", "parallelism", "throughput", "input", "latency(ms)", "kafka lag"
    );
    while cluster.now() < deadline {
        let remaining = deadline - cluster.now();
        if remaining < 1.0 {
            // Less than a metric window left: would round to zero ticks.
            break;
        }
        let step = options.report_interval.min(remaining);
        cluster.run_for(step).expect("fixed positive duration");
        let Some(m) = cluster.metrics_over(options.report_interval.min(120.0)) else {
            continue;
        };
        let row = TimelineRow {
            minute: cluster.now() / 60.0,
            parallelism: cluster.parallelism().to_vec(),
            throughput: m.throughput,
            producer: m.producer_rate,
            latency_ms: m.processing_latency_ms,
            lag: m.kafka_lag,
        };
        println!(
            "{:>7.1} {:>18} {:>12.0} {:>12.0} {:>12.1} {:>14.0}",
            row.minute,
            format!("{:?}", row.parallelism),
            row.throughput,
            row.producer,
            row.latency_ms,
            row.lag
        );
        rows.push(row);
    }

    // Summary.
    if let Some(m) = cluster.metrics_over(options.report_interval.min(300.0)) {
        let meets_latency = m.processing_latency_ms <= workload.target_latency_ms;
        println!(
            "\nsummary: parallelism {:?} (Σ {}), throughput {:.0}/{:.0} records/s, \
             latency {:.1} ms (target {:.0}: {}), keeping up: {}",
            cluster.parallelism(),
            cluster.parallelism().iter().sum::<u32>(),
            m.throughput,
            m.producer_rate,
            m.processing_latency_ms,
            workload.target_latency_ms,
            if meets_latency { "met" } else { "VIOLATED" },
            m.keeping_up(0.05),
        );
    }

    if let Some(path) = &options.csv {
        write_csv(path, &rows)?;
        println!("timeline written to {path}");
    }
    Ok(())
}

/// Parses `--profile` specs like `diurnal:10000,4000,14400`.
fn parse_profile(spec: &str) -> Result<RateProfile, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad profile {spec:?} (want kind:params)"))?;
    let params: Result<Vec<f64>, _> = rest.split(',').map(str::parse::<f64>).collect();
    let params = params.map_err(|_| format!("bad profile numbers in {spec:?}"))?;
    match (kind, params.as_slice()) {
        ("staircase", [init, step, period, max]) => {
            Ok(RateProfile::staircase(*init, *step, *period, *max))
        }
        ("diurnal", [base, amplitude, period]) => Ok(rate_generators::diurnal(
            *base,
            *amplitude,
            *period,
            period / 48.0,
        )),
        ("bursty", [base, burst, every, len, count]) => Ok(rate_generators::bursty(
            *base,
            *burst,
            *every,
            *len,
            *count as usize,
        )),
        _ => Err(format!(
            "bad profile {spec:?}: unknown kind or wrong parameter count"
        )),
    }
}

fn write_csv(path: &str, rows: &[TimelineRow]) -> Result<(), String> {
    let mut file = std::fs::File::create(path).map_err(|e| e.to_string())?;
    writeln!(
        file,
        "minute,parallelism,throughput,input_rate,latency_ms,kafka_lag"
    )
    .map_err(|e| e.to_string())?;
    for r in rows {
        let parallelism: Vec<String> = r.parallelism.iter().map(u32::to_string).collect();
        writeln!(
            file,
            "{:.2},{},{:.0},{:.0},{:.1},{:.0}",
            r.minute,
            parallelism.join(";"),
            r.throughput,
            r.producer,
            r.latency_ms,
            r.lag
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_lookup_accepts_aliases() {
        assert!(workload_by_name("wordcount").is_ok());
        assert!(workload_by_name("WC").is_ok());
        assert!(workload_by_name("Q5").is_ok());
        assert!(workload_by_name("nexmark-q11").is_ok());
        assert!(workload_by_name("nope").is_err());
    }

    #[test]
    fn simulate_static_policy_smoke() {
        let options = SimulateOptions {
            workload: "q11".into(),
            policy: Policy::Static(vec![1, 12]),
            rate: Some(80_000.0),
            profile: None,
            duration: 120.0,
            seed: 1,
            latency_target: None,
            report_interval: 60.0,
            csv: None,
        };
        simulate(&options).unwrap();
    }

    #[test]
    fn simulate_rejects_bad_static_arity() {
        let options = SimulateOptions {
            workload: "q11".into(),
            policy: Policy::Static(vec![1, 2, 3]),
            rate: None,
            profile: None,
            duration: 60.0,
            seed: 1,
            latency_target: None,
            report_interval: 30.0,
            csv: None,
        };
        assert!(simulate(&options).is_err());
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    #[test]
    fn parses_each_profile_kind() {
        assert!(matches!(
            parse_profile("staircase:100000,50000,600,300000"),
            Ok(RateProfile::Staircase { .. })
        ));
        assert!(matches!(
            parse_profile("diurnal:10000,4000,14400"),
            Ok(RateProfile::Piecewise(_))
        ));
        assert!(matches!(
            parse_profile("bursty:1000,9000,600,60,3"),
            Ok(RateProfile::Piecewise(_))
        ));
    }

    #[test]
    fn rejects_bad_profiles() {
        assert!(parse_profile("diurnal").is_err());
        assert!(parse_profile("diurnal:1,2").is_err());
        assert!(parse_profile("warp:1,2,3").is_err());
        assert!(parse_profile("bursty:a,b,c,d,e").is_err());
    }
}

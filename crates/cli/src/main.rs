//! `autrasctl` — drive a simulated streaming job under AuTraScale or a
//! baseline auto-scaler from the command line.
//!
//! ```text
//! autrasctl workloads
//! autrasctl topology  --workload yahoo
//! autrasctl simulate  --workload wordcount --rate 350000 --policy autrascale \
//!                     --duration 3600 [--seed 42] [--latency-target 180] \
//!                     [--report-interval 300] [--csv timeline.csv]
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod args;
mod run;

use args::{Command, ParseError};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(Command::Workloads) => run::list_workloads(),
        Ok(Command::Topology { workload }) => run::print_topology(&workload),
        Ok(Command::Simulate(options)) => {
            if let Err(e) = run::simulate(&options) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Ok(Command::Help) => {
            print!("{}", args::USAGE);
        }
        Err(ParseError(message)) => {
            eprintln!("error: {message}\n");
            eprint!("{}", args::USAGE);
            std::process::exit(2);
        }
    }
}

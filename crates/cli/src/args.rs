//! Hand-rolled argument parsing (no CLI dependency; the surface is tiny).

use std::fmt;

/// Usage text shown by `--help` and on parse errors.
pub const USAGE: &str = "\
autrasctl — streaming auto-scaling on the simulated cluster

USAGE:
  autrasctl workloads
      List the built-in workloads with their calibrated targets.

  autrasctl topology --workload <name>
      Print a workload's operator DAG.

  autrasctl simulate --workload <name> --policy <policy> [options]
      Run a policy against a workload and print a timeline + summary.

POLICIES:
  autrascale          throughput optimization + Algorithm 1 (+ MAPE loop)
  ds2                 DS2 true-rate scaling
  drs-true            DRS queueing model on the true processing rate
  drs-observed        DRS queueing model on the observed rate (as published)
  static:<p1,p2,...>  fixed parallelism, no controller

OPTIONS (simulate):
  --workload <wordcount|yahoo|q5|q11>   required
  --policy <see above>                  required
  --rate <records/s>                    default: the workload's paper rate
  --profile <spec>                      time-varying input instead of --rate:
                                          staircase:<init>,<step>,<period>,<max>
                                          diurnal:<base>,<amplitude>,<period>
                                          bursty:<base>,<burst>,<every>,<len>,<count>
  --duration <secs>                     observation window AFTER the policy
                                        finishes; default: 3600
  --seed <u64>                          default: 42
  --latency-target <ms>                 default: the workload's paper target
  --report-interval <secs>              default: 300
  --csv <path>                          also write the timeline as CSV
";

/// A parse failure with its message.
#[derive(Debug)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Which auto-scaler drives the job.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// The full AuTraScale pipeline.
    AuTraScale,
    /// DS2 true-rate scaling.
    Ds2,
    /// DRS on the true processing rate.
    DrsTrue,
    /// DRS on the observed processing rate.
    DrsObserved,
    /// A fixed parallelism vector, no controller.
    Static(Vec<u32>),
}

/// Parsed `simulate` options.
#[derive(Debug, Clone)]
pub struct SimulateOptions {
    /// Workload name (`wordcount`, `yahoo`, `q5`, `q11`).
    pub workload: String,
    /// The policy to run.
    pub policy: Policy,
    /// Input rate override (records/s).
    pub rate: Option<f64>,
    /// Time-varying profile spec (overrides `rate`).
    pub profile: Option<String>,
    /// Total simulated seconds.
    pub duration: f64,
    /// RNG seed.
    pub seed: u64,
    /// Latency target override, ms.
    pub latency_target: Option<f64>,
    /// Seconds between timeline rows.
    pub report_interval: f64,
    /// Optional CSV output path for the timeline.
    pub csv: Option<String>,
}

/// A parsed top-level command.
#[derive(Debug)]
pub enum Command {
    /// `autrasctl workloads`
    Workloads,
    /// `autrasctl topology --workload x`
    Topology {
        /// Workload name.
        workload: String,
    },
    /// `autrasctl simulate …`
    Simulate(SimulateOptions),
    /// `--help` / `help`
    Help,
}

/// Parses the argument vector (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
    let mut it = argv.iter();
    let Some(command) = it.next() else {
        return Ok(Command::Help);
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "workloads" => Ok(Command::Workloads),
        "topology" => {
            let mut workload = None;
            parse_flags(it, |flag, value| {
                match flag {
                    "--workload" => workload = Some(value.to_string()),
                    other => return Err(ParseError(format!("unknown flag {other:?}"))),
                }
                Ok(())
            })?;
            let workload =
                workload.ok_or_else(|| ParseError("topology needs --workload".into()))?;
            Ok(Command::Topology { workload })
        }
        "simulate" => {
            let mut options = SimulateOptions {
                workload: String::new(),
                policy: Policy::AuTraScale,
                rate: None,
                profile: None,
                duration: 3600.0,
                seed: 42,
                latency_target: None,
                report_interval: 300.0,
                csv: None,
            };
            let mut saw_workload = false;
            let mut saw_policy = false;
            parse_flags(it, |flag, value| {
                match flag {
                    "--workload" => {
                        options.workload = value.to_string();
                        saw_workload = true;
                    }
                    "--policy" => {
                        options.policy = parse_policy(value)?;
                        saw_policy = true;
                    }
                    "--rate" => options.rate = Some(parse_number(flag, value)?),
                    "--profile" => options.profile = Some(value.to_string()),
                    "--duration" => options.duration = parse_number(flag, value)?,
                    "--seed" => {
                        options.seed = value
                            .parse()
                            .map_err(|_| ParseError(format!("bad --seed {value:?}")))?;
                    }
                    "--latency-target" => options.latency_target = Some(parse_number(flag, value)?),
                    "--report-interval" => options.report_interval = parse_number(flag, value)?,
                    "--csv" => options.csv = Some(value.to_string()),
                    other => return Err(ParseError(format!("unknown flag {other:?}"))),
                }
                Ok(())
            })?;
            if !saw_workload {
                return Err(ParseError("simulate needs --workload".into()));
            }
            if !saw_policy {
                return Err(ParseError("simulate needs --policy".into()));
            }
            if options.duration <= 0.0 || options.report_interval <= 0.0 {
                return Err(ParseError("durations must be positive".into()));
            }
            Ok(Command::Simulate(options))
        }
        other => Err(ParseError(format!("unknown command {other:?}"))),
    }
}

fn parse_flags<'a>(
    mut it: std::slice::Iter<'a, String>,
    mut apply: impl FnMut(&'a str, &'a str) -> Result<(), ParseError>,
) -> Result<(), ParseError> {
    while let Some(flag) = it.next() {
        if !flag.starts_with("--") {
            return Err(ParseError(format!("expected a flag, got {flag:?}")));
        }
        let value = it
            .next()
            .ok_or_else(|| ParseError(format!("flag {flag} needs a value")))?;
        apply(flag, value)?;
    }
    Ok(())
}

fn parse_number(flag: &str, value: &str) -> Result<f64, ParseError> {
    value
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| ParseError(format!("bad {flag} value {value:?}")))
}

fn parse_policy(value: &str) -> Result<Policy, ParseError> {
    match value {
        "autrascale" => Ok(Policy::AuTraScale),
        "ds2" => Ok(Policy::Ds2),
        "drs-true" => Ok(Policy::DrsTrue),
        "drs-observed" => Ok(Policy::DrsObserved),
        other => {
            if let Some(rest) = other.strip_prefix("static:") {
                let parallelism: Result<Vec<u32>, _> = rest.split(',').map(str::parse).collect();
                match parallelism {
                    Ok(p) if !p.is_empty() => {
                        // A zero would submit an operator with no instances;
                        // name the offending position so a long list is easy
                        // to fix.
                        if let Some(i) = p.iter().position(|&v| v == 0) {
                            Err(ParseError(format!(
                                "static parallelism for operator {i} must be >= 1 (got 0 in {rest:?})"
                            )))
                        } else {
                            Ok(Policy::Static(p))
                        }
                    }
                    _ => Err(ParseError(format!(
                        "bad static parallelism {rest:?} (want e.g. static:1,2,1)"
                    ))),
                }
            } else {
                Err(ParseError(format!("unknown policy {other:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_workloads_and_help() {
        assert!(matches!(parse(&argv("workloads")), Ok(Command::Workloads)));
        assert!(matches!(parse(&argv("--help")), Ok(Command::Help)));
        assert!(matches!(parse(&[]), Ok(Command::Help)));
    }

    #[test]
    fn parses_topology() {
        match parse(&argv("topology --workload yahoo")) {
            Ok(Command::Topology { workload }) => assert_eq!(workload, "yahoo"),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("topology")).is_err());
    }

    #[test]
    fn parses_simulate_defaults_and_overrides() {
        let cmd = parse(&argv(
            "simulate --workload q5 --policy ds2 --rate 30000 --duration 100 \
             --seed 7 --latency-target 500 --report-interval 10",
        ))
        .unwrap();
        let Command::Simulate(o) = cmd else { panic!() };
        assert_eq!(o.workload, "q5");
        assert_eq!(o.policy, Policy::Ds2);
        assert_eq!(o.rate, Some(30_000.0));
        assert_eq!(o.duration, 100.0);
        assert_eq!(o.seed, 7);
        assert_eq!(o.latency_target, Some(500.0));
        assert_eq!(o.report_interval, 10.0);
        assert_eq!(o.csv, None);
    }

    #[test]
    fn parses_every_policy() {
        for (text, expected) in [
            ("autrascale", Policy::AuTraScale),
            ("ds2", Policy::Ds2),
            ("drs-true", Policy::DrsTrue),
            ("drs-observed", Policy::DrsObserved),
        ] {
            assert_eq!(parse_policy(text).unwrap(), expected);
        }
        assert_eq!(
            parse_policy("static:1,2,3").unwrap(),
            Policy::Static(vec![1, 2, 3])
        );
        assert!(parse_policy("static:0,1").is_err());
        assert!(parse_policy("static:").is_err());
        assert!(parse_policy("magic").is_err());
    }

    #[test]
    fn zero_static_parallelism_names_the_operator() {
        // A zero is rejected with an error that points at the offending
        // position, not the generic malformed-list message.
        let err = parse_policy("static:2,0,3").unwrap_err();
        assert!(
            err.0.contains("operator 1") && err.0.contains(">= 1"),
            "unexpected message: {}",
            err.0
        );
        let err = parse_policy("static:0").unwrap_err();
        assert!(
            err.0.contains("operator 0"),
            "unexpected message: {}",
            err.0
        );
        // Non-numeric entries still get the malformed-list message.
        let err = parse_policy("static:1,x").unwrap_err();
        assert!(
            err.0.contains("bad static parallelism"),
            "unexpected message: {}",
            err.0
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&argv("simulate --workload q5")).is_err()); // no policy
        assert!(parse(&argv("simulate --policy ds2")).is_err()); // no workload
        assert!(parse(&argv("simulate --workload q5 --policy ds2 --rate abc")).is_err());
        assert!(parse(&argv("simulate --workload q5 --policy ds2 --duration -1")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("simulate --workload")).is_err()); // missing value
    }
}

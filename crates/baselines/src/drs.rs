//! DRS (Fu et al.) — queueing-theoretic latency-guaranteeing allocation.
//!
//! DRS models each operator as an M/M/k queue and the job as a Jackson
//! open queueing network whose expected end-to-end latency is the sum of
//! per-operator expected sojourn times. Allocation is greedy: start from
//! the minimum stable configuration, then repeatedly add one instance to
//! the operator whose increment lowers the predicted latency the most,
//! until the prediction meets the target (or resources run out). The
//! published DRS plans on the **observed** processing rate; the paper
//! also runs a **true-rate** variant to separate the metric's effect from
//! the model's (§V-C).
//!
//! Reproduced weaknesses (the paper's findings):
//!
//! * the queueing model knows nothing about synchronization and
//!   interference, so its latency prediction degrades at high parallelism
//!   ("the error of the queueing model is larger in complex resource
//!   mapping schemes") and the configurations it picks sometimes violate
//!   QoS in reality;
//! * with the observed rate, idle time deflates μ and DRS
//!   over-provisions.

use crate::queueing::{min_stable_servers, mmk_sojourn_time};
use autrascale_flinkctl::{JobControl, JobMetrics};

/// Which measured rate feeds the queueing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateMetric {
    /// The per-instance observed processing rate (DRS as published).
    Observed,
    /// The per-instance true processing rate (Eq. 2; the paper's
    /// DRS-true variant).
    True,
}

/// DRS tunables.
#[derive(Debug, Clone)]
pub struct DrsConfig {
    /// End-to-end latency target, ms.
    pub target_latency_ms: f64,
    /// Which rate metric feeds the model.
    pub rate_metric: RateMetric,
    /// Seconds a configuration runs before metrics are read.
    pub policy_running_time: f64,
    /// Reconfiguration bound ("total number of new parallelism schemes").
    pub max_iters: usize,
}

impl Default for DrsConfig {
    fn default() -> Self {
        Self {
            target_latency_ms: 250.0,
            rate_metric: RateMetric::Observed,
            policy_running_time: 120.0,
            max_iters: 8,
        }
    }
}

/// One DRS deploy–measure step.
#[derive(Debug, Clone, PartialEq)]
pub struct DrsStep {
    /// Configuration measured.
    pub parallelism: Vec<u32>,
    /// Latency the queueing model predicted for it, ms.
    pub predicted_latency_ms: f64,
    /// Latency actually measured, ms.
    pub measured_latency_ms: f64,
}

/// Result of a DRS run.
#[derive(Debug, Clone, PartialEq)]
pub struct DrsOutcome {
    /// The configuration DRS settled on.
    pub final_parallelism: Vec<u32>,
    /// Measured latency at that configuration, ms.
    pub final_latency_ms: f64,
    /// Measured throughput at that configuration, records/s.
    pub final_throughput: f64,
    /// Deploy–measure iterations used.
    pub iterations: usize,
    /// `true` when the measured latency met the target.
    pub meets_latency: bool,
    /// All steps in order.
    pub history: Vec<DrsStep>,
}

/// The DRS policy.
#[derive(Debug, Clone, Default)]
pub struct DrsPolicy {
    config: DrsConfig,
}

impl DrsPolicy {
    /// A policy with the given tunables.
    pub fn new(config: DrsConfig) -> Self {
        Self { config }
    }

    /// Per-instance service rate for the configured metric, records/s.
    fn mu(&self, op: &autrascale_flinkctl::OperatorMetrics) -> f64 {
        let mu = match self.config.rate_metric {
            RateMetric::Observed => op.observed_rate_avg,
            RateMetric::True => op.true_rate_avg,
        };
        mu.max(1e-6)
    }

    /// Predicted end-to-end latency (ms) of configuration `k` under the
    /// Jackson-network model, using arrival and service rates from
    /// `metrics`. `None` when any operator would be unstable.
    pub fn predict_latency_ms(&self, metrics: &JobMetrics, k: &[u32]) -> Option<f64> {
        let mut target_input = vec![0.0f64; metrics.operators.len()];
        let mut total = 0.0;
        for (i, op) in metrics.operators.iter().enumerate() {
            // Arrival rates at steady state follow the producer rate
            // through observed selectivities (Jackson flow balance).
            let predecessors = metrics.predecessors(i);
            let lambda = if predecessors.is_empty() {
                metrics.producer_rate
            } else {
                predecessors
                    .iter()
                    .map(|&p| {
                        let prev = &metrics.operators[p];
                        let selectivity =
                            if prev.observed_rate_total > 1e-9 && prev.output_rate > 0.0 {
                                prev.output_rate / prev.observed_rate_total
                            } else {
                                1.0
                            };
                        target_input[p] * selectivity
                    })
                    .sum()
            };
            target_input[i] = lambda;
            let w = mmk_sojourn_time(k[i], lambda, self.mu(op))?;
            total += w * 1000.0;
        }
        Some(total)
    }

    /// The greedy allocation: minimum stable servers per operator, then
    /// add instances where they cut the predicted latency most until the
    /// target is met or every operator is at `p_max`.
    pub fn plan(&self, metrics: &JobMetrics, p_max: u32) -> Vec<u32> {
        let n = metrics.operators.len();
        let mut k: Vec<u32> = Vec::with_capacity(n);
        let mut target_input = vec![0.0f64; n];
        for (i, op) in metrics.operators.iter().enumerate() {
            let predecessors = metrics.predecessors(i);
            let lambda = if predecessors.is_empty() {
                metrics.producer_rate
            } else {
                predecessors
                    .iter()
                    .map(|&p| {
                        let prev = &metrics.operators[p];
                        let selectivity =
                            if prev.observed_rate_total > 1e-9 && prev.output_rate > 0.0 {
                                prev.output_rate / prev.observed_rate_total
                            } else {
                                1.0
                            };
                        target_input[p] * selectivity
                    })
                    .sum()
            };
            target_input[i] = lambda;
            k.push(min_stable_servers(lambda, self.mu(op), p_max));
        }

        loop {
            let Some(current) = self.predict_latency_ms(metrics, &k) else {
                // Some operator unstable even at min-stable (p_max clamp):
                // saturate everything unstable and bail out.
                return k;
            };
            if current <= self.config.target_latency_ms {
                return k;
            }
            // Greedy step: the single increment with the biggest
            // predicted-latency reduction.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n {
                if k[i] >= p_max {
                    continue;
                }
                k[i] += 1;
                if let Some(predicted) = self.predict_latency_ms(metrics, &k) {
                    let gain = current - predicted;
                    if best.map(|(_, g)| gain > g).unwrap_or(true) {
                        best = Some((i, gain));
                    }
                }
                k[i] -= 1;
            }
            match best {
                Some((i, gain)) if gain > 0.0 => k[i] += 1,
                // No increment helps (model floor above the target):
                // return the current allocation — DRS cannot do better.
                _ => return k,
            }
        }
    }

    /// The full DRS loop: deploy, measure, re-plan from fresh metrics,
    /// until the measured latency meets the target or `max_iters`.
    pub fn run(&self, cluster: &mut impl JobControl) -> Result<DrsOutcome, String> {
        let n = cluster.num_operators();
        let mut current = cluster.current_parallelism();
        if current.len() != n || current.iter().all(|&p| p == 0) {
            current = vec![1; n];
            cluster.deploy(&current)?;
        }

        let mut history = Vec::new();
        let mut meets = false;
        let mut last_latency = f64::INFINITY;
        let mut last_throughput = 0.0;
        let total = |k: &[u32]| k.iter().map(|&p| u64::from(p)).sum::<u64>();
        for _ in 0..self.config.max_iters {
            cluster.advance(self.config.policy_running_time)?;
            let metrics = cluster
                .metrics(self.config.policy_running_time / 4.0)
                .ok_or_else(|| "no metrics after policy running time".to_string())?;
            last_latency = metrics.processing_latency_ms;
            last_throughput = metrics.throughput;
            let predicted = self
                .predict_latency_ms(&metrics, &current)
                .unwrap_or(f64::INFINITY);
            history.push(DrsStep {
                parallelism: current.clone(),
                predicted_latency_ms: predicted,
                measured_latency_ms: metrics.processing_latency_ms,
            });
            // DRS guarantees END-TO-END latency: the measured criterion
            // includes the pending time upstream of the job, which is
            // what diverges under under-provisioning.
            let e2e = metrics
                .event_time_latency_ms
                .unwrap_or(f64::INFINITY)
                .max(metrics.processing_latency_ms);
            let latency_met = e2e <= self.config.target_latency_ms;
            let next = self.plan(&metrics, cluster.max_parallelism());
            // Terminate when latency is met AND the model sees no cheaper
            // allocation (DRS also MINIMIZES resources: an over-provisioned
            // start must scale down before stopping).
            if latency_met && total(&next) >= total(&current) {
                meets = true;
                break;
            }
            if next != current {
                cluster.deploy(&next)?;
                current = next;
            }
        }

        Ok(DrsOutcome {
            final_parallelism: current,
            final_latency_ms: last_latency,
            final_throughput: last_throughput,
            iterations: history.len(),
            meets_latency: meets,
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autrascale_flinkctl::FlinkCluster;
    use autrascale_streamsim::{JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig};

    fn job() -> JobGraph {
        JobGraph::linear(vec![
            OperatorSpec::source("Source", 30_000.0),
            OperatorSpec::transform("Map", 8_000.0, 1.0).with_sync_coeff(0.03),
            OperatorSpec::sink("Sink", 40_000.0),
        ])
        .unwrap()
    }

    fn cluster(rate: f64, seed: u64) -> FlinkCluster {
        let config = SimulationConfig {
            job: job(),
            profile: RateProfile::constant(rate),
            seed,
            restart_downtime: 2.0,
            ..Default::default()
        };
        FlinkCluster::new(Simulation::new(config).unwrap())
    }

    fn config(metric: RateMetric) -> DrsConfig {
        DrsConfig {
            target_latency_ms: 150.0,
            rate_metric: metric,
            policy_running_time: 60.0,
            max_iters: 8,
        }
    }

    #[test]
    fn drs_true_meets_latency() {
        let mut fc = cluster(20_000.0, 1);
        let outcome = DrsPolicy::new(config(RateMetric::True))
            .run(&mut fc)
            .unwrap();
        assert!(outcome.meets_latency, "{outcome:?}");
        // Needs at least the stability minimum on Map (20k / 8k ⇒ ≥ 3).
        assert!(outcome.final_parallelism[1] >= 3);
    }

    #[test]
    fn drs_observed_overprovisions_relative_to_true() {
        let mut fc_obs = cluster(20_000.0, 2);
        let obs = DrsPolicy::new(config(RateMetric::Observed))
            .run(&mut fc_obs)
            .unwrap();
        let mut fc_true = cluster(20_000.0, 2);
        let tru = DrsPolicy::new(config(RateMetric::True))
            .run(&mut fc_true)
            .unwrap();
        let total = |v: &[u32]| v.iter().map(|&p| u64::from(p)).sum::<u64>();
        // Observed μ is deflated by idle time ⇒ more instances demanded.
        assert!(
            total(&obs.final_parallelism) >= total(&tru.final_parallelism),
            "obs {:?} vs true {:?}",
            obs.final_parallelism,
            tru.final_parallelism
        );
    }

    #[test]
    fn prediction_is_monotone_in_parallelism() {
        let mut fc = cluster(20_000.0, 3);
        fc.submit(&[1, 3, 1]).unwrap();
        fc.run_for(120.0).unwrap();
        let metrics = fc.metrics_over(30.0).unwrap();
        let drs = DrsPolicy::new(config(RateMetric::True));
        let p4 = drs.predict_latency_ms(&metrics, &[1, 4, 1]).unwrap();
        let p8 = drs.predict_latency_ms(&metrics, &[1, 8, 1]).unwrap();
        assert!(p8 <= p4, "{p8} !<= {p4}");
    }

    #[test]
    fn prediction_none_when_unstable() {
        let mut fc = cluster(20_000.0, 4);
        fc.submit(&[1, 3, 1]).unwrap();
        fc.run_for(120.0).unwrap();
        let metrics = fc.metrics_over(30.0).unwrap();
        let drs = DrsPolicy::new(config(RateMetric::True));
        // One Map instance cannot absorb 20k at ~8k μ.
        assert!(drs.predict_latency_ms(&metrics, &[1, 1, 1]).is_none());
    }

    #[test]
    fn plan_is_stable_configuration() {
        let mut fc = cluster(20_000.0, 5);
        fc.submit(&[1, 3, 1]).unwrap();
        fc.run_for(120.0).unwrap();
        let metrics = fc.metrics_over(30.0).unwrap();
        let drs = DrsPolicy::new(config(RateMetric::True));
        let plan = drs.plan(&metrics, 50);
        assert_eq!(plan.len(), 3);
        let predicted = drs.predict_latency_ms(&metrics, &plan);
        assert!(predicted.is_some());
    }
}

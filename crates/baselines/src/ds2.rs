//! DS2 (Kalavri et al., OSDI'18) — true-rate scaling with a linear
//! instance model.
//!
//! DS2 measures the *true* processing rate of every operator instance
//! (the same Eq. 2 metric AuTraScale adopts), propagates the source rate
//! down the dataflow through observed selectivities, and sets each
//! operator's parallelism to `⌈target input rate / per-instance true
//! rate⌉`. Its two published limitations, both reproduced here, are what
//! AuTraScale improves on:
//!
//! * **linear assumption** — the per-instance rate is assumed constant as
//!   instances are added; under synchronization and CPU interference the
//!   real rate shrinks, so DS2 under-provisions and needs extra
//!   iterations (paper §I);
//! * **no external-cap termination** — when throughput can never reach
//!   the target (Yahoo's Redis-bound sink), DS2 keeps recommending larger
//!   configurations until the parallelism ceiling; it reports
//!   `converged: false` in that case (the paper's "infinite loop",
//!   bounded here by `max_iters`).

use autrascale_flinkctl::{JobControl, JobMetrics};

/// DS2 tunables.
#[derive(Debug, Clone)]
pub struct Ds2Config {
    /// Seconds a configuration runs before its metrics are read.
    pub policy_running_time: f64,
    /// Relative tolerance when comparing throughput to the source rate.
    pub rate_tolerance: f64,
    /// Iteration bound (DS2 itself has none; this keeps capped jobs
    /// finite).
    pub max_iters: usize,
}

impl Default for Ds2Config {
    fn default() -> Self {
        Self {
            policy_running_time: 120.0,
            rate_tolerance: 0.05,
            max_iters: 10,
        }
    }
}

/// One DS2 deploy–measure step.
#[derive(Debug, Clone, PartialEq)]
pub struct Ds2Step {
    /// Configuration measured.
    pub parallelism: Vec<u32>,
    /// Observed throughput, records/s.
    pub throughput: f64,
}

/// Result of a DS2 run.
#[derive(Debug, Clone, PartialEq)]
pub struct Ds2Outcome {
    /// The configuration DS2 settled on (the last it deployed).
    pub final_parallelism: Vec<u32>,
    /// Throughput at that configuration, records/s.
    pub final_throughput: f64,
    /// Deploy–measure iterations used.
    pub iterations: usize,
    /// `true` when throughput reached the source rate; `false` when the
    /// iteration bound stopped an otherwise endless loop.
    pub converged: bool,
    /// All steps in order.
    pub history: Vec<Ds2Step>,
}

/// The DS2 policy.
#[derive(Debug, Clone, Default)]
pub struct Ds2Policy {
    config: Ds2Config,
}

impl Ds2Policy {
    /// A policy with the given tunables.
    pub fn new(config: Ds2Config) -> Self {
        Self { config }
    }

    /// One application of the DS2 scaling rule to a metrics snapshot.
    /// Branching DAGs are supported: a join's target input sums over its
    /// predecessors (via `metrics.edges`).
    pub fn plan(&self, metrics: &JobMetrics, p_max: u32) -> Vec<u32> {
        let ops = &metrics.operators;
        let mut target_input = vec![0.0f64; ops.len()];
        let mut plan = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            let predecessors = metrics.predecessors(i);
            let target = if predecessors.is_empty() {
                // DS2 observes the SOURCE OPERATOR, not the external
                // producer: while a backlog exists the source's true rate
                // is its full capability, so DS2 provisions for more than
                // the steady rate — the over-provisioning AuTraScale's
                // direct use of the Kafka rate v0 avoids (paper §V-D).
                metrics.producer_rate.max(op.true_rate_total)
            } else {
                predecessors
                    .iter()
                    .map(|&p| {
                        let prev = &ops[p];
                        let selectivity =
                            if prev.observed_rate_total > 1e-9 && prev.output_rate > 0.0 {
                                prev.output_rate / prev.observed_rate_total
                            } else {
                                1.0
                            };
                        target_input[p] * selectivity
                    })
                    .sum()
            };
            target_input[i] = target;
            // The linear assumption: per-instance rate stays v̄_i at any k.
            let v = op.true_rate_avg.max(1e-9);
            let k = (target / v).ceil() as i64;
            plan.push((k.max(1) as u32).min(p_max));
        }
        plan
    }

    /// The full DS2 loop: deploy all-ones (or the current config), then
    /// iterate the scaling rule until the rate is met or `max_iters`.
    pub fn run(&self, cluster: &mut impl JobControl) -> Result<Ds2Outcome, String> {
        let n = cluster.num_operators();
        let mut current = cluster.current_parallelism();
        if current.len() != n || current.iter().all(|&p| p == 0) {
            current = vec![1; n];
            cluster.deploy(&current)?;
        }

        let mut history = Vec::new();
        let mut converged = false;
        for _ in 0..self.config.max_iters {
            cluster.advance(self.config.policy_running_time)?;
            let metrics = cluster
                .metrics(self.config.policy_running_time / 4.0)
                .ok_or_else(|| "no metrics after policy running time".to_string())?;
            history.push(Ds2Step {
                parallelism: current.clone(),
                throughput: metrics.throughput,
            });
            if metrics.keeping_up(self.config.rate_tolerance) {
                converged = true;
                break;
            }
            let next = self.plan(&metrics, cluster.max_parallelism());
            // DS2 has no repeat-termination rule; but physically identical
            // deployments need not be re-applied — the loop spins on
            // re-measurement until max_iters, reproducing the paper's
            // non-termination on capped jobs without pointless restarts.
            if next != current {
                cluster.deploy(&next)?;
                current = next;
            }
        }

        let last = history.last().expect("at least one iteration ran");
        Ok(Ds2Outcome {
            final_parallelism: current,
            final_throughput: last.throughput,
            iterations: history.len(),
            converged,
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autrascale_flinkctl::FlinkCluster;
    use autrascale_streamsim::{JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig};

    fn cluster(job: JobGraph, rate: f64, seed: u64) -> FlinkCluster {
        let config = SimulationConfig {
            job,
            profile: RateProfile::constant(rate),
            seed,
            restart_downtime: 2.0,
            ..Default::default()
        };
        FlinkCluster::new(Simulation::new(config).unwrap())
    }

    #[test]
    fn scales_simple_pipeline_to_rate() {
        let job = JobGraph::linear(vec![
            OperatorSpec::source("Source", 40_000.0),
            OperatorSpec::transform("Map", 10_000.0, 1.0).with_sync_coeff(0.02),
            OperatorSpec::sink("Sink", 50_000.0),
        ])
        .unwrap();
        let mut fc = cluster(job, 30_000.0, 1);
        let outcome = Ds2Policy::default().run(&mut fc).unwrap();
        assert!(outcome.converged, "{outcome:?}");
        assert!(outcome.final_parallelism[1] >= 3);
        assert!(outcome.iterations <= 4, "{}", outcome.iterations);
    }

    #[test]
    fn linear_assumption_underestimates_with_strong_sync() {
        // Map rate shrinks fast with parallelism (σ = 0.5): DS2's linear
        // plan from the p=1 measurement must underestimate at least once,
        // costing it extra iterations versus the ideal single jump.
        let job = JobGraph::linear(vec![
            OperatorSpec::source("Source", 60_000.0),
            OperatorSpec::transform("Map", 12_000.0, 1.0).with_sync_coeff(0.5),
            OperatorSpec::sink("Sink", 80_000.0),
        ])
        .unwrap();
        let mut fc = cluster(job, 40_000.0, 2);
        let outcome = Ds2Policy::default().run(&mut fc).unwrap();
        // First plan from p=1 metrics would be ~⌈40k/12k⌉ = 4, but with
        // σ=0.5 four instances only deliver 19.2k: more rounds needed.
        assert!(outcome.iterations >= 3, "{outcome:?}");
    }

    #[test]
    fn capped_job_does_not_converge() {
        let job = JobGraph::linear(vec![
            OperatorSpec::source("Source", 30_000.0),
            OperatorSpec::sink("Sink", 2_000.0).with_external_limit(5_000.0),
        ])
        .unwrap();
        let mut fc = cluster(job, 20_000.0, 3);
        let cfg = Ds2Config {
            max_iters: 6,
            ..Default::default()
        };
        let outcome = Ds2Policy::new(cfg).run(&mut fc).unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.iterations, 6);
        // Parallelism pushed toward the ceiling by the loop.
        assert!(
            outcome.final_parallelism[1] >= 10,
            "{:?}",
            outcome.final_parallelism
        );
    }

    #[test]
    fn plan_respects_p_max_and_arity() {
        let job = JobGraph::linear(vec![
            OperatorSpec::source("Source", 100.0),
            OperatorSpec::sink("Sink", 100.0),
        ])
        .unwrap();
        let mut fc = cluster(job, 50_000.0, 4);
        fc.submit(&[1, 1]).unwrap();
        fc.run_for(60.0).unwrap();
        let metrics = fc.metrics_over(30.0).unwrap();
        let plan = Ds2Policy::default().plan(&metrics, 50);
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|&p| (1..=50).contains(&p)));
        assert_eq!(plan[0], 50); // 50k rate at 100/inst wants 500, capped.
    }
}

//! M/M/k queueing formulas (Erlang C) for the DRS latency model.

/// Erlang-C probability that an arriving job must wait, for `k` servers
/// at offered load `a = λ/μ`.
///
/// Computed with the numerically stable iterative form of the Erlang-B
/// recurrence followed by the B→C conversion. Returns 1.0 when the system
/// is unstable (`a ≥ k`).
///
/// # Panics
///
/// Panics if `k == 0` or `a` is negative.
pub fn erlang_c(k: u32, a: f64) -> f64 {
    assert!(k > 0, "erlang_c: need at least one server");
    assert!(a >= 0.0, "erlang_c: negative offered load");
    if a == 0.0 {
        return 0.0;
    }
    let rho = a / f64::from(k);
    if rho >= 1.0 {
        return 1.0;
    }
    // Erlang B via the stable recurrence B(0) = 1, B(n) = aB/(n + aB).
    let mut b = 1.0;
    for n in 1..=k {
        b = a * b / (f64::from(n) + a * b);
    }
    // C = B / (1 - ρ(1 - B)).
    b / (1.0 - rho * (1.0 - b))
}

/// Expected sojourn time (waiting + service) in seconds of an M/M/k queue
/// with arrival rate `lambda` (jobs/s) and per-server service rate `mu`
/// (jobs/s). `None` when the system is unstable (`λ ≥ k·μ`).
pub fn mmk_sojourn_time(k: u32, lambda: f64, mu: f64) -> Option<f64> {
    assert!(mu > 0.0, "service rate must be positive");
    if lambda <= 0.0 {
        return Some(1.0 / mu);
    }
    let a = lambda / mu;
    if a >= f64::from(k) {
        return None;
    }
    let c = erlang_c(k, a);
    let wait = c / (f64::from(k) * mu - lambda);
    Some(wait + 1.0 / mu)
}

/// Minimum number of servers for stability at the given rates, i.e. the
/// smallest `k` with `k·μ > λ`. Saturates at `k_max`.
pub fn min_stable_servers(lambda: f64, mu: f64, k_max: u32) -> u32 {
    assert!(mu > 0.0, "service rate must be positive");
    if lambda <= 0.0 {
        return 1;
    }
    let k = (lambda / mu).floor() as u32 + 1;
    k.clamp(1, k_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_c_single_server_equals_rho() {
        // For M/M/1, P(wait) = ρ.
        for rho in [0.1, 0.5, 0.9] {
            assert!((erlang_c(1, rho) - rho).abs() < 1e-12, "rho={rho}");
        }
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic table value: k=5, a=4 (ρ=0.8) ⇒ C ≈ 0.5541.
        let c = erlang_c(5, 4.0);
        assert!((c - 0.5541).abs() < 5e-4, "C = {c}");
    }

    #[test]
    fn erlang_c_bounds_and_saturation() {
        assert_eq!(erlang_c(3, 0.0), 0.0);
        assert_eq!(erlang_c(2, 2.0), 1.0);
        assert_eq!(erlang_c(2, 5.0), 1.0);
        let c = erlang_c(10, 5.0);
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn mm1_sojourn_matches_closed_form() {
        // M/M/1: W = 1/(μ - λ).
        let w = mmk_sojourn_time(1, 4.0, 10.0).unwrap();
        assert!((w - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn sojourn_unstable_is_none() {
        assert_eq!(mmk_sojourn_time(2, 20.0, 10.0), None);
        assert_eq!(mmk_sojourn_time(2, 25.0, 10.0), None);
    }

    #[test]
    fn sojourn_decreases_with_servers() {
        let w2 = mmk_sojourn_time(2, 15.0, 10.0).unwrap();
        let w4 = mmk_sojourn_time(4, 15.0, 10.0).unwrap();
        let w8 = mmk_sojourn_time(8, 15.0, 10.0).unwrap();
        assert!(w2 > w4);
        assert!(w4 > w8);
        // Never below pure service time.
        assert!(w8 >= 0.1);
    }

    #[test]
    fn sojourn_idle_queue_is_service_time() {
        assert_eq!(mmk_sojourn_time(3, 0.0, 5.0), Some(0.2));
    }

    #[test]
    fn min_stable_servers_examples() {
        assert_eq!(min_stable_servers(0.0, 10.0, 50), 1);
        assert_eq!(min_stable_servers(9.0, 10.0, 50), 1);
        assert_eq!(min_stable_servers(10.0, 10.0, 50), 2);
        assert_eq!(min_stable_servers(35.0, 10.0, 50), 4);
        assert_eq!(min_stable_servers(1000.0, 10.0, 50), 50);
    }
}

//! Baseline auto-scaling policies the paper compares against (§V).
//!
//! * [`ds2`] — DS2 (Kalavri et al., OSDI'18): scale each operator to
//!   `⌈target rate / true per-instance rate⌉`, assuming performance grows
//!   linearly with instances. Fast, but the linear assumption bites when
//!   added instances interfere, and without AuTraScale's extra
//!   termination condition it loops on externally-capped jobs.
//! * [`drs`] — DRS (Fu et al.): model every operator as an M/M/k queue,
//!   predict end-to-end latency with a Jackson-network sum, and greedily
//!   add instances where they help the predicted latency most until the
//!   target is met. Evaluated with both the **observed** processing rate
//!   (as published) and the **true** processing rate (paper §V-C runs
//!   both to isolate the metric's effect).
//! * [`queueing`] — the Erlang-C machinery DRS builds on.
//!
//! All policies drive the cluster through
//! [`autrascale_flinkctl::JobControl`], exactly like AuTraScale itself, so
//! comparisons exercise identical control paths.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod drs;
pub mod ds2;
pub mod queueing;

pub use drs::{DrsConfig, DrsOutcome, DrsPolicy, RateMetric};
pub use ds2::{Ds2Config, Ds2Outcome, Ds2Policy};

//! Property-based tests for the M/M/k queueing kernels DRS builds on.

use autrascale_baselines::queueing::{erlang_c, min_stable_servers, mmk_sojourn_time};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Erlang C is a probability.
    #[test]
    fn erlang_c_is_probability(k in 1u32..100, a in 0.0f64..200.0) {
        let c = erlang_c(k, a);
        prop_assert!((0.0..=1.0).contains(&c), "C({k}, {a}) = {c}");
    }

    /// More servers at the same offered load wait less.
    #[test]
    fn erlang_c_decreases_in_servers(k in 1u32..50, a in 0.01f64..40.0) {
        let c1 = erlang_c(k, a);
        let c2 = erlang_c(k + 1, a);
        prop_assert!(c2 <= c1 + 1e-12, "C({k})={c1} C({})={c2}", k + 1);
    }

    /// Higher offered load waits more (fixed servers).
    #[test]
    fn erlang_c_increases_in_load(k in 1u32..50, a in 0.01f64..30.0, da in 0.0f64..10.0) {
        let c1 = erlang_c(k, a);
        let c2 = erlang_c(k, a + da);
        prop_assert!(c2 >= c1 - 1e-12);
    }

    /// Sojourn time, when defined, is at least the pure service time and
    /// finite; undefined exactly when unstable.
    #[test]
    fn sojourn_dominates_service_time(
        k in 1u32..50,
        lambda in 0.0f64..100.0,
        mu in 0.1f64..50.0,
    ) {
        match mmk_sojourn_time(k, lambda, mu) {
            Some(w) => {
                prop_assert!(w >= 1.0 / mu - 1e-12, "W {w} < 1/mu {}", 1.0 / mu);
                prop_assert!(w.is_finite());
                prop_assert!(lambda < f64::from(k) * mu);
            }
            None => prop_assert!(lambda >= f64::from(k) * mu - 1e-9),
        }
    }

    /// Adding a server never increases the sojourn time.
    #[test]
    fn sojourn_monotone_in_servers(
        k in 1u32..30,
        lambda in 0.1f64..50.0,
        mu in 0.5f64..20.0,
    ) {
        if let Some(w1) = mmk_sojourn_time(k, lambda, mu) {
            let w2 = mmk_sojourn_time(k + 1, lambda, mu).expect("still stable");
            prop_assert!(w2 <= w1 + 1e-12, "W({k})={w1} W({})={w2}", k + 1);
        }
    }

    /// `min_stable_servers` really is minimal: stable at k, unstable at
    /// k−1 (unless clamped).
    #[test]
    fn min_stable_is_minimal(lambda in 0.0f64..500.0, mu in 0.1f64..50.0) {
        let k_max = 1000;
        let k = min_stable_servers(lambda, mu, k_max);
        prop_assert!(k >= 1);
        if k < k_max {
            prop_assert!(f64::from(k) * mu > lambda, "k={k} not stable");
            if k > 1 {
                prop_assert!(
                    f64::from(k - 1) * mu <= lambda + 1e-9,
                    "k−1={} already stable", k - 1
                );
            }
        }
    }
}

//! The suggest–observe Bayesian-optimization loop.
//!
//! [`BayesOpt`] owns the observation history and, on each
//! [`suggest`](BayesOpt::suggest), fits a fresh GP surrogate (hyperparameters
//! re-optimized, as the paper's Algorithm 1 retrains the model every
//! iteration) and maximizes expected improvement over the candidate set.
//! Candidate generation enumerates the whole space when it is small and
//! falls back to seeded random sampling plus ±1 local refinement around the
//! best candidates otherwise, so suggestion cost stays bounded for
//! high-arity DAGs.

use crate::acquisition::{
    expected_improvement_with, probability_of_feasibility, probability_of_feasibility_with,
    thompson_sample, upper_confidence_bound_with,
};
use crate::constraint::{ConstraintMode, ConstraintModel};
use crate::space::SearchSpace;
use crate::{to_features, write_features};
use autrascale_gp::{
    fit_auto_warm, fit_fitc, fit_subset, FitOptions, FitcSurrogate, GaussianProcess,
    PredictScratch, SparseStrategy, Surrogate, WarmStart,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::BTreeSet;
use std::fmt;

/// Below this many candidates the scoring loop stays serial — rayon's
/// dispatch overhead would outweigh the per-candidate GP prediction.
const PAR_SCORING_THRESHOLD: usize = 64;

/// Which acquisition function ranks candidates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// ξ-augmented expected improvement (the paper's choice, Eqs. 5–7);
    /// ξ comes from [`BoOptions::xi`].
    ExpectedImprovement,
    /// Upper confidence bound `μ + β·σ`.
    Ucb {
        /// Optimism weight β.
        beta: f64,
    },
    /// Approximate (marginal) Thompson sampling.
    Thompson,
}

/// Tuning knobs of the BO loop.
#[derive(Debug, Clone)]
pub struct BoOptions {
    /// Acquisition function (the paper uses expected improvement).
    pub acquisition: Acquisition,
    /// EI exploration parameter ξ (paper Eq. 6).
    pub xi: f64,
    /// Enumerate the space exhaustively when its cardinality is at most
    /// this; otherwise sample.
    pub max_enumeration: u64,
    /// Number of random candidates when sampling.
    pub sampled_candidates: usize,
    /// Rounds of ±1 local refinement applied to the EI maximizer.
    pub local_refinement_rounds: usize,
    /// GP hyperparameter fitting options.
    pub fit: FitOptions,
    /// Cap on surrogate training points: beyond it, farthest-point
    /// subset-of-data sparsification kicks in (keeps long-running loops
    /// O(m³) instead of O(n³); the paper's §VII "reduce the training
    /// costs").
    pub max_surrogate_points: usize,
    /// Which sparse approximation takes over past
    /// [`max_surrogate_points`](Self::max_surrogate_points):
    /// [`SparseStrategy::SubsetOfData`] (the default) trains an exact GP
    /// on a farthest-point subset and discards the rest, while
    /// [`SparseStrategy::Fitc`] keeps every observation in the likelihood
    /// through an inducing-point low-rank factorization (O(n·m²) instead
    /// of O(m³) on a subset, but no observation is thrown away). Below
    /// the cap both strategies run the same exact GP.
    pub sparse_strategy: SparseStrategy,
    /// Hyperparameter-refit period of the incremental observe→suggest
    /// path. `1` (the default) reproduces the paper's Algorithm 1
    /// exactly: a full `fit_auto` before every suggestion. With `k > 1`,
    /// the hyperparameter search runs only once `k` new observations have
    /// accumulated (warm-started from the previous optimum; see
    /// [`WarmStart`]); in between, [`BayesOpt::observe`] extends the
    /// cached surrogate with a rank-1 Cholesky append — O(n²) instead of
    /// O(n³)·restarts per iteration, with predictions bit-identical to a
    /// from-scratch refit at the same hyperparameters.
    pub refit_every: usize,
    /// Per-observation log-marginal-likelihood degradation a warm-started
    /// hyperparameter fit may show before escalating to the full
    /// multi-start search.
    pub warm_lml_tolerance: f64,
    /// Test/diagnostic mode: keep the incremental path's exact refit
    /// schedule but rebuild the surrogate from scratch instead of rank-1
    /// updates. The parity suite compares this against the default
    /// incremental path; production code leaves it `false`.
    pub force_full_refit: bool,
    /// SLO-safe acquisition mode (see [`ConstraintMode`]): with
    /// [`ConstraintMode::Slo`], a second GP over constraint observations
    /// recorded via [`BayesOpt::observe_constrained`] multiplies EI by
    /// the probability of feasibility and hard-rejects candidates below
    /// the confidence level. The [`ConstraintMode::Unconstrained`]
    /// default leaves every seed code path untouched — suggestion
    /// trajectories are bit-identical.
    pub constraint: ConstraintMode,
    /// Seed for candidate sampling.
    pub seed: u64,
}

impl Default for BoOptions {
    fn default() -> Self {
        Self {
            acquisition: Acquisition::ExpectedImprovement,
            xi: 0.01,
            max_enumeration: 4096,
            sampled_candidates: 2048,
            local_refinement_rounds: 3,
            fit: FitOptions::default(),
            max_surrogate_points: 200,
            sparse_strategy: SparseStrategy::SubsetOfData,
            refit_every: 1,
            warm_lml_tolerance: 0.25,
            force_full_refit: false,
            constraint: ConstraintMode::Unconstrained,
            seed: 0xB0,
        }
    }
}

/// Errors from the BO loop.
#[derive(Debug, Clone, PartialEq)]
pub enum BoError {
    /// `suggest` was called before any observation.
    NoObservations,
    /// The surrogate model could not be fitted.
    SurrogateFit(String),
    /// An observed configuration had the wrong arity for the space.
    ArityMismatch { expected: usize, got: usize },
}

impl fmt::Display for BoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoError::NoObservations => write!(f, "no observations yet"),
            BoError::SurrogateFit(e) => write!(f, "surrogate fit failed: {e}"),
            BoError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "configuration arity {got}, space has {expected} operators"
                )
            }
        }
    }
}

impl std::error::Error for BoError {}

/// Cached surrogate of the incremental observe→suggest path.
#[derive(Debug, Clone)]
struct SurrogateState {
    gp: GaussianProcess,
    /// `observations.len()` at the last hyperparameter fit — the refit
    /// schedule counts new observations from here.
    hyperfit_len: usize,
    /// The model can no longer be extended in place (a rank-1 append
    /// failed, e.g. on a duplicate configuration); the next suggest
    /// rebuilds it from scratch at the same hyperparameters, where the
    /// full jitter-escalation ladder runs.
    dirty: bool,
}

/// Bayesian optimizer over a [`SearchSpace`] of parallelism vectors,
/// maximizing an externally observed score.
#[derive(Debug, Clone)]
pub struct BayesOpt {
    space: SearchSpace,
    options: BoOptions,
    observations: Vec<(Vec<u32>, f64)>,
    surrogate: Option<SurrogateState>,
    /// Latency/lag surrogate of the SLO-safe mode; `None` whenever
    /// [`BoOptions::constraint`] is [`ConstraintMode::Unconstrained`], so
    /// the default path carries no constraint state at all.
    constraint: Option<ConstraintModel>,
    rng: StdRng,
}

impl BayesOpt {
    /// Creates an optimizer with no observations.
    pub fn new(space: SearchSpace, options: BoOptions) -> Self {
        let rng = StdRng::seed_from_u64(options.seed);
        let constraint = match options.constraint {
            ConstraintMode::Unconstrained => None,
            ConstraintMode::Slo { .. } => Some(ConstraintModel::new(
                options.fit.clone(),
                options.max_surrogate_points,
            )),
        };
        Self {
            space,
            options,
            observations: Vec::new(),
            surrogate: None,
            constraint,
            rng,
        }
    }

    /// Records a scored configuration. Re-observing a configuration is
    /// allowed (streaming QoS is noisy); both samples are kept.
    ///
    /// On the incremental path (`refit_every > 1`) this also folds the new
    /// sample into the cached surrogate with a rank-1 Cholesky append —
    /// O(n²), hyperparameters unchanged. Appends that would make the Gram
    /// matrix singular (duplicate configurations at low noise) mark the
    /// cache dirty instead; the next [`suggest`](Self::suggest) rebuilds
    /// it through the jittered full-refit fallback.
    ///
    /// # Panics
    ///
    /// Panics if `k` has the wrong arity for the space.
    pub fn observe(&mut self, k: Vec<u32>, score: f64) {
        assert_eq!(k.len(), self.space.dim(), "observe: arity mismatch");
        self.observations.push((k, score));
        if self.incremental_active() {
            self.extend_cached_surrogate();
        } else {
            self.surrogate = None;
        }
    }

    /// [`observe`](Self::observe) plus a constraint-metric sample for the
    /// SLO-safe mode: the observed value (processing latency in ms for
    /// Algorithm 1) additionally trains the [`ConstraintModel`] that
    /// gates future suggestions.
    ///
    /// Under [`ConstraintMode::Unconstrained`] the constraint value is
    /// discarded and this is *exactly* [`observe`](Self::observe) — same
    /// state, same RNG stream, bit-identical later suggestions — so
    /// callers can thread their constraint metric unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `k` has the wrong arity for the space.
    pub fn observe_constrained(&mut self, k: Vec<u32>, score: f64, constraint_value: f64) {
        if let Some(model) = &mut self.constraint {
            model.observe(&k, constraint_value);
        }
        self.observe(k, score);
    }

    /// The constraint surrogate's recorded metric values (empty in
    /// unconstrained mode) — diagnostics and tests.
    pub fn constraint_values(&self) -> &[f64] {
        self.constraint.as_ref().map_or(&[], |m| m.values())
    }

    /// Fits the constraint GP the next suggestion will gate with, plus the
    /// mode's threshold and confidence. `None` when unconstrained, when
    /// fewer than two constraint samples exist (cold start: nothing to
    /// gate with yet), or when the constraint fit fails (the suggestion
    /// then degrades to the unconstrained score rather than erroring out
    /// of the control loop).
    fn constraint_context(&self) -> Option<(GaussianProcess, f64, f64)> {
        let ConstraintMode::Slo {
            threshold,
            confidence,
        } = self.options.constraint
        else {
            return None;
        };
        let model = self.constraint.as_ref()?;
        if model.len() < 2 {
            return None;
        }
        model.fit().ok().map(|gp| (gp, threshold, confidence))
    }

    /// `true` while the incremental path owns the surrogate: a refit
    /// period is configured and the training set is still below the
    /// sparsification cap (beyond it, subset-of-data refits take over and
    /// rank-1 appends no longer apply).
    fn incremental_active(&self) -> bool {
        self.options.refit_every > 1 && self.observations.len() <= self.options.max_surrogate_points
    }

    /// Folds the newest observation into the cached surrogate, flagging
    /// the cache dirty when the append cannot be done in place.
    fn extend_cached_surrogate(&mut self) {
        if self.options.force_full_refit {
            // Parity mode: the surrogate is synced from scratch on the
            // next suggest instead.
            return;
        }
        let Some(state) = &mut self.surrogate else {
            return;
        };
        if state.dirty || state.gp.len() + 1 != self.observations.len() {
            state.dirty = true;
            return;
        }
        let (k, score) = self.observations.last().expect("just pushed");
        if state.gp.extend_observation(to_features(k), *score).is_err() {
            state.dirty = true;
        }
    }

    /// All observations so far.
    pub fn observations(&self) -> &[(Vec<u32>, f64)] {
        &self.observations
    }

    /// The observation with the highest score.
    pub fn best(&self) -> Option<(&[u32], f64)> {
        self.observations
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(k, s)| (k.as_slice(), *s))
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Fits the surrogate on the current observations from scratch
    /// (hyperparameters re-optimized; farthest-point sparsification past
    /// the cap). This is the legacy Algorithm 1 path — the incremental
    /// schedule lives in [`surrogate`](Self::surrogate).
    pub fn fit_surrogate(&self) -> Result<GaussianProcess, BoError> {
        if self.observations.is_empty() {
            return Err(BoError::NoObservations);
        }
        let (x, y) = self.training_data();
        fit_subset(x, y, self.options.max_surrogate_points, &self.options.fit)
            .map_err(|e| BoError::SurrogateFit(e.to_string()))
    }

    /// Observation features/targets in insertion order.
    fn training_data(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x = self
            .observations
            .iter()
            .map(|(k, _)| to_features(k))
            .collect();
        let y = self.observations.iter().map(|(_, s)| *s).collect();
        (x, y)
    }

    /// The surrogate the next [`suggest`](Self::suggest) will score with,
    /// fitting or updating as the incremental policy dictates:
    ///
    /// * `refit_every == 1` (default) or past the sparsification cap —
    ///   a fresh [`fit_surrogate`](Self::fit_surrogate) every call;
    /// * otherwise the cached model is first *synced* to all observations
    ///   at its current hyperparameters (already done by `observe`'s
    ///   rank-1 appends unless the cache is dirty or
    ///   [`BoOptions::force_full_refit`] is set, in which case it refits
    ///   from scratch at the same fixed hyperparameters — bit-identical
    ///   either way), then a warm-started hyperparameter fit runs iff
    ///   `refit_every` new observations have accumulated.
    pub fn surrogate(&mut self) -> Result<GaussianProcess, BoError> {
        if self.observations.is_empty() {
            return Err(BoError::NoObservations);
        }
        if !self.incremental_active() {
            self.surrogate = None;
            return self.fit_surrogate();
        }
        let n = self.observations.len();

        // Sync the cached model to n observations at fixed hyperparameters.
        if let Some(state) = &self.surrogate {
            if state.dirty || state.gp.len() != n {
                let config = state.gp.config().clone();
                let (x, y) = self.training_data();
                match GaussianProcess::fit(x, y, config) {
                    Ok(gp) => {
                        let state = self.surrogate.as_mut().expect("checked above");
                        state.gp = gp;
                        state.dirty = false;
                    }
                    // Not factorizable even with full jitter escalation:
                    // drop the cache and let the hyperparameter search
                    // below pick a config that is.
                    Err(_) => self.surrogate = None,
                }
            }
        }

        let hyperfit_due = match &self.surrogate {
            None => true,
            Some(state) => n >= state.hyperfit_len + self.options.refit_every,
        };
        if hyperfit_due {
            let warm = self
                .surrogate
                .as_ref()
                .map(|s| WarmStart::from_model(&s.gp, self.options.warm_lml_tolerance));
            let (x, y) = self.training_data();
            let gp = fit_auto_warm(x, y, &self.options.fit, warm.as_ref())
                .map_err(|e| BoError::SurrogateFit(e.to_string()))?;
            self.surrogate = Some(SurrogateState {
                gp: gp.clone(),
                hyperfit_len: n,
                dirty: false,
            });
            return Ok(gp);
        }
        Ok(self.surrogate.as_ref().expect("synced above").gp.clone())
    }

    /// Suggests the next configuration to evaluate: the EI maximizer over
    /// the candidate set, preferring configurations not yet observed.
    ///
    /// Past [`BoOptions::max_surrogate_points`] the surrogate engine is
    /// chosen by [`BoOptions::sparse_strategy`]; below the cap (and for
    /// the default subset-of-data strategy at any size) this is the exact
    /// GP path, unchanged.
    pub fn suggest(&mut self) -> Result<Vec<u32>, BoError> {
        if self.options.sparse_strategy == SparseStrategy::Fitc
            && self.observations.len() > self.options.max_surrogate_points
        {
            let fitc = self.fit_fitc_surrogate()?;
            return Ok(self.suggest_with(&fitc));
        }
        let gp = self.surrogate()?;
        Ok(self.suggest_with(&gp))
    }

    /// Fits a FITC inducing-point surrogate on the full observation
    /// history, with inducing sites picked by the same incumbent-seeded
    /// farthest-point selection as the subset-of-data path and
    /// hyperparameters tuned against the FITC marginal likelihood.
    pub fn fit_fitc_surrogate(&self) -> Result<FitcSurrogate, BoError> {
        if self.observations.is_empty() {
            return Err(BoError::NoObservations);
        }
        let (x, y) = self.training_data();
        fit_fitc(x, y, self.options.max_surrogate_points, &self.options.fit)
            .map_err(|e| BoError::SurrogateFit(e.to_string()))
    }

    /// Like [`suggest`](Self::suggest) but with a caller-provided surrogate
    /// (used by the transfer-learning path, where the surrogate combines a
    /// prior model with a residual model).
    ///
    /// EI and UCB candidate scoring runs in parallel (rayon) above
    /// [`PAR_SCORING_THRESHOLD`] candidates; the winner is picked by a
    /// serial index-ordered scan with the same comparison and tie-break as
    /// the serial loop, so the suggestion is identical either way.
    /// Thompson sampling consumes the loop's seeded RNG per candidate and
    /// therefore always scores serially, keeping runs replayable.
    pub fn suggest_with<S: Surrogate + Sync>(&mut self, gp: &S) -> Vec<u32> {
        let f_best = self
            .observations
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        let f_best = if f_best.is_finite() {
            f_best
        } else {
            gp.best_observed()
        };

        match self.options.acquisition {
            Acquisition::Thompson => self.suggest_thompson(gp, f_best),
            Acquisition::ExpectedImprovement | Acquisition::Ucb { .. } => {
                let candidates = self.candidates();
                let parallel = candidates.len() >= PAR_SCORING_THRESHOLD;
                self.suggest_ranked(gp, f_best, candidates, parallel)
            }
        }
    }

    /// Deterministic-acquisition path (EI / UCB): score every candidate
    /// (in parallel when `parallel`), then select serially in index order.
    fn suggest_ranked<S: Surrogate + Sync>(
        &mut self,
        gp: &S,
        f_best: f64,
        mut candidates: Vec<Vec<u32>>,
        parallel: bool,
    ) -> Vec<u32> {
        let xi = self.options.xi;
        let acquisition = self.options.acquisition;
        // SLO-safe mode only: fit the latency surrogate once per suggest.
        // `None` in unconstrained mode, leaving the closure below on the
        // seed's exact arithmetic.
        let constraint_ctx = self.constraint_context();
        let score = |scratch: &mut PredictScratch, feats: &mut Vec<f64>, k: &[u32]| -> f64 {
            write_features(k, feats);
            let base = match acquisition {
                Acquisition::ExpectedImprovement => {
                    expected_improvement_with(gp, feats, f_best, xi, scratch)
                }
                Acquisition::Ucb { beta } => {
                    // Shift so "no better than the incumbent" maps near zero,
                    // keeping the flat-landscape fallback meaningful.
                    upper_confidence_bound_with(gp, feats, beta, scratch) - f_best
                }
                Acquisition::Thompson => unreachable!("Thompson uses the serial path"),
            };
            let Some((cgp, threshold, confidence)) = &constraint_ctx else {
                return base;
            };
            let pof = probability_of_feasibility_with(cgp, feats, *threshold, scratch);
            if pof < *confidence {
                // Hard gate: predicted-infeasible candidates are never
                // proposed, no matter how promising their EI.
                return f64::NEG_INFINITY;
            }
            match acquisition {
                // Gardner-style constrained EI: EI · PoF. At PoF = 1 the
                // product is bitwise plain EI.
                Acquisition::ExpectedImprovement => base * pof,
                // UCB keeps its own scale; the gate alone constrains it.
                _ => base,
            }
        };

        let mut scratch = PredictScratch::default();
        let mut feats = Vec::new();
        let mut best_k;
        let mut best_ei;
        if candidates.is_empty() {
            best_k = self.space.lower().to_vec();
            best_ei = score(&mut scratch, &mut feats, &best_k);
        } else {
            let scores: Vec<f64> = if parallel {
                candidates
                    .par_iter()
                    .map_init(
                        || (PredictScratch::default(), Vec::new()),
                        |(scratch, feats), k| score(scratch, feats, k),
                    )
                    .collect()
            } else {
                candidates
                    .iter()
                    .map(|k| score(&mut scratch, &mut feats, k))
                    .collect()
            };
            // Serial argmax replicating the sequential fold: start from the
            // last candidate, scan the rest in order, replace on strictly
            // better score or equal score with the cheaper configuration.
            let mut best = candidates.len() - 1;
            for i in 0..candidates.len() - 1 {
                if scores[i] > scores[best]
                    || (scores[i] == scores[best] && tie_break(&candidates[i], &candidates[best]))
                {
                    best = i;
                }
            }
            best_ei = scores[best];
            best_k = candidates.swap_remove(best);
        }

        // Local ±1 refinement around the winner (serial: the neighbor set
        // is tiny and each round depends on the previous winner).
        for _ in 0..self.options.local_refinement_rounds {
            let mut improved = false;
            for neighbor in self.space.neighbors(&best_k) {
                let ei = score(&mut scratch, &mut feats, &neighbor);
                if ei > best_ei {
                    best_ei = ei;
                    best_k = neighbor;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }

        // If EI is flat zero everywhere (degenerate surrogate) — or, in
        // SLO-safe mode, every candidate was gated to −∞ — prefer an
        // unobserved configuration so the loop still explores; constrained
        // exploration picks the unseen candidate most likely feasible.
        if best_ei <= 0.0 {
            let fallback = match &constraint_ctx {
                Some((cgp, threshold, _)) => self.first_unseen_feasible(cgp, *threshold),
                None => self.first_unseen(),
            };
            if let Some(unseen) = fallback {
                return unseen;
            }
        }
        best_k
    }

    /// Thompson-sampling path: serial by construction — each candidate
    /// consumes draws from the loop's seeded RNG in a fixed order. In
    /// SLO-safe mode predicted-infeasible candidates are gated to −∞
    /// *before* sampling, so gated candidates consume no RNG draws.
    fn suggest_thompson<S: Surrogate>(&mut self, gp: &S, f_best: f64) -> Vec<u32> {
        let constraint_ctx = self.constraint_context();
        let mut candidates = self.candidates();
        let rng = &mut self.rng;
        let ctx = &constraint_ctx;
        let mut score = move |k: &[u32]| {
            let feats = to_features(k);
            if let Some((cgp, threshold, confidence)) = ctx {
                if probability_of_feasibility(cgp, &feats, *threshold) < *confidence {
                    return f64::NEG_INFINITY;
                }
            }
            thompson_sample(gp, &feats, rng) - f_best
        };

        let mut best_k = candidates
            .pop()
            .unwrap_or_else(|| self.space.lower().to_vec());
        let mut best_ei = score(&best_k);
        for k in candidates {
            let ei = score(&k);
            if ei > best_ei || (ei == best_ei && tie_break(&k, &best_k)) {
                best_ei = ei;
                best_k = k;
            }
        }

        // Local ±1 refinement around the winner.
        for _ in 0..self.options.local_refinement_rounds {
            let mut improved = false;
            for neighbor in self.space.neighbors(&best_k) {
                let ei = score(&neighbor);
                if ei > best_ei {
                    best_ei = ei;
                    best_k = neighbor;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }

        if best_ei <= 0.0 {
            let fallback = match &constraint_ctx {
                Some((cgp, threshold, _)) => self.first_unseen_feasible(cgp, *threshold),
                None => self.first_unseen(),
            };
            if let Some(unseen) = fallback {
                return unseen;
            }
        }
        best_k
    }

    /// Candidate pool: exhaustive for small spaces, sampled otherwise.
    fn candidates(&mut self) -> Vec<Vec<u32>> {
        if self.space.cardinality() <= self.options.max_enumeration {
            self.space.enumerate()
        } else {
            let mut out = Vec::with_capacity(self.options.sampled_candidates + 2);
            // Always consider the box corners: cheapest and most provisioned.
            out.push(self.space.lower().to_vec());
            out.push(self.space.upper().to_vec());
            for _ in 0..self.options.sampled_candidates {
                out.push(self.space.sample(&mut self.rng));
            }
            out
        }
    }

    /// First configuration (in enumeration or sample order) that has not
    /// been observed yet.
    ///
    /// Determinism audit (R3): the set is used for *membership only* and
    /// the candidate list is walked in its own deterministic order, so
    /// iteration order of the set never reaches a result. A `BTreeSet`
    /// still beats a `HashSet` here — it keeps the whole crate free of
    /// hash-ordered collections, so no future refactor can start iterating
    /// one by accident.
    fn first_unseen(&mut self) -> Option<Vec<u32>> {
        let candidates = self.candidates();
        let seen: BTreeSet<&[u32]> = self
            .observations
            .iter()
            .map(|(k, _)| k.as_slice())
            .collect();
        candidates
            .into_iter()
            .find(|k| !seen.contains(k.as_slice()))
    }

    /// SLO-safe counterpart of [`first_unseen`](Self::first_unseen): among
    /// unobserved candidates, the one the constraint surrogate deems most
    /// likely feasible (ties broken toward the cheaper configuration).
    /// Used when the hard gate rejected every candidate — the safest
    /// exploratory probe instead of an arbitrary one.
    fn first_unseen_feasible(&mut self, cgp: &GaussianProcess, threshold: f64) -> Option<Vec<u32>> {
        let candidates = self.candidates();
        let seen: BTreeSet<&[u32]> = self
            .observations
            .iter()
            .map(|(k, _)| k.as_slice())
            .collect();
        let mut scratch = PredictScratch::default();
        let mut feats = Vec::new();
        let mut best: Option<(Vec<u32>, f64)> = None;
        for k in candidates {
            if seen.contains(k.as_slice()) {
                continue;
            }
            write_features(&k, &mut feats);
            let pof = probability_of_feasibility_with(cgp, &feats, threshold, &mut scratch);
            let better = match &best {
                None => true,
                Some((bk, bp)) => pof > *bp || (pof == *bp && tie_break(&k, bk)),
            };
            if better {
                best = Some((k, pof));
            }
        }
        best.map(|(k, _)| k)
    }
}

/// Suggests the next configuration for every optimizer in the slice at
/// once — the multi-tenant entry point of a fleet control plane, where
/// each job owns an independent [`BayesOpt`] and a scheduling round wants
/// all of their proposals together.
///
/// The optimizers share no state, so suggestions run in parallel (rayon)
/// with an order-preserving collect: the result at index `i` is bitwise
/// identical to calling `optimizers[i].suggest()` in a serial loop over
/// the slice — including each optimizer's RNG advancement. Per-optimizer
/// failures (e.g. [`BoError::NoObservations`] for a cold tenant) surface
/// in that tenant's slot without disturbing the rest of the batch.
pub fn suggest_batch(optimizers: &mut [BayesOpt]) -> Vec<Result<Vec<u32>, BoError>> {
    optimizers.par_iter_mut().map(BayesOpt::suggest).collect()
}

/// Deterministic tie-break: prefer the configuration with smaller total
/// parallelism (cheaper), then lexicographically smaller.
fn tie_break(a: &[u32], b: &[u32]) -> bool {
    let sa: u64 = a.iter().map(|&v| v as u64).sum();
    let sb: u64 = b.iter().map(|&v| v as u64).sum();
    sa < sb || (sa == sb && a < b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hidden objective with a unique maximum at (4, 2).
    fn hidden(k: &[u32]) -> f64 {
        let d0 = k[0] as f64 - 4.0;
        let d1 = k[1] as f64 - 2.0;
        1.0 - 0.05 * (d0 * d0 + d1 * d1)
    }

    fn seeded_bo() -> BayesOpt {
        let space = SearchSpace::new(vec![1, 1], vec![8, 8]).unwrap();
        let mut bo = BayesOpt::new(space, BoOptions::default());
        for k in [[1u32, 1], [8, 8], [1, 8], [8, 1], [4, 4]] {
            bo.observe(k.to_vec(), hidden(&k));
        }
        bo
    }

    #[test]
    fn first_unseen_is_deterministic_and_insertion_order_independent() {
        // Regression for the R3 audit: the seen-set is membership-only, so
        // the pick must depend only on candidate enumeration order — not on
        // the order observations were recorded (which a hash-iterated set
        // could have leaked).
        let space = SearchSpace::new(vec![1, 1], vec![4, 4]).unwrap();
        let mut forward = BayesOpt::new(space.clone(), BoOptions::default());
        let mut reversed = BayesOpt::new(space, BoOptions::default());
        let obs = [[1u32, 1], [1, 2], [2, 1], [4, 4], [3, 3]];
        for k in obs {
            forward.observe(k.to_vec(), hidden(&k));
        }
        for k in obs.iter().rev() {
            reversed.observe(k.to_vec(), hidden(k));
        }
        let a = forward.first_unseen();
        let b = reversed.first_unseen();
        assert!(a.is_some());
        assert_eq!(a, b);
        // And repeated calls on the same state agree with themselves.
        assert_eq!(a, forward.first_unseen());
    }

    #[test]
    fn suggest_without_observations_errors() {
        let space = SearchSpace::new(vec![1], vec![4]).unwrap();
        let mut bo = BayesOpt::new(space, BoOptions::default());
        assert!(matches!(bo.suggest(), Err(BoError::NoObservations)));
    }

    #[test]
    fn converges_to_hidden_optimum() {
        let mut bo = seeded_bo();
        for _ in 0..12 {
            let k = bo.suggest().unwrap();
            let s = hidden(&k);
            bo.observe(k, s);
        }
        let (best_k, best_s) = bo.best().unwrap();
        assert!(best_s > 0.98, "best score {best_s} at {best_k:?}");
    }

    #[test]
    fn suggestions_stay_in_space() {
        let mut bo = seeded_bo();
        for _ in 0..5 {
            let k = bo.suggest().unwrap();
            assert!(bo.space().contains(&k), "{k:?}");
            let s = hidden(&k);
            bo.observe(k, s);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut bo = seeded_bo();
            let mut trace = Vec::new();
            for _ in 0..4 {
                let k = bo.suggest().unwrap();
                let s = hidden(&k);
                trace.push(k.clone());
                bo.observe(k, s);
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn best_tracks_maximum() {
        let mut bo = seeded_bo();
        let (_, s) = bo.best().unwrap();
        assert!((s - hidden(&[4, 4])).abs() < 1e-12);
        bo.observe(vec![4, 2], hidden(&[4, 2]));
        let (k, _) = bo.best().unwrap();
        assert_eq!(k, &[4, 2]);
    }

    #[test]
    fn large_space_uses_sampling() {
        // 50^5 ≫ max_enumeration: must not hang.
        let space = SearchSpace::new(vec![1; 5], vec![50; 5]).unwrap();
        let mut bo = BayesOpt::new(
            space,
            BoOptions {
                sampled_candidates: 128,
                ..Default::default()
            },
        );
        bo.observe(vec![1; 5], 0.1);
        bo.observe(vec![50; 5], 0.4);
        bo.observe(vec![25; 5], 0.9);
        let k = bo.suggest().unwrap();
        assert_eq!(k.len(), 5);
        assert!(bo.space().contains(&k));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn observe_wrong_arity_panics() {
        let space = SearchSpace::new(vec![1, 1], vec![4, 4]).unwrap();
        let mut bo = BayesOpt::new(space, BoOptions::default());
        bo.observe(vec![1], 0.5);
    }

    #[test]
    fn parallel_and_serial_scoring_pick_identical_configuration() {
        // 10³ = 1000 candidates — well above PAR_SCORING_THRESHOLD, and the
        // space enumerates deterministically (no RNG involved), so the two
        // paths see the same candidate list.
        let hidden3 = |k: &[u32]| {
            let d0 = k[0] as f64 - 6.0;
            let d1 = k[1] as f64 - 3.0;
            let d2 = k[2] as f64 - 8.0;
            1.0 - 0.02 * (d0 * d0 + d1 * d1 + d2 * d2)
        };
        for acquisition in [
            Acquisition::ExpectedImprovement,
            Acquisition::Ucb { beta: 1.5 },
        ] {
            let make = || {
                let space = SearchSpace::new(vec![1, 1, 1], vec![10, 10, 10]).unwrap();
                let mut bo = BayesOpt::new(
                    space,
                    BoOptions {
                        acquisition,
                        ..Default::default()
                    },
                );
                for k in [
                    [1u32, 1, 1],
                    [10, 10, 10],
                    [1, 10, 1],
                    [10, 1, 10],
                    [5, 5, 5],
                    [3, 7, 2],
                ] {
                    bo.observe(k.to_vec(), hidden3(&k));
                }
                bo
            };
            let mut bo_par = make();
            let mut bo_ser = make();
            let gp = bo_par.fit_surrogate().unwrap();
            let f_best = bo_par
                .observations()
                .iter()
                .map(|(_, s)| *s)
                .fold(f64::NEG_INFINITY, f64::max);
            let candidates = bo_par.candidates();
            assert!(candidates.len() >= PAR_SCORING_THRESHOLD);
            let picked_par = bo_par.suggest_ranked(&gp, f_best, candidates.clone(), true);
            let picked_ser = bo_ser.suggest_ranked(&gp, f_best, candidates, false);
            assert_eq!(picked_par, picked_ser, "{acquisition:?}");
        }
    }

    #[test]
    fn suggest_batch_matches_serial_loop_bitwise() {
        // Tenants with different spaces, seeds and histories: the batch
        // entry point must reproduce the serial in-order loop exactly,
        // including each optimizer's post-suggest RNG state (checked by
        // running a second round on the same optimizers).
        let make_fleet = || {
            (0..6u64)
                .map(|t| {
                    let dims = 1 + (t as usize % 3);
                    let space = SearchSpace::new(vec![1; dims], vec![6 + t as u32; dims]).unwrap();
                    let mut bo = BayesOpt::new(
                        space,
                        BoOptions {
                            seed: 0xB0 + t,
                            ..Default::default()
                        },
                    );
                    if t != 4 {
                        // Tenant 4 stays cold: its slot must carry the
                        // NoObservations error without poisoning the batch.
                        bo.observe(vec![1; dims], 0.2);
                        bo.observe(vec![5; dims], 0.7 + t as f64 * 0.01);
                    }
                    bo
                })
                .collect::<Vec<_>>()
        };
        let mut batched = make_fleet();
        let mut serial = make_fleet();
        for round in 0..3 {
            let a = suggest_batch(&mut batched);
            let b: Vec<_> = serial.iter_mut().map(BayesOpt::suggest).collect();
            assert_eq!(a, b, "round {round}");
            for (bo, result) in batched.iter_mut().zip(&a) {
                if let Ok(k) = result {
                    bo.observe(k.clone(), 0.5);
                }
            }
            for (bo, result) in serial.iter_mut().zip(&b) {
                if let Ok(k) = result {
                    bo.observe(k.clone(), 0.5);
                }
            }
        }
        assert!(matches!(
            suggest_batch(&mut batched)[4],
            Err(BoError::NoObservations)
        ));
    }

    #[test]
    fn tie_break_prefers_cheaper() {
        assert!(tie_break(&[1, 2], &[2, 2]));
        assert!(!tie_break(&[3, 2], &[2, 2]));
        assert!(tie_break(&[1, 3], &[2, 2]));
        assert!(!tie_break(&[2, 2], &[2, 2]));
    }
}

#[cfg(test)]
mod acquisition_dispatch_tests {
    use super::*;

    fn hidden(k: &[u32]) -> f64 {
        let d0 = k[0] as f64 - 4.0;
        let d1 = k[1] as f64 - 2.0;
        1.0 - 0.05 * (d0 * d0 + d1 * d1)
    }

    fn run_with(acquisition: Acquisition) -> f64 {
        let space = SearchSpace::new(vec![1, 1], vec![8, 8]).unwrap();
        let mut bo = BayesOpt::new(
            space,
            BoOptions {
                acquisition,
                ..Default::default()
            },
        );
        for k in [[1u32, 1], [8, 8], [1, 8], [8, 1], [4, 4]] {
            bo.observe(k.to_vec(), hidden(&k));
        }
        for _ in 0..10 {
            let k = bo.suggest().unwrap();
            let s = hidden(&k);
            bo.observe(k, s);
        }
        bo.best().unwrap().1
    }

    #[test]
    fn ucb_converges_like_ei() {
        assert!(run_with(Acquisition::Ucb { beta: 1.5 }) > 0.95);
    }

    #[test]
    fn thompson_converges_and_is_replayable() {
        assert!(run_with(Acquisition::Thompson) > 0.9);
        // Seeded RNG: identical traces across runs.
        let a = run_with(Acquisition::Thompson);
        let b = run_with(Acquisition::Thompson);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;

    fn hidden(k: &[u32]) -> f64 {
        let d0 = k[0] as f64 - 4.0;
        let d1 = k[1] as f64 - 2.0;
        1.0 - 0.05 * (d0 * d0 + d1 * d1)
    }

    fn bo_with(options: BoOptions) -> BayesOpt {
        let space = SearchSpace::new(vec![1, 1], vec![8, 8]).unwrap();
        let mut bo = BayesOpt::new(space, options);
        for k in [[1u32, 1], [8, 8], [1, 8], [8, 1], [4, 4]] {
            bo.observe(k.to_vec(), hidden(&k));
        }
        bo
    }

    /// Default options with the incremental path enabled.
    fn incremental_options(force_full_refit: bool) -> BoOptions {
        BoOptions {
            refit_every: 4,
            force_full_refit,
            ..Default::default()
        }
    }

    #[test]
    fn incremental_matches_forced_full_refit_bitwise() {
        let mut fast = bo_with(incremental_options(false));
        let mut slow = bo_with(incremental_options(true));
        for step in 0..12 {
            let a = fast.surrogate().unwrap();
            let b = slow.surrogate().unwrap();
            assert_eq!(
                a.log_marginal_likelihood().to_bits(),
                b.log_marginal_likelihood().to_bits(),
                "step {step}"
            );
            let ka = fast.suggest_with(&a);
            let kb = slow.suggest_with(&b);
            assert_eq!(ka, kb, "step {step}");
            let s = hidden(&ka);
            fast.observe(ka, s);
            slow.observe(kb, s);
        }
    }

    #[test]
    fn incremental_path_still_converges() {
        let mut bo = bo_with(incremental_options(false));
        for _ in 0..12 {
            let k = bo.suggest().unwrap();
            let s = hidden(&k);
            bo.observe(k, s);
        }
        let (best_k, best_s) = bo.best().unwrap();
        assert!(best_s > 0.97, "best score {best_s} at {best_k:?}");
    }

    #[test]
    fn hyperparameters_fixed_between_scheduled_refits() {
        let mut bo = bo_with(incremental_options(false));
        let first = bo.surrogate().unwrap();
        let cfg = first.config().clone();
        // Within the refit period the cached hyperparameters must not move.
        for k in [[2u32, 2], [3, 3], [5, 2]] {
            bo.observe(k.to_vec(), hidden(&k));
            let gp = bo.surrogate().unwrap();
            if bo.observations().len() < 5 + bo.options.refit_every {
                assert_eq!(
                    gp.config().noise_variance.to_bits(),
                    cfg.noise_variance.to_bits()
                );
                assert_eq!(
                    gp.config().kernel.signal_variance().to_bits(),
                    cfg.kernel.signal_variance().to_bits()
                );
            }
        }
    }

    #[test]
    fn duplicate_observation_routes_through_full_refit_fallback() {
        // Regression: appending a duplicate configuration makes the
        // bordered Gram singular — the rank-1 append must be refused and
        // the next suggest must recover via the jittered from-scratch
        // refit instead of panicking or corrupting the surrogate.
        let fit = FitOptions {
            min_noise_variance: 1e-12, // leave the Gram as singular as possible
            ..Default::default()
        };
        let mut bo = bo_with(BoOptions {
            refit_every: 8,
            fit,
            ..Default::default()
        });
        let _ = bo.surrogate().unwrap(); // prime the cache
        for _ in 0..3 {
            bo.observe(vec![4, 4], hidden(&[4, 4])); // exact duplicates
        }
        let gp = bo.surrogate().unwrap();
        assert_eq!(gp.len(), bo.observations().len());
        assert!(gp.log_marginal_likelihood().is_finite());
        let k = bo.suggest().unwrap();
        assert!(bo.space().contains(&k));
        // And the duplicate-laden incremental run still matches parity
        // with the forced-full path.
        let mut forced = bo_with(BoOptions {
            refit_every: 8,
            force_full_refit: true,
            fit: FitOptions {
                min_noise_variance: 1e-12,
                ..Default::default()
            },
            ..Default::default()
        });
        let _ = forced.surrogate().unwrap();
        for _ in 0..3 {
            forced.observe(vec![4, 4], hidden(&[4, 4]));
        }
        let gp_forced = forced.surrogate().unwrap();
        assert_eq!(
            gp.log_marginal_likelihood().to_bits(),
            gp_forced.log_marginal_likelihood().to_bits()
        );
        assert_eq!(bo.suggest().unwrap(), forced.suggest().unwrap());
    }

    #[test]
    fn refit_every_one_is_legacy_path() {
        // The default must reproduce the seed behavior: surrogate() is
        // exactly fit_surrogate() on every call.
        let mut bo = bo_with(BoOptions::default());
        let a = bo.surrogate().unwrap();
        let b = bo.fit_surrogate().unwrap();
        assert_eq!(
            a.log_marginal_likelihood().to_bits(),
            b.log_marginal_likelihood().to_bits()
        );
    }

    #[test]
    fn crossing_sparsification_cap_leaves_incremental_mode() {
        let space = SearchSpace::new(vec![1], vec![64]).unwrap();
        let mut bo = BayesOpt::new(
            space,
            BoOptions {
                refit_every: 4,
                max_surrogate_points: 10,
                ..Default::default()
            },
        );
        for k in 1..=20u32 {
            bo.observe(vec![k], 1.0 / (1.0 + (k as f64 - 7.0).abs()));
        }
        let gp = bo.surrogate().unwrap();
        assert_eq!(gp.len(), 10, "sparsified past the cap");
        let k = bo.suggest().unwrap();
        assert!(bo.space().contains(&k));
    }
}

#[cfg(test)]
mod constrained_mode_tests {
    use super::*;

    /// Hidden objective that *rewards under-provisioning*: the cheaper the
    /// configuration the higher the score, mirroring the resource term of
    /// the benefit function (k'/k > 1 below the base configuration).
    fn cheap_is_best(k: &[u32]) -> f64 {
        let total: u32 = k.iter().sum();
        2.0 / f64::from(total).sqrt()
    }

    /// Hidden latency: 900 ms / total parallelism — configurations with
    /// total < 3 violate a 300 ms SLO.
    fn latency(k: &[u32]) -> f64 {
        let total: u32 = k.iter().sum();
        900.0 / f64::from(total)
    }

    const SLO_MS: f64 = 300.0;

    fn slo_options() -> BoOptions {
        BoOptions {
            constraint: ConstraintMode::Slo {
                threshold: SLO_MS,
                confidence: 0.9,
            },
            ..Default::default()
        }
    }

    fn seed_both(bo: &mut BayesOpt) {
        for k in [[1u32, 1], [8, 8], [1, 8], [8, 1], [4, 4], [2, 1]] {
            bo.observe_constrained(k.to_vec(), cheap_is_best(&k), latency(&k));
        }
    }

    #[test]
    fn unconstrained_observe_constrained_is_bitwise_observe() {
        // The default mode must discard the constraint value entirely:
        // identical suggestion trajectories whether the caller threads
        // latency through or not — the seed-parity contract.
        let space = SearchSpace::new(vec![1, 1], vec![8, 8]).unwrap();
        let mut plain = BayesOpt::new(space.clone(), BoOptions::default());
        let mut threaded = BayesOpt::new(space, BoOptions::default());
        for k in [[1u32, 1], [8, 8], [1, 8], [8, 1], [4, 4]] {
            plain.observe(k.to_vec(), cheap_is_best(&k));
            threaded.observe_constrained(k.to_vec(), cheap_is_best(&k), latency(&k));
        }
        assert!(threaded.constraint_values().is_empty());
        for step in 0..6 {
            let a = plain.suggest().unwrap();
            let b = threaded.suggest().unwrap();
            assert_eq!(a, b, "step {step}");
            plain.observe(a.clone(), cheap_is_best(&a));
            threaded.observe_constrained(b.clone(), cheap_is_best(&b), latency(&b));
        }
    }

    #[test]
    fn constrained_mode_proposes_only_predicted_feasible() {
        // With the score actively rewarding under-provisioning, the
        // unconstrained optimizer chases SLO-violating configurations; the
        // constrained one must not propose any once its latency surrogate
        // is warm (six spanning samples here).
        let space = SearchSpace::new(vec![1, 1], vec![8, 8]).unwrap();
        let mut bo = BayesOpt::new(space, slo_options());
        seed_both(&mut bo);
        for _ in 0..8 {
            let k = bo.suggest().unwrap();
            assert!(
                latency(&k) <= SLO_MS,
                "constrained mode proposed SLO-violating {k:?} ({} ms)",
                latency(&k)
            );
            bo.observe_constrained(k.clone(), cheap_is_best(&k), latency(&k));
        }
    }

    #[test]
    fn unconstrained_chases_the_infeasible_optimum() {
        // Companion to the test above: the seed path *does* walk into the
        // violating region on this landscape, so the constrained win is
        // meaningful rather than vacuous.
        let space = SearchSpace::new(vec![1, 1], vec![8, 8]).unwrap();
        let mut bo = BayesOpt::new(space, BoOptions::default());
        seed_both(&mut bo);
        let mut violations = 0;
        for _ in 0..8 {
            let k = bo.suggest().unwrap();
            if latency(&k) > SLO_MS {
                violations += 1;
            }
            bo.observe_constrained(k.clone(), cheap_is_best(&k), latency(&k));
        }
        assert!(violations > 0, "landscape no longer lures the seed path");
    }

    #[test]
    fn certain_feasibility_collapses_to_unconstrained_bitwise() {
        // Threshold so far above every observable latency that the PoF
        // factor saturates to exactly 1.0: suggestions must be bitwise the
        // unconstrained ones (cEI = EI · 1.0).
        let space = SearchSpace::new(vec![1, 1], vec![8, 8]).unwrap();
        let relaxed = BoOptions {
            constraint: ConstraintMode::Slo {
                threshold: 1e9,
                confidence: 0.9,
            },
            ..Default::default()
        };
        let mut constrained = BayesOpt::new(space.clone(), relaxed);
        let mut plain = BayesOpt::new(space, BoOptions::default());
        seed_both(&mut constrained);
        for k in [[1u32, 1], [8, 8], [1, 8], [8, 1], [4, 4], [2, 1]] {
            plain.observe(k.to_vec(), cheap_is_best(&k));
        }
        for step in 0..6 {
            let a = constrained.suggest().unwrap();
            let b = plain.suggest().unwrap();
            assert_eq!(a, b, "step {step}");
            constrained.observe_constrained(a.clone(), cheap_is_best(&a), latency(&a));
            plain.observe(b.clone(), cheap_is_best(&b));
        }
    }

    #[test]
    fn all_infeasible_falls_back_to_most_feasible_unseen() {
        // An impossible SLO gates every candidate to −∞; the optimizer
        // must still return an unobserved in-space configuration (the
        // max-PoF probe) instead of wedging.
        let space = SearchSpace::new(vec![1, 1], vec![8, 8]).unwrap();
        let mut bo = BayesOpt::new(
            space,
            BoOptions {
                constraint: ConstraintMode::Slo {
                    threshold: 1.0, // unattainable: latency ≥ 56.25 ms
                    confidence: 0.9,
                },
                ..Default::default()
            },
        );
        seed_both(&mut bo);
        let k = bo.suggest().unwrap();
        assert!(bo.space().contains(&k));
        assert!(
            !bo.observations().iter().any(|(o, _)| *o == k),
            "fallback must explore an unseen configuration, got {k:?}"
        );
        // The max-PoF probe is the most-provisioned unseen candidate on
        // this monotone landscape (lowest predicted latency).
        assert!(
            k.iter().map(|&v| u64::from(v)).sum::<u64>() >= 8,
            "expected a well-provisioned probe, got {k:?}"
        );
    }

    #[test]
    fn constraint_values_recorded_in_slo_mode() {
        let space = SearchSpace::new(vec![1, 1], vec![8, 8]).unwrap();
        let mut bo = BayesOpt::new(space, slo_options());
        seed_both(&mut bo);
        assert_eq!(bo.constraint_values().len(), 6);
        // Non-finite latencies are dropped, scores still recorded.
        bo.observe_constrained(vec![3, 3], 0.5, f64::NAN);
        assert_eq!(bo.constraint_values().len(), 6);
        assert_eq!(bo.observations().len(), 7);
    }
}

#[cfg(test)]
mod sparse_surrogate_tests {
    use super::*;

    #[test]
    fn surrogate_respects_point_cap() {
        let space = SearchSpace::new(vec![1], vec![64]).unwrap();
        let mut bo = BayesOpt::new(
            space,
            BoOptions {
                max_surrogate_points: 10,
                ..Default::default()
            },
        );
        for k in 1..=64u32 {
            bo.observe(vec![k], 1.0 / (1.0 + (k as f64 - 20.0).abs()));
        }
        let gp = bo.fit_surrogate().unwrap();
        assert_eq!(gp.len(), 10, "sparsified to the cap");
        // The loop still works end to end.
        let k = bo.suggest().unwrap();
        assert!(bo.space().contains(&k));
    }

    #[test]
    fn fitc_strategy_keeps_every_observation_past_the_cap() {
        let space = SearchSpace::new(vec![1], vec![64]).unwrap();
        let mut bo = BayesOpt::new(
            space,
            BoOptions {
                max_surrogate_points: 10,
                sparse_strategy: SparseStrategy::Fitc,
                ..Default::default()
            },
        );
        for k in 1..=40u32 {
            bo.observe(vec![k], 1.0 / (1.0 + (k as f64 - 20.0).abs()));
        }
        let fitc = bo.fit_fitc_surrogate().unwrap();
        assert_eq!(fitc.len(), 40, "all observations stay in the likelihood");
        assert_eq!(fitc.inducing_len(), 10, "inducing set capped at m");
        // suggest() dispatches to the FITC engine and still proposes
        // an in-space configuration.
        let k = bo.suggest().unwrap();
        assert!(bo.space().contains(&k));
    }

    #[test]
    fn fitc_strategy_below_cap_matches_default_path_bitwise() {
        let observe = |bo: &mut BayesOpt| {
            for k in 1..=8u32 {
                bo.observe(vec![k], (k as f64 * 0.7).sin());
            }
        };
        let space = SearchSpace::new(vec![1], vec![64]).unwrap();
        let mut default_bo = BayesOpt::new(space.clone(), BoOptions::default());
        let mut fitc_bo = BayesOpt::new(
            space,
            BoOptions {
                sparse_strategy: SparseStrategy::Fitc,
                ..Default::default()
            },
        );
        observe(&mut default_bo);
        observe(&mut fitc_bo);
        // Below max_surrogate_points the FITC strategy never engages, so
        // the suggestion is the exact-GP one, bit for bit.
        assert_eq!(default_bo.suggest().unwrap(), fitc_bo.suggest().unwrap());
    }

    #[test]
    fn fitc_fit_without_observations_is_an_error() {
        let space = SearchSpace::new(vec![1], vec![8]).unwrap();
        let bo = BayesOpt::new(space, BoOptions::default());
        assert_eq!(
            bo.fit_fitc_surrogate().unwrap_err(),
            BoError::NoObservations
        );
    }
}

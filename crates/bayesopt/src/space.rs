//! The discrete search space of parallelism vectors.
//!
//! Paper §III-D: "the search space of the BO algorithm is limited between
//! the optimal configuration of throughput and the maximum allowable
//! parallelism of the system". The space is therefore an integer box
//! `[lower_i, upper_i]` per operator.

use rand::Rng;

/// An integer box of feasible parallelism vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    lower: Vec<u32>,
    upper: Vec<u32>,
}

impl SearchSpace {
    /// Creates a space with per-operator bounds.
    ///
    /// Returns `None` if the vectors differ in length, are empty, any lower
    /// bound is zero (parallelism is at least 1), or any `lower > upper`.
    pub fn new(lower: Vec<u32>, upper: Vec<u32>) -> Option<Self> {
        if lower.is_empty() || lower.len() != upper.len() {
            return None;
        }
        if lower.contains(&0) {
            return None;
        }
        if lower.iter().zip(&upper).any(|(l, u)| l > u) {
            return None;
        }
        Some(Self { lower, upper })
    }

    /// Space where every operator ranges from its base parallelism to a
    /// shared ceiling `p_max` (the common case in the paper: `k'` to
    /// `P_max`). Base values above `p_max` are clamped to `p_max`.
    pub fn from_base(base: &[u32], p_max: u32) -> Option<Self> {
        let lower: Vec<u32> = base.iter().map(|&b| b.clamp(1, p_max)).collect();
        Self::new(lower, vec![p_max; base.len()])
    }

    /// Number of operators (dimensionality).
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Per-operator lower bounds.
    pub fn lower(&self) -> &[u32] {
        &self.lower
    }

    /// Per-operator upper bounds.
    pub fn upper(&self) -> &[u32] {
        &self.upper
    }

    /// `true` iff `k` lies inside the box (and has the right arity).
    pub fn contains(&self, k: &[u32]) -> bool {
        k.len() == self.dim()
            && k.iter()
                .zip(self.lower.iter().zip(&self.upper))
                .all(|(v, (l, u))| v >= l && v <= u)
    }

    /// Clamps a vector into the box, preserving arity.
    ///
    /// # Panics
    ///
    /// Panics if `k.len() != self.dim()`.
    pub fn clamp(&self, k: &[u32]) -> Vec<u32> {
        assert_eq!(k.len(), self.dim(), "clamp: arity mismatch");
        k.iter()
            .zip(self.lower.iter().zip(&self.upper))
            .map(|(v, (l, u))| (*v).clamp(*l, *u))
            .collect()
    }

    /// Total number of configurations, saturating at `u64::MAX`.
    pub fn cardinality(&self) -> u64 {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(l, u)| (u - l + 1) as u64)
            .try_fold(1u64, |acc, n| acc.checked_mul(n))
            .unwrap_or(u64::MAX)
    }

    /// Enumerates every configuration. Use only when
    /// [`cardinality`](Self::cardinality) is small; candidate generation in
    /// [`crate::BayesOpt`] falls back to sampling otherwise.
    pub fn enumerate(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut current = self.lower.clone();
        loop {
            out.push(current.clone());
            // Odometer increment.
            let mut i = self.dim();
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if current[i] < self.upper[i] {
                    current[i] += 1;
                    let reset = (i + 1)..self.dim();
                    current[reset.clone()].copy_from_slice(&self.lower[reset]);
                    break;
                }
            }
        }
    }

    /// Draws a uniform random configuration.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<u32> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(&l, &u)| rng.gen_range(l..=u))
            .collect()
    }

    /// All axis-aligned ±1 neighbours of `k` inside the box, used for local
    /// refinement of the acquisition maximizer.
    pub fn neighbors(&self, k: &[u32]) -> Vec<Vec<u32>> {
        let mut out = Vec::with_capacity(2 * self.dim());
        for i in 0..self.dim() {
            if k[i] > self.lower[i] {
                let mut n = k.to_vec();
                n[i] -= 1;
                out.push(n);
            }
            if k[i] < self.upper[i] {
                let mut n = k.to_vec();
                n[i] += 1;
                out.push(n);
            }
        }
        out
    }

    /// Total parallelism (Σ k_i) of the cheapest configuration.
    pub fn min_total_parallelism(&self) -> u64 {
        self.lower.iter().map(|&l| l as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(SearchSpace::new(vec![], vec![]).is_none());
        assert!(SearchSpace::new(vec![1], vec![2, 3]).is_none());
        assert!(SearchSpace::new(vec![0], vec![5]).is_none());
        assert!(SearchSpace::new(vec![4], vec![2]).is_none());
        assert!(SearchSpace::new(vec![1, 2], vec![5, 2]).is_some());
    }

    #[test]
    fn from_base_clamps() {
        let s = SearchSpace::from_base(&[3, 50], 10).unwrap();
        assert_eq!(s.lower(), &[3, 10]);
        assert_eq!(s.upper(), &[10, 10]);
    }

    #[test]
    fn contains_and_clamp() {
        let s = SearchSpace::new(vec![2, 2], vec![5, 5]).unwrap();
        assert!(s.contains(&[2, 5]));
        assert!(!s.contains(&[1, 5]));
        assert!(!s.contains(&[2]));
        assert_eq!(s.clamp(&[0, 9]), vec![2, 5]);
    }

    #[test]
    fn cardinality_and_enumeration_agree() {
        let s = SearchSpace::new(vec![1, 2, 1], vec![3, 4, 2]).unwrap();
        let all = s.enumerate();
        assert_eq!(all.len() as u64, s.cardinality());
        assert_eq!(s.cardinality(), 3 * 3 * 2);
        // No duplicates, all contained.
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
        assert!(all.iter().all(|k| s.contains(k)));
    }

    #[test]
    fn cardinality_saturates() {
        let s = SearchSpace::new(vec![1; 20], vec![1000; 20]).unwrap();
        assert_eq!(s.cardinality(), u64::MAX);
    }

    #[test]
    fn sampling_stays_in_box() {
        let s = SearchSpace::new(vec![2, 3], vec![7, 9]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(s.contains(&s.sample(&mut rng)));
        }
    }

    #[test]
    fn neighbors_at_corner_and_interior() {
        let s = SearchSpace::new(vec![1, 1], vec![3, 3]).unwrap();
        // Corner: only 2 neighbours.
        assert_eq!(s.neighbors(&[1, 1]).len(), 2);
        // Interior: all 4.
        let n = s.neighbors(&[2, 2]);
        assert_eq!(n.len(), 4);
        assert!(n.iter().all(|k| s.contains(k)));
    }

    #[test]
    fn degenerate_single_point_space() {
        let s = SearchSpace::new(vec![4], vec![4]).unwrap();
        assert_eq!(s.cardinality(), 1);
        assert_eq!(s.enumerate(), vec![vec![4]]);
        assert!(s.neighbors(&[4]).is_empty());
    }
}

//! The latency-constraint surrogate of the SLO-safe acquisition mode.
//!
//! AuTraScale's Algorithm 1 scores configurations with unconstrained EI,
//! so online tuning will happily *evaluate* configurations whose latency
//! blows the SLO — every such probe is a user-visible violation.
//! [`ConstraintModel`] is a second, independent GP surrogate over the
//! *observed constraint metric* (processing latency in ms); the suggest
//! path multiplies EI by the probability of feasibility
//! `P(latency ≤ SLO)` it induces and hard-rejects candidates below a
//! confidence level (see [`crate::ConstraintMode::Slo`] and DESIGN.md).
//!
//! The model reuses the exact-GP machinery of the objective surrogate:
//! the pairwise squared-distance cache ([`PairwiseSqDists`]) is grown
//! incrementally with one [`SqDistRow`] per observation (O(n·d) per
//! observe) and handed to [`fit_auto_with_cache`], so each refit skips
//! the O(n²·d) distance rebuild. Past the sparsification cap the fit
//! degrades to the same farthest-point subset-of-data policy as the
//! objective ([`fit_subset`]).

use autrascale_gp::{
    fit_auto_with_cache, fit_subset, FitOptions, GaussianProcess, GpError, PairwiseSqDists,
    SqDistRow,
};

use crate::to_features;

/// Whether (and how) the suggest path constrains candidates by predicted
/// feasibility.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ConstraintMode {
    /// No constraint surrogate: the seed's plain acquisition path,
    /// bit-identical suggestion trajectories. The default.
    #[default]
    Unconstrained,
    /// SLO-safe mode: EI is multiplied by the probability of feasibility
    /// `P(constraint ≤ threshold)` under the [`ConstraintModel`] GP, and
    /// candidates whose probability falls below `confidence` are rejected
    /// outright (score `−∞`). `confidence = 0.0` disables the hard gate
    /// and keeps only the multiplicative PoF weighting.
    Slo {
        /// The SLO budget in the constraint metric's units (latency: ms).
        threshold: f64,
        /// Minimum probability of feasibility a candidate must reach to
        /// be eligible at all; `0.9` is the shipped default
        /// (`AuTraScaleConfig::constraint_confidence`).
        confidence: f64,
    },
}

/// GP surrogate over an observed constraint metric (latency, lag, …),
/// indexed by the same parallelism-vector features as the objective.
#[derive(Debug, Clone)]
pub struct ConstraintModel {
    features: Vec<Vec<f64>>,
    values: Vec<f64>,
    /// Grown lazily on the first observation — the cache type rejects
    /// empty training sets.
    cache: Option<PairwiseSqDists>,
    fit: FitOptions,
    /// Past this many observations the fit switches to farthest-point
    /// subset-of-data (mirrors `BoOptions::max_surrogate_points`).
    max_points: usize,
}

impl ConstraintModel {
    /// Creates an empty constraint model fitting with `fit` options and
    /// sparsifying past `max_points` observations.
    pub fn new(fit: FitOptions, max_points: usize) -> Self {
        Self {
            features: Vec::new(),
            values: Vec::new(),
            cache: None,
            fit,
            max_points,
        }
    }

    /// Records one observed constraint value for configuration `k`,
    /// extending the distance cache with a single O(n·d) row.
    ///
    /// Non-finite values are ignored (a wedged evaluation window must not
    /// poison the feasibility model).
    pub fn observe(&mut self, k: &[u32], value: f64) {
        if !value.is_finite() {
            return;
        }
        let feats = to_features(k);
        let per_dim = self.fit.ard && feats.len() > 1;
        match &mut self.cache {
            // First observation fixes the cache's per-dim layout.
            None => {
                self.cache = Some(PairwiseSqDists::new(std::slice::from_ref(&feats), per_dim));
            }
            Some(cache) => {
                let row = SqDistRow::new(&self.features, &feats, cache.has_per_dim());
                cache.push_row(&row);
            }
        }
        self.features.push(feats);
        self.values.push(value);
    }

    /// Number of recorded constraint observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no constraint value has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Observed constraint values in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Fits the constraint GP on everything observed so far
    /// (hyperparameters re-optimized; cached distances reused below the
    /// sparsification cap).
    pub fn fit(&self) -> Result<GaussianProcess, GpError> {
        if self.features.len() > self.max_points {
            return fit_subset(
                self.features.clone(),
                self.values.clone(),
                self.max_points,
                &self.fit,
            );
        }
        match &self.cache {
            Some(cache) => fit_auto_with_cache(
                self.features.clone(),
                self.values.clone(),
                &self.fit,
                cache.clone(),
            ),
            None => autrascale_gp::fit_auto(self.features.clone(), self.values.clone(), &self.fit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autrascale_gp::fit_auto;

    fn latency(k: &[u32]) -> f64 {
        // Latency falls with parallelism: 800 / total.
        let total: u32 = k.iter().sum();
        800.0 / f64::from(total)
    }

    fn seeded_model() -> ConstraintModel {
        let mut m = ConstraintModel::new(FitOptions::default(), 200);
        for k in [[1u32, 1], [2, 4], [4, 2], [8, 8], [3, 3], [6, 1]] {
            m.observe(&k, latency(&k));
        }
        m
    }

    #[test]
    fn incremental_cache_matches_fresh_fit_bitwise() {
        let m = seeded_model();
        let gp_cached = m.fit().unwrap();
        let x: Vec<Vec<f64>> = [[1u32, 1], [2, 4], [4, 2], [8, 8], [3, 3], [6, 1]]
            .iter()
            .map(|k| to_features(k))
            .collect();
        let y: Vec<f64> = [[1u32, 1], [2, 4], [4, 2], [8, 8], [3, 3], [6, 1]]
            .iter()
            .map(|k| latency(k))
            .collect();
        let gp_fresh = fit_auto(x, y, &FitOptions::default()).unwrap();
        assert_eq!(
            gp_cached.log_marginal_likelihood().to_bits(),
            gp_fresh.log_marginal_likelihood().to_bits(),
            "push_row-grown cache must be indistinguishable from scratch"
        );
        let q = to_features(&[5, 5]);
        assert_eq!(
            gp_cached.predict(&q).mean.to_bits(),
            gp_fresh.predict(&q).mean.to_bits()
        );
    }

    #[test]
    fn predicts_latency_trend() {
        let m = seeded_model();
        let gp = m.fit().unwrap();
        let cheap = gp.predict(&to_features(&[1, 1])).mean;
        let rich = gp.predict(&to_features(&[8, 8])).mean;
        assert!(
            cheap > rich,
            "under-provisioned latency {cheap} must exceed provisioned {rich}"
        );
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let mut m = seeded_model();
        let n = m.len();
        m.observe(&[4, 4], f64::NAN);
        m.observe(&[4, 4], f64::INFINITY);
        assert_eq!(m.len(), n);
    }

    #[test]
    fn sparsifies_past_cap() {
        let mut m = ConstraintModel::new(FitOptions::default(), 8);
        for k in 1..=20u32 {
            m.observe(&[k], 800.0 / f64::from(k));
        }
        let gp = m.fit().unwrap();
        assert_eq!(gp.len(), 8, "subset-of-data past the cap");
    }

    #[test]
    fn empty_model_reports_empty() {
        let m = ConstraintModel::new(FitOptions::default(), 200);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}

//! Bootstrap-sample designs (paper §III-D).
//!
//! The initial training set of AuTraScale's surrogate has two families:
//!
//! 1. **Uniform-parallelism samples** — all operators share a parallelism;
//!    the shared value sweeps from `k'_max` (the largest component of the
//!    throughput-optimal configuration) to `P_max` in `M` evenly spaced
//!    steps. These let the model perceive the coarse QoS landscape and
//!    reveal whether the current resources can meet the QoS target at all.
//! 2. **One-hot-maximum samples** — one operator is raised to `P_max` while
//!    the others stay at the base configuration `k'`; there are `N` of
//!    these (one per operator). These expose each operator's individual
//!    impact on QoS.

use crate::space::SearchSpace;

/// The paper's combined bootstrap design.
#[derive(Debug, Clone)]
pub struct BootstrapDesign {
    /// Family 1: uniform-parallelism sweep samples.
    pub uniform: Vec<Vec<u32>>,
    /// Family 2: per-operator one-hot-maximum samples.
    pub one_hot_max: Vec<Vec<u32>>,
}

impl BootstrapDesign {
    /// All samples in evaluation order (uniform sweep first, as the paper
    /// uses them to judge feasibility before refining per-operator).
    pub fn all(&self) -> Vec<Vec<u32>> {
        let mut out = self.uniform.clone();
        out.extend(self.one_hot_max.iter().cloned());
        out
    }

    /// Total number of bootstrap samples.
    pub fn len(&self) -> usize {
        self.uniform.len() + self.one_hot_max.len()
    }

    /// `true` when the design is empty (never produced by
    /// [`bootstrap_set`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds the paper's bootstrap design for base configuration `base` (the
/// throughput-optimal `k'`), ceiling `p_max`, and `m` uniform sweep samples.
///
/// Duplicates (e.g. when `p_max` is close to the base) are removed while
/// preserving order.
pub fn bootstrap_set(base: &[u32], p_max: u32, m: usize) -> BootstrapDesign {
    assert!(!base.is_empty(), "bootstrap_set: empty base configuration");
    let n = base.len();
    let k_max = base.iter().copied().max().unwrap_or(1).min(p_max);

    // The base configuration `k'` itself leads the design: the score
    // function is anchored at it (F = 1 there when latency is met), so the
    // surrogate must know its true value, and the job is already running
    // it after throughput optimization — the sample is nearly free.
    let mut uniform = Vec::with_capacity(m + 1);
    uniform.push(
        base.iter()
            .map(|&b| b.clamp(1, p_max))
            .collect::<Vec<u32>>(),
    );

    // Family 1: parallelism shared by all operators, swept from k_max to
    // p_max over m samples ("divide the remaining parallelism into M-1
    // parts, each of which is called an interval").
    if m > 0 {
        let remaining = (p_max - k_max) as f64;
        let steps = (m - 1).max(1) as f64;
        for i in 0..m {
            let value = if m == 1 {
                k_max
            } else {
                (k_max as f64 + i as f64 * remaining / steps).round() as u32
            };
            uniform.push(vec![value.clamp(1, p_max); n]);
        }
    }

    // Family 2: one operator at p_max, the rest at the base configuration.
    let mut one_hot_max = Vec::with_capacity(n);
    for i in 0..n {
        let mut sample: Vec<u32> = base.iter().map(|&b| b.min(p_max)).collect();
        sample[i] = p_max;
        one_hot_max.push(sample);
    }

    dedup_in_place(&mut uniform);
    dedup_in_place(&mut one_hot_max);
    // Also drop one-hot samples already present in the uniform family.
    one_hot_max.retain(|s| !uniform.contains(s));

    BootstrapDesign {
        uniform,
        one_hot_max,
    }
}

/// Order-preserving dedup.
fn dedup_in_place(samples: &mut Vec<Vec<u32>>) {
    let mut seen: Vec<Vec<u32>> = Vec::with_capacity(samples.len());
    samples.retain(|s| {
        if seen.contains(s) {
            false
        } else {
            seen.push(s.clone());
            true
        }
    });
}

/// Builds the design constrained to a search space; samples are clamped
/// into the box. Convenience for the transfer-learning path (Algorithm 2,
/// line 6: `bootstrap_set(P_max, k')`).
pub fn bootstrap_set_in(space: &SearchSpace, m: usize) -> BootstrapDesign {
    let p_max = space.upper().iter().copied().max().unwrap_or(1);
    let design = bootstrap_set(space.lower(), p_max, m);
    BootstrapDesign {
        uniform: design.uniform.iter().map(|s| space.clamp(s)).collect(),
        one_hot_max: design.one_hot_max.iter().map(|s| space.clamp(s)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_family_spans_kmax_to_pmax() {
        let d = bootstrap_set(&[2, 4, 3], 12, 5);
        // The base configuration leads the design…
        assert_eq!(d.uniform.first().unwrap(), &vec![2, 4, 3]);
        // …followed by the uniform sweep from k'_max to P_max.
        assert_eq!(d.uniform[1], vec![4, 4, 4]);
        assert_eq!(d.uniform.last().unwrap(), &vec![12, 12, 12]);
        for s in d.uniform.iter().skip(1) {
            assert!(s.iter().all(|&v| v == s[0]));
        }
    }

    #[test]
    fn one_hot_family_has_one_sample_per_operator() {
        let d = bootstrap_set(&[2, 4, 3], 12, 5);
        assert_eq!(d.one_hot_max.len(), 3);
        for (i, s) in d.one_hot_max.iter().enumerate() {
            assert_eq!(s[i], 12);
            for (j, &v) in s.iter().enumerate() {
                if j != i {
                    assert_eq!(v, [2, 4, 3][j]);
                }
            }
        }
    }

    #[test]
    fn dedups_when_pmax_equals_base() {
        let d = bootstrap_set(&[5, 5], 5, 4);
        // Every sample collapses to (5,5): exactly one remains.
        assert_eq!(d.all(), vec![vec![5, 5]]);
    }

    #[test]
    fn m_of_one_gives_base_plus_single_uniform_sample() {
        let d = bootstrap_set(&[1, 2], 8, 1);
        assert_eq!(d.uniform, vec![vec![1, 2], vec![2, 2]]);
    }

    #[test]
    fn zero_m_gives_base_plus_one_hot() {
        let d = bootstrap_set(&[1, 2], 8, 0);
        assert_eq!(d.uniform, vec![vec![1, 2]]);
        assert_eq!(d.one_hot_max.len(), 2);
    }

    #[test]
    fn respects_search_space_clamping() {
        let space = SearchSpace::new(vec![2, 3], vec![6, 6]).unwrap();
        let d = bootstrap_set_in(&space, 4);
        for s in d.all() {
            assert!(space.contains(&s), "{s:?} outside the space");
        }
    }

    #[test]
    fn total_size_is_base_plus_m_plus_n_when_distinct() {
        let d = bootstrap_set(&[1, 2, 3, 4], 20, 6);
        // Base + M uniform + N one-hot, all distinct for this geometry.
        assert_eq!(d.len(), 1 + 6 + 4);
    }

    #[test]
    #[should_panic(expected = "empty base")]
    fn empty_base_panics() {
        let _ = bootstrap_set(&[], 5, 3);
    }
}

//! The ξ-augmented expected-improvement acquisition (paper Eqs. 5–7).
//!
//! ```text
//! EI(x) = K·Φ(Z) + σ(x)·φ(Z)   if σ(x) > 0,   else 0
//! K     = μ(x) − f(x⁺) − ξ
//! Z     = K / σ(x)             if σ(x) > 0,   else 0
//! ```
//!
//! ξ trades global search against local refinement: larger ξ discounts the
//! incumbent more aggressively, pushing the maximizer toward
//! high-uncertainty regions.
//!
//! All acquisitions are generic over [`Surrogate`], so the same scoring
//! code serves the exact GP and the FITC sparse surrogate past the
//! sparsification threshold.

use autrascale_gp::stats::{normal_cdf, normal_pdf};
use autrascale_gp::{PredictScratch, Surrogate};

/// Expected improvement of a candidate over the incumbent `f_best`, with
/// exploration parameter `xi` (paper Eq. 5–7).
///
/// Returns `0.0` where the posterior is deterministic (σ = 0), exactly as
/// the paper's piecewise definition states.
pub fn expected_improvement<S: Surrogate + ?Sized>(
    gp: &S,
    candidate: &[f64],
    f_best: f64,
    xi: f64,
) -> f64 {
    expected_improvement_with(gp, candidate, f_best, xi, &mut PredictScratch::default())
}

/// [`expected_improvement`] reusing caller-owned prediction buffers —
/// bit-identical results, no per-call allocation. This is what the
/// candidate-scoring hot loop in [`crate::BayesOpt`] uses.
pub fn expected_improvement_with<S: Surrogate + ?Sized>(
    gp: &S,
    candidate: &[f64],
    f_best: f64,
    xi: f64,
    scratch: &mut PredictScratch,
) -> f64 {
    let p = gp.predict_with(candidate, scratch);
    if p.std <= 0.0 {
        return 0.0;
    }
    let k = p.mean - f_best - xi;
    let z = k / p.std;
    (k * normal_cdf(z) + p.std * normal_pdf(z)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autrascale_gp::{GaussianProcess, GpConfig, Kernel, KernelKind};

    fn toy_gp() -> GaussianProcess {
        let x = vec![vec![0.0], vec![2.0], vec![4.0]];
        let y = vec![0.0, 1.0, 0.5];
        let cfg = GpConfig {
            kernel: Kernel::isotropic(KernelKind::Matern52, 1.0, 1.0),
            noise_variance: 1e-6,
            normalize_y: true,
        };
        GaussianProcess::fit(x, y, cfg).unwrap()
    }

    #[test]
    fn ei_is_nonnegative_everywhere() {
        let gp = toy_gp();
        let best = gp.best_observed();
        let mut x = -2.0;
        while x <= 6.0 {
            assert!(expected_improvement(&gp, &[x], best, 0.01) >= 0.0);
            x += 0.25;
        }
    }

    #[test]
    fn ei_nearly_zero_at_well_known_bad_point() {
        let gp = toy_gp();
        let best = gp.best_observed();
        // x=0 is a training point with value 0 < best=1: no improvement there.
        let at_bad = expected_improvement(&gp, &[0.0], best, 0.01);
        let unexplored = expected_improvement(&gp, &[6.0], best, 0.01);
        assert!(at_bad < unexplored, "{at_bad} !< {unexplored}");
        assert!(at_bad < 1e-3);
    }

    #[test]
    fn higher_xi_penalizes_near_incumbent_more() {
        let gp = toy_gp();
        let best = gp.best_observed();
        // Near the incumbent (x=2), increasing xi should shrink EI.
        let low_xi = expected_improvement(&gp, &[2.1], best, 0.0);
        let high_xi = expected_improvement(&gp, &[2.1], best, 0.5);
        assert!(high_xi <= low_xi);
    }

    #[test]
    fn ei_grows_with_posterior_mean() {
        let gp = toy_gp();
        // Same point, different hypothetical incumbents: a lower incumbent
        // means more expected improvement.
        let e_low_best = expected_improvement(&gp, &[3.0], 0.1, 0.0);
        let e_high_best = expected_improvement(&gp, &[3.0], 0.9, 0.0);
        assert!(e_low_best > e_high_best);
    }

    #[test]
    fn deterministic_posterior_gives_zero() {
        // Single training point with almost no noise: at that exact point
        // the posterior std is ~0, so EI must be ~0 per the paper's
        // piecewise definition.
        let cfg = GpConfig {
            kernel: Kernel::isotropic(KernelKind::Rbf, 1.0, 1.0),
            noise_variance: 1e-12,
            normalize_y: false,
        };
        let gp = GaussianProcess::fit(vec![vec![1.0]], vec![0.5], cfg).unwrap();
        let ei = expected_improvement(&gp, &[1.0], 0.5, 0.0);
        assert!(ei < 1e-6, "ei = {ei}");
    }
}

/// Probability of feasibility under a constraint surrogate:
/// `P(c(x) ≤ threshold) = Φ((threshold − μ_c(x)) / σ_c(x))`.
///
/// The constraint surrogate models an observed cost (here: processing
/// latency) and `threshold` is the SLO budget. Where the posterior is
/// deterministic (σ = 0) the probability collapses to the indicator
/// `μ_c(x) ≤ threshold`.
pub fn probability_of_feasibility<S: Surrogate + ?Sized>(
    constraint: &S,
    candidate: &[f64],
    threshold: f64,
) -> f64 {
    probability_of_feasibility_with(
        constraint,
        candidate,
        threshold,
        &mut PredictScratch::default(),
    )
}

/// [`probability_of_feasibility`] reusing caller-owned prediction buffers.
pub fn probability_of_feasibility_with<S: Surrogate + ?Sized>(
    constraint: &S,
    candidate: &[f64],
    threshold: f64,
    scratch: &mut PredictScratch,
) -> f64 {
    let p = constraint.predict_with(candidate, scratch);
    if p.std <= 0.0 {
        return if p.mean <= threshold { 1.0 } else { 0.0 };
    }
    normal_cdf((threshold - p.mean) / p.std)
}

/// Constrained expected improvement (Gardner et al. 2014 factorization):
/// `cEI(x) = EI(x) · P(c(x) ≤ threshold)`.
///
/// The objective and constraint surrogates are independent GPs, so the
/// joint acquisition factorizes into the product of plain EI and the
/// probability of feasibility. When the constraint surrogate is certain a
/// candidate is feasible (PoF = 1) the product is *bitwise* plain EI —
/// `x · 1.0 == x` for every finite IEEE-754 double — so the constrained
/// acquisition collapses to the unconstrained one on safely-provisioned
/// regions.
pub fn constrained_ei<O: Surrogate + ?Sized, C: Surrogate + ?Sized>(
    objective: &O,
    constraint: &C,
    candidate: &[f64],
    f_best: f64,
    xi: f64,
    threshold: f64,
) -> f64 {
    let mut scratch = PredictScratch::default();
    constrained_ei_with(
        objective,
        constraint,
        candidate,
        f_best,
        xi,
        threshold,
        &mut scratch,
    )
}

/// [`constrained_ei`] reusing caller-owned prediction buffers.
#[allow(clippy::too_many_arguments)]
pub fn constrained_ei_with<O: Surrogate + ?Sized, C: Surrogate + ?Sized>(
    objective: &O,
    constraint: &C,
    candidate: &[f64],
    f_best: f64,
    xi: f64,
    threshold: f64,
    scratch: &mut PredictScratch,
) -> f64 {
    let ei = expected_improvement_with(objective, candidate, f_best, xi, scratch);
    let pof = probability_of_feasibility_with(constraint, candidate, threshold, scratch);
    ei * pof
}

/// Upper confidence bound: `μ(x) + β·σ(x)`.
///
/// A simpler optimism-in-the-face-of-uncertainty acquisition, provided as
/// an ablation alternative to the paper's EI (DESIGN.md §3); larger `β`
/// explores more.
pub fn upper_confidence_bound<S: Surrogate + ?Sized>(gp: &S, candidate: &[f64], beta: f64) -> f64 {
    upper_confidence_bound_with(gp, candidate, beta, &mut PredictScratch::default())
}

/// [`upper_confidence_bound`] reusing caller-owned prediction buffers.
pub fn upper_confidence_bound_with<S: Surrogate + ?Sized>(
    gp: &S,
    candidate: &[f64],
    beta: f64,
    scratch: &mut PredictScratch,
) -> f64 {
    let p = gp.predict_with(candidate, scratch);
    p.mean + beta * p.std
}

/// Approximate Thompson sampling: one draw from the *marginal* posterior
/// at the candidate, `μ(x) + σ(x)·z` with `z ~ N(0,1)`.
///
/// Exact Thompson sampling would draw a joint function sample across all
/// candidates (an O(n³) Cholesky of the posterior covariance); for
/// ranking thousands of discrete candidates the marginal approximation is
/// the standard cheap surrogate. Randomness comes from the caller's
/// seeded RNG so runs stay replayable.
pub fn thompson_sample<S: Surrogate + ?Sized>(
    gp: &S,
    candidate: &[f64],
    rng: &mut impl rand::Rng,
) -> f64 {
    let p = gp.predict(candidate);
    // Box–Muller on two uniforms (no rand_distr dependency).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    p.mean + p.std * z
}

#[cfg(test)]
mod acquisition_variant_tests {
    use super::*;
    use autrascale_gp::{GaussianProcess, GpConfig, Kernel, KernelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_gp() -> GaussianProcess {
        let x = vec![vec![0.0], vec![2.0], vec![4.0]];
        let y = vec![0.0, 1.0, 0.5];
        let cfg = GpConfig {
            kernel: Kernel::isotropic(KernelKind::Matern52, 1.0, 1.0),
            noise_variance: 1e-6,
            normalize_y: true,
        };
        GaussianProcess::fit(x, y, cfg).unwrap()
    }

    #[test]
    fn ucb_exceeds_mean_and_grows_with_beta() {
        let gp = toy_gp();
        let q = [3.0];
        let mean = gp.predict(&q).mean;
        let u1 = upper_confidence_bound(&gp, &q, 1.0);
        let u2 = upper_confidence_bound(&gp, &q, 2.0);
        assert!(u1 >= mean);
        assert!(u2 >= u1);
        // β = 0 is the pure mean.
        assert!((upper_confidence_bound(&gp, &q, 0.0) - mean).abs() < 1e-12);
    }

    #[test]
    fn pof_brackets_and_orders_by_threshold() {
        let gp = toy_gp();
        let q = [3.0];
        let loose = probability_of_feasibility(&gp, &q, 10.0);
        let tight = probability_of_feasibility(&gp, &q, -10.0);
        assert!((0.0..=1.0).contains(&loose));
        assert!((0.0..=1.0).contains(&tight));
        assert!(loose > 0.999, "far-above-posterior SLO ≈ certain: {loose}");
        assert!(
            tight < 1e-3,
            "far-below-posterior SLO ≈ impossible: {tight}"
        );
    }

    #[test]
    fn pof_deterministic_posterior_is_indicator() {
        // Single near-noiseless training point: at that point σ ≈ 0 and the
        // probability collapses to the indicator μ ≤ threshold.
        let cfg = GpConfig {
            kernel: Kernel::isotropic(KernelKind::Rbf, 1.0, 1.0),
            noise_variance: 1e-12,
            normalize_y: false,
        };
        let gp = GaussianProcess::fit(vec![vec![1.0]], vec![0.5], cfg).unwrap();
        assert_eq!(probability_of_feasibility(&gp, &[1.0], 0.6), 1.0);
        assert_eq!(probability_of_feasibility(&gp, &[1.0], 0.4), 0.0);
    }

    #[test]
    fn constrained_ei_is_plain_ei_times_pof() {
        let objective = toy_gp();
        let constraint = toy_gp();
        let q = [3.0];
        let best = objective.best_observed();
        let ei = expected_improvement(&objective, &q, best, 0.01);
        let pof = probability_of_feasibility(&constraint, &q, 0.8);
        let cei = constrained_ei(&objective, &constraint, &q, best, 0.01, 0.8);
        assert_eq!(cei.to_bits(), (ei * pof).to_bits());
        // A generous threshold sends PoF to 1 and the product is bitwise EI.
        let relaxed = constrained_ei(&objective, &constraint, &q, best, 0.01, 1e6);
        assert_eq!(relaxed.to_bits(), ei.to_bits());
    }

    #[test]
    fn thompson_is_deterministic_given_rng_and_disperses() {
        let gp = toy_gp();
        let q = [6.0]; // far from data: large σ, wide draws
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            thompson_sample(&gp, &q, &mut rng)
        };
        assert_eq!(draw(1).to_bits(), draw(1).to_bits());
        // Different seeds should disagree at a high-σ point.
        assert_ne!(draw(1).to_bits(), draw(2).to_bits());
        // Many draws average near the mean.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4000;
        let avg: f64 = (0..n)
            .map(|_| thompson_sample(&gp, &q, &mut rng))
            .sum::<f64>()
            / n as f64;
        let mean = gp.predict(&q).mean;
        let std = gp.predict(&q).std;
        assert!((avg - mean).abs() < 4.0 * std / (n as f64).sqrt() + 1e-3);
    }
}

//! Bayesian optimization over discrete parallelism spaces.
//!
//! This crate provides the optimization machinery of AuTraScale's
//! Algorithm 1 (paper §III-E), independent of any streaming-system concern:
//!
//! * [`SearchSpace`] — the box of feasible parallelism vectors between the
//!   throughput-optimal base configuration `k'` and the resource ceiling
//!   `P_max`;
//! * [`bootstrap`] — the paper's two bootstrap-sample families
//!   (§III-D "Bootstrapping samples selection");
//! * [`expected_improvement`] — the ξ-augmented EI acquisition (Eqs. 5–7);
//! * [`BayesOpt`] — suggest-observe loop: fit a GP surrogate on the scored
//!   samples seen so far, rank candidates by EI, propose the best unseen
//!   configuration.
//!
//! # Example
//!
//! ```
//! use autrascale_bayesopt::{BayesOpt, BoOptions, SearchSpace};
//!
//! // Maximize an unknown score over 2-operator parallelism vectors.
//! let space = SearchSpace::new(vec![1, 1], vec![6, 6]).unwrap();
//! let mut bo = BayesOpt::new(space, BoOptions::default());
//! // Seed with two observations, then ask for a suggestion.
//! bo.observe(vec![1, 1], 0.2);
//! bo.observe(vec![6, 6], 0.5);
//! let next = bo.suggest().unwrap();
//! assert_eq!(next.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod acquisition;
pub mod bootstrap;
mod constraint;
mod optimizer;
mod space;

pub use acquisition::{
    constrained_ei, constrained_ei_with, expected_improvement, expected_improvement_with,
    probability_of_feasibility, probability_of_feasibility_with, thompson_sample,
    upper_confidence_bound, upper_confidence_bound_with,
};
pub use autrascale_gp::{FitcSurrogate, SparseStrategy, Surrogate};
pub use bootstrap::{bootstrap_set, BootstrapDesign};
pub use constraint::{ConstraintMode, ConstraintModel};
pub use optimizer::{suggest_batch, Acquisition, BayesOpt, BoError, BoOptions};
pub use space::SearchSpace;

/// Converts a parallelism vector to the `f64` feature vector the GP sees.
pub fn to_features(k: &[u32]) -> Vec<f64> {
    let mut out = Vec::new();
    write_features(k, &mut out);
    out
}

/// [`to_features`] into a caller-owned buffer, so candidate-scoring loops
/// can convert thousands of vectors without allocating per candidate.
pub fn write_features(k: &[u32], out: &mut Vec<f64>) {
    out.clear();
    out.extend(k.iter().map(|&v| v as f64));
}

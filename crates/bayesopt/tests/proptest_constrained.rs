//! Property-based tests for the SLO-constrained acquisition
//! (probability of feasibility and the cEI = EI · PoF factorization).

use autrascale_bayesopt::{
    constrained_ei, expected_improvement, probability_of_feasibility, to_features,
};
use autrascale_gp::{GaussianProcess, GpConfig, Kernel, KernelKind};
use proptest::prelude::*;

/// A small latency-style training set: 2-d features, positive targets.
fn training_set() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (3usize..9).prop_flat_map(|n| {
        (
            proptest::collection::vec(proptest::collection::vec(1.0f64..16.0, 2), n),
            proptest::collection::vec(10.0f64..1000.0, n),
        )
    })
}

fn fit(x: Vec<Vec<f64>>, y: Vec<f64>) -> GaussianProcess {
    let cfg = GpConfig {
        kernel: Kernel::isotropic(KernelKind::Matern52, 4.0, 1.0),
        noise_variance: 1e-4,
        normalize_y: true,
    };
    GaussianProcess::fit(x, y, cfg).expect("PSD Gram")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PoF is a probability: in [0, 1] for every surrogate, query point
    /// and threshold.
    #[test]
    fn pof_is_a_probability(
        (x, y) in training_set(),
        q in proptest::collection::vec(0.5f64..20.0, 2),
        threshold in -500.0f64..2000.0,
    ) {
        let gp = fit(x, y);
        let pof = probability_of_feasibility(&gp, &q, threshold);
        prop_assert!((0.0..=1.0).contains(&pof), "pof = {pof}");
        prop_assert!(pof.is_finite());
    }

    /// Relaxing the SLO can only make candidates look more feasible:
    /// PoF is monotone non-decreasing in the threshold.
    #[test]
    fn pof_monotone_in_threshold(
        (x, y) in training_set(),
        q in proptest::collection::vec(0.5f64..20.0, 2),
        t_low in 0.0f64..800.0,
        bump in 0.0f64..800.0,
    ) {
        let gp = fit(x, y);
        let tight = probability_of_feasibility(&gp, &q, t_low);
        let loose = probability_of_feasibility(&gp, &q, t_low + bump);
        prop_assert!(
            loose >= tight,
            "PoF({}) = {loose} < PoF({t_low}) = {tight}",
            t_low + bump
        );
    }

    /// When the constraint surrogate is certain every candidate is
    /// feasible (threshold far above the posterior, PoF saturates to
    /// exactly 1.0), constrained EI is *bitwise* plain EI.
    #[test]
    fn certain_feasibility_collapses_to_plain_ei(
        (x, y) in training_set(),
        (ox, oy) in training_set(),
        q in proptest::collection::vec(0.5f64..20.0, 2),
        xi in 0.0f64..0.1,
    ) {
        let constraint = fit(x, y);
        let objective = fit(ox, oy);
        let f_best = objective.best_observed();
        // Latencies are < 1000 and posterior stds are bounded by the data
        // scale, so 1e9 is dozens of σ above any posterior mean: Φ
        // saturates to exactly 1.0 in f64.
        let threshold = 1e9;
        prop_assert_eq!(
            probability_of_feasibility(&constraint, &q, threshold).to_bits(),
            1.0f64.to_bits()
        );
        let cei = constrained_ei(&objective, &constraint, &q, f_best, xi, threshold);
        let ei = expected_improvement(&objective, &q, f_best, xi);
        prop_assert_eq!(cei.to_bits(), ei.to_bits());
    }

    /// cEI never exceeds plain EI (PoF ≤ 1) and is never negative.
    #[test]
    fn cei_bounded_by_plain_ei(
        (x, y) in training_set(),
        (ox, oy) in training_set(),
        k in proptest::collection::vec(1u32..16, 2),
        threshold in 0.0f64..1500.0,
    ) {
        let constraint = fit(x, y);
        let objective = fit(ox, oy);
        let f_best = objective.best_observed();
        let q = to_features(&k);
        let cei = constrained_ei(&objective, &constraint, &q, f_best, 0.01, threshold);
        let ei = expected_improvement(&objective, &q, f_best, 0.01);
        prop_assert!(cei >= 0.0, "cei = {cei}");
        prop_assert!(cei <= ei, "cei {cei} > ei {ei}");
    }
}

//! Recorded-trace parity: the incremental observe→suggest path must be
//! indistinguishable from forced full refits over a whole Algorithm 1 run.
//!
//! The incremental optimizer runs a 40-step seeded loop first, recording
//! every suggestion and score. A second optimizer with
//! `force_full_refit` — identical schedule, but every surrogate is
//! rebuilt from scratch — then replays the recorded observations and must
//! reproduce the recorded suggestion at every step, with posterior
//! mean/variance agreeing within 1e-8 (the models are in fact
//! bit-identical; the tolerance is the contract, the bit equality the
//! implementation).
//!
//! Everything is relative between the two runs — no environment-dependent
//! constants — so the test pins the equivalence, not one RNG's arithmetic.

use autrascale_bayesopt::{BayesOpt, BoOptions, SearchSpace};
use autrascale_gp::FitOptions;

const STEPS: usize = 40;

/// Deterministic noisy-bowl objective over a 2-operator space.
fn objective(k: &[u32], step: usize) -> f64 {
    let d0 = k[0] as f64 - 5.0;
    let d1 = k[1] as f64 - 3.0;
    // Deterministic "noise" so duplicate configurations get distinct
    // scores, as streaming QoS measurements would.
    let wobble = ((step * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
    1.0 - 0.04 * (d0 * d0 + d1 * d1) + 0.01 * wobble
}

fn options(force_full_refit: bool) -> BoOptions {
    BoOptions {
        refit_every: 5,
        force_full_refit,
        // Keep hyperfits cheap: the trace covers 40 surrogate updates.
        fit: FitOptions {
            restarts: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn seeded(force_full_refit: bool) -> BayesOpt {
    // 8×8 = 64 ≤ max_enumeration: candidates enumerate deterministically,
    // so no sampling RNG is involved in either run.
    let space = SearchSpace::new(vec![1, 1], vec![8, 8]).unwrap();
    let mut bo = BayesOpt::new(space, options(force_full_refit));
    for k in [[1u32, 1], [8, 8], [1, 8], [8, 1], [4, 4]] {
        bo.observe(k.to_vec(), objective(&k, 0));
    }
    bo
}

#[test]
fn incremental_run_matches_forced_full_refit_replay() {
    // Phase 1: drive the incremental optimizer, recording the trace.
    let mut fast = seeded(false);
    let mut trace: Vec<(Vec<u32>, f64)> = Vec::with_capacity(STEPS);
    let mut fast_models = Vec::with_capacity(STEPS);
    for step in 1..=STEPS {
        let gp = fast.surrogate().expect("surrogate fit");
        let k = fast.suggest_with(&gp);
        let s = objective(&k, step);
        fast.observe(k.clone(), s);
        trace.push((k, s));
        fast_models.push(gp);
    }

    // Phase 2: replay the recorded trace through the forced-full optimizer.
    let mut slow = seeded(true);
    let probes: Vec<Vec<f64>> = (1..=8)
        .flat_map(|a| [vec![a as f64, 2.0], vec![a as f64, 6.5]])
        .collect();
    for (step, (recorded_k, recorded_s)) in trace.iter().enumerate() {
        let gp = slow.surrogate().expect("surrogate fit");
        let suggested = slow.suggest_with(&gp);
        assert_eq!(
            &suggested, recorded_k,
            "step {step}: forced-full suggestion diverged from the recorded trace"
        );

        // Posterior parity at every step, across the whole probe grid.
        let fast_gp = &fast_models[step];
        assert_eq!(fast_gp.len(), gp.len(), "step {step}: training set size");
        for q in &probes {
            let pf = fast_gp.predict(q);
            let ps = gp.predict(q);
            assert!(
                (pf.mean - ps.mean).abs() <= 1e-8,
                "step {step} at {q:?}: mean {} vs {}",
                pf.mean,
                ps.mean
            );
            let vf = pf.std * pf.std;
            let vs = ps.std * ps.std;
            assert!(
                (vf - vs).abs() <= 1e-8,
                "step {step} at {q:?}: variance {vf} vs {vs}"
            );
            // The implementation promises more than the tolerance: the
            // two paths are bit-identical.
            assert_eq!(pf.mean.to_bits(), ps.mean.to_bits(), "step {step} {q:?}");
            assert_eq!(pf.std.to_bits(), ps.std.to_bits(), "step {step} {q:?}");
        }

        slow.observe(recorded_k.clone(), *recorded_s);
    }

    // Both optimizers saw identical histories end to end.
    assert_eq!(fast.observations(), slow.observations());
}

#[test]
fn legacy_schedule_is_unaffected_by_parity_knobs() {
    // refit_every = 1 ignores force_full_refit entirely: both are the
    // seed's fit-every-suggest behavior.
    let run = |force: bool| {
        let space = SearchSpace::new(vec![1, 1], vec![6, 6]).unwrap();
        let mut bo = BayesOpt::new(
            space,
            BoOptions {
                force_full_refit: force,
                fit: FitOptions {
                    restarts: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        for k in [[1u32, 1], [6, 6], [3, 3]] {
            bo.observe(k.to_vec(), objective(&k, 0));
        }
        let mut out = Vec::new();
        for step in 1..=6 {
            let k = bo.suggest().unwrap();
            let s = objective(&k, step);
            bo.observe(k.clone(), s);
            out.push(k);
        }
        out
    };
    assert_eq!(run(false), run(true));
}

//! Long-horizon sparse-surrogate regression: a 300-observation trace
//! drives the optimizer across the `max_surrogate_points` boundary, so the
//! exact→sparse engine handoff happens mid-run for both sparse strategies.
//!
//! Pinned here:
//!
//! * suggestions stay inside the search space and every acquisition score
//!   stays finite on both sides of the handoff, for the subset-of-data
//!   default and the FITC strategy alike;
//! * at n = 300 observations and m = 64 inducing/subset points, FITC
//!   (which keeps all 300 observations in the likelihood) predicts
//!   held-out configurations at least as well as subset-of-data (which
//!   discards all but 64);
//! * the default options and an explicitly-spelled
//!   `SparseStrategy::SubsetOfData` are the same code path, bit for bit —
//!   adding the strategy knob must not perturb existing behaviour.

use autrascale_bayesopt::{
    expected_improvement, to_features, BayesOpt, BoOptions, SearchSpace, SparseStrategy, Surrogate,
};
use autrascale_gp::{fit_fitc, fit_subset, FitOptions};

/// Observations in the trace; well past `CAP` so most of the run is sparse.
const HORIZON: usize = 300;
/// Sparsification cap: the engine handoff happens at observation CAP + 1.
const CAP: usize = 64;

/// The noise-free benefit surface the trace samples.
fn smooth(k: &[u32]) -> f64 {
    let d0 = k[0] as f64 - 20.0;
    let d1 = k[1] as f64 - 9.0;
    1.0 - 0.003 * (d0 * d0 + d1 * d1)
}

/// Deterministic smooth objective with a reproducible wobble, so repeated
/// configurations get distinct scores as streaming QoS measurements would.
fn objective(k: &[u32], step: usize) -> f64 {
    let wobble = ((step.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0 - 0.5;
    smooth(k) + 0.05 * wobble
}

/// The recorded trace: a seeded LCG walk over the 32×32 space.
fn trace() -> Vec<(Vec<u32>, f64)> {
    let mut state = 0x243F_6A88_85A3_08D3_u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..HORIZON)
        .map(|step| {
            let k = vec![next() % 32 + 1, next() % 32 + 1];
            let score = objective(&k, step);
            (k, score)
        })
        .collect()
}

fn options(strategy: SparseStrategy) -> BoOptions {
    BoOptions {
        max_surrogate_points: CAP,
        sparse_strategy: strategy,
        // Keep hyperfits cheap: the trace fits at several checkpoints.
        fit: FitOptions {
            restarts: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn space() -> SearchSpace {
    SearchSpace::new(vec![1, 1], vec![32, 32]).unwrap()
}

/// Replays the trace, suggesting at checkpoints straddling the handoff and
/// asserting every suggestion is in-space and every EI score finite.
fn run_checkpointed(strategy: SparseStrategy) {
    let checkpoints = [CAP - 4, CAP + 1, 150, HORIZON];
    let mut bo = BayesOpt::new(space(), options(strategy));
    for (step, (k, score)) in trace().into_iter().enumerate() {
        bo.observe(k, score);
        if !checkpoints.contains(&(step + 1)) {
            continue;
        }
        let suggestion = bo.suggest().expect("suggest across the handoff");
        assert!(
            bo.space().contains(&suggestion),
            "{strategy:?} at n = {}: suggestion {suggestion:?} out of space",
            step + 1
        );
        // Score the full candidate grid through the same engine suggest()
        // used: no acquisition value may go non-finite past the handoff.
        let f_best = bo
            .observations()
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        let assert_finite_ei = |surrogate: &dyn Surrogate| {
            for k0 in (1..=32u32).step_by(3) {
                for k1 in (1..=32u32).step_by(3) {
                    let ei = expected_improvement(surrogate, &to_features(&[k0, k1]), f_best, 0.01);
                    assert!(
                        ei.is_finite(),
                        "{strategy:?} at n = {}: EI({k0}, {k1}) = {ei}",
                        step + 1
                    );
                }
            }
        };
        if strategy == SparseStrategy::Fitc && step + 1 > CAP {
            assert_finite_ei(&bo.fit_fitc_surrogate().unwrap());
        } else {
            assert_finite_ei(&bo.fit_surrogate().unwrap());
        }
    }
}

#[test]
fn subset_of_data_survives_the_long_horizon() {
    run_checkpointed(SparseStrategy::SubsetOfData);
}

#[test]
fn fitc_survives_the_long_horizon() {
    run_checkpointed(SparseStrategy::Fitc);
}

#[test]
fn fitc_held_out_rmse_beats_subset_of_data_at_the_same_budget() {
    let trace = trace();
    let x: Vec<Vec<f64>> = trace.iter().map(|(k, _)| to_features(k)).collect();
    let y: Vec<f64> = trace.iter().map(|(_, s)| *s).collect();
    let fit = FitOptions {
        restarts: 2,
        ..Default::default()
    };

    let fitc = fit_fitc(x.clone(), y, CAP, &fit).unwrap();
    let subset = {
        let y: Vec<f64> = trace.iter().map(|(_, s)| *s).collect();
        fit_subset(x, y, CAP, &fit).unwrap()
    };
    assert_eq!(fitc.len(), HORIZON, "FITC keeps the whole trace");
    assert_eq!(subset.len(), CAP, "subset-of-data discards down to the cap");

    // Held-out grid: configurations never fed to either model, scored
    // against the noise-free surface — the error a model's *mean* makes,
    // which is exactly where keeping all 300 noisy observations (FITC)
    // instead of 64 (subset-of-data) should pay off.
    let rmse = |model: &dyn Surrogate| -> f64 {
        let mut sq = 0.0;
        let mut count = 0;
        for k0 in (2..=32u32).step_by(4) {
            for k1 in (2..=32u32).step_by(4) {
                let err = model.predict(&to_features(&[k0, k1])).mean - smooth(&[k0, k1]);
                sq += err * err;
                count += 1;
            }
        }
        (sq / count as f64).sqrt()
    };
    let fitc_rmse = rmse(&fitc);
    let subset_rmse = rmse(&subset);
    assert!(
        fitc_rmse <= subset_rmse,
        "FITC held-out RMSE {fitc_rmse} worse than subset-of-data {subset_rmse}"
    );
}

#[test]
fn explicit_subset_strategy_is_bit_identical_to_the_default() {
    let mut default_bo = BayesOpt::new(space(), BoOptions::default());
    let mut explicit_bo = BayesOpt::new(
        space(),
        BoOptions {
            sparse_strategy: SparseStrategy::SubsetOfData,
            ..Default::default()
        },
    );
    for (k, score) in trace() {
        default_bo.observe(k.clone(), score);
        explicit_bo.observe(k, score);
    }
    assert_eq!(
        default_bo.suggest().unwrap(),
        explicit_bo.suggest().unwrap()
    );
    let a = default_bo.fit_surrogate().unwrap();
    let b = explicit_bo.fit_surrogate().unwrap();
    assert_eq!(
        a.log_marginal_likelihood().to_bits(),
        b.log_marginal_likelihood().to_bits()
    );
}

// Fixture: none of these may be reported by the `ambient-time` rule.
fn f(seed: u64, sim_now: f64) -> f64 {
    // Seeded RNG and explicit simulation time are the sanctioned forms.
    let rng = splitmix(seed);
    sim_now + rng as f64
    // "Instant" or "SystemTime" in comments and strings do not count.
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z ^ (z >> 31)
}

// Fixture: every line tagged EXPECT must be reported by the `panic` rule.
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap(); // EXPECT line 3
    let b = x.expect("present"); // EXPECT line 4
    if a > b {
        panic!("boom"); // EXPECT line 6
    }
    match a {
        0 => unreachable!(), // EXPECT line 9
        1 => todo!(), // EXPECT line 10
        2 => unimplemented!(), // EXPECT line 11
        _ => a,
    }
}

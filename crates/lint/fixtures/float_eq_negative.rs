// Fixture: none of these may be reported by the `float-eq` rule.
fn f(x: f64, y: f64, n: usize, m: usize) -> bool {
    let a = n == m; // integer equality is fine
    let b = (x - y).abs() < 1e-12; // the sanctioned tolerance compare
    let c = x.to_bits() == y.to_bits(); // bitwise parity idiom
    let d = "x == 1.0".len() == 8; // float `==` inside a string
    let lens = x.max(0.0).to_bits() != 0; // method-call result, not a float
    a && b && c && d && lens
}

#[cfg(test)]
mod tests {
    #[test]
    fn parity_tests_may_compare_exactly() {
        let x = 0.1 + 0.2;
        assert!(x == 0.30000000000000004);
    }
}

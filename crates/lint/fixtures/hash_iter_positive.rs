// Fixture: every EXPECT line must be reported by the `hash-iter` rule
// (when scanned as a deterministic-core crate).
use std::collections::HashMap; // EXPECT line 3
use std::collections::HashSet; // EXPECT line 4

fn f(m: HashMap<u32, f64>) -> f64 { // EXPECT line 6
    m.values().sum()
}

fn g() -> usize {
    let s: HashSet<u32> = [1, 2, 3].into_iter().collect(); // EXPECT line 11
    s.len()
}

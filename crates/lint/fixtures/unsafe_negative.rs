#![forbid(unsafe_code)]
// Fixture: scanned as a crate root; the attribute above satisfies the
// `unsafe-code` presence check and nothing here may be reported.
fn f(v: &[u32]) -> u32 {
    // "unsafe" in a string or comment does not count: unsafe.
    let s = "unsafe { }";
    v.iter().sum::<u32>() + s.len() as u32
}

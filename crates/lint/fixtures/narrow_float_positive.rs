// Fixture: every EXPECT line must be reported by the `narrow-float` rule
// (when scanned as a numeric crate).
fn f(x: f64) -> f64 {
    let a = x as f32; // EXPECT line 4
    let b: f32 = 0.5f32; // EXPECT line 5 (twice: type and literal suffix)
    f64::from(a) + f64::from(b)
}

// Fixture: lexing stress. Nothing in this file may produce ANY finding —
// every would-be violation is inside a string, raw string, or comment.
fn f() -> usize {
    let plain = "x.unwrap() and v[0] and a == 1.0 and HashMap";
    let escaped = "quote \" then x.expect(\"boom\") still inside";
    let raw = r"raw \ backslash does not escape: panic!(now)";
    let hashed = r#"one hash: "inner quotes" and unsafe { } here"#;
    let doubled = r##"two hashes: "# not the end "# keeps going"##;
    let ch = '"'; // a quote char, not a string opener
    let not_lifetime: char = 'a';
    /* block comment with x.unwrap() and v[1]
       /* nested block comment: SystemTime::now() */
       still commented: 0.1 == 0.2 */
    let b = b"byte string with x.expect(\"no\")";
    let rb = br#"raw byte string: thread_rng()"#;
    plain.len()
        + escaped.len()
        + raw.len()
        + hashed.len()
        + doubled.len()
        + (ch as usize)
        + (not_lifetime as usize)
        + b.len()
        + rb.len()
}

struct S<'a> {
    // A lifetime right next to a char-looking token:
    r: &'a str,
}

fn generic_lifetimes<'b>(s: S<'b>) -> &'b str {
    // `r#match` is a raw identifier, not a raw string opener:
    let r#match = s.r;
    r#match
}

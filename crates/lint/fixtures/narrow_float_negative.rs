// Fixture: none of these may be reported by the `narrow-float` rule.
fn f(x: f64) -> f64 {
    let a = 0.5f64; // f64 suffix is fine
    let b = 0x1f32 as u64; // hex literal ending in "f32" is an integer
    let c = x * 2.0;
    // "f32" in a comment or string does not count: f32.
    let s = "never use f32";
    a + b as f64 + c + s.len() as f64
}

// Fixture: every EXPECT line must be reported by the `indexing` rule.
fn f(v: &[u32], m: &[Vec<u32>]) -> u32 {
    let a = v[0]; // EXPECT line 3
    let b = m[1][2]; // EXPECT line 4 (twice: outer and chained)
    let c = &v[1..]; // EXPECT line 5 (partial ranges can panic)
    let d = &v[..3]; // EXPECT line 6
    a + b + c.len() as u32 + d.len() as u32
}

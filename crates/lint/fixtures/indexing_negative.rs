// Fixture: none of these may be reported by the `indexing` rule.
fn f(v: &[u32]) -> u32 {
    let array = [1u32, 2, 3]; // array literal, not indexing
    let [first, .., last] = array; // slice pattern after `let`
    let full = &v[..]; // full-range slice cannot panic
    let g = v.get(0).copied(); // checked access
    let s: Vec<u32> = v.iter().copied().collect(); // iterators
    first + last + full.len() as u32 + g.unwrap_or(0) + s.len() as u32
}

#[test]
fn tests_may_index(/* attribute form without cfg(test) */) {
    let v = [1, 2, 3];
    assert_eq!(v[1], 2);
}

// Fixture: every EXPECT line must be reported by the `ambient-time` rule
// (when scanned as a non-exempt crate).
use std::time::Instant; // EXPECT line 3
use std::time::SystemTime; // EXPECT line 4

fn f() -> u128 {
    let t0 = Instant::now(); // EXPECT line 7
    let wall = SystemTime::now(); // EXPECT line 8
    let _ = wall;
    t0.elapsed().as_nanos()
}

fn g() -> u64 {
    let mut rng = rand::thread_rng(); // EXPECT line 14
    rng.next_u64()
}

// Fixture: every EXPECT line must be reported by the `float-eq` rule.
fn f(x: f64, y: f64) -> bool {
    let sentinel = f64::NEG_INFINITY;
    let a = x == 1.0; // EXPECT line 4
    let b = 0.5 != y; // EXPECT line 5
    let c = x == y; // EXPECT line 6 (both operands are typed floats)
    let d = sentinel == x; // EXPECT line 7 (let-bound float ident)
    a && b && c && d
}

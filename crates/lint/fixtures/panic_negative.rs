// Fixture: none of these may be reported by the `panic` rule.
fn f(x: Option<u32>) -> Option<u32> {
    // unwrap()/panic!() in comments do not count; neither do strings:
    let s = "please do not panic!(now) or x.unwrap() here";
    let _ = s;
    let v = x?; // `?` is the sanctioned propagation
    x.map(|n| n + v).or(Some(0)) // combinators are fine
}

fn unwrap_or_is_fine(x: Option<u32>) -> u32 {
    // `unwrap_or` / `unwrap_or_else` / `unwrap_or_default` never panic and
    // must not match the bare-`unwrap` pattern.
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if false {
            panic!("tests are exempt");
        }
    }
}

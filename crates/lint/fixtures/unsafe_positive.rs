// Fixture: every EXPECT line must be reported by the `unsafe-code` rule.
fn f(p: *const u32) -> u32 {
    unsafe { *p } // EXPECT line 3
}

unsafe fn g() {} // EXPECT line 6

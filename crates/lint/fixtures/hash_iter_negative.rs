// Fixture: none of these may be reported by the `hash-iter` rule.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

fn f(m: BTreeMap<u32, f64>) -> f64 {
    // "HashMap" in a string or comment does not count: HashMap.
    let _doc = "HashMap iteration order";
    m.values().sum()
}

fn g() -> usize {
    let s: BTreeSet<u32> = [1, 2, 3].into_iter().collect();
    s.len()
}

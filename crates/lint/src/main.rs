//! CLI for the workspace lint pass.
//!
//! ```text
//! autrascale-lint --check [--json] [--root DIR] [--baseline FILE]
//!                 [--disable TAG]... [--only TAG] [--write-baseline]
//!                 [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 new findings or stale baseline entries, 2 usage
//! or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use autrascale_lint::baseline::Baseline;
use autrascale_lint::rules::ALL_RULES;
use autrascale_lint::Linter;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug)]
struct Cli {
    root: PathBuf,
    baseline: PathBuf,
    json: bool,
    write_baseline: bool,
    list_rules: bool,
    linter: Linter,
}

fn parse_args() -> Result<Cli, String> {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut json = false;
    let mut write_baseline = false;
    let mut list_rules = false;
    let mut saw_check = false;
    let mut linter = Linter::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => saw_check = true,
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--list-rules" => list_rules = true,
            "--root" => {
                root = args
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--root needs a directory argument")?;
            }
            "--baseline" => {
                baseline = Some(
                    args.next()
                        .map(PathBuf::from)
                        .ok_or("--baseline needs a file argument")?,
                );
            }
            "--disable" => {
                let tag = args.next().ok_or("--disable needs a rule tag")?;
                if !linter.disable(&tag) {
                    return Err(format!("unknown rule tag {tag} (see --list-rules)"));
                }
            }
            "--only" => {
                let tag = args.next().ok_or("--only needs a rule tag")?;
                if !linter.only(&tag) {
                    return Err(format!("unknown rule tag {tag} (see --list-rules)"));
                }
            }
            "--help" | "-h" => {
                return Err(USAGE.to_string());
            }
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if !saw_check && !write_baseline && !list_rules {
        return Err(format!("nothing to do: pass --check\n{USAGE}"));
    }
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.toml"));
    Ok(Cli {
        root,
        baseline,
        json,
        write_baseline,
        list_rules,
        linter,
    })
}

const USAGE: &str = "usage: autrascale-lint --check [--json] [--root DIR] \
[--baseline FILE] [--disable TAG]... [--only TAG] [--write-baseline] [--list-rules]";

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if cli.list_rules {
        for rule in ALL_RULES {
            println!("{:12} [{}] {}", rule.tag(), rule.group(), rule.rationale());
        }
        return ExitCode::SUCCESS;
    }

    if cli.write_baseline {
        let (findings, _) = match cli.linter.scan_workspace(&cli.root) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("lint: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = Baseline::covering(&findings);
        if let Err(e) = std::fs::write(&cli.baseline, baseline.render()) {
            eprintln!("lint: writing {}: {e}", cli.baseline.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "lint: wrote {} entr(ies) to {}; edit the TODO justifications",
            baseline.entries.len(),
            cli.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let report = match cli.linter.check(&cli.root, &cli.baseline) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    if cli.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! The ratchet baseline: `lint-baseline.toml` records, per (rule, file),
//! how many findings are grandfathered in and why. A run fails on findings
//! *above* the allowance (new debt) and on allowances *above* the findings
//! (stale entries — the baseline may only shrink, never silently pad).
//!
//! The parser is a hand-rolled subset of TOML — `[[allow]]` tables with
//! `key = "string"` / `key = integer` pairs and `#` comments — so the lint
//! binary stays dependency-free.

use crate::report::Finding;
use std::collections::BTreeMap;

/// One grandfathered (rule, file) allowance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    pub count: u32,
    /// Required one-line justification; entries without one are rejected.
    pub justification: String,
}

/// Parsed baseline.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub entries: Vec<AllowEntry>,
}

/// Parse failures carry the 1-based line for fixups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-baseline.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<(u32, PartialEntry)> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some((at, partial)) = current.take() {
                    entries.push(partial.finish(at)?);
                }
                current = Some((lineno, PartialEntry::default()));
                continue;
            }
            if line.starts_with('[') {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("unsupported table {line}; only [[allow]] is recognised"),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("expected key = value, got {line}"),
                });
            };
            let Some((_, partial)) = current.as_mut() else {
                return Err(BaselineError {
                    line: lineno,
                    message: "key/value outside any [[allow]] table".to_string(),
                });
            };
            partial.set(key.trim(), value.trim(), lineno)?;
        }
        if let Some((at, partial)) = current.take() {
            entries.push(partial.finish(at)?);
        }
        Ok(Baseline { entries })
    }

    /// Serialises back to the same subset, sorted by (file, rule) so the
    /// checked-in file is diff-stable.
    pub fn render(&self) -> String {
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| (&a.file, &a.rule).cmp(&(&b.file, &b.rule)));
        let mut out = String::from(
            "# Grandfathered lint findings. The ratchet only tightens: raising a count\n\
             # or adding an entry requires justification in review; stale entries fail CI.\n",
        );
        for e in &sorted {
            out.push_str(&format!(
                "\n[[allow]]\nrule = \"{}\"\nfile = \"{}\"\ncount = {}\njustification = \"{}\"\n",
                e.rule, e.file, e.count, e.justification
            ));
        }
        out
    }

    /// Splits raw findings into (new, suppressed-count) and reports stale
    /// entries. Matching is by exact (rule, file) with count semantics:
    /// findings ≤ count are suppressed; the excess is new; count with no
    /// findings left over is stale.
    pub fn apply(&self, findings: &[Finding]) -> (Vec<Finding>, Vec<String>, usize) {
        let mut budget: BTreeMap<(String, String), u32> = BTreeMap::new();
        for e in &self.entries {
            *budget.entry((e.rule.clone(), e.file.clone())).or_insert(0) += e.count;
        }
        let mut new_findings = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            let key = (f.rule.clone(), f.file.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    suppressed += 1;
                }
                _ => new_findings.push(f.clone()),
            }
        }
        let stale: Vec<String> = budget
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|((rule, file), n)| format!("{rule} @ {file} ({n} unused allowance(s))"))
            .collect();
        (new_findings, stale, suppressed)
    }

    /// Builds a fresh baseline covering exactly `findings`, with placeholder
    /// justifications to be hand-edited (used by `--write-baseline`).
    pub fn covering(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<(String, String), u32> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule.clone(), f.file.clone())).or_insert(0) += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((rule, file), count)| AllowEntry {
                    rule,
                    file,
                    count,
                    justification: "TODO: justify or fix".to_string(),
                })
                .collect(),
        }
    }
}

#[derive(Debug, Default)]
struct PartialEntry {
    rule: Option<String>,
    file: Option<String>,
    count: Option<u32>,
    justification: Option<String>,
}

impl PartialEntry {
    fn set(&mut self, key: &str, value: &str, line: u32) -> Result<(), BaselineError> {
        match key {
            "rule" => self.rule = Some(parse_string(value, line)?),
            "file" => self.file = Some(parse_string(value, line)?),
            "justification" => self.justification = Some(parse_string(value, line)?),
            "count" => {
                self.count = Some(value.parse().map_err(|_| BaselineError {
                    line,
                    message: format!("count must be a non-negative integer, got {value}"),
                })?);
            }
            other => {
                return Err(BaselineError {
                    line,
                    message: format!("unknown key {other}"),
                })
            }
        }
        Ok(())
    }

    fn finish(self, line: u32) -> Result<AllowEntry, BaselineError> {
        let missing = |what: &str| BaselineError {
            line,
            message: format!("[[allow]] entry is missing `{what}`"),
        };
        let entry = AllowEntry {
            rule: self.rule.ok_or_else(|| missing("rule"))?,
            file: self.file.ok_or_else(|| missing("file"))?,
            count: self.count.ok_or_else(|| missing("count"))?,
            justification: self.justification.ok_or_else(|| missing("justification"))?,
        };
        if entry.justification.trim().is_empty() {
            return Err(BaselineError {
                line,
                message: "justification must be non-empty".to_string(),
            });
        }
        Ok(entry)
    }
}

/// Strips a trailing `#` comment, honouring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_string = !in_string,
            '#' if !in_string => return line.get(..i).unwrap_or(line),
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_string(value: &str, line: u32) -> Result<String, BaselineError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| BaselineError {
            line,
            message: format!("expected a double-quoted string, got {value}"),
        })?;
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str) -> Finding {
        Finding {
            rule: rule.to_string(),
            group: "R1".to_string(),
            file: file.to_string(),
            line: 1,
            snippet: String::new(),
            message: String::new(),
        }
    }

    const SAMPLE: &str = r#"
# header comment
[[allow]]
rule = "panic"
file = "crates/gp/src/kernel.rs"  # inline comment
count = 2
justification = "dimension mismatch is a programmer error"
"#;

    #[test]
    fn parses_sample() {
        let b = Baseline::parse(SAMPLE).expect("parse");
        assert_eq!(b.entries.len(), 1);
        let e = b.entries.first().expect("entry");
        assert_eq!(e.rule, "panic");
        assert_eq!(e.count, 2);
        assert!(e.justification.contains("programmer error"));
    }

    #[test]
    fn missing_justification_is_rejected() {
        let text = "[[allow]]\nrule = \"panic\"\nfile = \"x.rs\"\ncount = 1\n";
        let err = Baseline::parse(text).expect_err("must fail");
        assert!(err.message.contains("justification"));
    }

    #[test]
    fn apply_splits_new_suppressed_stale() {
        let b = Baseline::parse(SAMPLE).expect("parse");
        // 3 findings against an allowance of 2 → 1 new, 2 suppressed.
        let findings = vec![
            finding("panic", "crates/gp/src/kernel.rs"),
            finding("panic", "crates/gp/src/kernel.rs"),
            finding("panic", "crates/gp/src/kernel.rs"),
        ];
        let (new, stale, suppressed) = b.apply(&findings);
        assert_eq!((new.len(), stale.len(), suppressed), (1, 0, 2));

        // 1 finding against an allowance of 2 → stale.
        let findings = vec![finding("panic", "crates/gp/src/kernel.rs")];
        let (new, stale, suppressed) = b.apply(&findings);
        assert_eq!((new.len(), stale.len(), suppressed), (0, 1, 1));
        assert!(stale
            .first()
            .is_some_and(|s| s.contains("1 unused allowance")));
    }

    #[test]
    fn roundtrip_via_render() {
        let b = Baseline::parse(SAMPLE).expect("parse");
        let again = Baseline::parse(&b.render()).expect("reparse");
        assert_eq!(b.entries, again.entries);
    }

    #[test]
    fn covering_counts_per_rule_file() {
        let findings = vec![
            finding("panic", "a.rs"),
            finding("panic", "a.rs"),
            finding("float-eq", "b.rs"),
        ];
        let b = Baseline::covering(&findings);
        assert_eq!(b.entries.len(), 2);
        let (new, stale, suppressed) = b.apply(&findings);
        assert_eq!((new.len(), stale.len(), suppressed), (0, 0, 3));
    }
}

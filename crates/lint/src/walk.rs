//! Source discovery: every `crates/<name>/src/**/*.rs` plus each crate's
//! `benches/` and integration-test trees are *known*, but only non-test
//! sources are linted. Files come back sorted so reports and baselines are
//! byte-stable across runs and platforms.

use std::fs;
use std::path::{Path, PathBuf};

/// How a crate is treated by the rules (decided by directory name, which is
/// stable in this workspace; see DESIGN.md "Determinism invariants").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrateClass {
    /// `bench`, `cli`, `experiments`: process edges where ambient time and
    /// panicking on startup misconfiguration are acceptable.
    ambient_exempt: bool,
    /// `streamsim`, `gp`, `bayesopt`, `core`, `forecast`, `fleet`: crates
    /// whose outputs the parity suites pin bit-for-bit.
    deterministic_core: bool,
    /// `linalg`, `gp`, `bayesopt`, `forecast`: crates doing f64 numerics.
    numeric: bool,
}

impl CrateClass {
    /// Classifies a crate by its directory name under `crates/`.
    pub fn for_crate(name: &str) -> CrateClass {
        CrateClass {
            ambient_exempt: matches!(name, "bench" | "cli" | "experiments"),
            deterministic_core: matches!(
                name,
                "streamsim" | "gp" | "bayesopt" | "core" | "forecast" | "fleet"
            ),
            numeric: matches!(name, "linalg" | "gp" | "bayesopt" | "forecast"),
        }
    }

    /// Library crates get the panic/indexing rules; process-edge crates
    /// (`bench`/`cli`/`experiments`) may fail fast on bad input.
    pub fn is_library(self) -> bool {
        !self.ambient_exempt
    }

    pub fn deterministic_core(self) -> bool {
        self.deterministic_core
    }

    pub fn ambient_exempt(self) -> bool {
        self.ambient_exempt
    }

    pub fn numeric(self) -> bool {
        self.numeric
    }

    /// A maximally-strict class for rule unit tests.
    pub fn library_for_tests() -> CrateClass {
        CrateClass {
            ambient_exempt: false,
            deterministic_core: true,
            numeric: true,
        }
    }
}

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Classification of the owning crate.
    pub class: CrateClass,
    /// Whether this is `src/lib.rs` or `src/main.rs` (crate-root attribute
    /// checks apply).
    pub is_crate_root: bool,
}

/// Errors from workspace discovery.
#[derive(Debug)]
pub enum WalkError {
    /// `root` has no `crates/` directory — wrong working directory.
    NoCratesDir(PathBuf),
    /// An I/O failure while reading a directory.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkError::NoCratesDir(root) => {
                write!(
                    f,
                    "{} has no crates/ directory; pass --root",
                    root.display()
                )
            }
            WalkError::Io(path, err) => write!(f, "reading {}: {}", path.display(), err),
        }
    }
}

impl std::error::Error for WalkError {}

/// Finds every lintable source file under `<root>/crates/*/src/`, sorted by
/// relative path. Integration tests (`tests/`), benches (`benches/`), and
/// the lint crate's own fixtures are skipped: they are allowed to panic and
/// to contain deliberate rule violations.
pub fn discover(root: &Path) -> Result<Vec<SourceFile>, WalkError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(WalkError::NoCratesDir(root.to_path_buf()));
    }
    let mut crate_names = Vec::new();
    let entries = fs::read_dir(&crates_dir).map_err(|e| WalkError::Io(crates_dir.clone(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| WalkError::Io(crates_dir.clone(), e))?;
        if entry.path().is_dir() {
            if let Some(name) = entry.file_name().to_str() {
                crate_names.push(name.to_string());
            }
        }
    }
    crate_names.sort();

    let mut files = Vec::new();
    for name in &crate_names {
        let src = crates_dir.join(name).join("src");
        if !src.is_dir() {
            continue;
        }
        let class = CrateClass::for_crate(name);
        collect_rs(&src, &mut |abs| {
            let rel = rel_to(root, &abs);
            let is_crate_root = rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs");
            // The lint crate's fixture corpus contains deliberate violations.
            if rel.contains("/fixtures/") {
                return;
            }
            files.push(SourceFile {
                rel_path: rel,
                abs_path: abs,
                class,
                is_crate_root,
            });
        })?;
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Depth-first `.rs` collection in deterministic (sorted) order.
fn collect_rs(dir: &Path, sink: &mut dyn FnMut(PathBuf)) -> Result<(), WalkError> {
    let mut entries: Vec<PathBuf> = Vec::new();
    let read = fs::read_dir(dir).map_err(|e| WalkError::Io(dir.to_path_buf(), e))?;
    for entry in read {
        let entry = entry.map_err(|e| WalkError::Io(dir.to_path_buf(), e))?;
        entries.push(entry.path());
    }
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, sink)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            sink(path);
        }
    }
    Ok(())
}

/// Workspace-relative, `/`-separated form of `abs` (falls back to the
/// absolute path if `abs` is not under `root`).
fn rel_to(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    rel.components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_design() {
        assert!(CrateClass::for_crate("bench").ambient_exempt());
        assert!(CrateClass::for_crate("cli").ambient_exempt());
        assert!(CrateClass::for_crate("experiments").ambient_exempt());
        assert!(!CrateClass::for_crate("gp").ambient_exempt());
        assert!(CrateClass::for_crate("core").deterministic_core());
        assert!(CrateClass::for_crate("streamsim").deterministic_core());
        assert!(!CrateClass::for_crate("metricsdb").deterministic_core());
        // The forecast crate feeds the controller's proactive decisions,
        // so it gets both the bit-for-bit determinism rules (no HashMap
        // iteration, no ambient time/rng) and the f64-only numeric rules.
        assert!(CrateClass::for_crate("forecast").deterministic_core());
        assert!(CrateClass::for_crate("forecast").numeric());
        // The fleet scheduler's concurrent-vs-serial parity is pinned
        // bitwise, so it inherits the full determinism ruleset (and it is
        // a library crate: no panicking escapes in src/).
        assert!(CrateClass::for_crate("fleet").deterministic_core());
        assert!(CrateClass::for_crate("fleet").is_library());
        assert!(!CrateClass::for_crate("fleet").numeric());
        assert!(CrateClass::for_crate("linalg").numeric());
        assert!(!CrateClass::for_crate("flinkctl").numeric());
        assert!(CrateClass::for_crate("metricsdb").is_library());
        assert!(!CrateClass::for_crate("cli").is_library());
    }

    #[test]
    fn discovery_is_sorted_and_skips_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf);
        let Some(root) = root else {
            return;
        };
        let Ok(files) = discover(&root) else {
            return;
        };
        assert!(!files.is_empty());
        for pair in files.windows(2) {
            if let [a, b] = pair {
                assert!(a.rel_path < b.rel_path, "{} !< {}", a.rel_path, b.rel_path);
            }
        }
        assert!(files.iter().all(|f| !f.rel_path.contains("/fixtures/")));
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/lint/src/walk.rs" && !f.is_crate_root));
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/lint/src/lib.rs" && f.is_crate_root));
    }
}

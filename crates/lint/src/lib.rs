//! `autrascale-lint`: a dependency-free static analysis pass enforcing the
//! workspace's determinism and panic-safety invariants (DESIGN.md,
//! "Determinism invariants"). A hand-rolled lexer (no `syn`) keeps the tool
//! buildable offline; findings ratchet against `lint-baseline.toml`, which
//! may only shrink.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use baseline::Baseline;
use report::{Finding, Report};
use rules::Rule;
use std::collections::BTreeSet;
use std::path::Path;

/// Errors from a full lint run.
#[derive(Debug)]
pub enum LintError {
    Walk(walk::WalkError),
    ReadFile(String, std::io::Error),
    Baseline(baseline::BaselineError),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Walk(e) => write!(f, "{e}"),
            LintError::ReadFile(path, e) => write!(f, "reading {path}: {e}"),
            LintError::Baseline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

/// A configured lint pass.
#[derive(Debug)]
pub struct Linter {
    enabled: BTreeSet<Rule>,
}

impl Default for Linter {
    fn default() -> Self {
        Linter {
            enabled: rules::ALL_RULES.iter().copied().collect(),
        }
    }
}

impl Linter {
    pub fn new() -> Linter {
        Linter::default()
    }

    /// Turns off one rule by tag; returns false for unknown tags.
    pub fn disable(&mut self, tag: &str) -> bool {
        match Rule::from_tag(tag) {
            Some(rule) => {
                self.enabled.remove(&rule);
                true
            }
            None => false,
        }
    }

    /// Restricts the pass to exactly one rule; returns false for unknown tags.
    pub fn only(&mut self, tag: &str) -> bool {
        match Rule::from_tag(tag) {
            Some(rule) => {
                self.enabled = [rule].into_iter().collect();
                true
            }
            None => false,
        }
    }

    /// Scans the workspace at `root` and returns raw findings, sorted by
    /// (file, line, rule).
    pub fn scan_workspace(&self, root: &Path) -> Result<(Vec<Finding>, usize), LintError> {
        let files = walk::discover(root).map_err(LintError::Walk)?;
        let mut findings = Vec::new();
        for file in &files {
            let source = std::fs::read_to_string(&file.abs_path)
                .map_err(|e| LintError::ReadFile(file.rel_path.clone(), e))?;
            findings.extend(rules::scan_file(
                &file.rel_path,
                &source,
                file.class,
                &self.enabled,
                file.is_crate_root,
            ));
        }
        findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        Ok((findings, files.len()))
    }

    /// Full check: scan, diff against the baseline at `baseline_path`
    /// (missing file ⇒ empty baseline), build a `Report`.
    pub fn check(&self, root: &Path, baseline_path: &Path) -> Result<Report, LintError> {
        let (findings, files_scanned) = self.scan_workspace(root)?;
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => Baseline::parse(&text).map_err(LintError::Baseline)?,
            Err(_) => Baseline::default(),
        };
        let (new_findings, stale_entries, suppressed) = baseline.apply(&findings);
        Ok(Report {
            new_findings,
            stale_entries,
            suppressed,
            files_scanned,
        })
    }
}

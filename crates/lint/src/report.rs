//! Finding type plus the two output encodings: human text and a
//! hand-rolled, dependency-free JSON document (stable key order).

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule tag, e.g. `"panic"` or `"float-eq"`.
    pub rule: String,
    /// DESIGN.md group, e.g. `"R1"`.
    pub group: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The trimmed source line, for context.
    pub snippet: String,
    /// Human explanation of what to do instead.
    pub message: String,
}

impl Finding {
    /// `file:line: [R1/panic] message` — the one-line text form.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}: [{}/{}] {}\n    {}",
            self.file, self.line, self.group, self.rule, self.message, self.snippet
        )
    }
}

/// Outcome of a `--check` run, for both encodings.
#[derive(Debug, Clone)]
pub struct Report {
    /// Findings not covered by the baseline (cause failure).
    pub new_findings: Vec<Finding>,
    /// Baseline entries whose allowance exceeds current findings (cause
    /// failure: the baseline may only shrink).
    pub stale_entries: Vec<String>,
    /// Count of findings absorbed by the baseline.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.new_findings.is_empty() && self.stale_entries.is_empty()
    }

    /// Multi-line human rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for finding in &self.new_findings {
            out.push_str(&finding.render_text());
            out.push('\n');
        }
        for stale in &self.stale_entries {
            out.push_str("stale baseline entry (shrink lint-baseline.toml): ");
            out.push_str(stale);
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} file(s), {} new finding(s), {} stale baseline entr(ies), {} suppressed\n",
            self.files_scanned,
            self.new_findings.len(),
            self.stale_entries.len(),
            self.suppressed
        ));
        out
    }

    /// Machine-readable rendering. Schema (stable, snapshot-tested):
    /// `{"schema_version":1,"clean":bool,"files_scanned":n,"suppressed":n,`
    /// `"new_findings":[{rule,group,file,line,snippet,message}],`
    /// `"stale_entries":[string]}`
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"schema_version\":1,");
        out.push_str(&format!("\"clean\":{},", self.is_clean()));
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!("\"suppressed\":{},", self.suppressed));
        out.push_str("\"new_findings\":[");
        for (i, f) in self.new_findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"group\":{},\"file\":{},\"line\":{},\"snippet\":{},\"message\":{}}}",
                json_string(&f.rule),
                json_string(&f.group),
                json_string(&f.file),
                f.line,
                json_string(&f.snippet),
                json_string(&f.message)
            ));
        }
        out.push_str("],\"stale_entries\":[");
        for (i, s) in self.stale_entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(s));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string per RFC 8259 (quotes, backslash, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            new_findings: vec![Finding {
                rule: "panic".to_string(),
                group: "R1".to_string(),
                file: "crates/gp/src/kernel.rs".to_string(),
                line: 42,
                snippet: "let v = m.get(k).unwrap();".to_string(),
                message: ".unwrap() can panic; return a typed error".to_string(),
            }],
            stale_entries: vec!["panic @ crates/old.rs (allowed 3, found 1)".to_string()],
            suppressed: 5,
            files_scanned: 70,
        }
    }

    #[test]
    fn text_contains_location_and_counts() {
        let text = sample().render_text();
        assert!(text.contains("crates/gp/src/kernel.rs:42: [R1/panic]"));
        assert!(text.contains("stale baseline entry"));
        assert!(text.contains("70 file(s), 1 new finding(s)"));
    }

    #[test]
    fn json_escapes_and_is_stable() {
        let mut report = sample();
        if let Some(f) = report.new_findings.first_mut() {
            f.snippet = "say \"hi\"\tback\\".to_string();
        }
        let json = report.render_json();
        assert!(json.contains("\"say \\\"hi\\\"\\tback\\\\\""));
        assert!(json.starts_with("{\"schema_version\":1,"));
    }

    #[test]
    fn clean_report_says_so() {
        let report = Report {
            new_findings: Vec::new(),
            stale_entries: Vec::new(),
            suppressed: 0,
            files_scanned: 3,
        };
        assert!(report.is_clean());
        assert!(report.render_json().contains("\"clean\":true"));
    }
}

//! The determinism-and-panic-safety rules (R1–R6) over the lexed token
//! stream of one file.
//!
//! Every rule is individually toggleable and can be waived for a whole
//! file with a `// lint:allow(<tag>)` comment. Findings inside
//! `#[cfg(test)]` / `#[test]` / `#[should_panic]` items are suppressed —
//! test code is allowed to panic and to compare floats exactly.

use crate::lexer::{lex, Tok, TokKind};
use crate::report::Finding;
use crate::walk::CrateClass;
use std::collections::BTreeSet;

/// One lint rule. The `tag` is what `lint:allow(...)`, the baseline file,
/// and `--disable` use; the `id` groups tags into the R1–R6 of DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1 — `unwrap()` / `expect(` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` in library-crate non-test code.
    Panic,
    /// R1 — slice/array indexing `x[i]` in library-crate non-test code
    /// (`[..]` full-range slices are exempt: they cannot panic).
    Indexing,
    /// R2 — float `==` / `!=` outside waived files and test code.
    FloatEq,
    /// R3 — `HashMap` / `HashSet` in the deterministic crates (iteration
    /// order feeds results; require `BTreeMap` or a sorted collection).
    HashIter,
    /// R4 — `SystemTime` / `Instant` / `thread_rng` / `from_entropy`
    /// outside `bench` / `cli` / `experiments`.
    AmbientTime,
    /// R5 — any `unsafe` token, plus a missing `#![forbid(unsafe_code)]`
    /// in a crate root.
    UnsafeCode,
    /// R6 — `f32` types, casts, or literals in the numeric crates.
    NarrowFloat,
}

/// Every rule, in report order.
pub const ALL_RULES: &[Rule] = &[
    Rule::Panic,
    Rule::Indexing,
    Rule::FloatEq,
    Rule::HashIter,
    Rule::AmbientTime,
    Rule::UnsafeCode,
    Rule::NarrowFloat,
];

impl Rule {
    /// Stable kebab-case tag (allow directives, baseline, CLI toggles).
    pub fn tag(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Indexing => "indexing",
            Rule::FloatEq => "float-eq",
            Rule::HashIter => "hash-iter",
            Rule::AmbientTime => "ambient-time",
            Rule::UnsafeCode => "unsafe-code",
            Rule::NarrowFloat => "narrow-float",
        }
    }

    /// The DESIGN.md rule group this tag belongs to.
    pub fn group(self) -> &'static str {
        match self {
            Rule::Panic | Rule::Indexing => "R1",
            Rule::FloatEq => "R2",
            Rule::HashIter => "R3",
            Rule::AmbientTime => "R4",
            Rule::UnsafeCode => "R5",
            Rule::NarrowFloat => "R6",
        }
    }

    /// One-line rationale, shown by `--list-rules` and in findings.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::Panic => "library code must return typed errors, not panic",
            Rule::Indexing => "slice indexing panics on bad bounds; use get()/iterators",
            Rule::FloatEq => "float equality breaks bitwise-parity reasoning",
            Rule::HashIter => "hash iteration order is nondeterministic across runs",
            Rule::AmbientTime => "wall-clock/ambient RNG makes runs unreproducible",
            Rule::UnsafeCode => "the workspace is 100% safe Rust; keep it that way",
            Rule::NarrowFloat => "f32 silently loses the precision parity suites pin",
        }
    }

    /// Parses a tag (as used by `--disable` / `lint:allow`).
    pub fn from_tag(tag: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.tag() == tag)
    }

    /// Whether the rule applies to a crate of this class at all.
    fn applies_to(self, class: CrateClass) -> bool {
        match self {
            Rule::Panic | Rule::Indexing => class.is_library(),
            Rule::FloatEq => true,
            Rule::HashIter => class.deterministic_core(),
            Rule::AmbientTime => !class.ambient_exempt(),
            Rule::UnsafeCode => true,
            Rule::NarrowFloat => class.numeric(),
        }
    }
}

/// Scans one file and returns its findings (unfiltered by any baseline).
///
/// `rel_path` is the repo-relative path used in reports; `class` is the
/// owning crate's classification; `enabled` is the still-enabled rule set
/// after CLI toggles; `is_crate_root` switches on the
/// `#![forbid(unsafe_code)]` presence check.
pub fn scan_file(
    rel_path: &str,
    source: &str,
    class: CrateClass,
    enabled: &BTreeSet<Rule>,
    is_crate_root: bool,
) -> Vec<Finding> {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    let test_spans = test_spans(toks);
    let in_test = |line: u32| test_spans.iter().any(|&(lo, hi)| line >= lo && line <= hi);
    let allowed = |rule: Rule| lexed.allows.iter().any(|a| a == rule.tag());
    let active = |rule: Rule| enabled.contains(&rule) && rule.applies_to(class) && !allowed(rule);

    let mut findings = Vec::new();
    let mut emit = |rule: Rule, line: u32, message: String| {
        findings.push(Finding {
            rule: rule.tag().to_string(),
            group: rule.group().to_string(),
            file: rel_path.to_string(),
            line,
            snippet: snippet(line),
            message,
        });
    };

    // ---- R5 crate-root attribute check -------------------------------
    if is_crate_root && active(Rule::UnsafeCode) && !has_forbid_unsafe(toks) {
        emit(
            Rule::UnsafeCode,
            1,
            "crate root lacks #![forbid(unsafe_code)]".to_string(),
        );
    }

    let float_idents = collect_float_idents(toks);
    let is_floaty = |tok: &Tok| -> bool {
        match tok.kind {
            TokKind::Float => true,
            TokKind::Ident => {
                tok.text == "f64" || tok.text == "f32" || float_idents.contains(&tok.text)
            }
            _ => false,
        }
    };

    for (i, tok) in toks.iter().enumerate() {
        if in_test(tok.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(i + 1);

        // ---- R1: panic family ----------------------------------------
        if active(Rule::Panic) {
            if tok.kind == TokKind::Ident
                && (tok.text == "unwrap" || tok.text == "expect")
                && prev.is_some_and(|p| p.is_punct('.'))
                && next.is_some_and(|n| n.is_punct('('))
            {
                emit(
                    Rule::Panic,
                    tok.line,
                    format!(".{}() can panic; return a typed error", tok.text),
                );
            }
            if tok.kind == TokKind::Ident
                && matches!(
                    tok.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && next.is_some_and(|n| n.is_punct('!'))
            {
                emit(
                    Rule::Panic,
                    tok.line,
                    format!("{}! in library code; return a typed error", tok.text),
                );
            }
        }

        // ---- R1: slice indexing --------------------------------------
        if active(Rule::Indexing) && tok.is_punct('[') && is_index_open(toks, i) {
            emit(
                Rule::Indexing,
                tok.line,
                "slice indexing can panic; prefer get()/iterators".to_string(),
            );
        }

        // ---- R2: float equality --------------------------------------
        if active(Rule::FloatEq)
            && (tok.is_op("==") || tok.is_op("!="))
            && float_operand(toks, i, &is_floaty)
        {
            emit(
                Rule::FloatEq,
                tok.line,
                format!(
                    "float {} outside a parity suite; compare with a tolerance",
                    tok.text
                ),
            );
        }

        // ---- R3: hash-ordered collections ----------------------------
        if active(Rule::HashIter)
            && tok.kind == TokKind::Ident
            && (tok.text == "HashMap" || tok.text == "HashSet")
        {
            emit(
                Rule::HashIter,
                tok.line,
                format!(
                    "{} in a deterministic crate; use BTreeMap/sorted data",
                    tok.text
                ),
            );
        }

        // ---- R4: ambient time / RNG ----------------------------------
        if active(Rule::AmbientTime)
            && tok.kind == TokKind::Ident
            && matches!(
                tok.text.as_str(),
                "SystemTime" | "Instant" | "thread_rng" | "ThreadRng" | "from_entropy"
            )
        {
            emit(
                Rule::AmbientTime,
                tok.line,
                format!(
                    "{} is environment-dependent; thread a seed instead",
                    tok.text
                ),
            );
        }

        // ---- R5: unsafe ----------------------------------------------
        if active(Rule::UnsafeCode) && tok.is_ident("unsafe") {
            emit(Rule::UnsafeCode, tok.line, "unsafe block/fn".to_string());
        }

        // ---- R6: f32 in numeric crates -------------------------------
        if active(Rule::NarrowFloat) {
            if tok.is_ident("f32") {
                emit(
                    Rule::NarrowFloat,
                    tok.line,
                    "f32 in a numeric crate; use f64".to_string(),
                );
            }
            if tok.kind == TokKind::Float && tok.text.ends_with("f32") {
                emit(
                    Rule::NarrowFloat,
                    tok.line,
                    "f32 literal in a numeric crate; use f64".to_string(),
                );
            }
        }
    }

    findings
}

/// `true` when `toks[open]` (a `[`) opens an *index* expression rather than
/// an array literal, attribute, slice pattern, or type.
fn is_index_open(toks: &[Tok], open: usize) -> bool {
    let Some(prev) = open.checked_sub(1).and_then(|p| toks.get(p)) else {
        return false;
    };
    let indexable = match prev.kind {
        // `name[i]`, but not `let [a, b] = …` or `in [1, 2]` etc.
        TokKind::Ident => !is_keyword(&prev.text),
        // `)(…)[i]` and `a[0][1]`.
        TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
        _ => false,
    };
    if !indexable {
        return false;
    }
    // `x[..]` — the only indexing form that cannot panic.
    !(toks.get(open + 1).is_some_and(|t| t.is_op(".."))
        && toks.get(open + 2).is_some_and(|t| t.is_punct(']')))
}

/// Keywords that may directly precede `[` without forming an index.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "let"
            | "in"
            | "return"
            | "match"
            | "if"
            | "else"
            | "ref"
            | "mut"
            | "move"
            | "box"
            | "break"
            | "const"
            | "static"
            | "as"
            | "dyn"
            | "impl"
            | "for"
            | "while"
            | "loop"
            | "where"
            | "fn"
            | "use"
            | "pub"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
    )
}

/// Identifiers that plausibly hold floats: declared `: f64`/`: f32`, or
/// `let`-bound to an initializer mentioning a float literal or `f64`/`f32`.
/// A deliberately simple, file-local type-flow approximation.
fn collect_float_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut floats = BTreeSet::new();
    for (i, tok) in toks.iter().enumerate() {
        // `name : f64` (params, fields, let-with-annotation).
        if tok.kind == TokKind::Ident
            && !is_keyword(&tok.text)
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"))
        {
            floats.insert(tok.text.clone());
        }
        // `let [mut] name … = <init>;` with a floaty initializer.
        if tok.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            let floaty_init = toks
                .iter()
                .skip(j + 1)
                .take(40)
                .take_while(|t| !t.is_punct(';'))
                .any(|t| t.kind == TokKind::Float || t.is_ident("f64") || t.is_ident("f32"));
            if floaty_init {
                floats.insert(name.text.clone());
            }
        }
    }
    floats
}

/// Whether either operand of the comparison at `op` looks like a float.
/// Looks at the token just before, and just after (skipping `-`/`(`/`&`).
/// An operand immediately followed by `.` or `(` is a method/function call
/// whose *result* is compared, not the float itself (`x.len() != y.len()`,
/// `0.0f64.to_bits()`), so it does not count.
fn float_operand(toks: &[Tok], op: usize, is_floaty: &dyn Fn(&Tok) -> bool) -> bool {
    if let Some(prev) = op.checked_sub(1).and_then(|p| toks.get(p)) {
        if is_floaty(prev) {
            return true;
        }
    }
    let mut j = op + 1;
    while toks
        .get(j)
        .is_some_and(|t| t.is_punct('-') || t.is_punct('(') || t.is_punct('&') || t.is_punct('*'))
    {
        j += 1;
    }
    let called = toks
        .get(j + 1)
        .is_some_and(|t| t.is_punct('.') || t.is_punct('('));
    toks.get(j).is_some_and(is_floaty) && !called
}

/// `true` when the token stream contains `# ! [ forbid ( unsafe_code ) ]`.
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        matches!(w, [a, b, c, d, e, f, g, h]
            if a.is_punct('#')
                && b.is_punct('!')
                && c.is_punct('[')
                && d.is_ident("forbid")
                && e.is_punct('(')
                && f.is_ident("unsafe_code")
                && g.is_punct(')')
                && h.is_punct(']'))
    })
}

/// Line spans of test-gated items: `#[cfg(test)]`, `#[test]`,
/// `#[should_panic]` — the attribute line through the item's closing brace.
/// `#[cfg(not(test))]` is NOT a test span.
fn test_spans(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let Some(tok) = toks.get(i) else { break };
        let attr_opens = tok.is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['));
        if !attr_opens {
            i += 1;
            continue;
        }
        // Find the attribute's closing `]` tracking bracket depth.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut attr_idents: Vec<&str> = Vec::new();
        while let Some(t) = toks.get(j) {
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident {
                attr_idents.push(&t.text);
            }
            j += 1;
        }
        let is_test_attr = match attr_idents.first().copied() {
            Some("test") | Some("should_panic") => true,
            Some("cfg") => attr_idents.contains(&"test") && !attr_idents.contains(&"not"),
            _ => false,
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        let start_line = tok.line;
        // Skip any further attributes, then consume the item: everything up
        // to its first `{` (then brace-match) or a bare `;`.
        let mut k = j + 1;
        while toks.get(k).is_some_and(|t| t.is_punct('#'))
            && toks.get(k + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut d = 0i32;
            let mut m = k + 1;
            while let Some(t) = toks.get(m) {
                if t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
        }
        let mut end_line = start_line;
        let mut brace_depth = 0i32;
        let mut entered = false;
        while let Some(t) = toks.get(k) {
            if !entered && t.is_punct(';') {
                end_line = t.line;
                break;
            }
            if t.is_punct('{') {
                brace_depth += 1;
                entered = true;
            } else if t.is_punct('}') {
                brace_depth -= 1;
                if entered && brace_depth == 0 {
                    end_line = t.line;
                    break;
                }
            }
            end_line = t.line;
            k += 1;
        }
        spans.push((start_line, end_line));
        i = k + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str, class: CrateClass) -> Vec<Finding> {
        let enabled: BTreeSet<Rule> = ALL_RULES.iter().copied().collect();
        scan_file("test.rs", src, class, &enabled, false)
    }

    fn lib(src: &str) -> Vec<Finding> {
        scan(src, CrateClass::library_for_tests())
    }

    #[test]
    fn unwrap_in_library_flags() {
        let f = lib("fn f() { x.unwrap(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f.first().map(|f| f.rule.as_str()), Some("panic"));
    }

    #[test]
    fn unwrap_inside_cfg_test_mod_is_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n  fn f() { x.unwrap(); }\n}\n";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nmod real {\n  fn f() { x.unwrap(); }\n}\n";
        assert_eq!(lib(src).len(), 1);
    }

    #[test]
    fn indexing_flags_but_full_range_does_not() {
        let src = "fn f(v: &[u32]) { let a = v[0]; let b = &v[..]; let c = &v[1..]; }";
        let f = lib(src);
        // `v[0]` and `v[1..]` flag; `v[..]` does not.
        assert_eq!(f.iter().filter(|f| f.rule == "indexing").count(), 2);
    }

    #[test]
    fn float_eq_on_literal_and_tracked_ident() {
        let src = "fn f(x: f64) { if x == 1.0 {} let mut b = f64::NEG_INFINITY; if b != x {} }";
        let f = lib(src);
        assert_eq!(f.iter().filter(|f| f.rule == "float-eq").count(), 2);
    }

    #[test]
    fn int_eq_is_fine() {
        assert!(lib("fn f(n: usize) { if n == 0 {} }").is_empty());
    }

    #[test]
    fn allow_directive_waives_rule_for_file() {
        let src = "// lint:allow(panic)\nfn f() { x.unwrap(); }";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn line_spans_are_correct() {
        let src = "fn a() {}\n\nfn b() { x.unwrap(); }\n";
        let f = lib(src);
        assert_eq!(f.first().map(|f| f.line), Some(3));
    }
}

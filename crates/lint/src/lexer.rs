//! A hand-rolled Rust lexer, just deep enough to lint on: it distinguishes
//! identifiers, numeric literals (tracking floatness and suffix), multi-char
//! operators, and punctuation, while *discarding* the contents of string
//! literals, char literals, raw strings, and (nested) comments — so a
//! `"unwrap()"` inside a string or a `==` inside a comment can never produce
//! a finding. No `syn`, no dependencies: the tool must build offline.
//!
//! Comments are not entirely discarded: `lint:allow(<tag>, …)` directives
//! inside any comment are collected so rules can be waived per file.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `let`, `f64`, …).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal (including its suffix, e.g. `3usize`).
    Int,
    /// Float literal (has a fractional part, exponent, or float suffix).
    Float,
    /// Multi-character operator from the table in [`MULTI_OPS`].
    Op,
    /// Single punctuation character.
    Punct,
}

/// One significant token with its source position (1-based line).
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// `true` when the token is this exact identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` when the token is this exact punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }

    /// `true` when the token is this exact multi-char operator.
    pub fn is_op(&self, op: &str) -> bool {
        self.kind == TokKind::Op && self.text == op
    }
}

/// Multi-character operators we must not split (`a != b` is not `a ! = b`).
/// Longest match wins; operators absent from this table lex as single
/// punctuation, which is harmless for every rule.
const MULTI_OPS: &[&str] = &[
    "..=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..",
];

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Significant tokens in source order.
    pub tokens: Vec<Tok>,
    /// `lint:allow(tag)` waivers collected from comments, lowercased.
    pub allows: Vec<String>,
}

/// Lexes `source` into significant tokens plus allow directives.
pub fn lex(source: &str) -> LexedFile {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexedFile,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            out: LexedFile::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.get(self.pos).copied();
        if let Some(c) = ch {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        ch
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> LexedFile {
        while let Some(ch) = self.peek(0) {
            let line = self.line;
            match ch {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                '\'' => self.char_or_lifetime(line),
                'r' | 'b' => self.maybe_raw_or_byte(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                _ => self.operator(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.scan_allow(&text);
    }

    fn block_comment(&mut self) {
        // `/*` already peeked; consume with nesting.
        let mut text = String::new();
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.scan_allow(&text);
    }

    /// Collects `lint:allow(a, b-c)` directives out of comment text.
    fn scan_allow(&mut self, comment: &str) {
        let mut rest = comment;
        while let Some(idx) = rest.find("lint:allow(") {
            let Some(after) = rest.get(idx + "lint:allow(".len()..) else {
                break;
            };
            let Some(close) = after.find(')') else {
                break;
            };
            for tag in after.get(..close).unwrap_or("").split(',') {
                let tag = tag.trim().to_ascii_lowercase();
                if !tag.is_empty() {
                    self.out.allows.push(tag);
                }
            }
            rest = after.get(close..).unwrap_or("");
        }
    }

    fn string_literal(&mut self, _line: u32) {
        // Plain (or byte) string: `"` consumed by caller loop below.
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    fn raw_string(&mut self) {
        // At `r` (or after `b`); consume `r`, count `#`s, then scan for
        // the matching `"##…` terminator.
        self.bump();
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            return; // raw identifier (`r#fn`) — lex the ident normally.
        }
        self.bump();
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    }

    fn maybe_raw_or_byte(&mut self, line: u32) {
        // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` — or just an ident
        // starting with `r`/`b`.
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1) {
            (Some('r'), Some('"')) | (Some('r'), Some('#')) => {
                // Disambiguate `r"…"` / `r#"…"#` (raw string) from
                // `r#ident` (raw identifier) by peeking past the hashes.
                let hashes = count_hashes(&self.chars, self.pos + 1);
                if self.peek(1 + hashes) == Some('"') {
                    self.raw_string();
                } else {
                    self.ident(line);
                }
            }
            (Some('b'), Some('"')) => {
                self.bump();
                self.string_literal(line);
            }
            (Some('b'), Some('\'')) => {
                self.bump();
                self.char_or_lifetime(line);
            }
            (Some('b'), Some('r')) if matches!(c2, Some('"') | Some('#')) => {
                self.bump();
                self.raw_string();
            }
            _ => self.ident(line),
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` lifetime vs `'a'` char literal vs `'\n'` escape.
        self.bump(); // the opening quote
        match (self.peek(0), self.peek(1)) {
            (Some('\\'), _) => {
                // Escaped char literal: consume escape then closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.peek(0) {
                    // Multi-char escapes like `\u{1F600}`.
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
            }
            (Some(c), Some('\'')) if c != '\'' => {
                // Plain char literal `'x'`.
                self.bump();
                self.bump();
            }
            (Some(c), _) if c == '_' || c.is_alphabetic() => {
                // Lifetime: consume the identifier.
                let mut text = String::from("'");
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, text, line);
            }
            (Some(_), _) => {
                // Unusual char literal (`'('`, `'"'`): scan to close.
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            (None, _) => {}
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('o') | Some('b') | Some('X'));
        if radix_prefixed {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Int, text, line);
            return;
        }
        let mut is_float = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let sign_ok = match self.peek(1) {
                Some('+') | Some('-') => self.peek(2).is_some_and(|c| c.is_ascii_digit()),
                Some(c) => c.is_ascii_digit(),
                None => false,
            };
            if sign_ok {
                is_float = true;
                text.push(self.bump().unwrap_or('e'));
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' || c == '+' || c == '-' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`f64`, `u32`, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        text.push_str(&suffix);
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() || c == '#' && text == "r" {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if text.is_empty() {
            // Defensive: avoid an infinite loop on unexpected input.
            self.bump();
            return;
        }
        self.push(TokKind::Ident, text, line);
    }

    fn operator(&mut self, line: u32) {
        for op in MULTI_OPS {
            let len = op.chars().count();
            let matches_op = op
                .chars()
                .enumerate()
                .all(|(i, expected)| self.peek(i) == Some(expected));
            if matches_op {
                for _ in 0..len {
                    self.bump();
                }
                self.push(TokKind::Op, (*op).to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokKind::Punct, c.to_string(), line);
        }
    }
}

/// Number of consecutive `#` characters starting at `start`.
fn count_hashes(chars: &[char], start: usize) -> usize {
    chars.iter().skip(start).take_while(|&&c| c == '#').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_are_opaque() {
        let toks = lex(r#"let x = "a.unwrap() == b"; y"#);
        assert!(toks.tokens.iter().all(|t| t.text != "unwrap"));
        assert!(toks.tokens.iter().all(|t| !t.is_op("==")));
        assert_eq!(idents(r#"let x = "a.unwrap()"; y"#), vec!["let", "x", "y"]);
    }

    #[test]
    fn raw_strings_are_opaque() {
        let toks = lex(r##"let s = r#"panic!("boom") == 1.0"#; z"##);
        assert!(toks.tokens.iter().all(|t| t.text != "panic"));
        assert!(toks.tokens.iter().all(|t| t.kind != TokKind::Float));
        assert!(toks.tokens.iter().any(|t| t.is_ident("z")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner == */ still comment */ real");
        assert_eq!(toks.tokens.len(), 1);
        assert!(toks.tokens.first().is_some_and(|t| t.is_ident("real")));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        // Char literal contents never appear as tokens.
        assert!(toks.tokens.iter().all(|t| t.text != "'x'"));
    }

    #[test]
    fn float_and_int_literals() {
        let toks = lex("let a = 1.5; let b = 2; let c = 1e-6; let d = 3f64; let e = 0x1f32;");
        let kinds: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Float | TokKind::Int))
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (TokKind::Float, "1.5".to_string()),
                (TokKind::Int, "2".to_string()),
                (TokKind::Float, "1e-6".to_string()),
                (TokKind::Float, "3f64".to_string()),
                // Hex digits must not be misread as an f32 suffix.
                (TokKind::Int, "0x1f32".to_string()),
            ]
        );
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = lex("for i in 0..10 {}");
        assert!(toks.tokens.iter().any(|t| t.is_op("..")));
        assert!(toks.tokens.iter().all(|t| t.kind != TokKind::Float));
    }

    #[test]
    fn multi_char_ops_do_not_split() {
        let toks = lex("a != b; c == d; e ..= f");
        assert!(toks.tokens.iter().any(|t| t.is_op("!=")));
        assert!(toks.tokens.iter().any(|t| t.is_op("==")));
        assert!(toks.tokens.iter().any(|t| t.is_op("..=")));
        assert!(toks.tokens.iter().all(|t| !t.is_punct('!')));
    }

    #[test]
    fn allow_directives_collected() {
        let lexed = lex("// lint:allow(float-eq, indexing)\nfn main() {}\n/* lint:allow(panic) */");
        assert_eq!(lexed.allows, vec!["float-eq", "indexing", "panic"]);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = lex(r#"let b = b"unwrap()"; let r = r#match; x"#);
        assert!(toks.tokens.iter().all(|t| t.text != "unwrap"));
        assert!(toks.tokens.iter().any(|t| t.is_ident("r#match")));
    }
}

//! Fixture-corpus tests: each rule has a positive fixture (every annotated
//! line must be reported, at the right line) and a negative fixture (zero
//! findings under ALL rules), plus a lexing stress file where every
//! would-be violation is hidden inside strings, raw strings, or comments.

use autrascale_lint::report::Finding;
use autrascale_lint::rules::{scan_file, Rule, ALL_RULES};
use autrascale_lint::walk::CrateClass;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

fn scan(name: &str, rules: &[Rule], is_crate_root: bool) -> Vec<Finding> {
    let enabled: BTreeSet<Rule> = rules.iter().copied().collect();
    scan_file(
        name,
        &fixture(name),
        CrateClass::library_for_tests(),
        &enabled,
        is_crate_root,
    )
}

/// Asserts the positive fixture reports exactly `expected_lines` (with
/// multiplicity) for `rule`, isolated from the other rules.
fn assert_positive(name: &str, rule: Rule, expected_lines: &[u32]) {
    let findings = scan(name, &[rule], false);
    let got: Vec<u32> = findings.iter().map(|f| f.line).collect();
    assert_eq!(
        got, expected_lines,
        "{name}: expected {rule:?} findings at {expected_lines:?}, got {findings:#?}"
    );
    assert!(
        findings.iter().all(|f| f.rule == rule.tag()),
        "{name}: wrong rule tag in {findings:#?}"
    );
}

/// Asserts the negative fixture is clean under EVERY rule.
fn assert_negative(name: &str, is_crate_root: bool) {
    let findings = scan(name, ALL_RULES, is_crate_root);
    assert!(
        findings.is_empty(),
        "{name}: expected no findings, got {findings:#?}"
    );
}

#[test]
fn panic_positive() {
    assert_positive("panic_positive.rs", Rule::Panic, &[3, 4, 6, 9, 10, 11]);
}

#[test]
fn panic_negative() {
    assert_negative("panic_negative.rs", false);
}

#[test]
fn indexing_positive() {
    // Line 4 twice: `m[1]` and the chained `[2]`.
    assert_positive("indexing_positive.rs", Rule::Indexing, &[3, 4, 4, 5, 6]);
}

#[test]
fn indexing_negative() {
    assert_negative("indexing_negative.rs", false);
}

#[test]
fn float_eq_positive() {
    assert_positive("float_eq_positive.rs", Rule::FloatEq, &[4, 5, 6, 7]);
}

#[test]
fn float_eq_negative() {
    assert_negative("float_eq_negative.rs", false);
}

#[test]
fn hash_iter_positive() {
    assert_positive("hash_iter_positive.rs", Rule::HashIter, &[3, 4, 6, 11]);
}

#[test]
fn hash_iter_negative() {
    assert_negative("hash_iter_negative.rs", false);
}

#[test]
fn ambient_time_positive() {
    assert_positive(
        "ambient_time_positive.rs",
        Rule::AmbientTime,
        &[3, 4, 7, 8, 14],
    );
}

#[test]
fn ambient_time_negative() {
    assert_negative("ambient_time_negative.rs", false);
}

#[test]
fn unsafe_positive() {
    assert_positive("unsafe_positive.rs", Rule::UnsafeCode, &[3, 6]);
}

#[test]
fn unsafe_negative_is_a_clean_crate_root() {
    // Scanned as a crate root: the #![forbid(unsafe_code)] header must
    // satisfy the presence check.
    assert_negative("unsafe_negative.rs", true);
}

#[test]
fn missing_forbid_attribute_is_reported_on_crate_roots() {
    // The same clean file WITHOUT the attribute line fails the root check.
    let source = fixture("unsafe_negative.rs").replacen("#![forbid(unsafe_code)]\n", "", 1);
    let enabled: BTreeSet<Rule> = [Rule::UnsafeCode].into_iter().collect();
    let findings = scan_file(
        "unsafe_negative.rs",
        &source,
        CrateClass::library_for_tests(),
        &enabled,
        true,
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings
        .first()
        .is_some_and(|f| f.message.contains("forbid(unsafe_code)")));
}

#[test]
fn narrow_float_positive() {
    // Line 5 twice: the `f32` annotation and the `0.5f32` literal.
    assert_positive("narrow_float_positive.rs", Rule::NarrowFloat, &[4, 5, 5]);
}

#[test]
fn narrow_float_negative() {
    assert_negative("narrow_float_negative.rs", false);
}

#[test]
fn tricky_lexing_is_fully_opaque() {
    assert_negative("tricky_lexing.rs", false);
}

#[test]
fn fixtures_annotate_every_expected_line() {
    // Meta-check: the EXPECT annotations inside each positive fixture agree
    // with the line lists asserted above, so the fixtures stay readable.
    let cases: &[(&str, Rule, &[u32])] = &[
        ("panic_positive.rs", Rule::Panic, &[3, 4, 6, 9, 10, 11]),
        ("indexing_positive.rs", Rule::Indexing, &[3, 4, 4, 5, 6]),
        ("float_eq_positive.rs", Rule::FloatEq, &[4, 5, 6, 7]),
        ("hash_iter_positive.rs", Rule::HashIter, &[3, 4, 6, 11]),
        (
            "ambient_time_positive.rs",
            Rule::AmbientTime,
            &[3, 4, 7, 8, 14],
        ),
        ("unsafe_positive.rs", Rule::UnsafeCode, &[3, 6]),
        ("narrow_float_positive.rs", Rule::NarrowFloat, &[4, 5, 5]),
    ];
    for (name, _rule, lines) in cases {
        let source = fixture(name);
        let annotated: BTreeSet<u32> = source
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("// EXPECT line"))
            .map(|(i, _)| i as u32 + 1)
            .collect();
        let expected: BTreeSet<u32> = lines.iter().copied().collect();
        assert_eq!(
            annotated, expected,
            "{name}: EXPECT annotations drifted from the asserted lines"
        );
    }
}

//! Ratchet behaviour end-to-end over a synthetic mini-workspace on disk:
//! new findings fail, exactly-covered findings pass, and a stale baseline
//! entry fails even when the code is clean (the allowlist may only shrink).
//! Also pins the JSON report schema.

use autrascale_lint::baseline::Baseline;
use autrascale_lint::Linter;
use std::path::{Path, PathBuf};

/// Builds `<root>/crates/gp/src/lib.rs` (a numeric, deterministic-core
/// crate name) with the given source, in a unique temp dir.
fn mini_workspace(tag: &str, source: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("autrascale-lint-test-{tag}"));
    let src = root.join("crates").join("gp").join("src");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&src).expect("temp workspace");
    std::fs::write(src.join("lib.rs"), source).expect("write lib.rs");
    root
}

fn write_baseline(root: &Path, text: &str) -> PathBuf {
    let path = root.join("lint-baseline.toml");
    std::fs::write(&path, text).expect("write baseline");
    path
}

const DIRTY: &str = "#![forbid(unsafe_code)]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
const CLEAN: &str = "#![forbid(unsafe_code)]\nfn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";

const COVERING: &str = r#"
[[allow]]
rule = "panic"
file = "crates/gp/src/lib.rs"
count = 1
justification = "legacy unwrap, tracked for removal"
"#;

#[test]
fn new_finding_fails_with_location() {
    let root = mini_workspace("new", DIRTY);
    let report = Linter::new()
        .check(&root, &root.join("lint-baseline.toml"))
        .expect("check runs");
    assert!(!report.is_clean());
    assert_eq!(report.new_findings.len(), 1);
    let f = report.new_findings.first().expect("one finding");
    assert_eq!(f.rule, "panic");
    assert_eq!(f.file, "crates/gp/src/lib.rs");
    assert_eq!(f.line, 2);
}

#[test]
fn covered_finding_passes() {
    let root = mini_workspace("covered", DIRTY);
    let baseline = write_baseline(&root, COVERING);
    let report = Linter::new().check(&root, &baseline).expect("check runs");
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.suppressed, 1);
}

#[test]
fn stale_baseline_entry_fails_even_on_clean_code() {
    let root = mini_workspace("stale", CLEAN);
    let baseline = write_baseline(&root, COVERING);
    let report = Linter::new().check(&root, &baseline).expect("check runs");
    assert!(!report.is_clean());
    assert!(report.new_findings.is_empty());
    assert_eq!(report.stale_entries.len(), 1);
    assert!(
        report.stale_entries[0].contains("crates/gp/src/lib.rs"),
        "{:?}",
        report.stale_entries
    );
}

#[test]
fn write_then_check_roundtrip_is_clean() {
    let root = mini_workspace("roundtrip", DIRTY);
    let linter = Linter::new();
    let (findings, _) = linter.scan_workspace(&root).expect("scan");
    let baseline = Baseline::covering(&findings);
    let path = write_baseline(&root, &baseline.render());
    let report = linter.check(&root, &path).expect("check runs");
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn json_schema_snapshot() {
    // The exact JSON bytes for a known workspace + empty baseline. Update
    // deliberately: external tooling parses this shape (schema_version 1).
    let root = mini_workspace("json", DIRTY);
    let report = Linter::new()
        .check(&root, &root.join("lint-baseline.toml"))
        .expect("check runs");
    let expected = concat!(
        "{\"schema_version\":1,\"clean\":false,\"files_scanned\":1,",
        "\"suppressed\":0,\"new_findings\":[{\"rule\":\"panic\",\"group\":\"R1\",",
        "\"file\":\"crates/gp/src/lib.rs\",\"line\":2,",
        "\"snippet\":\"fn f(x: Option<u32>) -> u32 { x.unwrap() }\",",
        "\"message\":\".unwrap() can panic; return a typed error\"}],",
        "\"stale_entries\":[]}"
    );
    assert_eq!(report.render_json(), expected);
}

#[test]
fn rule_toggles_disable_and_only() {
    let root = mini_workspace("toggles", DIRTY);
    // --disable panic: the unwrap no longer reports.
    let mut linter = Linter::new();
    assert!(linter.disable("panic"));
    let report = linter
        .check(&root, &root.join("lint-baseline.toml"))
        .expect("check runs");
    assert!(report.is_clean(), "{}", report.render_text());

    // --only float-eq: likewise clean (the unwrap is not a float compare).
    let mut linter = Linter::new();
    assert!(linter.only("float-eq"));
    let report = linter
        .check(&root, &root.join("lint-baseline.toml"))
        .expect("check runs");
    assert!(report.is_clean(), "{}", report.render_text());

    // Unknown tags are rejected.
    assert!(!Linter::new().disable("no-such-rule"));
    assert!(!Linter::new().only("no-such-rule"));
}

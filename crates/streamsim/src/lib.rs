//! A deterministic Flink + Kafka cluster simulator.
//!
//! This crate is the substrate substitution for the paper's physical
//! testbed (DESIGN.md §1): a fluid/tick simulator of a streaming job — a
//! DAG of operators whose instances are placed on machines with finite
//! cores — fed by a Kafka-like partitioned log. It reproduces the
//! phenomena the paper's controller exploits:
//!
//! * **sub-linear throughput scaling** — per-instance service rates shrink
//!   with operator parallelism (synchronization) and with machine load
//!   (CPU interference, since Flink slots share cores, §III-A);
//! * **backpressure and lag** — bounded in-job queues push excess data
//!   back into Kafka, where it accumulates as consumer lag;
//! * **latency U-shape** — queueing delay falls with parallelism while
//!   communication cost rises with it (paper Observation 2.2);
//! * **the true-rate / observed-rate split** — the busy-time-based *true
//!   processing rate* (paper Eq. 2) measures capability, the observed rate
//!   measures what actually flowed;
//! * **reconfiguration downtime** — a deploy stops the job, takes a
//!   savepoint, and restarts with the new parallelism while lag grows.
//!
//! Everything stochastic draws from a seeded RNG, so runs are replayable.
//!
//! # Example
//!
//! ```
//! use autrascale_streamsim::{
//!     ClusterSpec, JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig,
//! };
//!
//! let job = JobGraph::linear(vec![
//!     OperatorSpec::source("Source", 100_000.0),
//!     OperatorSpec::transform("Map", 80_000.0, 1.0),
//!     OperatorSpec::sink("Sink", 120_000.0),
//! ])
//! .unwrap();
//! let config = SimulationConfig {
//!     cluster: ClusterSpec::paper_cluster(),
//!     job,
//!     profile: RateProfile::constant(50_000.0),
//!     seed: 7,
//!     ..Default::default()
//! };
//! let mut sim = Simulation::new(config).unwrap();
//! sim.deploy(&[1, 1, 1]).unwrap();
//! sim.run_for(120.0).unwrap();
//! let snap = sim.snapshot();
//! assert!(snap.source_consumption_rate > 40_000.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod cluster;
mod engine;
mod events;
mod hash;
mod kafka;
pub mod metrics;
mod noise;
mod rate;
mod topology;

pub use cluster::{ClusterSpec, MachineSpec, Placement, SharedMachineRegistry};
pub use engine::{
    EngineKind, OperatorSnapshot, SimError, SimSnapshot, Simulation, SimulationConfig,
};
pub use events::{EventKind, EventQueue, SimEvent};
pub use hash::StateHasher;
pub use kafka::Kafka;
pub use noise::GaussianNoise;
pub use rate::generators as rate_generators;
pub use rate::RateProfile;
pub use topology::{Adjacency, JobGraph, OperatorKind, OperatorSpec, TopologyError};

//! Metric names and emission helpers.
//!
//! The simulator exposes the same metric surface the paper's Monitor
//! module reads from Flink and Kafka (§IV and §V-E), including the new
//! `trueProcessingRate` metric AuTraScale adds to Flink's metric group.

use autrascale_metricsdb::{MetricStore, SeriesKey};

/// Per-instance true processing rate (paper Eq. 2), records/s.
/// Mirrors the Flink path `taskmanager_job_task_trueProcessingRate`.
pub const TRUE_PROCESSING_RATE: &str = "taskmanager_job_task_trueProcessingRate";
/// Per-instance observed processing rate (includes blocked/idle time).
pub const OBSERVED_PROCESSING_RATE: &str = "taskmanager_job_task_observedProcessingRate";
/// Per-operator total input rate λ_i (records/s arriving from upstream).
pub const OPERATOR_INPUT_RATE: &str = "operator_numRecordsInPerSecond";
/// Per-operator total output rate o_i (records/s emitted downstream).
pub const OPERATOR_OUTPUT_RATE: &str = "operator_numRecordsOutPerSecond";
/// Per-operator total queued records waiting in input buffers.
pub const OPERATOR_QUEUE_SIZE: &str = "operator_inputQueueLength";
/// Job throughput: records/s consumed from Kafka by the sources.
pub const JOB_THROUGHPUT: &str = "job_sourceConsumptionRate";
/// Records/s completed at the sinks (in sink-record units).
pub const SINK_RATE: &str = "job_sinkRate";
/// External producer rate v₀ (records/s written into Kafka).
pub const PRODUCER_RATE: &str = "kafka_producerRate";
/// Kafka consumer lag in records.
pub const KAFKA_LAG: &str = "kafka_consumerLag";
/// Average processing latency of records inside the job, ms.
pub const PROCESSING_LATENCY_MS: &str = "job_processingLatencyMs";
/// Event-time latency (Kafka pending time + processing latency), ms.
pub const EVENT_TIME_LATENCY_MS: &str = "job_eventTimeLatencyMs";
/// 1.0 while the job is running, 0.0 during savepoint/restart downtime.
pub const JOB_RUNNING: &str = "job_running";

/// Key for a per-instance metric.
pub fn instance_key(metric: &str, operator: &str, subtask: usize) -> SeriesKey {
    SeriesKey::new(metric)
        .tag("operator", operator)
        .tag("subtask", subtask.to_string())
}

/// Key for a per-operator metric.
pub fn operator_key(metric: &str, operator: &str) -> SeriesKey {
    SeriesKey::new(metric).tag("operator", operator)
}

/// Key for a job-level metric.
pub fn job_key(metric: &str) -> SeriesKey {
    SeriesKey::new(metric)
}

/// Appends a value, ignoring out-of-order rejections (which cannot happen
/// from the single-threaded engine but keep emission infallible) and
/// silently dropping non-finite values.
pub fn emit(store: &MetricStore, key: &SeriesKey, time: f64, value: f64) {
    if value.is_finite() {
        let _ = store.append(key, time, value);
    }
}

/// Buffered metric emission with deploy-time key registration.
///
/// The per-point [`emit`] path pays a key construction (string formatting
/// plus a `BTreeMap` build), a key clone, and a store write-lock
/// round-trip on every value. The engine's key set only changes on
/// (re)deploy, so it registers each series once, gets back a dense
/// integer id, and pushes `(time, value)` pairs into per-series buffers;
/// [`flush`](Self::flush) drains every buffer with one
/// [`MetricStore::append_batch`] call per series. Store contents after a
/// flush are identical to per-point emission (non-finite values are
/// dropped at the store boundary, per-series time order is preserved).
#[derive(Debug, Default)]
pub struct MetricBatcher {
    series: Vec<(SeriesKey, Vec<(f64, f64)>)>,
}

impl MetricBatcher {
    /// An empty batcher with no registered series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a series and returns its id for [`push`](Self::push).
    /// Keys are not deduplicated: the engine rebuilds the registry from
    /// scratch on deploy, which is the only time the key set changes.
    pub fn register(&mut self, key: SeriesKey) -> usize {
        self.series.push((key, Vec::new()));
        self.series.len() - 1
    }

    /// Buffers one observation for a registered series.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`register`](Self::register).
    pub fn push(&mut self, id: usize, time: f64, value: f64) {
        self.series[id].1.push((time, value));
    }

    /// Number of buffered, unflushed points across all series.
    pub fn pending(&self) -> usize {
        self.series.iter().map(|(_, pts)| pts.len()).sum()
    }

    /// Writes every buffered point to `store` (one batched append per
    /// series) and clears the buffers, keeping registrations and their
    /// capacity. Returns the number of points the store accepted.
    pub fn flush(&mut self, store: &MetricStore) -> usize {
        let mut stored = 0;
        for (key, points) in &mut self.series {
            if !points.is_empty() {
                stored += store.append_batch(key, points);
                points.clear();
            }
        }
        stored
    }

    /// Drops all registrations and buffered points (redeploy path — ids
    /// handed out before this call are invalidated).
    pub fn clear(&mut self) {
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_builders_produce_expected_tags() {
        let k = instance_key(TRUE_PROCESSING_RATE, "FlatMap", 3);
        assert_eq!(k.tag_value("operator"), Some("FlatMap"));
        assert_eq!(k.tag_value("subtask"), Some("3"));
        let o = operator_key(OPERATOR_INPUT_RATE, "Sink");
        assert_eq!(o.tag_value("operator"), Some("Sink"));
        assert_eq!(o.tag_value("subtask"), None);
    }

    #[test]
    fn emit_drops_nonfinite() {
        let store = MetricStore::new();
        let k = job_key(KAFKA_LAG);
        emit(&store, &k, 1.0, f64::NAN);
        assert_eq!(store.last(&k), None);
        emit(&store, &k, 1.0, 5.0);
        assert_eq!(store.last(&k).unwrap().value, 5.0);
    }

    #[test]
    fn batcher_matches_per_point_emission() {
        let batched_store = MetricStore::new();
        let emitted_store = MetricStore::new();
        let keys = [job_key(KAFKA_LAG), operator_key(OPERATOR_INPUT_RATE, "Map")];

        let mut batcher = MetricBatcher::new();
        let ids: Vec<usize> = keys.iter().map(|k| batcher.register(k.clone())).collect();
        for t in 1..=5 {
            let time = t as f64;
            for (idx, key) in keys.iter().enumerate() {
                let value = if t == 3 { f64::NAN } else { time * 10.0 };
                batcher.push(ids[idx], time, value);
                emit(&emitted_store, key, time, value);
            }
        }
        assert_eq!(batcher.pending(), 10);
        // NaN at t=3 is dropped by the store for both paths.
        assert_eq!(batcher.flush(&batched_store), 8);
        assert_eq!(batcher.pending(), 0);

        for key in &keys {
            use autrascale_metricsdb::Query;
            let q = Query::new(key.name(), 0.0, 100.0);
            assert_eq!(batched_store.select(&q), emitted_store.select(&q));
        }
    }

    #[test]
    fn batcher_flush_is_idempotent_and_clear_drops_registrations() {
        let store = MetricStore::new();
        let mut batcher = MetricBatcher::new();
        let id = batcher.register(job_key(SINK_RATE));
        batcher.push(id, 1.0, 2.0);
        assert_eq!(batcher.flush(&store), 1);
        assert_eq!(batcher.flush(&store), 0);
        // Registration survives a flush…
        batcher.push(id, 2.0, 3.0);
        assert_eq!(batcher.flush(&store), 1);
        // …but not a clear.
        batcher.clear();
        assert_eq!(batcher.pending(), 0);
    }
}

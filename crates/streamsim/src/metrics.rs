//! Metric names and emission helpers.
//!
//! The simulator exposes the same metric surface the paper's Monitor
//! module reads from Flink and Kafka (§IV and §V-E), including the new
//! `trueProcessingRate` metric AuTraScale adds to Flink's metric group.

use autrascale_metricsdb::{MetricStore, SeriesKey};

/// Per-instance true processing rate (paper Eq. 2), records/s.
/// Mirrors the Flink path `taskmanager_job_task_trueProcessingRate`.
pub const TRUE_PROCESSING_RATE: &str = "taskmanager_job_task_trueProcessingRate";
/// Per-instance observed processing rate (includes blocked/idle time).
pub const OBSERVED_PROCESSING_RATE: &str = "taskmanager_job_task_observedProcessingRate";
/// Per-operator total input rate λ_i (records/s arriving from upstream).
pub const OPERATOR_INPUT_RATE: &str = "operator_numRecordsInPerSecond";
/// Per-operator total output rate o_i (records/s emitted downstream).
pub const OPERATOR_OUTPUT_RATE: &str = "operator_numRecordsOutPerSecond";
/// Per-operator total queued records waiting in input buffers.
pub const OPERATOR_QUEUE_SIZE: &str = "operator_inputQueueLength";
/// Job throughput: records/s consumed from Kafka by the sources.
pub const JOB_THROUGHPUT: &str = "job_sourceConsumptionRate";
/// Records/s completed at the sinks (in sink-record units).
pub const SINK_RATE: &str = "job_sinkRate";
/// External producer rate v₀ (records/s written into Kafka).
pub const PRODUCER_RATE: &str = "kafka_producerRate";
/// Kafka consumer lag in records.
pub const KAFKA_LAG: &str = "kafka_consumerLag";
/// Average processing latency of records inside the job, ms.
pub const PROCESSING_LATENCY_MS: &str = "job_processingLatencyMs";
/// Event-time latency (Kafka pending time + processing latency), ms.
pub const EVENT_TIME_LATENCY_MS: &str = "job_eventTimeLatencyMs";
/// 1.0 while the job is running, 0.0 during savepoint/restart downtime.
pub const JOB_RUNNING: &str = "job_running";

/// Key for a per-instance metric.
pub fn instance_key(metric: &str, operator: &str, subtask: usize) -> SeriesKey {
    SeriesKey::new(metric)
        .tag("operator", operator)
        .tag("subtask", subtask.to_string())
}

/// Key for a per-operator metric.
pub fn operator_key(metric: &str, operator: &str) -> SeriesKey {
    SeriesKey::new(metric).tag("operator", operator)
}

/// Key for a job-level metric.
pub fn job_key(metric: &str) -> SeriesKey {
    SeriesKey::new(metric)
}

/// Appends a value, ignoring out-of-order rejections (which cannot happen
/// from the single-threaded engine but keep emission infallible) and
/// silently dropping non-finite values.
pub fn emit(store: &MetricStore, key: &SeriesKey, time: f64, value: f64) {
    if value.is_finite() {
        let _ = store.append(key, time, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_builders_produce_expected_tags() {
        let k = instance_key(TRUE_PROCESSING_RATE, "FlatMap", 3);
        assert_eq!(k.tag_value("operator"), Some("FlatMap"));
        assert_eq!(k.tag_value("subtask"), Some("3"));
        let o = operator_key(OPERATOR_INPUT_RATE, "Sink");
        assert_eq!(o.tag_value("operator"), Some("Sink"));
        assert_eq!(o.tag_value("subtask"), None);
    }

    #[test]
    fn emit_drops_nonfinite() {
        let store = MetricStore::new();
        let k = job_key(KAFKA_LAG);
        emit(&store, &k, 1.0, f64::NAN);
        assert_eq!(store.last(&k), None);
        emit(&store, &k, 1.0, 5.0);
        assert_eq!(store.last(&k).unwrap().value, 5.0);
    }
}

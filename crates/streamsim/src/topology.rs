//! Job topologies: operator specifications and the DAG connecting them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of work an operator does. The kind decides its role in the
/// dataflow (sources pull from Kafka, sinks terminate) and adds
/// kind-specific latency (window operators hold records until emission).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Pulls records from the external log (Kafka).
    Source,
    /// Record-at-a-time transformation (map/flatMap/filter/keyBy-count…).
    Transform,
    /// A time window: records wait on average `emission_delay_ms` before
    /// results are emitted (sliding windows ≈ slide/2, session windows ≈
    /// gap timeout).
    Window {
        /// Mean extra residence time of a record inside the window state.
        emission_delay_ms: f64,
    },
    /// Writes results to an external system.
    Sink,
}

/// Static description of one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorSpec {
    /// Human-readable operator name (unique within a job).
    pub name: String,
    /// Role of the operator in the dataflow.
    pub kind: OperatorKind,
    /// Records/s one instance processes with no contention, no sync
    /// overhead and no noise.
    pub base_rate: f64,
    /// Output records emitted per input record (WordCount's FlatMap > 1,
    /// filters < 1).
    pub selectivity: f64,
    /// Synchronization penalty coefficient σ: one instance's effective
    /// rate is divided by `1 + σ·(parallelism − 1)`, producing the paper's
    /// sub-linear scaling (Observation 2.1).
    pub sync_coeff: f64,
    /// Per-parallelism communication latency cost in ms: the operator
    /// contributes `comm_cost_ms · (parallelism − 1)` to record latency
    /// (Observation 2.2's rising tail).
    pub comm_cost_ms: f64,
    /// Aggregate external rate cap across all instances (the Yahoo
    /// benchmark's Redis-limited sink), if any.
    pub external_limit: Option<f64>,
    /// Baseline per-record service latency floor in ms (independent of
    /// queueing).
    pub base_latency_ms: f64,
}

impl OperatorSpec {
    /// A source operator pulling up to `base_rate` records/s per instance.
    pub fn source(name: impl Into<String>, base_rate: f64) -> Self {
        Self::with_kind(name, OperatorKind::Source, base_rate, 1.0)
    }

    /// A record-at-a-time operator.
    pub fn transform(name: impl Into<String>, base_rate: f64, selectivity: f64) -> Self {
        Self::with_kind(name, OperatorKind::Transform, base_rate, selectivity)
    }

    /// A window operator with the given mean emission delay.
    pub fn window(
        name: impl Into<String>,
        base_rate: f64,
        selectivity: f64,
        emission_delay_ms: f64,
    ) -> Self {
        Self::with_kind(
            name,
            OperatorKind::Window { emission_delay_ms },
            base_rate,
            selectivity,
        )
    }

    /// A sink operator.
    pub fn sink(name: impl Into<String>, base_rate: f64) -> Self {
        Self::with_kind(name, OperatorKind::Sink, base_rate, 1.0)
    }

    fn with_kind(
        name: impl Into<String>,
        kind: OperatorKind,
        base_rate: f64,
        selectivity: f64,
    ) -> Self {
        Self {
            name: name.into(),
            kind,
            base_rate,
            selectivity,
            sync_coeff: 0.05,
            comm_cost_ms: 2.0,
            external_limit: None,
            base_latency_ms: 1.0,
        }
    }

    /// Builder: set the synchronization penalty coefficient.
    pub fn with_sync_coeff(mut self, sync_coeff: f64) -> Self {
        self.sync_coeff = sync_coeff;
        self
    }

    /// Builder: set the per-parallelism communication latency cost.
    pub fn with_comm_cost_ms(mut self, comm_cost_ms: f64) -> Self {
        self.comm_cost_ms = comm_cost_ms;
        self
    }

    /// Builder: cap the aggregate rate across all instances (external
    /// dependency bottleneck, e.g. Redis).
    pub fn with_external_limit(mut self, limit: f64) -> Self {
        self.external_limit = Some(limit);
        self
    }

    /// Builder: set the per-record base latency floor.
    pub fn with_base_latency_ms(mut self, ms: f64) -> Self {
        self.base_latency_ms = ms;
        self
    }

    /// `true` for source operators.
    pub fn is_source(&self) -> bool {
        matches!(self.kind, OperatorKind::Source)
    }

    /// `true` for sink operators.
    pub fn is_sink(&self) -> bool {
        matches!(self.kind, OperatorKind::Sink)
    }

    /// Window emission delay in ms (0 for non-window operators).
    pub fn window_delay_ms(&self) -> f64 {
        match self.kind {
            OperatorKind::Window { emission_delay_ms } => emission_delay_ms,
            _ => 0.0,
        }
    }
}

/// Topology validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The operator list was empty.
    Empty,
    /// Two operators share a name.
    DuplicateName(String),
    /// An edge referenced an operator index that does not exist.
    EdgeOutOfRange { from: usize, to: usize },
    /// The edges contain a cycle (or a self-loop).
    Cyclic,
    /// The first operator (index 0) must be a source with no predecessors.
    NoSource,
    /// A non-source operator has no incoming edge, or a source has one.
    Disconnected(String),
    /// An operator spec has a non-positive base rate or selectivity.
    InvalidSpec(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "empty operator list"),
            TopologyError::DuplicateName(n) => write!(f, "duplicate operator name {n:?}"),
            TopologyError::EdgeOutOfRange { from, to } => {
                write!(f, "edge ({from} -> {to}) out of range")
            }
            TopologyError::Cyclic => write!(f, "topology contains a cycle"),
            TopologyError::NoSource => write!(f, "no source operator"),
            TopologyError::Disconnected(n) => write!(f, "operator {n:?} is disconnected"),
            TopologyError::InvalidSpec(n) => write!(f, "operator {n:?} has an invalid spec"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated DAG of operators.
///
/// Operators are stored in a topological order (sources first); edges are
/// `(from, to)` index pairs into that order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobGraph {
    operators: Vec<OperatorSpec>,
    edges: Vec<(usize, usize)>,
}

impl JobGraph {
    /// Builds and validates a DAG.
    pub fn new(
        operators: Vec<OperatorSpec>,
        edges: Vec<(usize, usize)>,
    ) -> Result<Self, TopologyError> {
        if operators.is_empty() {
            return Err(TopologyError::Empty);
        }
        for (i, a) in operators.iter().enumerate() {
            if a.base_rate <= 0.0 || a.selectivity <= 0.0 || a.sync_coeff < 0.0 {
                return Err(TopologyError::InvalidSpec(a.name.clone()));
            }
            for b in operators.iter().skip(i + 1) {
                if a.name == b.name {
                    return Err(TopologyError::DuplicateName(a.name.clone()));
                }
            }
        }
        let n = operators.len();
        for &(from, to) in &edges {
            if from >= n || to >= n || from == to {
                return Err(TopologyError::EdgeOutOfRange { from, to });
            }
        }

        // Kahn's algorithm: verify acyclicity and compute a topo order.
        let mut indegree = vec![0usize; n];
        for &(_, to) in &edges {
            indegree[to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut indegree_mut = indegree.clone();
        while let Some(i) = queue.pop() {
            order.push(i);
            for &(from, to) in &edges {
                if from == i {
                    indegree_mut[to] -= 1;
                    if indegree_mut[to] == 0 {
                        queue.push(to);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(TopologyError::Cyclic);
        }

        // Sources must have indegree 0 and exist; non-sources indegree > 0.
        let mut has_source = false;
        for (i, op) in operators.iter().enumerate() {
            if op.is_source() {
                has_source = true;
                if indegree[i] != 0 {
                    return Err(TopologyError::Disconnected(op.name.clone()));
                }
            } else if indegree[i] == 0 {
                return Err(TopologyError::Disconnected(op.name.clone()));
            }
        }
        if !has_source {
            return Err(TopologyError::NoSource);
        }

        // Re-index operators into topological order so the engine can walk
        // 0..n and always see predecessors first.
        let mut position = vec![0usize; n];
        for (pos, &old) in order.iter().enumerate() {
            position[old] = pos;
        }
        let mut sorted_ops: Vec<Option<OperatorSpec>> = vec![None; n];
        for (old, op) in operators.into_iter().enumerate() {
            sorted_ops[position[old]] = Some(op);
        }
        let operators: Vec<OperatorSpec> = sorted_ops.into_iter().map(Option::unwrap).collect();
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(from, to)| (position[from], position[to]))
            .collect();

        Ok(Self { operators, edges })
    }

    /// A linear chain `ops[0] → ops[1] → …` (the WordCount shape).
    pub fn linear(operators: Vec<OperatorSpec>) -> Result<Self, TopologyError> {
        let edges = (1..operators.len()).map(|i| (i - 1, i)).collect();
        Self::new(operators, edges)
    }

    /// The operators in topological order.
    pub fn operators(&self) -> &[OperatorSpec] {
        &self.operators
    }

    /// Number of operators `N`.
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// `true` when the graph has no operators (never after validation).
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }

    /// Edge list over topological indices.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Indices of the successors of operator `i`.
    pub fn successors(&self, i: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(f, _)| *f == i)
            .map(|(_, t)| *t)
            .collect()
    }

    /// Indices of the predecessors of operator `i`.
    pub fn predecessors(&self, i: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(_, t)| *t == i)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Indices of all source operators.
    pub fn sources(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.operators[i].is_source())
            .collect()
    }

    /// Index of an operator by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.operators.iter().position(|op| op.name == name)
    }
}

/// Precomputed adjacency for a [`JobGraph`]: CSR successor/predecessor
/// lists plus the weakly-connected **regions** of the DAG.
///
/// [`JobGraph::successors`] allocates a fresh `Vec` per call by scanning
/// the whole edge list; the engine walks adjacency on every tick, so it
/// builds one of these at deploy time instead. Deliberately *not* stored
/// inside `JobGraph` (which is serde-serializable — derived fields would
/// silently arrive empty after deserialization); rebuild it from the
/// graph wherever it is needed.
///
/// Regions are the connected components of the undirected edge skeleton:
/// operators in different regions never exchange records, so the engine
/// may tick regions in parallel and merge results in fixed order. Each
/// region lists its operator indices in ascending order — a valid
/// topological order within the region, because `JobGraph` stores
/// operators topologically sorted (every edge satisfies `from < to`).
/// Regions themselves are ordered by their smallest operator index.
#[derive(Debug, Clone)]
pub struct Adjacency {
    succ_offsets: Vec<usize>,
    succ: Vec<usize>,
    pred_offsets: Vec<usize>,
    pred: Vec<usize>,
    regions: Vec<Vec<usize>>,
    region_of: Vec<usize>,
}

impl Adjacency {
    /// Builds CSR adjacency and the region partition for `graph`.
    pub fn build(graph: &JobGraph) -> Self {
        let n = graph.len();
        let edges = graph.edges();

        let mut succ_offsets = vec![0usize; n + 1];
        let mut pred_offsets = vec![0usize; n + 1];
        for &(from, to) in edges {
            succ_offsets[from + 1] += 1;
            pred_offsets[to + 1] += 1;
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
            pred_offsets[i + 1] += pred_offsets[i];
        }
        let mut succ = vec![0usize; edges.len()];
        let mut pred = vec![0usize; edges.len()];
        let mut succ_fill = succ_offsets.clone();
        let mut pred_fill = pred_offsets.clone();
        for &(from, to) in edges {
            succ[succ_fill[from]] = to;
            succ_fill[from] += 1;
            pred[pred_fill[to]] = from;
            pred_fill[to] += 1;
        }
        // Within each CSR row, neighbors in ascending index order
        // regardless of edge-list order.
        for i in 0..n {
            succ[succ_offsets[i]..succ_offsets[i + 1]].sort_unstable();
            pred[pred_offsets[i]..pred_offsets[i + 1]].sort_unstable();
        }

        // Weakly-connected components via union-find on the edge skeleton.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(from, to) in edges {
            let (a, b) = (find(&mut parent, from), find(&mut parent, to));
            if a != b {
                // Smaller root wins so roots stay stable and ordered.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi] = lo;
            }
        }
        let mut region_of = vec![usize::MAX; n];
        let mut regions: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            if region_of[root] == usize::MAX {
                region_of[root] = regions.len();
                regions.push(Vec::new());
            }
            region_of[i] = region_of[root];
            regions[region_of[i]].push(i);
        }

        Self {
            succ_offsets,
            succ,
            pred_offsets,
            pred,
            regions,
            region_of,
        }
    }

    /// Successor indices of operator `i`, ascending, allocation-free.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succ[self.succ_offsets[i]..self.succ_offsets[i + 1]]
    }

    /// Predecessor indices of operator `i`, ascending, allocation-free.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.pred[self.pred_offsets[i]..self.pred_offsets[i + 1]]
    }

    /// The weakly-connected regions; each is an ascending list of
    /// operator indices, and regions are ordered by smallest member.
    pub fn regions(&self) -> &[Vec<usize>] {
        &self.regions
    }

    /// Index (into [`regions`](Self::regions)) of the region containing
    /// operator `i`.
    pub fn region_of(&self, i: usize) -> usize {
        self.region_of[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> Vec<OperatorSpec> {
        vec![
            OperatorSpec::source("Source", 100.0),
            OperatorSpec::transform("Map", 100.0, 1.0),
            OperatorSpec::sink("Sink", 100.0),
        ]
    }

    #[test]
    fn linear_chain_builds() {
        let g = JobGraph::linear(chain3()).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.successors(0), vec![1]);
        assert_eq!(g.predecessors(2), vec![1]);
        assert_eq!(g.sources(), vec![0]);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(JobGraph::linear(vec![]), Err(TopologyError::Empty));
    }

    #[test]
    fn rejects_duplicate_names() {
        let ops = vec![OperatorSpec::source("X", 1.0), OperatorSpec::sink("X", 1.0)];
        assert!(matches!(
            JobGraph::linear(ops),
            Err(TopologyError::DuplicateName(_))
        ));
    }

    #[test]
    fn rejects_cycles_and_self_loops() {
        let ops = chain3();
        let cyclic = JobGraph::new(ops.clone(), vec![(0, 1), (1, 2), (2, 1)]);
        assert_eq!(cyclic, Err(TopologyError::Cyclic));
        let self_loop = JobGraph::new(ops, vec![(0, 1), (1, 1), (1, 2)]);
        assert!(matches!(
            self_loop,
            Err(TopologyError::EdgeOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_edge_out_of_range() {
        assert!(matches!(
            JobGraph::new(chain3(), vec![(0, 7)]),
            Err(TopologyError::EdgeOutOfRange { from: 0, to: 7 })
        ));
    }

    #[test]
    fn rejects_missing_source() {
        let ops = vec![
            OperatorSpec::transform("A", 1.0, 1.0),
            OperatorSpec::sink("B", 1.0),
        ];
        let r = JobGraph::new(ops, vec![(0, 1)]);
        assert!(matches!(
            r,
            Err(TopologyError::Disconnected(_)) | Err(TopologyError::NoSource)
        ));
    }

    #[test]
    fn rejects_disconnected_transform() {
        let ops = vec![
            OperatorSpec::source("S", 1.0),
            OperatorSpec::transform("Orphan", 1.0, 1.0),
            OperatorSpec::sink("K", 1.0),
        ];
        let r = JobGraph::new(ops, vec![(0, 2)]);
        assert!(matches!(r, Err(TopologyError::Disconnected(n)) if n == "Orphan"));
    }

    #[test]
    fn rejects_invalid_spec() {
        let mut ops = chain3();
        ops[1].base_rate = 0.0;
        assert!(matches!(
            JobGraph::linear(ops),
            Err(TopologyError::InvalidSpec(n)) if n == "Map"
        ));
    }

    #[test]
    fn diamond_topology_is_topologically_sorted() {
        // Build intentionally out of order: sink first.
        let ops = vec![
            OperatorSpec::sink("Sink", 1.0),
            OperatorSpec::source("Source", 1.0),
            OperatorSpec::transform("Left", 1.0, 1.0),
            OperatorSpec::transform("Right", 1.0, 1.0),
        ];
        // Source -> Left -> Sink, Source -> Right -> Sink.
        let g = JobGraph::new(ops, vec![(1, 2), (1, 3), (2, 0), (3, 0)]).unwrap();
        // Source must be first after sorting, sink last.
        assert!(g.operators()[0].is_source());
        assert!(g.operators()[g.len() - 1].is_sink());
        // Every edge goes forward in topological order.
        assert!(g.edges().iter().all(|(f, t)| f < t));
        assert_eq!(g.predecessors(g.index_of("Sink").unwrap()).len(), 2);
    }

    #[test]
    fn window_delay_accessor() {
        let w = OperatorSpec::window("W", 10.0, 1.0, 250.0);
        assert_eq!(w.window_delay_ms(), 250.0);
        assert_eq!(OperatorSpec::sink("S", 1.0).window_delay_ms(), 0.0);
    }

    #[test]
    fn adjacency_matches_edge_scan() {
        let ops = vec![
            OperatorSpec::sink("Sink", 1.0),
            OperatorSpec::source("Source", 1.0),
            OperatorSpec::transform("Left", 1.0, 1.0),
            OperatorSpec::transform("Right", 1.0, 1.0),
        ];
        let g = JobGraph::new(ops, vec![(1, 2), (1, 3), (2, 0), (3, 0)]).unwrap();
        let adj = Adjacency::build(&g);
        for i in 0..g.len() {
            let mut expected = g.successors(i);
            expected.sort_unstable();
            assert_eq!(adj.successors(i), expected.as_slice(), "succ of {i}");
            let mut expected = g.predecessors(i);
            expected.sort_unstable();
            assert_eq!(adj.predecessors(i), expected.as_slice(), "pred of {i}");
        }
    }

    #[test]
    fn single_chain_is_one_region() {
        let g = JobGraph::linear(chain3()).unwrap();
        let adj = Adjacency::build(&g);
        assert_eq!(adj.regions(), &[vec![0, 1, 2]]);
        for i in 0..3 {
            assert_eq!(adj.region_of(i), 0);
        }
    }

    #[test]
    fn disjoint_chains_split_into_regions() {
        // Two independent pipelines in one job graph.
        let ops = vec![
            OperatorSpec::source("SrcA", 1.0),
            OperatorSpec::sink("SinkA", 1.0),
            OperatorSpec::source("SrcB", 1.0),
            OperatorSpec::transform("MapB", 1.0, 1.0),
            OperatorSpec::sink("SinkB", 1.0),
        ];
        let g = JobGraph::new(ops, vec![(0, 1), (2, 3), (3, 4)]).unwrap();
        let adj = Adjacency::build(&g);
        assert_eq!(adj.regions().len(), 2);
        // Each region's indices ascend, and every edge stays inside one
        // region.
        for region in adj.regions() {
            assert!(region.windows(2).all(|w| w[0] < w[1]));
        }
        for &(f, t) in g.edges() {
            assert_eq!(adj.region_of(f), adj.region_of(t));
        }
        let a = adj.region_of(g.index_of("SrcA").unwrap());
        let b = adj.region_of(g.index_of("SrcB").unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn regions_ordered_by_smallest_member() {
        let ops = vec![
            OperatorSpec::source("S1", 1.0),
            OperatorSpec::sink("K1", 1.0),
            OperatorSpec::source("S2", 1.0),
            OperatorSpec::sink("K2", 1.0),
        ];
        let g = JobGraph::new(ops, vec![(0, 1), (2, 3)]).unwrap();
        let adj = Adjacency::build(&g);
        let mins: Vec<usize> = adj.regions().iter().map(|r| r[0]).collect();
        assert!(mins.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn builder_methods_apply() {
        let op = OperatorSpec::transform("T", 10.0, 2.0)
            .with_sync_coeff(0.3)
            .with_comm_cost_ms(7.0)
            .with_external_limit(123.0)
            .with_base_latency_ms(4.0);
        assert_eq!(op.sync_coeff, 0.3);
        assert_eq!(op.comm_cost_ms, 7.0);
        assert_eq!(op.external_limit, Some(123.0));
        assert_eq!(op.base_latency_ms, 4.0);
    }
}

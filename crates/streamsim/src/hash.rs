//! A deterministic 64-bit state hash for simulator parity checks.
//!
//! The engine folds every piece of mutable simulation state (time, queue
//! occupancies, Kafka counters, capacities, faults) into one `u64` so two
//! runs — or the event-driven and tick engines on the same scenario — can
//! be compared exactly without serializing full snapshots. Floats are
//! hashed by their IEEE-754 bit patterns, so the hash distinguishes
//! values down to the last ulp (and `0.0` from `-0.0`): equal hashes are
//! evidence of *bitwise* identical state, not merely approximate
//! agreement.
//!
//! The mixer is the splitmix64 finalizer, which is cheap, has full
//! avalanche, and is endianness-independent (all inputs are folded as
//! integers, never as byte buffers).

/// The splitmix64 finalizer: full-avalanche 64-bit mixing.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An order-sensitive 64-bit fold. Not a cryptographic hash — a
/// determinism checksum.
#[derive(Debug, Clone, Copy)]
pub struct StateHasher(u64);

impl StateHasher {
    /// A fresh hasher with a fixed seed constant.
    pub fn new() -> Self {
        Self(0x9e37_79b9_7f4a_7c15)
    }

    /// Folds one 64-bit word. The golden-ratio increment keeps runs of
    /// identical words from fixing the state.
    #[inline]
    pub fn write_u64(&mut self, x: u64) {
        self.0 = mix64(self.0 ^ x).wrapping_add(0x9e37_79b9_7f4a_7c15);
    }

    /// Folds a float by bit pattern (ulp-exact, sign-of-zero-exact).
    #[inline]
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Folds a `usize` (widened so 32- and 64-bit targets agree).
    #[inline]
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Folds a boolean as 0/1.
    #[inline]
    pub fn write_bool(&mut self, x: bool) {
        self.write_u64(u64::from(x));
    }

    /// Folds every float in a slice, length first (so `[1.0]` and
    /// `[1.0, 1.0]` cannot collide by concatenation).
    pub fn write_f64_slice(&mut self, xs: &[f64]) {
        self.write_usize(xs.len());
        for &x in xs {
            self.write_f64(x);
        }
    }

    /// The folded digest.
    #[inline]
    pub fn finish(&self) -> u64 {
        mix64(self.0)
    }
}

impl Default for StateHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(values: &[f64]) -> u64 {
        let mut h = StateHasher::new();
        for &v in values {
            h.write_f64(v);
        }
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&[1.0, 2.0, 3.0]), hash_of(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(hash_of(&[1.0, 2.0]), hash_of(&[2.0, 1.0]));
    }

    #[test]
    fn distinguishes_signed_zero_and_ulps() {
        assert_ne!(hash_of(&[0.0]), hash_of(&[-0.0]));
        let x = 1.0f64;
        let next = f64::from_bits(x.to_bits() + 1);
        assert_ne!(hash_of(&[x]), hash_of(&[next]));
    }

    #[test]
    fn slice_fold_is_length_prefixed() {
        let mut a = StateHasher::new();
        a.write_f64_slice(&[1.0]);
        a.write_f64_slice(&[]);
        let mut b = StateHasher::new();
        b.write_f64_slice(&[]);
        b.write_f64_slice(&[1.0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn identical_word_runs_keep_mixing() {
        // A fold that collapses on repeated inputs would make long queue
        // vectors of equal values degenerate.
        let mut h = StateHasher::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            h.write_u64(0);
            assert!(seen.insert(h.finish()), "state cycled");
        }
    }

    #[test]
    fn mixed_type_writes_do_not_collide_trivially() {
        let mut a = StateHasher::new();
        a.write_bool(true);
        let mut b = StateHasher::new();
        b.write_usize(1);
        // Same folded word → same hash; this documents that type tags are
        // the CALLER's job (the engine folds a fixed field order).
        assert_eq!(a.finish(), b.finish());
    }
}

//! The Kafka stand-in: a partitioned log with producer rate, consumer
//! lag, and **finite retention**.
//!
//! Records are fluid (fractional counts are fine at the tick
//! granularity) and are aged in FIFO buckets: the producer appends
//! `rate(t)·dt` records per tick, consumers pop from the oldest bucket,
//! and records older than the retention are dropped (`expired_total`) —
//! exactly like a real Kafka topic with a time-based retention policy.
//! The unconsumed remainder is the consumer lag the paper plots in
//! Fig. 1(b); the pending (event-time) delay of newly consumed records is
//! approximated by Little's law: `lag / consumption_rate`.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One age bucket of records.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Bucket {
    /// Production time of the records in this bucket.
    time: f64,
    /// Remaining unconsumed records.
    amount: f64,
}

/// The external partitioned log feeding the job's source operators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Kafka {
    /// FIFO of unconsumed record buckets, oldest first.
    buckets: VecDeque<Bucket>,
    /// Unconsumed records (kept in sync with the bucket sum).
    lag: f64,
    /// Total records produced since the start.
    produced_total: f64,
    /// Total records consumed since the start.
    consumed_total: f64,
    /// Total records dropped by retention.
    expired_total: f64,
    /// Consumption rate over the last completed tick (records/s).
    last_consumption_rate: f64,
}

impl Kafka {
    /// An empty log.
    pub fn new() -> Self {
        Self {
            buckets: VecDeque::new(),
            lag: 0.0,
            produced_total: 0.0,
            consumed_total: 0.0,
            expired_total: 0.0,
            last_consumption_rate: 0.0,
        }
    }

    /// Producer appends `rate · dt` records at time `now`.
    pub fn produce(&mut self, rate: f64, dt: f64, now: f64) {
        let records = (rate * dt).max(0.0);
        if records > 0.0 {
            self.buckets.push_back(Bucket {
                time: now,
                amount: records,
            });
            self.lag += records;
            self.produced_total += records;
        }
    }

    /// Consumers take up to `want` records (oldest first); returns what
    /// was actually available. `dt` is the tick length, used to track the
    /// consumption rate.
    pub fn consume(&mut self, want: f64, dt: f64) -> f64 {
        let mut remaining = want.max(0.0).min(self.lag);
        let taken = remaining;
        while remaining > 0.0 {
            let Some(front) = self.buckets.front_mut() else {
                break;
            };
            if front.amount <= remaining {
                remaining -= front.amount;
                self.buckets.pop_front();
            } else {
                front.amount -= remaining;
                remaining = 0.0;
            }
        }
        self.lag -= taken;
        self.consumed_total += taken;
        self.last_consumption_rate = if dt > 0.0 { taken / dt } else { 0.0 };
        taken
    }

    /// Drops records older than `retention_secs` (no-op for non-positive
    /// retention). Returns the number of records expired.
    pub fn expire(&mut self, now: f64, retention_secs: f64) -> f64 {
        if retention_secs <= 0.0 {
            return 0.0;
        }
        let horizon = now - retention_secs;
        let mut dropped = 0.0;
        while let Some(front) = self.buckets.front() {
            if front.time < horizon {
                dropped += front.amount;
                self.buckets.pop_front();
            } else {
                break;
            }
        }
        self.lag -= dropped;
        self.expired_total += dropped;
        dropped
    }

    /// Replays `ticks` steady-state ticks in which every produced record
    /// is consumed in the same tick. `takes` is the per-consumer amount
    /// returned by [`consume`](Self::consume) during one representative
    /// tick of the steady window, in call order; steady state means every
    /// tick repeats those exact values (and they sum to `rate · dt`, so
    /// the per-tick bucket is fully popped). Per tick, `rate · dt` is
    /// added to `produced_total` and each take to `consumed_total` as
    /// individual sequential additions, so the totals are **bit-identical**
    /// to running `produce` + one `consume` per take, tick by tick from an
    /// empty log. The bucket queue and lag are untouched (produce pushes a
    /// bucket, the consumes pop it; lag returns to exactly `0.0` because
    /// the final take equals the remaining lag bit-for-bit).
    ///
    /// Callers must only use this when the log is drained — an empty
    /// bucket queue with zero lag — otherwise the elided bucket churn
    /// would have changed FIFO state.
    pub fn replay_steady(&mut self, rate: f64, dt: f64, ticks: u64, takes: &[f64]) {
        debug_assert!(
            self.buckets.is_empty() && self.lag == 0.0,
            "replay_steady requires a drained log"
        );
        let records = (rate * dt).max(0.0);
        for _ in 0..ticks {
            if records > 0.0 {
                self.produced_total += records;
            }
            for &taken in takes {
                self.consumed_total += taken;
            }
        }
        if ticks > 0 {
            if let Some(&last) = takes.last() {
                self.last_consumption_rate = if dt > 0.0 { last / dt } else { 0.0 };
            }
        }
    }

    /// Whether the bucket queue is empty (no unconsumed records at all —
    /// a stronger condition than `lag() == 0.0` in the presence of
    /// floating-point residue).
    pub fn is_drained(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Current consumer lag in records.
    pub fn lag(&self) -> f64 {
        self.lag
    }

    /// Total records produced.
    pub fn produced_total(&self) -> f64 {
        self.produced_total
    }

    /// Total records consumed.
    pub fn consumed_total(&self) -> f64 {
        self.consumed_total
    }

    /// Total records dropped by retention.
    pub fn expired_total(&self) -> f64 {
        self.expired_total
    }

    /// Consumption rate over the last tick (records/s).
    pub fn consumption_rate(&self) -> f64 {
        self.last_consumption_rate
    }

    /// Estimated pending time (seconds) of a record entering the job now:
    /// Little's law on the lag queue. `None` while nothing is being
    /// consumed (e.g. during a restart) — the pending time is unbounded,
    /// not zero.
    pub fn pending_time(&self) -> Option<f64> {
        if self.last_consumption_rate > 1e-9 {
            Some(self.lag / self.last_consumption_rate)
        } else if self.lag <= 1e-9 {
            Some(0.0)
        } else {
            None
        }
    }
}

impl Default for Kafka {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produce_then_consume_conserves_records() {
        let mut k = Kafka::new();
        k.produce(1000.0, 1.0, 0.0);
        assert_eq!(k.lag(), 1000.0);
        let got = k.consume(400.0, 1.0);
        assert_eq!(got, 400.0);
        assert_eq!(k.lag(), 600.0);
        assert_eq!(k.produced_total(), 1000.0);
        assert_eq!(k.consumed_total(), 400.0);
    }

    #[test]
    fn cannot_consume_more_than_lag() {
        let mut k = Kafka::new();
        k.produce(100.0, 1.0, 0.0);
        let got = k.consume(500.0, 1.0);
        assert_eq!(got, 100.0);
        assert_eq!(k.lag(), 0.0);
    }

    #[test]
    fn lag_grows_when_underprovisioned() {
        let mut k = Kafka::new();
        for i in 0..10 {
            k.produce(300.0, 1.0, i as f64);
            k.consume(250.0, 1.0);
        }
        assert!((k.lag() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn consumption_is_fifo() {
        let mut k = Kafka::new();
        k.produce(100.0, 1.0, 0.0);
        k.produce(100.0, 1.0, 1.0);
        k.consume(150.0, 1.0);
        // The first bucket is fully gone; 50 remain from t=1.
        assert!((k.lag() - 50.0).abs() < 1e-9);
        // Expiring up to t=0 drops nothing (remaining records are younger).
        assert_eq!(k.expire(10.0, 9.5), 0.0);
        assert!((k.lag() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn retention_expires_old_records() {
        let mut k = Kafka::new();
        k.produce(100.0, 1.0, 0.0);
        k.produce(100.0, 1.0, 50.0);
        // At t=100 with 60 s retention, the t=0 bucket expires.
        let dropped = k.expire(100.0, 60.0);
        assert_eq!(dropped, 100.0);
        assert_eq!(k.lag(), 100.0);
        assert_eq!(k.expired_total(), 100.0);
        // Non-positive retention is a no-op.
        assert_eq!(k.expire(1000.0, 0.0), 0.0);
    }

    #[test]
    fn pending_time_uses_littles_law() {
        let mut k = Kafka::new();
        k.produce(1000.0, 1.0, 0.0);
        k.consume(200.0, 1.0); // consumption rate 200/s, lag 800
        assert!((k.pending_time().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn pending_time_none_when_stalled_with_lag() {
        let mut k = Kafka::new();
        k.produce(1000.0, 1.0, 0.0);
        k.consume(0.0, 1.0);
        assert_eq!(k.pending_time(), None);
    }

    #[test]
    fn pending_time_zero_when_empty() {
        let k = Kafka::new();
        assert_eq!(k.pending_time(), Some(0.0));
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let mut k = Kafka::new();
        k.produce(-100.0, 1.0, 0.0);
        assert_eq!(k.lag(), 0.0);
        let got = k.consume(-5.0, 1.0);
        assert_eq!(got, 0.0);
    }

    #[test]
    fn replay_steady_matches_tick_by_tick_bitwise() {
        let rate = 12_345.678_9;
        let dt = 0.1;
        let ticks = 1_000u64;

        let mut ticked = Kafka::new();
        for i in 0..ticks {
            let now = i as f64 * dt;
            ticked.produce(rate, dt, now);
            let got = ticked.consume(rate * dt, dt);
            assert_eq!(got.to_bits(), (rate * dt).to_bits());
        }

        let mut replayed = Kafka::new();
        replayed.replay_steady(rate, dt, ticks, &[rate * dt]);

        assert_eq!(
            ticked.produced_total().to_bits(),
            replayed.produced_total().to_bits()
        );
        assert_eq!(
            ticked.consumed_total().to_bits(),
            replayed.consumed_total().to_bits()
        );
        assert_eq!(
            ticked.consumption_rate().to_bits(),
            replayed.consumption_rate().to_bits()
        );
        assert_eq!(ticked.lag(), 0.0);
        assert!(ticked.is_drained());
        assert!(replayed.is_drained());
    }

    #[test]
    fn replay_steady_zero_rate_only_resets_consumption_rate() {
        let mut k = Kafka::new();
        k.produce(100.0, 1.0, 0.0);
        k.consume(100.0, 1.0);
        assert!(k.is_drained());
        k.replay_steady(0.0, 0.1, 500, &[0.0]);
        assert_eq!(k.produced_total(), 100.0);
        assert_eq!(k.consumed_total(), 100.0);
        assert_eq!(k.consumption_rate(), 0.0);
    }

    #[test]
    fn replay_steady_matches_multi_consumer_ticks_bitwise() {
        // Two sources splitting each tick's bucket: the first is
        // capacity-limited to an awkward value, the second drains the
        // rest. Replaying the recorded takes must reproduce the totals
        // bit for bit.
        let rate = 9_876.543;
        let dt = 0.1;
        let records = rate * dt;
        let want_a = records * 0.37; // capacity-limited first consumer
        let ticks = 777u64;

        let mut ticked = Kafka::new();
        let mut takes = Vec::new();
        for i in 0..ticks {
            ticked.produce(rate, dt, i as f64 * dt);
            takes.clear();
            takes.push(ticked.consume(want_a, dt));
            takes.push(ticked.consume(f64::INFINITY, dt));
            assert!(ticked.is_drained());
            assert_eq!(ticked.lag().to_bits(), 0.0f64.to_bits());
        }

        let mut replayed = Kafka::new();
        replayed.replay_steady(rate, dt, ticks, &takes);

        assert_eq!(
            ticked.produced_total().to_bits(),
            replayed.produced_total().to_bits()
        );
        assert_eq!(
            ticked.consumed_total().to_bits(),
            replayed.consumed_total().to_bits()
        );
        assert_eq!(
            ticked.consumption_rate().to_bits(),
            replayed.consumption_rate().to_bits()
        );
    }

    #[test]
    fn is_drained_tracks_bucket_queue() {
        let mut k = Kafka::new();
        assert!(k.is_drained());
        k.produce(10.0, 1.0, 0.0);
        assert!(!k.is_drained());
        k.consume(10.0, 1.0);
        assert!(k.is_drained());
    }
}

//! The engine's event queue: a binary min-heap of future instants at
//! which simulation behaviour *may* change.
//!
//! The event-driven engine advances time in variable strides (whole
//! metric windows at once) whenever the job is quiescent. Doing that
//! safely requires knowing that nothing is scheduled inside the stride:
//! a fault expiring, a restart-downtime window ending, or the producer
//! rate profile crossing a breakpoint. Those instants are pushed here as
//! they become known and the engine peeks the earliest one before every
//! skip.
//!
//! Entries are **conservative wake-up hints**, not authoritative state:
//! superseded entries (a redeploy replacing an earlier downtime deadline,
//! a breakpoint already crossed tick-by-tick) are left in the heap and
//! discarded lazily once due. A stale entry can only make the engine
//! fall back to honest tick-by-tick execution — never skip over a real
//! change — so correctness needs only that every *real* future change has
//! an entry at or before its instant.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What kind of change an event announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A transient slowdown reaches its `until` deadline.
    FaultExpiry,
    /// A scheduled fault activates (cascading-failure scenarios).
    FaultStart,
    /// Savepoint/restart downtime ends and processing resumes.
    DowntimeEnd,
    /// The producer rate profile may change value.
    RateBreakpoint,
}

/// One scheduled instant.
#[derive(Debug, Clone, Copy)]
pub struct SimEvent {
    /// Simulation time at which the change may take effect.
    pub time: f64,
    /// What changes.
    pub kind: EventKind,
}

/// Min-heap wrapper: earliest event first. Times are totally ordered via
/// `f64::total_cmp`; ties break on the kind so ordering is deterministic.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
}

#[derive(Debug)]
struct Entry(SimEvent);

fn kind_rank(kind: EventKind) -> u8 {
    match kind {
        EventKind::FaultExpiry => 0,
        EventKind::FaultStart => 1,
        EventKind::DowntimeEnd => 2,
        EventKind::RateBreakpoint => 3,
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest time.
        other
            .0
            .time
            .total_cmp(&self.0.time)
            .then_with(|| kind_rank(other.0.kind).cmp(&kind_rank(self.0.kind)))
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event. Non-finite times are ignored (nothing at
    /// infinity ever becomes due, and NaN would poison the ordering).
    pub fn push(&mut self, time: f64, kind: EventKind) {
        if time.is_finite() {
            self.heap.push(Entry(SimEvent { time, kind }));
        }
    }

    /// Earliest scheduled instant, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// Pops every event with `time <= now` (already handled by the
    /// tick-by-tick path) and returns how many were discarded.
    pub fn discard_through(&mut self, now: f64) -> usize {
        let mut dropped = 0;
        while let Some(e) = self.heap.peek() {
            if e.0.time <= now {
                self.heap.pop();
                dropped += 1;
            } else {
                break;
            }
        }
        dropped
    }

    /// Number of pending entries (including stale ones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.push(30.0, EventKind::DowntimeEnd);
        q.push(10.0, EventKind::FaultExpiry);
        q.push(20.0, EventKind::RateBreakpoint);
        assert_eq!(q.peek_time(), Some(10.0));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn discard_through_pops_due_entries_only() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::FaultExpiry);
        q.push(2.0, EventKind::FaultExpiry);
        q.push(5.0, EventKind::DowntimeEnd);
        // Boundary is inclusive: an event AT `now` has already been seen
        // by the tick that ran at `now`.
        assert_eq!(q.discard_through(2.0), 2);
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.discard_through(2.0), 0);
    }

    #[test]
    fn nonfinite_times_are_ignored() {
        let mut q = EventQueue::new();
        q.push(f64::INFINITY, EventKind::RateBreakpoint);
        q.push(f64::NAN, EventKind::FaultExpiry);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_order_deterministically_by_kind() {
        let mut q = EventQueue::new();
        q.push(7.0, EventKind::RateBreakpoint);
        q.push(7.0, EventKind::FaultExpiry);
        assert_eq!(q.peek_time(), Some(7.0));
        // Both due at once; both discarded.
        assert_eq!(q.discard_through(7.0), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::FaultExpiry);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}

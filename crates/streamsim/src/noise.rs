//! Deterministic Gaussian noise for service rates and measurements.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded Gaussian sampler (Box–Muller).
///
/// `rand` ships only uniform distributions without `rand_distr`; rather
/// than pull another dependency for one function we implement Box–Muller
/// directly (DESIGN.md §4 keeps the dependency list to the approved set).
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    rng: StdRng,
    /// A spare deviate from the previous Box–Muller pair.
    spare: Option<f64>,
}

impl GaussianNoise {
    /// A sampler seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// One standard normal deviate.
    pub fn standard(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: two uniforms → two independent normals.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal deviate with the given mean and standard deviation.
    pub fn sample(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard()
    }

    /// A multiplicative noise factor `max(floor, 1 + std·z)` — used to
    /// jitter service rates without ever making them non-positive.
    pub fn factor(&mut self, std: f64) -> f64 {
        (1.0 + std * self.standard()).max(0.05)
    }

    /// A uniform deviate in `[0, 1)` (for tie-breaking and subsampling).
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = GaussianNoise::new(42);
        let mut b = GaussianNoise::new(42);
        for _ in 0..100 {
            assert_eq!(a.standard().to_bits(), b.standard().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianNoise::new(1);
        let mut b = GaussianNoise::new(2);
        let same = (0..10).filter(|_| a.standard() == b.standard()).count();
        assert!(same < 10);
    }

    #[test]
    fn moments_are_approximately_standard() {
        let mut g = GaussianNoise::new(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.standard()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sample_shifts_and_scales() {
        let mut g = GaussianNoise::new(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn factor_is_positive() {
        let mut g = GaussianNoise::new(3);
        for _ in 0..10_000 {
            let f = g.factor(0.5);
            assert!(f > 0.0);
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut g = GaussianNoise::new(4);
        for _ in 0..1000 {
            let u = g.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }
}

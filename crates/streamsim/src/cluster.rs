//! The cluster: machines with cores, instance placement, and the CPU
//! interference model.

use serde::{Deserialize, Serialize};

/// One physical machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Number of CPU cores.
    pub cores: u32,
}

/// The cluster of task-manager machines.
///
/// Flink slots isolate managed memory but **not** CPU (paper §III-A), so
/// instances co-located on a machine contend for cores. The interference
/// model: with `m` instances on a machine of `c` cores, each instance's
/// service rate is multiplied by
///
/// ```text
/// f(m, c) = 1 / (1 + γ·max(0, m − c) / c)        (hard over-subscription)
///           × 1 / (1 + η·(m − 1) / c)            (shared-resource drag)
/// ```
///
/// The first factor bites only when instances outnumber cores; the second
/// models memory-bandwidth/cache contention that grows smoothly with
/// co-location and keeps throughput-vs-parallelism concave even below the
/// core count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// The machines available to task managers.
    pub machines: Vec<MachineSpec>,
    /// Over-subscription penalty γ.
    pub oversubscription_coeff: f64,
    /// Smooth contention penalty η.
    pub contention_coeff: f64,
    /// Maximum parallelism per operator the cluster supports (the paper's
    /// `P_max`, bounded by available slots).
    pub max_parallelism: u32,
}

impl ClusterSpec {
    /// The paper's testbed: 3 × 20-core task-manager machines (the fourth
    /// R740xd hosts Kafka/Zookeeper and takes no operator instances).
    pub fn paper_cluster() -> Self {
        Self {
            machines: vec![MachineSpec { cores: 20 }; 3],
            oversubscription_coeff: 1.0,
            contention_coeff: 0.05,
            max_parallelism: 50,
        }
    }

    /// A uniform cluster of `n` machines with `cores` cores each.
    pub fn uniform(n: usize, cores: u32, max_parallelism: u32) -> Self {
        Self {
            machines: vec![MachineSpec { cores }; n],
            oversubscription_coeff: 1.0,
            contention_coeff: 0.05,
            max_parallelism,
        }
    }

    /// Total cores across machines.
    pub fn total_cores(&self) -> u32 {
        self.machines.iter().map(|m| m.cores).sum()
    }

    /// Interference multiplier for an instance on machine `machine` given
    /// the per-machine instance counts.
    pub fn interference_factor(&self, machine: usize, instances_on: &[u32]) -> f64 {
        let m = instances_on[machine] as f64;
        let c = self.machines[machine].cores as f64;
        if m <= 0.0 {
            return 1.0;
        }
        let over = (m - c).max(0.0) / c;
        let drag = (m - 1.0).max(0.0) / c;
        1.0 / (1.0 + self.oversubscription_coeff * over) / (1.0 + self.contention_coeff * drag)
    }
}

/// Assignment of operator instances to machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// `machine_of[op][instance]` — machine index per instance.
    machine_of: Vec<Vec<usize>>,
    /// Number of instances per machine.
    instances_on: Vec<u32>,
}

impl Placement {
    /// Places `parallelism[i]` instances of each operator onto the least
    /// loaded machine in turn (deterministic: ties go to the lowest
    /// index). This mirrors Flink's spread-out slot allocation.
    pub fn spread(cluster: &ClusterSpec, parallelism: &[u32]) -> Self {
        let mut instances_on = vec![0u32; cluster.machines.len()];
        let mut machine_of = Vec::with_capacity(parallelism.len());
        for &p in parallelism {
            let mut per_op = Vec::with_capacity(p as usize);
            for _ in 0..p {
                // Least relative load; ties to the lowest machine index.
                let target = (0..instances_on.len())
                    .min_by(|&a, &b| {
                        let la = instances_on[a] as f64 / cluster.machines[a].cores as f64;
                        let lb = instances_on[b] as f64 / cluster.machines[b].cores as f64;
                        la.total_cmp(&lb).then(a.cmp(&b))
                    })
                    .expect("cluster has at least one machine");
                instances_on[target] += 1;
                per_op.push(target);
            }
            machine_of.push(per_op);
        }
        Self {
            machine_of,
            instances_on,
        }
    }

    /// Machine hosting instance `inst` of operator `op`.
    pub fn machine(&self, op: usize, inst: usize) -> usize {
        self.machine_of[op][inst]
    }

    /// Instance counts per machine.
    pub fn instances_on(&self) -> &[u32] {
        &self.instances_on
    }

    /// Total instances placed.
    pub fn total_instances(&self) -> u32 {
        self.instances_on.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.machines.len(), 3);
        assert_eq!(c.total_cores(), 60);
    }

    #[test]
    fn interference_is_one_when_alone() {
        let c = ClusterSpec::uniform(1, 8, 10);
        assert_eq!(c.interference_factor(0, &[1]), 1.0);
        assert_eq!(c.interference_factor(0, &[0]), 1.0);
    }

    #[test]
    fn interference_decreases_with_load() {
        let c = ClusterSpec::uniform(1, 8, 10);
        let f4 = c.interference_factor(0, &[4]);
        let f8 = c.interference_factor(0, &[8]);
        let f16 = c.interference_factor(0, &[16]);
        assert!(f4 > f8, "{f4} !> {f8}");
        assert!(f8 > f16, "{f8} !> {f16}");
        assert!(f16 > 0.0);
    }

    #[test]
    fn oversubscription_penalty_kicks_in_past_cores() {
        let mut c = ClusterSpec::uniform(1, 8, 10);
        c.contention_coeff = 0.0; // isolate the over-subscription term
        let at_cores = c.interference_factor(0, &[8]);
        let double = c.interference_factor(0, &[16]);
        assert_eq!(at_cores, 1.0);
        assert!((double - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spread_balances_across_machines() {
        let c = ClusterSpec::uniform(3, 10, 50);
        let p = Placement::spread(&c, &[3, 3, 3]);
        assert_eq!(p.total_instances(), 9);
        // Perfectly balanced: 3 instances per machine.
        assert_eq!(p.instances_on(), &[3, 3, 3]);
    }

    #[test]
    fn spread_respects_heterogeneous_cores() {
        let c = ClusterSpec {
            machines: vec![MachineSpec { cores: 30 }, MachineSpec { cores: 10 }],
            oversubscription_coeff: 1.0,
            contention_coeff: 0.05,
            max_parallelism: 50,
        };
        let p = Placement::spread(&c, &[8]);
        // The 30-core machine should absorb ~3/4 of instances.
        assert!(p.instances_on()[0] > p.instances_on()[1]);
    }

    #[test]
    fn spread_is_deterministic() {
        let c = ClusterSpec::paper_cluster();
        let a = Placement::spread(&c, &[4, 7, 2, 1]);
        let b = Placement::spread(&c, &[4, 7, 2, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn machine_lookup_is_consistent() {
        let c = ClusterSpec::uniform(2, 4, 10);
        let p = Placement::spread(&c, &[2, 2]);
        let mut counts = vec![0u32; 2];
        for op in 0..2 {
            for inst in 0..2 {
                counts[p.machine(op, inst)] += 1;
            }
        }
        assert_eq!(counts, p.instances_on());
    }
}

/// Shared per-machine instance counts for co-located jobs.
///
/// The paper's motivation (§I) is precisely that *co-running jobs
/// interfere*: queueing models calibrated per job miss the contention
/// added by neighbors. Multiple [`crate::Simulation`]s register against
/// one `SharedMachineRegistry`; each publishes its per-machine instance
/// counts on every (re)deploy, and every job's interference factor is
/// computed from the TOTAL occupancy.
///
/// Jobs only interact through deploy-time count changes, so co-located
/// simulations may be stepped in any order without a lockstep
/// coordinator.
#[derive(Debug, Default)]
pub struct SharedMachineRegistry {
    counts: parking_lot::Mutex<Vec<u32>>,
    /// Bumped on every [`replace`](Self::replace); lets simulations skip
    /// re-reading occupancy (and re-deriving capacities) when nothing
    /// co-located has redeployed since their last look.
    version: std::sync::atomic::AtomicU64,
}

impl SharedMachineRegistry {
    /// A registry for a cluster with `machines` machines.
    pub fn new(machines: usize) -> Self {
        Self {
            counts: parking_lot::Mutex::new(vec![0; machines]),
            version: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Monotone counter incremented whenever any job's contribution
    /// changes. Equal versions guarantee identical occupancy snapshots.
    pub fn version(&self) -> u64 {
        self.version.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Replaces one job's contribution: subtracts `old`, adds `new`.
    /// Slices may be empty (job not deployed / being torn down).
    ///
    /// # Panics
    ///
    /// Panics if a non-empty slice's length differs from the machine
    /// count, or if subtraction would underflow (double-release).
    pub fn replace(&self, old: &[u32], new: &[u32]) {
        let mut counts = self.counts.lock();
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
        if !old.is_empty() {
            assert_eq!(old.len(), counts.len(), "machine count mismatch");
            for (c, o) in counts.iter_mut().zip(old) {
                *c = c
                    .checked_sub(*o)
                    .expect("registry underflow: double release");
            }
        }
        if !new.is_empty() {
            assert_eq!(new.len(), counts.len(), "machine count mismatch");
            for (c, n) in counts.iter_mut().zip(new) {
                *c += n;
            }
        }
    }

    /// Current total per-machine instance counts across all jobs.
    pub fn snapshot(&self) -> Vec<u32> {
        self.counts.lock().clone()
    }

    /// Total instances across machines and jobs.
    pub fn total_instances(&self) -> u32 {
        self.counts.lock().iter().sum()
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;

    #[test]
    fn replace_accumulates_and_releases() {
        let reg = SharedMachineRegistry::new(3);
        reg.replace(&[], &[2, 0, 1]);
        reg.replace(&[], &[1, 1, 1]); // a second job
        assert_eq!(reg.snapshot(), vec![3, 1, 2]);
        reg.replace(&[2, 0, 1], &[0, 4, 0]); // first job rescales
        assert_eq!(reg.snapshot(), vec![1, 5, 1]);
        reg.replace(&[1, 1, 1], &[]); // second job leaves
        assert_eq!(reg.snapshot(), vec![0, 4, 0]);
        assert_eq!(reg.total_instances(), 4);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let reg = SharedMachineRegistry::new(1);
        reg.replace(&[], &[1]);
        reg.replace(&[1], &[]);
        reg.replace(&[1], &[]);
    }

    #[test]
    #[should_panic(expected = "machine count mismatch")]
    fn wrong_arity_panics() {
        let reg = SharedMachineRegistry::new(2);
        reg.replace(&[], &[1, 2, 3]);
    }

    #[test]
    fn version_bumps_on_every_replace() {
        let reg = SharedMachineRegistry::new(2);
        let v0 = reg.version();
        reg.replace(&[], &[1, 0]);
        let v1 = reg.version();
        assert!(v1 > v0);
        reg.replace(&[1, 0], &[0, 1]);
        assert!(reg.version() > v1);
    }
}

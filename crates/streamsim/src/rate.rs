//! Input-rate profiles for the external producer.

use serde::{Deserialize, Serialize};

/// The producer's record rate as a function of simulation time.
///
/// Profiles cover the paper's experiment shapes: a constant rate
/// (elasticity tests), a staircase (CASE 1's 100k→300k ramp), and
/// arbitrary piecewise-constant segments (rate-change experiments for the
/// transfer-learning evaluation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateProfile {
    /// A fixed rate.
    Constant(f64),
    /// `initial + floor(t / period) · step`, capped at `max`.
    Staircase {
        /// Rate during the first period.
        initial: f64,
        /// Increment applied at each period boundary.
        step: f64,
        /// Seconds between increments.
        period: f64,
        /// Upper bound on the rate.
        max: f64,
    },
    /// Explicit `(start_time, rate)` change-points; the rate holds from a
    /// change-point until the next. Must be sorted by time.
    Piecewise(Vec<(f64, f64)>),
}

impl RateProfile {
    /// A constant-rate profile.
    pub fn constant(rate: f64) -> Self {
        RateProfile::Constant(rate)
    }

    /// CASE 1's staircase: starts at `initial`, increases by `step` every
    /// `period` seconds up to `max`.
    pub fn staircase(initial: f64, step: f64, period: f64, max: f64) -> Self {
        RateProfile::Staircase {
            initial,
            step,
            period,
            max,
        }
    }

    /// Piecewise-constant from sorted `(start_time, rate)` change-points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or not sorted by time.
    pub fn piecewise(points: Vec<(f64, f64)>) -> Self {
        assert!(
            !points.is_empty(),
            "piecewise: need at least one change-point"
        );
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "piecewise: change-points must be sorted by time"
        );
        RateProfile::Piecewise(points)
    }

    /// The rate at simulation time `t` (records/s); never negative.
    pub fn rate_at(&self, t: f64) -> f64 {
        let r = match self {
            RateProfile::Constant(r) => *r,
            RateProfile::Staircase {
                initial,
                step,
                period,
                max,
            } => {
                let steps = if *period > 0.0 {
                    (t / period).floor()
                } else {
                    0.0
                };
                (initial + steps * step).min(*max)
            }
            RateProfile::Piecewise(points) => {
                // Last change-point at or before t; before the first one,
                // the first rate applies.
                let mut rate = points[0].1;
                for &(start, r) in points {
                    if start <= t {
                        rate = r;
                    } else {
                        break;
                    }
                }
                rate
            }
        };
        r.max(0.0)
    }

    /// The next time strictly after `t` at which the profile *may* change
    /// value, or `None` if the rate is constant from `t` onward. The
    /// returned instant is conservative: it is always safe to re-evaluate
    /// [`rate_at`] there even if the value happens to be unchanged, but a
    /// `None` guarantees `rate_at` is constant on `(t, ∞)`.
    pub fn next_change_after(&self, t: f64) -> Option<f64> {
        match self {
            RateProfile::Constant(_) => None,
            RateProfile::Staircase {
                initial,
                step,
                period,
                max,
            } => {
                if *period <= 0.0 || *step == 0.0 {
                    return None;
                }
                let steps = (t / period).floor().max(0.0);
                let raw = initial + steps * step;
                // Saturated: capped at max (rising) or clamped at zero
                // (falling) — no further boundary changes the rate.
                if (*step > 0.0 && raw >= *max) || (*step < 0.0 && raw <= 0.0) {
                    return None;
                }
                let mut boundary = (steps + 1.0) * period;
                if boundary <= t {
                    boundary = (steps + 2.0) * period;
                }
                Some(boundary)
            }
            RateProfile::Piecewise(points) => {
                let idx = points.partition_point(|&(start, _)| start <= t);
                points.get(idx).map(|&(start, _)| start)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let p = RateProfile::constant(5.0);
        assert_eq!(p.rate_at(0.0), 5.0);
        assert_eq!(p.rate_at(1e6), 5.0);
    }

    #[test]
    fn staircase_steps_and_caps() {
        // Paper CASE 1: 100k start, +50k every 600 s, capped at 300k.
        let p = RateProfile::staircase(100_000.0, 50_000.0, 600.0, 300_000.0);
        assert_eq!(p.rate_at(0.0), 100_000.0);
        assert_eq!(p.rate_at(599.9), 100_000.0);
        assert_eq!(p.rate_at(600.0), 150_000.0);
        assert_eq!(p.rate_at(1800.0), 250_000.0);
        assert_eq!(p.rate_at(2400.0), 300_000.0);
        assert_eq!(p.rate_at(9999.0), 300_000.0);
    }

    #[test]
    fn piecewise_holds_between_changepoints() {
        let p = RateProfile::piecewise(vec![(0.0, 10.0), (100.0, 20.0), (200.0, 5.0)]);
        assert_eq!(p.rate_at(0.0), 10.0);
        assert_eq!(p.rate_at(99.9), 10.0);
        assert_eq!(p.rate_at(100.0), 20.0);
        assert_eq!(p.rate_at(250.0), 5.0);
    }

    #[test]
    fn piecewise_before_first_point_uses_first_rate() {
        let p = RateProfile::piecewise(vec![(50.0, 7.0)]);
        assert_eq!(p.rate_at(0.0), 7.0);
    }

    #[test]
    fn never_negative() {
        let p = RateProfile::constant(-3.0);
        assert_eq!(p.rate_at(0.0), 0.0);
        let s = RateProfile::staircase(10.0, -20.0, 1.0, 100.0);
        assert_eq!(s.rate_at(5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn piecewise_rejects_unsorted() {
        let _ = RateProfile::piecewise(vec![(10.0, 1.0), (5.0, 2.0)]);
    }

    #[test]
    fn constant_never_changes() {
        assert_eq!(RateProfile::constant(5.0).next_change_after(0.0), None);
    }

    #[test]
    fn staircase_next_change_hits_period_boundaries() {
        let p = RateProfile::staircase(100_000.0, 50_000.0, 600.0, 300_000.0);
        assert_eq!(p.next_change_after(0.0), Some(600.0));
        assert_eq!(p.next_change_after(599.9), Some(600.0));
        // Exactly on a boundary: the *next* one.
        assert_eq!(p.next_change_after(600.0), Some(1200.0));
        // Saturated at max: constant from here on.
        assert_eq!(p.next_change_after(2400.0), None);
        assert_eq!(p.next_change_after(9999.0), None);
    }

    #[test]
    fn staircase_flat_step_never_changes() {
        let p = RateProfile::staircase(100.0, 0.0, 10.0, 200.0);
        assert_eq!(p.next_change_after(0.0), None);
    }

    #[test]
    fn falling_staircase_stops_changing_at_zero() {
        let p = RateProfile::staircase(10.0, -20.0, 1.0, 100.0);
        assert_eq!(p.next_change_after(0.0), Some(1.0));
        assert_eq!(p.next_change_after(5.0), None);
    }

    #[test]
    fn piecewise_next_change_is_next_point() {
        let p = RateProfile::piecewise(vec![(0.0, 10.0), (100.0, 20.0), (200.0, 5.0)]);
        assert_eq!(p.next_change_after(0.0), Some(100.0));
        assert_eq!(p.next_change_after(100.0), Some(200.0));
        assert_eq!(p.next_change_after(150.0), Some(200.0));
        assert_eq!(p.next_change_after(200.0), None);
    }

    #[test]
    fn next_change_is_consistent_with_rate_at() {
        // Between t and the reported change-point, the rate is constant.
        let profiles = vec![
            RateProfile::staircase(100.0, 25.0, 7.5, 200.0),
            RateProfile::piecewise(vec![(0.0, 10.0), (33.0, 20.0), (80.0, 5.0)]),
        ];
        for p in &profiles {
            let mut t = 0.0;
            while t < 120.0 {
                match p.next_change_after(t) {
                    Some(next) => {
                        assert!(next > t, "{next} must be after {t}");
                        let mid = t + (next - t) * 0.5;
                        assert_eq!(p.rate_at(t).to_bits(), p.rate_at(mid).to_bits());
                    }
                    None => {
                        assert_eq!(p.rate_at(t).to_bits(), p.rate_at(t + 1e6).to_bits());
                    }
                }
                t += 1.3;
            }
        }
    }
}

/// Synthetic rate-profile generators for long-horizon experiments — the
/// paper's premise is data that "arrives at a fast, and time-varying
/// rate", and these produce the standard shapes as piecewise-constant
/// profiles (so the engine needs no new machinery).
pub mod generators {
    use super::RateProfile;

    /// A diurnal (sinusoidal) pattern: `base + amplitude·sin(2πt/period)`,
    /// sampled every `step_secs` into a piecewise-constant profile over
    /// one full period (the engine holds the last rate beyond it; pass a
    /// longer `duration` via repeated periods if needed).
    ///
    /// # Panics
    ///
    /// Panics if amplitude exceeds base (rates would go negative), or if
    /// period/step are not positive.
    pub fn diurnal(base: f64, amplitude: f64, period: f64, step_secs: f64) -> RateProfile {
        assert!(base > 0.0 && amplitude >= 0.0, "rates must be positive");
        assert!(amplitude <= base, "amplitude must not exceed base");
        assert!(
            period > 0.0 && step_secs > 0.0,
            "period/step must be positive"
        );
        let steps = (period / step_secs).ceil() as usize;
        let points = (0..steps)
            .map(|i| {
                let t = i as f64 * step_secs;
                let rate = base + amplitude * (2.0 * std::f64::consts::PI * t / period).sin();
                (t, rate)
            })
            .collect();
        RateProfile::piecewise(points)
    }

    /// A bursty pattern: `base` rate with bursts to `burst_rate` of length
    /// `burst_len` every `burst_every` seconds, for `count` bursts.
    ///
    /// # Panics
    ///
    /// Panics on non-positive timing parameters or bursts that overlap
    /// (`burst_len >= burst_every`).
    pub fn bursty(
        base: f64,
        burst_rate: f64,
        burst_every: f64,
        burst_len: f64,
        count: usize,
    ) -> RateProfile {
        assert!(
            burst_every > 0.0 && burst_len > 0.0,
            "timings must be positive"
        );
        assert!(burst_len < burst_every, "bursts must not overlap");
        let mut points = vec![(0.0, base)];
        for i in 0..count {
            let start = (i + 1) as f64 * burst_every;
            points.push((start, burst_rate));
            points.push((start + burst_len, base));
        }
        RateProfile::piecewise(points)
    }

    /// A flash-crowd event: `base` rate until `at`, a linear ramp to
    /// `peak` over `ramp_secs`, a plateau of `hold_secs`, then a linear
    /// decay back to `base` over `decay_secs`. Ramps are sampled every
    /// `step_secs` into piecewise-constant segments, so every rate change
    /// is an explicit change-point the event engine's wake-up hints cover
    /// (`RateProfile::next_change_after` walks exactly these points — the
    /// fast-forward guard in the event-driven engine never skips across
    /// one; see the `proptest_rate_parity` suite).
    ///
    /// # Panics
    ///
    /// Panics if `base`/`peak` are not positive, `peak < base`, any
    /// duration is negative, or `step_secs` is not positive.
    pub fn flash_crowd(
        base: f64,
        peak: f64,
        at: f64,
        ramp_secs: f64,
        hold_secs: f64,
        decay_secs: f64,
        step_secs: f64,
    ) -> RateProfile {
        assert!(base > 0.0 && peak > 0.0, "rates must be positive");
        assert!(peak >= base, "peak must be at least base");
        assert!(
            at >= 0.0 && ramp_secs >= 0.0 && hold_secs >= 0.0 && decay_secs >= 0.0,
            "durations must be non-negative"
        );
        assert!(step_secs > 0.0, "step must be positive");
        let mut points = vec![(0.0, base)];
        let ramp = |points: &mut Vec<(f64, f64)>, start: f64, dur: f64, from: f64, to: f64| {
            if dur <= 0.0 {
                return;
            }
            let n = (dur / step_secs).ceil().max(1.0) as usize;
            for i in 0..n {
                let offset = i as f64 * step_secs;
                points.push((start + offset, from + (to - from) * (offset / dur)));
            }
        };
        ramp(&mut points, at, ramp_secs, base, peak);
        points.push((at + ramp_secs, peak));
        ramp(
            &mut points,
            at + ramp_secs + hold_secs,
            decay_secs,
            peak,
            base,
        );
        points.push((at + ramp_secs + hold_secs + decay_secs, base));
        RateProfile::piecewise(points)
    }

    /// A bounded random walk: every `interval` seconds the rate moves by
    /// a uniform step in `[-max_step, +max_step]`, clamped to
    /// `[min, max]`. Deterministic given the seed.
    ///
    /// # Panics
    ///
    /// Panics on invalid bounds or non-positive interval/duration.
    pub fn random_walk(
        seed: u64,
        start: f64,
        max_step: f64,
        interval: f64,
        duration: f64,
        min: f64,
        max: f64,
    ) -> RateProfile {
        assert!(min > 0.0 && min <= start && start <= max, "bad bounds");
        assert!(
            interval > 0.0 && duration > 0.0,
            "interval/duration must be positive"
        );
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rate = start;
        let mut t = 0.0;
        let mut points = Vec::new();
        while t < duration {
            points.push((t, rate));
            rate = (rate + rng.gen_range(-max_step..=max_step)).clamp(min, max);
            t += interval;
        }
        RateProfile::piecewise(points)
    }
}

#[cfg(test)]
mod generator_tests {
    use super::generators::*;
    use super::RateProfile;

    #[test]
    fn diurnal_oscillates_around_base() {
        let p = diurnal(10_000.0, 5_000.0, 86_400.0, 600.0);
        // Peak near t = period/4, trough near 3·period/4.
        let peak = p.rate_at(21_600.0);
        let trough = p.rate_at(64_800.0);
        assert!(peak > 14_000.0, "peak {peak}");
        assert!(trough < 6_000.0, "trough {trough}");
        assert!((p.rate_at(0.0) - 10_000.0).abs() < 1_000.0);
        // Never negative by construction.
        let mut t = 0.0;
        while t < 86_400.0 {
            assert!(p.rate_at(t) >= 0.0);
            t += 3_600.0;
        }
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn diurnal_rejects_negative_rates() {
        let _ = diurnal(1_000.0, 2_000.0, 100.0, 10.0);
    }

    #[test]
    fn bursty_alternates() {
        let p = bursty(1_000.0, 9_000.0, 600.0, 60.0, 3);
        assert_eq!(p.rate_at(0.0), 1_000.0);
        assert_eq!(p.rate_at(630.0), 9_000.0); // inside burst 1
        assert_eq!(p.rate_at(700.0), 1_000.0); // after burst 1
        assert_eq!(p.rate_at(1_230.0), 9_000.0); // inside burst 2
        assert_eq!(p.rate_at(99_999.0), 1_000.0); // after the last burst
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn bursty_rejects_overlap() {
        let _ = bursty(1.0, 2.0, 10.0, 10.0, 1);
    }

    #[test]
    fn flash_crowd_ramps_holds_and_decays() {
        // 2k base, spike to 20k at t=600 over a 120 s ramp, hold 300 s,
        // decay over 240 s, sampled every 30 s.
        let p = flash_crowd(2_000.0, 20_000.0, 600.0, 120.0, 300.0, 240.0, 30.0);
        assert_eq!(p.rate_at(0.0), 2_000.0);
        assert_eq!(p.rate_at(599.9), 2_000.0);
        // Mid-ramp: strictly between base and peak.
        let mid = p.rate_at(660.0);
        assert!(mid > 2_000.0 && mid < 20_000.0, "mid-ramp {mid}");
        // Plateau.
        assert_eq!(p.rate_at(800.0), 20_000.0);
        assert_eq!(p.rate_at(1_019.9), 20_000.0);
        // Mid-decay, then back to base forever.
        let dec = p.rate_at(1_140.0);
        assert!(dec > 2_000.0 && dec < 20_000.0, "mid-decay {dec}");
        assert_eq!(p.rate_at(1_260.0), 2_000.0);
        assert_eq!(p.rate_at(1e9), 2_000.0);
    }

    #[test]
    fn flash_crowd_changepoints_cover_every_rate_change() {
        // The wake-up-hint soundness contract: between t and
        // next_change_after(t) the rate must be bitwise constant — the
        // event engine fast-forwards only across such windows.
        let p = flash_crowd(2_000.0, 20_000.0, 600.0, 120.0, 300.0, 240.0, 30.0);
        let mut t = 0.0;
        while t < 1_500.0 {
            match p.next_change_after(t) {
                Some(next) => {
                    assert!(next > t);
                    for frac in [0.25, 0.5, 0.99] {
                        let mid = t + (next - t) * frac;
                        assert_eq!(
                            p.rate_at(t).to_bits(),
                            p.rate_at(mid).to_bits(),
                            "rate changed inside ({t}, {next}) at {mid}"
                        );
                    }
                }
                None => {
                    assert_eq!(p.rate_at(t).to_bits(), p.rate_at(t + 1e9).to_bits());
                }
            }
            t += 7.3;
        }
    }

    #[test]
    fn flash_crowd_instant_spike_is_a_step() {
        // Zero ramp/decay: a square pulse.
        let p = flash_crowd(1_000.0, 8_000.0, 100.0, 0.0, 50.0, 0.0, 10.0);
        assert_eq!(p.rate_at(99.9), 1_000.0);
        assert_eq!(p.rate_at(100.0), 8_000.0);
        assert_eq!(p.rate_at(149.9), 8_000.0);
        assert_eq!(p.rate_at(150.0), 1_000.0);
    }

    #[test]
    #[should_panic(expected = "peak must be at least base")]
    fn flash_crowd_rejects_peak_below_base() {
        let _ = flash_crowd(5_000.0, 1_000.0, 0.0, 1.0, 1.0, 1.0, 1.0);
    }

    #[test]
    fn random_walk_is_bounded_and_deterministic() {
        let make = || random_walk(5, 10_000.0, 2_000.0, 300.0, 36_000.0, 5_000.0, 20_000.0);
        let a = make();
        let b = make();
        let mut t = 0.0;
        while t < 36_000.0 {
            let r = a.rate_at(t);
            assert!((5_000.0..=20_000.0).contains(&r), "{r} at {t}");
            assert_eq!(r.to_bits(), b.rate_at(t).to_bits());
            t += 150.0;
        }
        // It actually moves.
        let RateProfile::Piecewise(points) = &a else {
            panic!()
        };
        assert!(points.iter().any(|(_, r)| (r - 10_000.0).abs() > 500.0));
    }
}

//! The fluid/tick simulation engine.
//!
//! Each tick (default 100 ms) moves fluid record mass producer → Kafka →
//! source → operators → sink. Operators are processed in **forward
//! topological order** with same-tick consumption: an operator emits into
//! its successors' queues before the successors run, so sustained flow is
//! never artificially capped by buffer capacity. Backpressure emerges
//! from occupancy: a bottleneck operator's queue sits full, so upstream
//! emission each tick is limited to exactly what the bottleneck drained.
//!
//! Per-instance effective service rate:
//!
//! ```text
//! eff = base_rate × 1/(1 + σ·(p−1)) × interference(machine) × noise
//! ```
//!
//! capped so the operator aggregate respects any external limit (Redis).
//! Queues are bounded by a fixed per-operator buffer pool; overflow
//! backpressure ultimately parks records in Kafka as consumer lag.

use crate::cluster::{ClusterSpec, Placement};
use crate::kafka::Kafka;
use crate::metrics;
use crate::noise::GaussianNoise;
use crate::rate::RateProfile;
use crate::topology::JobGraph;
use autrascale_metricsdb::MetricStore;
use std::fmt;
use std::sync::Arc;

/// Configuration of a [`Simulation`].
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// The machines and interference model.
    pub cluster: ClusterSpec,
    /// The job topology.
    pub job: JobGraph,
    /// External producer rate profile.
    pub profile: RateProfile,
    /// Tick length in seconds.
    pub dt: f64,
    /// Seconds between metric emissions into the store.
    pub metric_interval: f64,
    /// Savepoint + restart downtime for a redeploy, seconds (paper §IV
    /// Execute: stop → savepoint → restart).
    pub restart_downtime: f64,
    /// Input-buffer pool per operator, records. Fixed per operator (not
    /// scaled by parallelism): Flink's floating network buffers form a
    /// shared pool, so an operator's maximum queue-induced wait
    /// `cap / capacity` SHRINKS as instances are added — which is exactly
    /// the paper's Observation 2.2 (latency falls with parallelism while
    /// under-provisioned).
    pub queue_capacity_per_operator: f64,
    /// Multiplicative noise std on per-instance service rates.
    pub rate_noise_std: f64,
    /// Kafka topic retention, seconds: unconsumed records older than this
    /// are dropped (0 disables). Real clusters always run with finite
    /// retention; it also bounds how long a deep backlog can poison the
    /// QoS measurements of later configurations.
    pub kafka_retention_secs: f64,
    /// Co-location: when set, this job publishes its per-machine instance
    /// counts into the shared registry and computes CPU interference from
    /// the TOTAL occupancy (its own + every co-located job's).
    pub shared_machines: Option<std::sync::Arc<crate::cluster::SharedMachineRegistry>>,
    /// RNG seed (runs are replayable).
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            cluster: ClusterSpec::paper_cluster(),
            job: JobGraph::linear(vec![
                crate::topology::OperatorSpec::source("Source", 100_000.0),
                crate::topology::OperatorSpec::sink("Sink", 100_000.0),
            ])
            .expect("default topology is valid"),
            profile: RateProfile::constant(10_000.0),
            dt: 0.1,
            metric_interval: 1.0,
            restart_downtime: 30.0,
            queue_capacity_per_operator: 20_000.0,
            rate_noise_std: 0.03,
            kafka_retention_secs: 600.0,
            shared_machines: None,
            seed: 0,
        }
    }
}

/// Errors from driving the simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A parallelism vector had the wrong number of operators.
    ArityMismatch { expected: usize, got: usize },
    /// A parallelism value was 0 or above the cluster's `max_parallelism`.
    ParallelismOutOfRange {
        operator: String,
        value: u32,
        max: u32,
    },
    /// The simulation was stepped before the first deploy.
    NotDeployed,
    /// Invalid configuration (non-positive dt or metric interval).
    BadConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ArityMismatch { expected, got } => {
                write!(f, "parallelism arity {got}, job has {expected} operators")
            }
            SimError::ParallelismOutOfRange {
                operator,
                value,
                max,
            } => {
                write!(f, "parallelism {value} for {operator:?} outside [1, {max}]")
            }
            SimError::NotDeployed => write!(f, "job has not been deployed"),
            SimError::BadConfig(msg) => write!(f, "bad config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Point-in-time view of one operator (averaged over the last metric
/// window).
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSnapshot {
    /// Operator name.
    pub name: String,
    /// Deployed parallelism.
    pub parallelism: u32,
    /// Records/s arriving from upstream (λ_i).
    pub input_rate: f64,
    /// Records/s emitted downstream (o_i).
    pub output_rate: f64,
    /// Records waiting in the operator's input buffers.
    pub queue: f64,
    /// Mean per-instance true processing rate (paper Eq. 2).
    pub true_rate_per_instance: f64,
    /// Mean per-instance observed processing rate.
    pub observed_rate_per_instance: f64,
    /// Aggregate capability (Σ per-instance true rates).
    pub capacity: f64,
}

/// Point-in-time view of the whole job (averaged over the last completed
/// metric window).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    /// Simulation time, seconds.
    pub time: f64,
    /// `false` during savepoint/restart downtime.
    pub running: bool,
    /// Deployed parallelism vector.
    pub parallelism: Vec<u32>,
    /// Records/s the sources pulled from Kafka — the paper's "throughput".
    pub source_consumption_rate: f64,
    /// Records/s completed at the sinks (sink-record units).
    pub sink_rate: f64,
    /// External producer rate v₀.
    pub producer_rate: f64,
    /// Kafka consumer lag, records.
    pub kafka_lag: f64,
    /// Average in-job processing latency, ms.
    pub processing_latency_ms: f64,
    /// Event-time latency (Kafka pending + processing), ms; `None` while
    /// the job is stalled with lag (unbounded).
    pub event_time_latency_ms: Option<f64>,
    /// Per-operator views in topological order.
    pub per_operator: Vec<OperatorSnapshot>,
}

/// Per-metric-window accumulators.
#[derive(Debug, Clone)]
struct WindowAccum {
    start: f64,
    processed: Vec<f64>,
    busy_time: Vec<f64>,
    input: Vec<f64>,
    output: Vec<f64>,
    consumed_from_kafka: f64,
    produced_to_kafka: f64,
    sink_completed: f64,
    proc_latency_sum: f64,
    event_latency_sum: f64,
    event_latency_ticks: f64,
    ticks: f64,
    queue_sum: Vec<f64>,
    capacity_sum: Vec<f64>,
}

impl WindowAccum {
    fn new(n: usize, start: f64) -> Self {
        Self {
            start,
            processed: vec![0.0; n],
            busy_time: vec![0.0; n],
            input: vec![0.0; n],
            output: vec![0.0; n],
            consumed_from_kafka: 0.0,
            produced_to_kafka: 0.0,
            sink_completed: 0.0,
            proc_latency_sum: 0.0,
            event_latency_sum: 0.0,
            event_latency_ticks: 0.0,
            ticks: 0.0,
            queue_sum: vec![0.0; n],
            capacity_sum: vec![0.0; n],
        }
    }
}

/// A transient performance fault: one operator's service rate is
/// multiplied by `factor` until simulation time `until`.
#[derive(Debug, Clone, Copy)]
struct Slowdown {
    operator: usize,
    factor: f64,
    until: f64,
}

/// The simulated cluster + job. See the crate docs for the model.
pub struct Simulation {
    config: SimulationConfig,
    store: Arc<MetricStore>,
    kafka: Kafka,
    noise: GaussianNoise,
    time: f64,
    deployed: bool,
    parallelism: Vec<u32>,
    placement: Placement,
    /// Per-operator total queued records (instances are symmetric).
    queues: Vec<f64>,
    /// While `Some(t)`, the job is down until simulation time `t`.
    downtime_until: Option<f64>,
    accum: WindowAccum,
    last_snapshot: SimSnapshot,
    /// Number of deploys performed (the first is free, §V "initial
    /// parallelism"; later ones cost `restart_downtime`).
    deploy_count: u32,
    /// Active transient faults (pruned as they expire).
    slowdowns: Vec<Slowdown>,
}

impl Simulation {
    /// Builds a simulation; call [`deploy`](Self::deploy) before stepping.
    pub fn new(config: SimulationConfig) -> Result<Self, SimError> {
        if config.dt <= 0.0 {
            return Err(SimError::BadConfig("dt must be positive".into()));
        }
        if config.metric_interval < config.dt {
            return Err(SimError::BadConfig(
                "metric_interval must be at least dt".into(),
            ));
        }
        let n = config.job.len();
        let placement = Placement::spread(&config.cluster, &vec![0; n]);
        let snapshot = SimSnapshot {
            time: 0.0,
            running: false,
            parallelism: vec![0; n],
            source_consumption_rate: 0.0,
            sink_rate: 0.0,
            producer_rate: 0.0,
            kafka_lag: 0.0,
            processing_latency_ms: 0.0,
            event_time_latency_ms: Some(0.0),
            per_operator: Vec::new(),
        };
        Ok(Self {
            store: Arc::new(MetricStore::new()),
            kafka: Kafka::new(),
            noise: GaussianNoise::new(config.seed),
            time: 0.0,
            deployed: false,
            parallelism: vec![0; n],
            placement,
            queues: vec![0.0; n],
            downtime_until: None,
            accum: WindowAccum::new(n, 0.0),
            last_snapshot: snapshot,
            deploy_count: 0,
            slowdowns: Vec::new(),
            config,
        })
    }

    /// (Re)deploys the job with a new parallelism vector.
    ///
    /// The first deploy is the job submission and starts immediately;
    /// every later deploy stops the job, takes a savepoint (in-flight
    /// buffered records return to Kafka, since offsets are committed at
    /// checkpoints) and restarts after `restart_downtime` seconds.
    pub fn deploy(&mut self, parallelism: &[u32]) -> Result<(), SimError> {
        let n = self.config.job.len();
        if parallelism.len() != n {
            return Err(SimError::ArityMismatch {
                expected: n,
                got: parallelism.len(),
            });
        }
        let max = self.config.cluster.max_parallelism;
        for (op, &p) in self.config.job.operators().iter().zip(parallelism) {
            if p == 0 || p > max {
                return Err(SimError::ParallelismOutOfRange {
                    operator: op.name.clone(),
                    value: p,
                    max,
                });
            }
        }

        // In-flight records return to Kafka (re-read from committed offsets).
        let inflight: f64 = self.queues.iter().sum();
        if inflight > 0.0 {
            self.kafka
                .produce(inflight / self.config.dt, self.config.dt, self.time);
        }
        self.queues = vec![0.0; n];
        self.parallelism = parallelism.to_vec();
        let old_counts = self.placement.instances_on().to_vec();
        self.placement = Placement::spread(&self.config.cluster, parallelism);
        if let Some(registry) = &self.config.shared_machines {
            registry.replace(&old_counts, self.placement.instances_on());
        }
        if self.deployed {
            self.downtime_until = Some(self.time + self.config.restart_downtime);
        }
        self.deployed = true;
        self.deploy_count += 1;
        Ok(())
    }

    /// Advances one tick.
    pub fn step(&mut self) -> Result<(), SimError> {
        if !self.deployed {
            return Err(SimError::NotDeployed);
        }
        let dt = self.config.dt;
        let n = self.config.job.len();

        // Producer always runs; retention expires stale records.
        let producer_rate = self.config.profile.rate_at(self.time);
        self.kafka.produce(producer_rate, dt, self.time);
        self.kafka
            .expire(self.time, self.config.kafka_retention_secs);
        self.accum.produced_to_kafka += producer_rate * dt;

        let in_downtime = match self.downtime_until {
            Some(t) if self.time < t => true,
            Some(_) => {
                self.downtime_until = None;
                false
            }
            None => false,
        };

        if !in_downtime {
            self.process_tick(dt, n);
        } else {
            // Latency accounting still ticks: processing latency is
            // undefined (no records complete), event latency unbounded.
            self.accum.ticks += 1.0;
        }

        self.time += dt;

        // Emit at metric boundaries.
        if self.time - self.accum.start >= self.config.metric_interval - 1e-9 {
            self.emit_window(!in_downtime);
        }
        Ok(())
    }

    /// Runs for `secs` of simulation time.
    pub fn run_for(&mut self, secs: f64) {
        let steps = (secs / self.config.dt).round() as u64;
        for _ in 0..steps {
            self.step()
                .expect("simulation must be deployed before run_for");
        }
    }

    fn process_tick(&mut self, dt: f64, n: usize) {
        let job = &self.config.job;
        let cluster = &self.config.cluster;
        // Interference sees the TOTAL machine occupancy: co-located jobs
        // contribute through the shared registry.
        let instances_on = match &self.config.shared_machines {
            Some(registry) => registry.snapshot(),
            None => self.placement.instances_on().to_vec(),
        };

        // Prune expired faults, then compute per-operator aggregate
        // capacity and mean per-instance rate.
        let now = self.time;
        self.slowdowns.retain(|f| f.until > now);
        let mut capacity = vec![0.0; n];
        #[allow(clippy::needless_range_loop)] // index i spans 4 parallel vecs
        for i in 0..n {
            let op = &job.operators()[i];
            let p = self.parallelism[i];
            let sync = 1.0 / (1.0 + op.sync_coeff * (p.saturating_sub(1)) as f64);
            let fault: f64 = self
                .slowdowns
                .iter()
                .filter(|f| f.operator == i)
                .map(|f| f.factor)
                .product();
            let mut total = 0.0;
            for inst in 0..p as usize {
                let machine = self.placement.machine(i, inst);
                let interference = cluster.interference_factor(machine, &instances_on);
                let noise = self.noise.factor(self.config.rate_noise_std);
                total += op.base_rate * sync * interference * noise * fault;
            }
            if let Some(limit) = op.external_limit {
                total = total.min(limit * fault);
            }
            capacity[i] = total;
        }

        // Queue capacities.
        let queue_cap: Vec<f64> = vec![self.config.queue_capacity_per_operator; n];

        // Forward topological order with same-tick consumption: operator
        // `i` emits into its successors' queues before those successors
        // process, so a record can traverse the whole pipeline within one
        // tick and sustained flow is not capped by queue capacity.
        // Backpressure still works: a bottleneck's queue stays full, so
        // its free space each tick equals exactly what it drained.
        let mut consumed_this_tick = 0.0;
        for i in 0..n {
            let op = &job.operators()[i];
            let successors = job.successors(i);

            // How much output the successors can absorb (in units of THIS
            // operator's output records): current free space plus what the
            // successor will drain this tick. A successor that ends up
            // blocked by ITS downstream may overshoot capacity by at most
            // one tick's worth — tolerated (no records are dropped) and
            // corrected next tick when its free space reads zero.
            let out_allowance = if successors.is_empty() {
                f64::INFINITY
            } else {
                successors
                    .iter()
                    .map(|&s| (queue_cap[s] - self.queues[s] + capacity[s] * dt).max(0.0))
                    .fold(f64::INFINITY, f64::min)
                    / op.selectivity
            };

            let can_process = capacity[i] * dt;
            let processed = if op.is_source() {
                let want = can_process.min(out_allowance);
                let got = self.kafka.consume(want, dt);
                consumed_this_tick += got;
                got
            } else {
                let avail = self.queues[i];
                let processed = avail.min(can_process).min(out_allowance);
                self.queues[i] -= processed;
                processed
            };

            for &s in &successors {
                let emitted = processed * op.selectivity;
                self.queues[s] += emitted;
                self.accum.input[s] += emitted;
            }
            if op.is_sink() || successors.is_empty() {
                self.accum.sink_completed += processed;
            }

            self.accum.processed[i] += processed;
            // Busy time: the fraction of the tick the instances spent
            // actually processing (Eq. 2's T_u), aggregated over instances.
            if capacity[i] > 0.0 {
                self.accum.busy_time[i] += processed / capacity[i] * self.parallelism[i] as f64;
            }
            self.accum.output[i] += processed * op.selectivity;
            self.accum.queue_sum[i] += self.queues[i];
            self.accum.capacity_sum[i] += capacity[i];
        }
        self.accum.consumed_from_kafka += consumed_this_tick;
        if let Some(src) = job.sources().first() {
            self.accum.input[*src] += consumed_this_tick;
        }

        // Latency estimate for this tick.
        let mut proc_ms = 0.0;
        #[allow(clippy::needless_range_loop)] // index i spans parallel vecs
        for i in 0..n {
            let op = &job.operators()[i];
            let p = self.parallelism[i] as f64;
            let wait_ms = if capacity[i] > 1e-9 {
                self.queues[i] / capacity[i] * 1000.0
            } else {
                0.0
            };
            proc_ms += wait_ms
                + op.base_latency_ms
                + op.window_delay_ms()
                + op.comm_cost_ms * (p - 1.0).max(0.0);
        }
        self.accum.proc_latency_sum += proc_ms;
        self.accum.ticks += 1.0;

        // Event-time latency: pending time in Kafka + processing latency.
        let consumption_rate = consumed_this_tick / dt;
        if consumption_rate > 1e-9 || self.kafka.lag() <= 1e-9 {
            let pending_ms = if consumption_rate > 1e-9 {
                self.kafka.lag() / consumption_rate * 1000.0
            } else {
                0.0
            };
            self.accum.event_latency_sum += pending_ms + proc_ms;
            self.accum.event_latency_ticks += 1.0;
        }
    }

    /// Emits the accumulated window into the store and refreshes
    /// [`snapshot`](Self::snapshot).
    fn emit_window(&mut self, running: bool) {
        let n = self.config.job.len();
        let window = (self.time - self.accum.start).max(self.config.dt);
        let t = self.time;
        let store = &self.store;

        let mut per_operator = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // index i spans several accumulators
        for i in 0..n {
            let op = &self.config.job.operators()[i];
            let p = self.parallelism[i].max(1);
            let processed = self.accum.processed[i];
            let busy = self.accum.busy_time[i];
            let ticks = self.accum.ticks.max(1.0);

            // Paper Eq. 2: v = R / T_u, per instance (instances symmetric).
            let true_rate_inst = if busy > 1e-9 {
                processed / busy
            } else {
                // Fully idle: capability is the average available capacity.
                self.accum.capacity_sum[i] / ticks / p as f64
            };
            let observed_rate_inst = processed / window / p as f64;
            let input_rate = self.accum.input[i] / window;
            let output_rate = self.accum.output[i] / window;
            let queue = self.accum.queue_sum[i] / ticks;
            let op_capacity = self.accum.capacity_sum[i] / ticks;

            for inst in 0..p as usize {
                metrics::emit(
                    store,
                    &metrics::instance_key(metrics::TRUE_PROCESSING_RATE, &op.name, inst),
                    t,
                    true_rate_inst,
                );
                metrics::emit(
                    store,
                    &metrics::instance_key(metrics::OBSERVED_PROCESSING_RATE, &op.name, inst),
                    t,
                    observed_rate_inst,
                );
            }
            metrics::emit(
                store,
                &metrics::operator_key(metrics::OPERATOR_INPUT_RATE, &op.name),
                t,
                input_rate,
            );
            metrics::emit(
                store,
                &metrics::operator_key(metrics::OPERATOR_OUTPUT_RATE, &op.name),
                t,
                output_rate,
            );
            metrics::emit(
                store,
                &metrics::operator_key(metrics::OPERATOR_QUEUE_SIZE, &op.name),
                t,
                queue,
            );

            per_operator.push(OperatorSnapshot {
                name: op.name.clone(),
                parallelism: self.parallelism[i],
                input_rate,
                output_rate,
                queue,
                true_rate_per_instance: true_rate_inst,
                observed_rate_per_instance: observed_rate_inst,
                capacity: op_capacity,
            });
        }

        let source_rate = self.accum.consumed_from_kafka / window;
        let sink_rate = self.accum.sink_completed / window;
        let producer_rate = self.accum.produced_to_kafka / window;
        let proc_latency = if self.accum.ticks > 0.0 && running {
            self.accum.proc_latency_sum / self.accum.ticks.max(1.0)
        } else {
            0.0
        };
        let event_latency = if self.accum.event_latency_ticks > 0.0 {
            Some(self.accum.event_latency_sum / self.accum.event_latency_ticks)
        } else {
            None
        };

        metrics::emit(
            store,
            &metrics::job_key(metrics::JOB_THROUGHPUT),
            t,
            source_rate,
        );
        metrics::emit(store, &metrics::job_key(metrics::SINK_RATE), t, sink_rate);
        metrics::emit(
            store,
            &metrics::job_key(metrics::PRODUCER_RATE),
            t,
            producer_rate,
        );
        metrics::emit(
            store,
            &metrics::job_key(metrics::KAFKA_LAG),
            t,
            self.kafka.lag(),
        );
        metrics::emit(
            store,
            &metrics::job_key(metrics::PROCESSING_LATENCY_MS),
            t,
            proc_latency,
        );
        if let Some(e) = event_latency {
            metrics::emit(
                store,
                &metrics::job_key(metrics::EVENT_TIME_LATENCY_MS),
                t,
                e,
            );
        }
        metrics::emit(
            store,
            &metrics::job_key(metrics::JOB_RUNNING),
            t,
            if running { 1.0 } else { 0.0 },
        );

        self.last_snapshot = SimSnapshot {
            time: t,
            running,
            parallelism: self.parallelism.clone(),
            source_consumption_rate: source_rate,
            sink_rate,
            producer_rate,
            kafka_lag: self.kafka.lag(),
            processing_latency_ms: proc_latency,
            event_time_latency_ms: event_latency,
            per_operator,
        };
        self.accum = WindowAccum::new(n, t);
    }

    /// The most recently completed metric window's view of the job.
    pub fn snapshot(&self) -> SimSnapshot {
        self.last_snapshot.clone()
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.time
    }

    /// The metric store backing this simulation.
    pub fn store(&self) -> Arc<MetricStore> {
        Arc::clone(&self.store)
    }

    /// Deployed parallelism vector.
    pub fn parallelism(&self) -> &[u32] {
        &self.parallelism
    }

    /// The job topology.
    pub fn job(&self) -> &JobGraph {
        &self.config.job
    }

    /// The cluster spec.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.config.cluster
    }

    /// Current external input rate v₀.
    pub fn input_rate(&self) -> f64 {
        self.config.profile.rate_at(self.time)
    }

    /// Replaces the producer rate profile (rate-change experiments).
    pub fn set_profile(&mut self, profile: RateProfile) {
        self.config.profile = profile;
    }

    /// Current Kafka consumer lag, records.
    pub fn kafka_lag(&self) -> f64 {
        self.kafka.lag()
    }

    /// Total records dropped by Kafka retention so far.
    pub fn kafka_expired(&self) -> f64 {
        self.kafka.expired_total()
    }

    /// `true` while the job is in savepoint/restart downtime.
    pub fn in_downtime(&self) -> bool {
        matches!(self.downtime_until, Some(t) if self.time < t)
    }

    /// Number of deploys so far (including the initial submission).
    pub fn deploy_count(&self) -> u32 {
        self.deploy_count
    }

    /// Injects a transient fault: operator `operator`'s service rate is
    /// multiplied by `factor` (< 1 slows it down) for `duration_secs`.
    /// Faults stack multiplicatively; restarts do not clear them (the
    /// slow disk / noisy neighbor is still there after a redeploy).
    pub fn inject_slowdown(
        &mut self,
        operator: usize,
        factor: f64,
        duration_secs: f64,
    ) -> Result<(), SimError> {
        if operator >= self.config.job.len() {
            return Err(SimError::BadConfig(format!(
                "operator index {operator} out of range"
            )));
        }
        if !(factor > 0.0 && factor.is_finite() && duration_secs.is_finite())
            || duration_secs <= 0.0
        {
            return Err(SimError::BadConfig(
                "slowdown needs a finite factor > 0 and positive duration".into(),
            ));
        }
        self.slowdowns.push(Slowdown {
            operator,
            factor,
            until: self.time + duration_secs,
        });
        Ok(())
    }

    /// Number of currently active transient faults.
    pub fn active_faults(&self) -> usize {
        self.slowdowns.len()
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // A co-located job releases its machine occupancy when it goes
        // away, so neighbors stop paying interference for it.
        if let Some(registry) = &self.config.shared_machines {
            registry.replace(self.placement.instances_on(), &[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::OperatorSpec;

    fn small_job() -> JobGraph {
        JobGraph::linear(vec![
            OperatorSpec::source("Source", 50_000.0),
            OperatorSpec::transform("Map", 30_000.0, 1.0),
            OperatorSpec::sink("Sink", 60_000.0),
        ])
        .unwrap()
    }

    fn config(rate: f64) -> SimulationConfig {
        SimulationConfig {
            cluster: ClusterSpec::paper_cluster(),
            job: small_job(),
            profile: RateProfile::constant(rate),
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn step_before_deploy_errors() {
        let mut sim = Simulation::new(config(1000.0)).unwrap();
        assert_eq!(sim.step(), Err(SimError::NotDeployed));
    }

    #[test]
    fn deploy_validates_arity_and_range() {
        let mut sim = Simulation::new(config(1000.0)).unwrap();
        assert!(matches!(
            sim.deploy(&[1, 1]),
            Err(SimError::ArityMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            sim.deploy(&[1, 0, 1]),
            Err(SimError::ParallelismOutOfRange { .. })
        ));
        assert!(matches!(
            sim.deploy(&[1, 99, 1]),
            Err(SimError::ParallelismOutOfRange { .. })
        ));
        assert!(sim.deploy(&[1, 1, 1]).is_ok());
    }

    #[test]
    fn underprovisioned_job_accumulates_lag() {
        // Input 40k but Map can only do ~30k with p=1.
        let mut sim = Simulation::new(config(40_000.0)).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        sim.run_for(120.0);
        let snap = sim.snapshot();
        assert!(snap.kafka_lag > 100_000.0, "lag {}", snap.kafka_lag);
        // Throughput pinned near Map's capacity, not the input rate.
        assert!(
            snap.source_consumption_rate < 35_000.0,
            "consumption {}",
            snap.source_consumption_rate
        );
        assert!(snap.source_consumption_rate > 25_000.0);
    }

    #[test]
    fn provisioned_job_keeps_up() {
        let mut sim = Simulation::new(config(40_000.0)).unwrap();
        sim.deploy(&[1, 3, 1]).unwrap();
        sim.run_for(120.0);
        let snap = sim.snapshot();
        assert!(snap.kafka_lag < 10_000.0, "lag {}", snap.kafka_lag);
        assert!(
            (snap.source_consumption_rate - 40_000.0).abs() < 3_000.0,
            "consumption {}",
            snap.source_consumption_rate
        );
    }

    #[test]
    fn throughput_scales_sublinearly_with_parallelism() {
        // Saturating input: measure capacity at p = 1, 2, 4.
        let mut rates = Vec::new();
        for p in [1u32, 2, 4] {
            let mut sim = Simulation::new(config(200_000.0)).unwrap();
            sim.deploy(&[2, p, 2]).unwrap();
            sim.run_for(120.0);
            rates.push(sim.snapshot().source_consumption_rate);
        }
        assert!(rates[1] > rates[0] * 1.2, "{rates:?}");
        assert!(rates[2] > rates[1], "{rates:?}");
        // Sub-linear: doubling p must not double throughput.
        assert!(rates[1] < rates[0] * 2.0, "{rates:?}");
        assert!(rates[2] < rates[1] * 2.0, "{rates:?}");
    }

    #[test]
    fn true_rate_exceeds_observed_when_underutilized() {
        // Input far below capacity: operators are mostly idle, so the
        // observed rate is low but the true rate reflects capability.
        let mut sim = Simulation::new(config(5_000.0)).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        sim.run_for(60.0);
        let snap = sim.snapshot();
        let map = &snap.per_operator[1];
        assert!(
            map.true_rate_per_instance > map.observed_rate_per_instance * 2.0,
            "true {} observed {}",
            map.true_rate_per_instance,
            map.observed_rate_per_instance
        );
        // True rate should approximate the base capability (30k ± noise &
        // contention).
        assert!(map.true_rate_per_instance > 20_000.0);
    }

    #[test]
    fn redeploy_causes_downtime_and_lag_spike() {
        let mut sim = Simulation::new(config(30_000.0)).unwrap();
        sim.deploy(&[1, 2, 1]).unwrap();
        sim.run_for(60.0);
        let lag_before = sim.snapshot().kafka_lag;
        sim.deploy(&[1, 3, 1]).unwrap();
        assert!(sim.in_downtime());
        sim.run_for(10.0); // inside the 30 s downtime window
        assert!(sim.in_downtime());
        let lag_during = sim.kafka_lag();
        assert!(
            lag_during > lag_before + 100_000.0,
            "{lag_during} vs {lag_before}"
        );
        sim.run_for(120.0);
        assert!(!sim.in_downtime());
        // Catches up eventually (3 Maps ≈ 80k capacity > 30k input).
        assert!(sim.kafka_lag() < lag_during);
    }

    #[test]
    fn first_deploy_is_immediate() {
        let mut sim = Simulation::new(config(1000.0)).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        assert!(!sim.in_downtime());
    }

    #[test]
    fn latency_grows_with_underprovisioning() {
        let mut under = Simulation::new(config(40_000.0)).unwrap();
        under.deploy(&[1, 1, 1]).unwrap();
        under.run_for(120.0);
        let mut ok = Simulation::new(config(40_000.0)).unwrap();
        ok.deploy(&[1, 3, 1]).unwrap();
        ok.run_for(120.0);
        let lat_under = under.snapshot().processing_latency_ms;
        let lat_ok = ok.snapshot().processing_latency_ms;
        assert!(lat_under > lat_ok, "{lat_under} !> {lat_ok}");
        // Event-time latency diverges much harder for the laggy job.
        let evt_under = under.snapshot().event_time_latency_ms.unwrap_or(f64::MAX);
        let evt_ok = ok.snapshot().event_time_latency_ms.unwrap();
        assert!(evt_under > 5.0 * evt_ok, "{evt_under} vs {evt_ok}");
    }

    #[test]
    fn excess_parallelism_raises_latency_via_comm_cost() {
        let measure = |p: u32| {
            let mut sim = Simulation::new(config(10_000.0)).unwrap();
            sim.deploy(&[1, p, 1]).unwrap();
            sim.run_for(60.0);
            sim.snapshot().processing_latency_ms
        };
        // Low rate: queues are empty either way, so comm cost dominates.
        assert!(measure(20) > measure(1));
    }

    #[test]
    fn external_limit_caps_throughput() {
        let mut job_ops = vec![
            OperatorSpec::source("Source", 50_000.0),
            OperatorSpec::transform("Map", 30_000.0, 1.0),
            OperatorSpec::sink("Sink", 60_000.0).with_external_limit(8_000.0),
        ];
        job_ops[1].base_rate = 50_000.0;
        let job = JobGraph::linear(job_ops).unwrap();
        let cfg = SimulationConfig {
            job,
            profile: RateProfile::constant(40_000.0),
            seed: 3,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.deploy(&[4, 4, 8]).unwrap();
        sim.run_for(120.0);
        let snap = sim.snapshot();
        // No matter the parallelism, sink limit gates the whole pipeline.
        assert!(
            snap.source_consumption_rate < 10_000.0,
            "{}",
            snap.source_consumption_rate
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulation::new(config(35_000.0)).unwrap();
            sim.deploy(&[1, 2, 1]).unwrap();
            sim.run_for(60.0);
            let s = sim.snapshot();
            (
                s.kafka_lag,
                s.source_consumption_rate,
                s.processing_latency_ms,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        assert_eq!(a.2.to_bits(), b.2.to_bits());
    }

    #[test]
    fn metrics_reach_the_store() {
        let mut sim = Simulation::new(config(20_000.0)).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        sim.run_for(30.0);
        let store = sim.store();
        let key = metrics::instance_key(metrics::TRUE_PROCESSING_RATE, "Map", 0);
        assert!(store.last(&key).is_some());
        let lag_key = metrics::job_key(metrics::KAFKA_LAG);
        assert!(store.last(&lag_key).is_some());
    }

    #[test]
    fn selectivity_multiplies_flow() {
        let job = JobGraph::linear(vec![
            OperatorSpec::source("Source", 50_000.0),
            OperatorSpec::transform("FlatMap", 40_000.0, 2.0),
            OperatorSpec::sink("Sink", 200_000.0),
        ])
        .unwrap();
        let cfg = SimulationConfig {
            job,
            profile: RateProfile::constant(10_000.0),
            seed: 5,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        sim.run_for(60.0);
        let snap = sim.snapshot();
        let flatmap = &snap.per_operator[1];
        // Output rate ≈ 2 × input rate.
        assert!(
            (flatmap.output_rate - 2.0 * flatmap.input_rate).abs() < 0.2 * flatmap.input_rate,
            "in {} out {}",
            flatmap.input_rate,
            flatmap.output_rate
        );
    }

    #[test]
    fn run_for_advances_clock() {
        let mut sim = Simulation::new(config(1000.0)).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        sim.run_for(12.5);
        assert!((sim.now() - 12.5).abs() < 0.2);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::topology::OperatorSpec;

    fn sim(rate: f64) -> Simulation {
        let job = JobGraph::linear(vec![
            OperatorSpec::source("Source", 40_000.0),
            OperatorSpec::transform("Map", 20_000.0, 1.0),
            OperatorSpec::sink("Sink", 40_000.0),
        ])
        .unwrap();
        Simulation::new(SimulationConfig {
            job,
            profile: RateProfile::constant(rate),
            seed: 77,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn slowdown_reduces_throughput_then_expires() {
        let mut s = sim(15_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        s.run_for(60.0);
        let healthy = s.snapshot().source_consumption_rate;
        assert!(healthy > 14_000.0, "{healthy}");

        // Map at 25% capacity for 120 s: 5k < 15k input.
        s.inject_slowdown(1, 0.25, 120.0).unwrap();
        s.run_for(60.0);
        let degraded = s.snapshot().source_consumption_rate;
        assert!(degraded < 7_000.0, "{degraded}");
        assert_eq!(s.active_faults(), 1);

        // After expiry the job recovers (and drains the fault's backlog).
        s.run_for(120.0);
        assert_eq!(s.active_faults(), 0);
        s.run_for(120.0);
        let recovered = s.snapshot().source_consumption_rate;
        assert!(recovered > 14_000.0, "{recovered}");
    }

    #[test]
    fn faults_stack_multiplicatively() {
        let mut s = sim(15_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        s.inject_slowdown(1, 0.5, 300.0).unwrap();
        s.inject_slowdown(1, 0.5, 300.0).unwrap();
        s.run_for(60.0);
        // 20k × 0.25 = 5k effective.
        let snap = s.snapshot();
        assert!(
            snap.source_consumption_rate < 7_000.0,
            "{}",
            snap.source_consumption_rate
        );
    }

    #[test]
    fn slowdown_survives_redeploy() {
        let mut s = sim(15_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        s.inject_slowdown(1, 0.25, 1_000.0).unwrap();
        s.deploy(&[1, 2, 1]).unwrap();
        assert_eq!(s.active_faults(), 1);
        s.run_for(120.0);
        // Two instances at 25% ≈ 10k < 15k: still degraded.
        assert!(s.snapshot().source_consumption_rate < 12_000.0);
    }

    #[test]
    fn invalid_injections_rejected() {
        let mut s = sim(1_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        assert!(s.inject_slowdown(9, 0.5, 10.0).is_err());
        assert!(s.inject_slowdown(1, 0.0, 10.0).is_err());
        assert!(s.inject_slowdown(1, -1.0, 10.0).is_err());
        assert!(s.inject_slowdown(1, 0.5, 0.0).is_err());
    }

    #[test]
    fn non_finite_slowdown_factor_rejected() {
        // An infinite factor used to pass the NaN-only check and register
        // a fault that "speeds up" the operator without bound.
        let mut s = sim(1_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        assert!(s.inject_slowdown(1, f64::INFINITY, 10.0).is_err());
        assert!(s.inject_slowdown(1, f64::NEG_INFINITY, 10.0).is_err());
        assert!(s.inject_slowdown(1, f64::NAN, 10.0).is_err());
        assert_eq!(s.active_faults(), 0);
    }
}

#[cfg(test)]
mod colocation_tests {
    use super::*;
    use crate::cluster::SharedMachineRegistry;
    use crate::topology::OperatorSpec;
    use std::sync::Arc;

    fn job() -> JobGraph {
        JobGraph::linear(vec![
            OperatorSpec::source("Source", 30_000.0),
            OperatorSpec::transform("Work", 10_000.0, 1.0),
            OperatorSpec::sink("Sink", 30_000.0),
        ])
        .unwrap()
    }

    fn colocated(registry: &Arc<SharedMachineRegistry>, rate: f64, seed: u64) -> Simulation {
        // A small 2-machine / 4-core cluster so neighbors bite quickly.
        let cluster = ClusterSpec::uniform(2, 4, 30);
        Simulation::new(SimulationConfig {
            cluster,
            job: job(),
            profile: RateProfile::constant(rate),
            shared_machines: Some(Arc::clone(registry)),
            seed,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn neighbor_occupancy_degrades_capacity() {
        let registry = Arc::new(SharedMachineRegistry::new(2));
        let mut job_a = colocated(&registry, 9_000.0, 1);
        job_a.deploy(&[1, 1, 1]).unwrap();
        job_a.run_for(60.0);
        let alone = job_a.snapshot().per_operator[1].true_rate_per_instance;

        // A fat neighbor floods both machines.
        let mut job_b = colocated(&registry, 1_000.0, 2);
        job_b.deploy(&[10, 10, 10]).unwrap();
        assert_eq!(registry.total_instances(), 33);
        job_a.run_for(60.0);
        let crowded = job_a.snapshot().per_operator[1].true_rate_per_instance;
        assert!(
            crowded < alone * 0.55,
            "neighbor should degrade capacity: alone {alone}, crowded {crowded}"
        );

        // Neighbor leaves: capacity recovers.
        drop(job_b);
        assert_eq!(registry.total_instances(), 3);
        job_a.run_for(60.0);
        let recovered = job_a.snapshot().per_operator[1].true_rate_per_instance;
        assert!(
            recovered > alone * 0.9,
            "alone {alone}, recovered {recovered}"
        );
    }

    #[test]
    fn rescale_updates_shared_counts_exactly() {
        let registry = Arc::new(SharedMachineRegistry::new(2));
        let mut sim = colocated(&registry, 1_000.0, 3);
        sim.deploy(&[1, 2, 1]).unwrap();
        assert_eq!(registry.total_instances(), 4);
        sim.deploy(&[2, 4, 2]).unwrap();
        assert_eq!(registry.total_instances(), 8);
        sim.deploy(&[1, 1, 1]).unwrap();
        assert_eq!(registry.total_instances(), 3);
        drop(sim);
        assert_eq!(registry.total_instances(), 0);
    }

    #[test]
    fn solo_job_with_registry_matches_without() {
        // One job alone in the registry behaves identically to the
        // unshared path (totals equal its own placement).
        let registry = Arc::new(SharedMachineRegistry::new(2));
        let mut shared = colocated(&registry, 9_000.0, 4);
        shared.deploy(&[1, 1, 1]).unwrap();
        shared.run_for(60.0);

        let cluster = ClusterSpec::uniform(2, 4, 30);
        let mut solo = Simulation::new(SimulationConfig {
            cluster,
            job: job(),
            profile: RateProfile::constant(9_000.0),
            seed: 4,
            ..Default::default()
        })
        .unwrap();
        solo.deploy(&[1, 1, 1]).unwrap();
        solo.run_for(60.0);

        let a = shared.snapshot();
        let b = solo.snapshot();
        assert_eq!(
            a.source_consumption_rate.to_bits(),
            b.source_consumption_rate.to_bits()
        );
        assert_eq!(
            a.processing_latency_ms.to_bits(),
            b.processing_latency_ms.to_bits()
        );
    }
}

//! The phased simulation engine.
//!
//! Each tick (default 100 ms) moves fluid record mass producer → Kafka →
//! source → operators → sink through four phases:
//!
//! 1. **Pre-tick** — producer appends to Kafka, retention expires old
//!    records, downtime is resolved, and per-operator capacity is
//!    recomputed *only when an epoch event made it stale* (deploy, fault
//!    injection/expiry, co-located registry change). Between epochs the
//!    capacity vector — including its noise draw — is reused, so a
//!    quiescent operator costs no RNG or interference work.
//! 2. **Transport** — source operators pull from Kafka (serially, in
//!    ascending index order, preserving FIFO lag attribution) and emit
//!    into their successors' queues.
//! 3. **Process** — non-source operators run in forward topological
//!    order with same-tick consumption: an operator emits into its
//!    successors' queues before the successors run, so sustained flow is
//!    never artificially capped by buffer capacity. Operators in
//!    different weakly-connected regions of the DAG never exchange
//!    records, so multi-region jobs tick their regions in parallel
//!    (rayon) and merge the per-region deltas in fixed region order —
//!    the merged result is bitwise identical to a serial pass.
//! 4. **Post-tick** — latency accounting, window accumulation, and
//!    metric emission at window boundaries (buffered through a
//!    [`MetricBatcher`] and flushed once per `run_for`/`step`).
//!
//! Per-instance effective service rate (unchanged from the tick model):
//!
//! ```text
//! eff = base_rate × 1/(1 + σ·(p−1)) × interference(machine) × noise
//! ```
//!
//! capped so the operator aggregate respects any external limit (Redis).
//! Queues are bounded by a fixed per-operator buffer pool; overflow
//! backpressure ultimately parks records in Kafka as consumer lag.
//!
//! # Event-driven fast-forward
//!
//! The default [`EngineKind::EventDriven`] engine additionally skips
//! whole metric windows when the job is **quiescent**: the previous
//! window was a bitwise fixed point (queues unchanged every tick, Kafka
//! drained with exactly-zero lag, constant producer rate, no capacity
//! epoch, no downtime) and an event heap of future wake-ups (fault
//! expiries, downtime ends, rate-profile breakpoints) confirms nothing
//! fires inside the next window. A skipped window replays the saved
//! accumulator sums, advances the clock by the same sequential `+= dt`
//! additions, and replays Kafka's steady totals — producing *bitwise*
//! the metrics, snapshot, and [`state hash`](Simulation::state_hash) the
//! tick-by-tick path would. [`EngineKind::Tick`] (the default under the
//! `tick-engine` feature) runs the identical phased core without
//! skipping, which is what makes cross-engine parity testable.

use crate::cluster::{ClusterSpec, Placement};
use crate::events::{EventKind, EventQueue};
use crate::hash::StateHasher;
use crate::kafka::Kafka;
use crate::metrics::{self, MetricBatcher};
use crate::noise::GaussianNoise;
use crate::rate::RateProfile;
use crate::topology::{Adjacency, JobGraph, OperatorSpec};
use autrascale_metricsdb::MetricStore;
use std::fmt;
use std::sync::Arc;

/// Which driving loop advances the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Phased core + window-level quiescence skipping (the default).
    EventDriven,
    /// Phased core visiting every tick (the pre-event behaviour; default
    /// when the `tick-engine` cargo feature is enabled).
    Tick,
}

// Not derivable: the default variant depends on the `tick-engine` feature.
#[allow(clippy::derivable_impls)]
impl Default for EngineKind {
    fn default() -> Self {
        #[cfg(feature = "tick-engine")]
        {
            EngineKind::Tick
        }
        #[cfg(not(feature = "tick-engine"))]
        {
            EngineKind::EventDriven
        }
    }
}

/// Configuration of a [`Simulation`].
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// The machines and interference model.
    pub cluster: ClusterSpec,
    /// The job topology.
    pub job: JobGraph,
    /// External producer rate profile.
    pub profile: RateProfile,
    /// Tick length in seconds.
    pub dt: f64,
    /// Seconds between metric emissions into the store.
    pub metric_interval: f64,
    /// Savepoint + restart downtime for a redeploy, seconds (paper §IV
    /// Execute: stop → savepoint → restart).
    pub restart_downtime: f64,
    /// Input-buffer pool per operator, records. Fixed per operator (not
    /// scaled by parallelism): Flink's floating network buffers form a
    /// shared pool, so an operator's maximum queue-induced wait
    /// `cap / capacity` SHRINKS as instances are added — which is exactly
    /// the paper's Observation 2.2 (latency falls with parallelism while
    /// under-provisioned).
    pub queue_capacity_per_operator: f64,
    /// Multiplicative noise std on per-instance service rates. Drawn
    /// once per capacity epoch (deploy/fault/registry change), not per
    /// tick, so a steady job's capability is constant between epochs.
    pub rate_noise_std: f64,
    /// Kafka topic retention, seconds: unconsumed records older than this
    /// are dropped (0 disables). Real clusters always run with finite
    /// retention; it also bounds how long a deep backlog can poison the
    /// QoS measurements of later configurations.
    pub kafka_retention_secs: f64,
    /// Co-location: when set, this job publishes its per-machine instance
    /// counts into the shared registry and computes CPU interference from
    /// the TOTAL occupancy (its own + every co-located job's).
    pub shared_machines: Option<std::sync::Arc<crate::cluster::SharedMachineRegistry>>,
    /// RNG seed (runs are replayable).
    pub seed: u64,
    /// Which driving loop to use; see [`EngineKind`].
    pub engine: EngineKind,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            cluster: ClusterSpec::paper_cluster(),
            job: JobGraph::linear(vec![
                crate::topology::OperatorSpec::source("Source", 100_000.0),
                crate::topology::OperatorSpec::sink("Sink", 100_000.0),
            ])
            .expect("default topology is valid"),
            profile: RateProfile::constant(10_000.0),
            dt: 0.1,
            metric_interval: 1.0,
            restart_downtime: 30.0,
            queue_capacity_per_operator: 20_000.0,
            rate_noise_std: 0.03,
            kafka_retention_secs: 600.0,
            shared_machines: None,
            seed: 0,
            engine: EngineKind::default(),
        }
    }
}

/// Errors from driving the simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A parallelism vector had the wrong number of operators.
    ArityMismatch { expected: usize, got: usize },
    /// A parallelism value was 0 or above the cluster's `max_parallelism`.
    ParallelismOutOfRange {
        operator: String,
        value: u32,
        max: u32,
    },
    /// The simulation was stepped before the first deploy.
    NotDeployed,
    /// Invalid configuration (non-positive dt or metric interval) or an
    /// invalid argument such as a non-finite `run_for` duration.
    BadConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ArityMismatch { expected, got } => {
                write!(f, "parallelism arity {got}, job has {expected} operators")
            }
            SimError::ParallelismOutOfRange {
                operator,
                value,
                max,
            } => {
                write!(f, "parallelism {value} for {operator:?} outside [1, {max}]")
            }
            SimError::NotDeployed => write!(f, "job has not been deployed"),
            SimError::BadConfig(msg) => write!(f, "bad config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Point-in-time view of one operator (averaged over the last metric
/// window).
#[derive(Debug, PartialEq)]
pub struct OperatorSnapshot {
    /// Operator name.
    pub name: String,
    /// Deployed parallelism.
    pub parallelism: u32,
    /// Records/s arriving from upstream (λ_i).
    pub input_rate: f64,
    /// Records/s emitted downstream (o_i).
    pub output_rate: f64,
    /// Records waiting in the operator's input buffers.
    pub queue: f64,
    /// Mean per-instance true processing rate (paper Eq. 2).
    pub true_rate_per_instance: f64,
    /// Mean per-instance observed processing rate.
    pub observed_rate_per_instance: f64,
    /// Aggregate capability (Σ per-instance true rates).
    pub capacity: f64,
}

impl OperatorSnapshot {
    fn empty() -> Self {
        Self {
            name: String::new(),
            parallelism: 0,
            input_rate: 0.0,
            output_rate: 0.0,
            queue: 0.0,
            true_rate_per_instance: 0.0,
            observed_rate_per_instance: 0.0,
            capacity: 0.0,
        }
    }
}

impl Clone for OperatorSnapshot {
    fn clone(&self) -> Self {
        Self {
            name: self.name.clone(),
            parallelism: self.parallelism,
            input_rate: self.input_rate,
            output_rate: self.output_rate,
            queue: self.queue,
            true_rate_per_instance: self.true_rate_per_instance,
            observed_rate_per_instance: self.observed_rate_per_instance,
            capacity: self.capacity,
        }
    }

    /// Reuses the destination's name buffer (allocation-free once warm).
    fn clone_from(&mut self, source: &Self) {
        self.name.clone_from(&source.name);
        self.parallelism = source.parallelism;
        self.input_rate = source.input_rate;
        self.output_rate = source.output_rate;
        self.queue = source.queue;
        self.true_rate_per_instance = source.true_rate_per_instance;
        self.observed_rate_per_instance = source.observed_rate_per_instance;
        self.capacity = source.capacity;
    }
}

/// Point-in-time view of the whole job (averaged over the last completed
/// metric window).
#[derive(Debug, PartialEq)]
pub struct SimSnapshot {
    /// Simulation time, seconds.
    pub time: f64,
    /// `false` during savepoint/restart downtime.
    pub running: bool,
    /// Deployed parallelism vector.
    pub parallelism: Vec<u32>,
    /// Records/s the sources pulled from Kafka — the paper's "throughput".
    pub source_consumption_rate: f64,
    /// Records/s completed at the sinks (sink-record units).
    pub sink_rate: f64,
    /// External producer rate v₀.
    pub producer_rate: f64,
    /// Kafka consumer lag, records.
    pub kafka_lag: f64,
    /// Average in-job processing latency, ms.
    pub processing_latency_ms: f64,
    /// Event-time latency (Kafka pending + processing), ms; `None` while
    /// the job is stalled with lag (unbounded).
    pub event_time_latency_ms: Option<f64>,
    /// Per-operator views in topological order.
    pub per_operator: Vec<OperatorSnapshot>,
    /// Deterministic fold of the live engine state at this window
    /// boundary (time, queues, capacities, Kafka counters, faults).
    /// Bitwise-equal state produces equal hashes, so two runs — or the
    /// event-driven and tick engines on one scenario — can be compared
    /// exactly. `0` before the first window completes.
    pub state_hash: u64,
}

impl Clone for SimSnapshot {
    fn clone(&self) -> Self {
        Self {
            time: self.time,
            running: self.running,
            parallelism: self.parallelism.clone(),
            source_consumption_rate: self.source_consumption_rate,
            sink_rate: self.sink_rate,
            producer_rate: self.producer_rate,
            kafka_lag: self.kafka_lag,
            processing_latency_ms: self.processing_latency_ms,
            event_time_latency_ms: self.event_time_latency_ms,
            per_operator: self.per_operator.clone(),
            state_hash: self.state_hash,
        }
    }

    /// Element-wise copy that reuses existing buffers; the hot path for
    /// [`Simulation::snapshot_into`].
    fn clone_from(&mut self, source: &Self) {
        self.time = source.time;
        self.running = source.running;
        self.parallelism.clone_from(&source.parallelism);
        self.source_consumption_rate = source.source_consumption_rate;
        self.sink_rate = source.sink_rate;
        self.producer_rate = source.producer_rate;
        self.kafka_lag = source.kafka_lag;
        self.processing_latency_ms = source.processing_latency_ms;
        self.event_time_latency_ms = source.event_time_latency_ms;
        self.state_hash = source.state_hash;
        self.per_operator.truncate(source.per_operator.len());
        let common = self.per_operator.len();
        for (dst, src) in self.per_operator.iter_mut().zip(&source.per_operator) {
            dst.clone_from(src);
        }
        for src in &source.per_operator[common..] {
            self.per_operator.push(src.clone());
        }
    }
}

/// Per-metric-window accumulators.
#[derive(Debug, Clone)]
struct WindowAccum {
    start: f64,
    processed: Vec<f64>,
    busy_time: Vec<f64>,
    input: Vec<f64>,
    output: Vec<f64>,
    consumed_from_kafka: f64,
    produced_to_kafka: f64,
    sink_completed: f64,
    proc_latency_sum: f64,
    event_latency_sum: f64,
    event_latency_ticks: f64,
    ticks: f64,
    queue_sum: Vec<f64>,
    capacity_sum: Vec<f64>,
}

impl WindowAccum {
    fn new(n: usize, start: f64) -> Self {
        Self {
            start,
            processed: vec![0.0; n],
            busy_time: vec![0.0; n],
            input: vec![0.0; n],
            output: vec![0.0; n],
            consumed_from_kafka: 0.0,
            produced_to_kafka: 0.0,
            sink_completed: 0.0,
            proc_latency_sum: 0.0,
            event_latency_sum: 0.0,
            event_latency_ticks: 0.0,
            ticks: 0.0,
            queue_sum: vec![0.0; n],
            capacity_sum: vec![0.0; n],
        }
    }

    /// Zeroes every accumulator in place for a window starting at `start`.
    fn reset(&mut self, start: f64) {
        self.start = start;
        for v in [
            &mut self.processed,
            &mut self.busy_time,
            &mut self.input,
            &mut self.output,
            &mut self.queue_sum,
            &mut self.capacity_sum,
        ] {
            for x in v.iter_mut() {
                *x = 0.0;
            }
        }
        self.consumed_from_kafka = 0.0;
        self.produced_to_kafka = 0.0;
        self.sink_completed = 0.0;
        self.proc_latency_sum = 0.0;
        self.event_latency_sum = 0.0;
        self.event_latency_ticks = 0.0;
        self.ticks = 0.0;
    }

    /// Buffer-reusing copy of every field, including `start`.
    fn copy_from(&mut self, other: &Self) {
        self.start = other.start;
        self.processed.clone_from(&other.processed);
        self.busy_time.clone_from(&other.busy_time);
        self.input.clone_from(&other.input);
        self.output.clone_from(&other.output);
        self.queue_sum.clone_from(&other.queue_sum);
        self.capacity_sum.clone_from(&other.capacity_sum);
        self.consumed_from_kafka = other.consumed_from_kafka;
        self.produced_to_kafka = other.produced_to_kafka;
        self.sink_completed = other.sink_completed;
        self.proc_latency_sum = other.proc_latency_sum;
        self.event_latency_sum = other.event_latency_sum;
        self.event_latency_ticks = other.event_latency_ticks;
        self.ticks = other.ticks;
    }
}

/// A transient performance fault: one operator's service rate is
/// multiplied by `factor` until simulation time `until`.
#[derive(Debug, Clone, Copy)]
struct Slowdown {
    operator: usize,
    factor: f64,
    until: f64,
}

/// A fault scheduled for a future simulation time (cascading-failure
/// scenarios): becomes an active [`Slowdown`] on the first tick at or
/// after `at`, lasting `duration_secs` from `at` — the activation instant
/// is part of the schedule, so both engines agree on `until` bit for bit
/// regardless of tick alignment.
#[derive(Debug, Clone, Copy)]
struct PendingFault {
    at: f64,
    operator: usize,
    factor: f64,
    duration_secs: f64,
}

/// Dense [`MetricBatcher`] ids for every series the engine emits,
/// registered at deploy time (the only time the key set changes).
#[derive(Debug, Default)]
struct EmitKeys {
    true_rate: Vec<Vec<usize>>,
    observed_rate: Vec<Vec<usize>>,
    input_rate: Vec<usize>,
    output_rate: Vec<usize>,
    queue_size: Vec<usize>,
    throughput: usize,
    sink_rate: usize,
    producer_rate: usize,
    kafka_lag: usize,
    proc_latency: usize,
    event_latency: usize,
    running: usize,
}

/// One region's tick deltas, computed against an immutable pre-phase
/// queue view and merged serially in region order.
struct RegionPass {
    queue_new: Vec<f64>,
    processed: Vec<f64>,
    busy_add: Vec<f64>,
    input_add: Vec<f64>,
    output_add: Vec<f64>,
    queue_sum_add: Vec<f64>,
    cap_sum_add: Vec<f64>,
    sink_add: f64,
}

/// Runs the process phase for the non-source members of one region.
/// `members` ascend (a topological order within the region) and
/// `local_of[s]` maps a member's global index to its slot in `members`.
/// Same-tick consumption is preserved through the local queue copy `q`.
#[allow(clippy::too_many_arguments)]
fn region_pass(
    ops: &[OperatorSpec],
    adjacency: &Adjacency,
    members: &[usize],
    local_of: &[usize],
    queues: &[f64],
    capacity: &[f64],
    parallelism: &[u32],
    queue_cap: f64,
    dt: f64,
) -> RegionPass {
    let m = members.len();
    let mut q: Vec<f64> = members.iter().map(|&i| queues[i]).collect();
    let mut pass = RegionPass {
        queue_new: Vec::new(),
        processed: vec![0.0; m],
        busy_add: vec![0.0; m],
        input_add: vec![0.0; m],
        output_add: vec![0.0; m],
        queue_sum_add: vec![0.0; m],
        cap_sum_add: vec![0.0; m],
        sink_add: 0.0,
    };
    for (k, &i) in members.iter().enumerate() {
        let op = &ops[i];
        let successors = adjacency.successors(i);
        let out_allowance = if successors.is_empty() {
            f64::INFINITY
        } else {
            successors
                .iter()
                .map(|&s| (queue_cap - q[local_of[s]] + capacity[s] * dt).max(0.0))
                .fold(f64::INFINITY, f64::min)
                / op.selectivity
        };
        let can_process = capacity[i] * dt;
        let avail = q[k];
        let processed = avail.min(can_process).min(out_allowance);
        q[k] -= processed;
        for &s in successors {
            let emitted = processed * op.selectivity;
            let sl = local_of[s];
            q[sl] += emitted;
            pass.input_add[sl] += emitted;
        }
        if op.is_sink() || successors.is_empty() {
            pass.sink_add += processed;
        }
        pass.processed[k] = processed;
        if capacity[i] > 0.0 {
            pass.busy_add[k] = processed / capacity[i] * parallelism[i] as f64;
        }
        pass.output_add[k] = processed * op.selectivity;
        pass.queue_sum_add[k] = q[k];
        pass.cap_sum_add[k] = capacity[i];
    }
    pass.queue_new = q;
    pass
}

/// The simulated cluster + job. See the crate docs for the model.
pub struct Simulation {
    config: SimulationConfig,
    store: Arc<MetricStore>,
    kafka: Kafka,
    noise: GaussianNoise,
    time: f64,
    deployed: bool,
    parallelism: Vec<u32>,
    placement: Placement,
    /// Per-operator total queued records (instances are symmetric).
    queues: Vec<f64>,
    /// While `Some(t)`, the job is down until simulation time `t`.
    downtime_until: Option<f64>,
    accum: WindowAccum,
    last_snapshot: SimSnapshot,
    /// Number of deploys performed (the first is free, §V "initial
    /// parallelism"; later ones cost `restart_downtime`).
    deploy_count: u32,
    /// Active transient faults (pruned lazily when one expires).
    slowdowns: Vec<Slowdown>,
    /// Faults scheduled for future activation, in schedule order.
    pending_faults: Vec<PendingFault>,

    // ---- phased-engine state ----
    /// CSR adjacency + region partition, built once from the job graph.
    adjacency: Adjacency,
    /// Source operator indices, ascending.
    source_indices: Vec<usize>,
    /// Non-source operator indices, ascending (forward topo order).
    nonsource_indices: Vec<usize>,
    /// Non-source members per region, each ascending.
    nonsource_by_region: Vec<Vec<usize>>,
    /// Global op index → slot in its region's non-source member list
    /// (`usize::MAX` for sources).
    nonsource_local_of: Vec<usize>,
    /// Per-operator aggregate capacity for the current epoch.
    capacity: Vec<f64>,
    /// Per-operator queue-independent latency term for the current epoch:
    /// `base_latency_ms + window_delay_ms + comm_cost_ms·(p−1)`.
    latency_const: Vec<f64>,
    /// Set by deploy/fault/registry changes; forces a capacity recompute
    /// (and a fresh noise draw) on the next processing tick.
    capacity_dirty: bool,
    /// Shared-registry version the current capacity epoch was built from.
    registry_version_seen: u64,
    /// Producer rate memoised between profile breakpoints.
    producer_rate_cache: f64,
    producer_rate_valid_until: f64,
    /// Future wake-ups (fault expiry, downtime end, rate breakpoints).
    events: EventQueue,
    batcher: MetricBatcher,
    emit_keys: EmitKeys,
    /// Scratch copy of `queues` for the per-tick fixed-point check.
    queues_prev: Vec<f64>,
    /// Whether every tick of the in-progress window has been a bitwise
    /// fixed point so far.
    cur_window_steady: bool,
    /// Whether the last *completed* window was a fixed point throughout.
    last_window_steady: bool,
    /// Tick count of the last completed window.
    last_window_ticks: f64,
    /// First producer rate seen in the in-progress window.
    window_first_rate: f64,
    window_has_rate: bool,
    /// Producer rate of the last completed window (valid when steady).
    last_window_rate: f64,
    /// Raw accumulator sums of the last steady window, replayed on skip.
    steady_accum: WindowAccum,
    /// Per-source Kafka consume amounts of one tick of the in-progress
    /// window (recorded while it is still a fixed-point candidate).
    window_takes: Vec<f64>,
    /// Per-source Kafka consume amounts of one tick of the last steady
    /// window, replayed bit-for-bit on skip.
    last_window_takes: Vec<f64>,
    /// Number of windows the event engine fast-forwarded.
    ff_windows: u64,
}

impl std::fmt::Debug for Simulation {
    // Compact: the full state (metric store, window accumulators, CSR
    // adjacency) is megabytes of noise in a panic message.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("time", &self.time)
            .field("deployed", &self.deployed)
            .field("parallelism", &self.parallelism)
            .field("deploy_count", &self.deploy_count)
            .field("downtime_until", &self.downtime_until)
            .field("ff_windows", &self.ff_windows)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Builds a simulation; call [`deploy`](Self::deploy) before stepping.
    pub fn new(config: SimulationConfig) -> Result<Self, SimError> {
        if config.dt <= 0.0 {
            return Err(SimError::BadConfig("dt must be positive".into()));
        }
        if config.metric_interval < config.dt {
            return Err(SimError::BadConfig(
                "metric_interval must be at least dt".into(),
            ));
        }
        let n = config.job.len();
        let placement = Placement::spread(&config.cluster, &vec![0; n]);
        let adjacency = Adjacency::build(&config.job);
        let source_indices = config.job.sources();
        let nonsource_indices: Vec<usize> = (0..n)
            .filter(|&i| !config.job.operators()[i].is_source())
            .collect();
        let mut nonsource_local_of = vec![usize::MAX; n];
        let mut nonsource_by_region: Vec<Vec<usize>> = vec![Vec::new(); adjacency.regions().len()];
        for &i in &nonsource_indices {
            let region = adjacency.region_of(i);
            nonsource_local_of[i] = nonsource_by_region[region].len();
            nonsource_by_region[region].push(i);
        }
        let snapshot = SimSnapshot {
            time: 0.0,
            running: false,
            parallelism: vec![0; n],
            source_consumption_rate: 0.0,
            sink_rate: 0.0,
            producer_rate: 0.0,
            kafka_lag: 0.0,
            processing_latency_ms: 0.0,
            event_time_latency_ms: Some(0.0),
            per_operator: Vec::new(),
            state_hash: 0,
        };
        Ok(Self {
            store: Arc::new(MetricStore::new()),
            kafka: Kafka::new(),
            noise: GaussianNoise::new(config.seed),
            time: 0.0,
            deployed: false,
            parallelism: vec![0; n],
            placement,
            queues: vec![0.0; n],
            downtime_until: None,
            accum: WindowAccum::new(n, 0.0),
            last_snapshot: snapshot,
            deploy_count: 0,
            slowdowns: Vec::new(),
            pending_faults: Vec::new(),
            adjacency,
            source_indices,
            nonsource_indices,
            nonsource_by_region,
            nonsource_local_of,
            capacity: vec![0.0; n],
            latency_const: vec![0.0; n],
            capacity_dirty: true,
            registry_version_seen: 0,
            producer_rate_cache: 0.0,
            producer_rate_valid_until: f64::NEG_INFINITY,
            events: EventQueue::new(),
            batcher: MetricBatcher::new(),
            emit_keys: EmitKeys::default(),
            queues_prev: vec![0.0; n],
            cur_window_steady: true,
            last_window_steady: false,
            last_window_ticks: 0.0,
            window_first_rate: 0.0,
            window_has_rate: false,
            last_window_rate: 0.0,
            steady_accum: WindowAccum::new(n, 0.0),
            window_takes: Vec::new(),
            last_window_takes: Vec::new(),
            ff_windows: 0,
            config,
        })
    }

    /// (Re)deploys the job with a new parallelism vector.
    ///
    /// The first deploy is the job submission and starts immediately;
    /// every later deploy stops the job, takes a savepoint (in-flight
    /// buffered records return to Kafka, since offsets are committed at
    /// checkpoints) and restarts after `restart_downtime` seconds.
    pub fn deploy(&mut self, parallelism: &[u32]) -> Result<(), SimError> {
        let n = self.config.job.len();
        if parallelism.len() != n {
            return Err(SimError::ArityMismatch {
                expected: n,
                got: parallelism.len(),
            });
        }
        let max = self.config.cluster.max_parallelism;
        for (op, &p) in self.config.job.operators().iter().zip(parallelism) {
            if p == 0 || p > max {
                return Err(SimError::ParallelismOutOfRange {
                    operator: op.name.clone(),
                    value: p,
                    max,
                });
            }
        }

        // In-flight records return to Kafka (re-read from committed offsets).
        let inflight: f64 = self.queues.iter().sum();
        if inflight > 0.0 {
            self.kafka
                .produce(inflight / self.config.dt, self.config.dt, self.time);
        }
        self.queues = vec![0.0; n];
        self.parallelism = parallelism.to_vec();
        let old_counts = self.placement.instances_on().to_vec();
        self.placement = Placement::spread(&self.config.cluster, parallelism);
        if let Some(registry) = &self.config.shared_machines {
            registry.replace(&old_counts, self.placement.instances_on());
        }
        if self.deployed {
            let end = self.time + self.config.restart_downtime;
            self.downtime_until = Some(end);
            self.events.push(end, EventKind::DowntimeEnd);
        }
        self.deployed = true;
        self.deploy_count += 1;
        self.capacity_dirty = true;
        self.cur_window_steady = false;
        self.last_window_steady = false;
        self.rebuild_emit_keys();
        Ok(())
    }

    /// Flushes and re-registers every metric series for the current
    /// parallelism (called on deploy, the only time the key set changes).
    fn rebuild_emit_keys(&mut self) {
        self.batcher.flush(&self.store);
        self.batcher.clear();
        let n = self.config.job.len();
        self.emit_keys.true_rate.clear();
        self.emit_keys.observed_rate.clear();
        self.emit_keys.input_rate.clear();
        self.emit_keys.output_rate.clear();
        self.emit_keys.queue_size.clear();
        for i in 0..n {
            let name = self.config.job.operators()[i].name.clone();
            let p = self.parallelism[i].max(1) as usize;
            let mut true_ids = Vec::with_capacity(p);
            let mut obs_ids = Vec::with_capacity(p);
            for inst in 0..p {
                true_ids.push(self.batcher.register(metrics::instance_key(
                    metrics::TRUE_PROCESSING_RATE,
                    &name,
                    inst,
                )));
                obs_ids.push(self.batcher.register(metrics::instance_key(
                    metrics::OBSERVED_PROCESSING_RATE,
                    &name,
                    inst,
                )));
            }
            self.emit_keys.true_rate.push(true_ids);
            self.emit_keys.observed_rate.push(obs_ids);
            self.emit_keys.input_rate.push(
                self.batcher
                    .register(metrics::operator_key(metrics::OPERATOR_INPUT_RATE, &name)),
            );
            self.emit_keys.output_rate.push(
                self.batcher
                    .register(metrics::operator_key(metrics::OPERATOR_OUTPUT_RATE, &name)),
            );
            self.emit_keys.queue_size.push(
                self.batcher
                    .register(metrics::operator_key(metrics::OPERATOR_QUEUE_SIZE, &name)),
            );
        }
        self.emit_keys.throughput = self
            .batcher
            .register(metrics::job_key(metrics::JOB_THROUGHPUT));
        self.emit_keys.sink_rate = self.batcher.register(metrics::job_key(metrics::SINK_RATE));
        self.emit_keys.producer_rate = self
            .batcher
            .register(metrics::job_key(metrics::PRODUCER_RATE));
        self.emit_keys.kafka_lag = self.batcher.register(metrics::job_key(metrics::KAFKA_LAG));
        self.emit_keys.proc_latency = self
            .batcher
            .register(metrics::job_key(metrics::PROCESSING_LATENCY_MS));
        self.emit_keys.event_latency = self
            .batcher
            .register(metrics::job_key(metrics::EVENT_TIME_LATENCY_MS));
        self.emit_keys.running = self
            .batcher
            .register(metrics::job_key(metrics::JOB_RUNNING));
    }

    /// Advances one tick and flushes buffered metrics.
    pub fn step(&mut self) -> Result<(), SimError> {
        if !self.deployed {
            return Err(SimError::NotDeployed);
        }
        self.tick_core();
        self.batcher.flush(&self.store);
        Ok(())
    }

    /// Runs for `secs` of simulation time.
    ///
    /// Rejects non-finite or negative durations and requires a prior
    /// [`deploy`](Self::deploy). Under [`EngineKind::EventDriven`],
    /// quiescent metric windows are fast-forwarded without per-tick work.
    pub fn run_for(&mut self, secs: f64) -> Result<(), SimError> {
        if !secs.is_finite() || secs < 0.0 {
            return Err(SimError::BadConfig(format!(
                "run_for needs a finite, non-negative duration, got {secs}"
            )));
        }
        if !self.deployed {
            return Err(SimError::NotDeployed);
        }
        let mut steps = (secs / self.config.dt).round() as u64;
        while steps > 0 {
            if self.config.engine == EngineKind::EventDriven {
                if let Some(skipped) = self.try_fast_forward(steps) {
                    steps -= skipped;
                    continue;
                }
            }
            self.tick_core();
            steps -= 1;
        }
        self.batcher.flush(&self.store);
        Ok(())
    }

    /// The memoised producer rate at `self.time`, refreshed at profile
    /// breakpoints. Sound because every [`RateProfile`] is
    /// piecewise-constant, so the cached value is bitwise what
    /// `rate_at` would return anywhere inside the validity interval.
    fn producer_rate_now(&mut self) -> f64 {
        if self.time >= self.producer_rate_valid_until {
            self.producer_rate_cache = self.config.profile.rate_at(self.time);
            match self.config.profile.next_change_after(self.time) {
                Some(next) => {
                    self.producer_rate_valid_until = next;
                    self.events.push(next, EventKind::RateBreakpoint);
                }
                None => self.producer_rate_valid_until = f64::INFINITY,
            }
        }
        self.producer_rate_cache
    }

    /// Recomputes per-operator capacity and the queue-independent latency
    /// term for a new epoch. The per-instance noise draws happen here —
    /// sequentially in (operator, instance) order — so both engines see
    /// the identical RNG stream for the same epoch sequence.
    fn recompute_capacity(&mut self) {
        let n = self.config.job.len();
        let instances_on: Vec<u32> = match &self.config.shared_machines {
            Some(registry) => {
                self.registry_version_seen = registry.version();
                registry.snapshot()
            }
            None => self.placement.instances_on().to_vec(),
        };
        let cluster = &self.config.cluster;
        #[allow(clippy::needless_range_loop)] // index i spans parallel vecs
        for i in 0..n {
            let op = &self.config.job.operators()[i];
            let p = self.parallelism[i];
            let sync = 1.0 / (1.0 + op.sync_coeff * (p.saturating_sub(1)) as f64);
            let fault: f64 = self
                .slowdowns
                .iter()
                .filter(|f| f.operator == i)
                .map(|f| f.factor)
                .product();
            let mut total = 0.0;
            for inst in 0..p as usize {
                let machine = self.placement.machine(i, inst);
                let interference = cluster.interference_factor(machine, &instances_on);
                let noise = self.noise.factor(self.config.rate_noise_std);
                total += op.base_rate * sync * interference * noise * fault;
            }
            if let Some(limit) = op.external_limit {
                total = total.min(limit * fault);
            }
            self.capacity[i] = total;
            let pf = p as f64;
            self.latency_const[i] =
                op.base_latency_ms + op.window_delay_ms() + op.comm_cost_ms * (pf - 1.0).max(0.0);
        }
    }

    /// One tick of the phased core (shared by both engines).
    fn tick_core(&mut self) {
        let dt = self.config.dt;
        let n = self.config.job.len();
        let now = self.time;
        self.events.discard_through(now);

        // A window tick can only be a replayable fixed point if Kafka was
        // already drained (with exactly-zero lag) when the tick began.
        let kafka_clean_at_start =
            self.kafka.is_drained() && self.kafka.lag().to_bits() == 0.0f64.to_bits();

        // Phase 1: pre-tick. Producer always runs; retention expires
        // stale records.
        let producer_rate = self.producer_rate_now();
        self.kafka.produce(producer_rate, dt, now);
        self.kafka.expire(now, self.config.kafka_retention_secs);
        self.accum.produced_to_kafka += producer_rate * dt;

        if !self.window_has_rate {
            self.window_first_rate = producer_rate;
            self.window_has_rate = true;
        } else if producer_rate.to_bits() != self.window_first_rate.to_bits() {
            self.cur_window_steady = false;
        }

        // Scheduled faults activate unconditionally — a slow disk arrives
        // whether or not the job is mid-restart. `until` derives from the
        // scheduled instant, not the activating tick, so both engines
        // agree bit for bit.
        if self.pending_faults.iter().any(|f| f.at <= now) {
            let mut i = 0;
            while i < self.pending_faults.len() {
                if self.pending_faults[i].at <= now {
                    let f = self.pending_faults.remove(i);
                    let until = f.at + f.duration_secs;
                    self.slowdowns.push(Slowdown {
                        operator: f.operator,
                        factor: f.factor,
                        until,
                    });
                    self.events.push(until, EventKind::FaultExpiry);
                    self.capacity_dirty = true;
                    self.cur_window_steady = false;
                } else {
                    i += 1;
                }
            }
        }

        let in_downtime = match self.downtime_until {
            Some(t) if self.time < t => true,
            Some(_) => {
                self.downtime_until = None;
                false
            }
            None => false,
        };

        if !in_downtime {
            // Epoch scan: recompute capacity only when something changed.
            if self.slowdowns.iter().any(|f| f.until <= now) {
                self.slowdowns.retain(|f| f.until > now);
                self.capacity_dirty = true;
            }
            if let Some(registry) = &self.config.shared_machines {
                if registry.version() != self.registry_version_seen {
                    self.capacity_dirty = true;
                }
            }
            if self.capacity_dirty {
                self.recompute_capacity();
                self.capacity_dirty = false;
                self.cur_window_steady = false;
                self.last_window_steady = false;
            }
            self.process_phases(dt, n, kafka_clean_at_start);
        } else {
            // Latency accounting still ticks: processing latency is
            // undefined (no records complete), event latency unbounded.
            self.accum.ticks += 1.0;
            self.cur_window_steady = false;
        }

        self.time += dt;

        // Emit at metric boundaries.
        if self.time - self.accum.start >= self.config.metric_interval - 1e-9 {
            self.emit_window(!in_downtime);
        }
    }

    /// Phases 2–4: transport, process, and post-tick accounting.
    fn process_phases(&mut self, dt: f64, n: usize, kafka_clean_at_start: bool) {
        let track_steady = self.config.engine == EngineKind::EventDriven && self.cur_window_steady;
        if track_steady {
            self.queues_prev.clone_from(&self.queues);
        }

        // Phase 2: transport — sources pull from Kafka serially in
        // ascending index order (preserves FIFO lag attribution) and emit
        // into successor queues before the process phase runs.
        let mut consumed_this_tick = 0.0;
        {
            let ops = self.config.job.operators();
            let adjacency = &self.adjacency;
            let capacity = &self.capacity;
            let parallelism = &self.parallelism;
            let queue_cap = self.config.queue_capacity_per_operator;
            let queues = &mut self.queues;
            let accum = &mut self.accum;
            let kafka = &mut self.kafka;
            let window_takes = &mut self.window_takes;
            if track_steady {
                // Every tick of a steady window repeats the same takes
                // bit-for-bit, so the latest tracked tick is a valid
                // representative for replay.
                window_takes.clear();
            }
            for &i in &self.source_indices {
                let op = &ops[i];
                let successors = adjacency.successors(i);

                // How much output the successors can absorb (in units of
                // THIS operator's output records): current free space plus
                // what the successor will drain this tick. A successor that
                // ends up blocked by ITS downstream may overshoot capacity
                // by at most one tick's worth — tolerated (no records are
                // dropped) and corrected next tick when its free space
                // reads zero.
                let out_allowance = if successors.is_empty() {
                    f64::INFINITY
                } else {
                    successors
                        .iter()
                        .map(|&s| (queue_cap - queues[s] + capacity[s] * dt).max(0.0))
                        .fold(f64::INFINITY, f64::min)
                        / op.selectivity
                };

                let can_process = capacity[i] * dt;
                let want = can_process.min(out_allowance);
                let got = kafka.consume(want, dt);
                if track_steady {
                    window_takes.push(got);
                }
                consumed_this_tick += got;

                for &s in successors {
                    let emitted = got * op.selectivity;
                    queues[s] += emitted;
                    accum.input[s] += emitted;
                }
                if op.is_sink() || successors.is_empty() {
                    accum.sink_completed += got;
                }

                accum.processed[i] += got;
                // Busy time: the fraction of the tick the instances spent
                // actually processing (Eq. 2's T_u), over all instances.
                if capacity[i] > 0.0 {
                    accum.busy_time[i] += got / capacity[i] * parallelism[i] as f64;
                }
                accum.output[i] += got * op.selectivity;
                accum.queue_sum[i] += queues[i];
                accum.capacity_sum[i] += capacity[i];
            }
        }

        // Phase 3: process — non-source operators in forward topological
        // order with same-tick consumption. A single-region job (the
        // common case) runs in place; independent regions run in
        // parallel against an immutable queue view and merge their
        // disjoint deltas in fixed region order, which is bitwise
        // identical to the serial pass.
        if self.adjacency.regions().len() == 1 {
            let ops = self.config.job.operators();
            let adjacency = &self.adjacency;
            let capacity = &self.capacity;
            let parallelism = &self.parallelism;
            let queue_cap = self.config.queue_capacity_per_operator;
            let queues = &mut self.queues;
            let accum = &mut self.accum;
            for &i in &self.nonsource_indices {
                let op = &ops[i];
                let successors = adjacency.successors(i);
                let out_allowance = if successors.is_empty() {
                    f64::INFINITY
                } else {
                    successors
                        .iter()
                        .map(|&s| (queue_cap - queues[s] + capacity[s] * dt).max(0.0))
                        .fold(f64::INFINITY, f64::min)
                        / op.selectivity
                };
                let can_process = capacity[i] * dt;
                let avail = queues[i];
                let processed = avail.min(can_process).min(out_allowance);
                queues[i] -= processed;
                for &s in successors {
                    let emitted = processed * op.selectivity;
                    queues[s] += emitted;
                    accum.input[s] += emitted;
                }
                if op.is_sink() || successors.is_empty() {
                    accum.sink_completed += processed;
                }
                accum.processed[i] += processed;
                if capacity[i] > 0.0 {
                    accum.busy_time[i] += processed / capacity[i] * parallelism[i] as f64;
                }
                accum.output[i] += processed * op.selectivity;
                accum.queue_sum[i] += queues[i];
                accum.capacity_sum[i] += capacity[i];
            }
        } else {
            use rayon::prelude::*;
            let ops = self.config.job.operators();
            let adjacency = &self.adjacency;
            let capacity = &self.capacity;
            let parallelism = &self.parallelism;
            let queue_cap = self.config.queue_capacity_per_operator;
            let queues = &self.queues;
            let local_of = &self.nonsource_local_of;
            let passes: Vec<RegionPass> = self
                .nonsource_by_region
                .par_iter()
                .map(|members| {
                    region_pass(
                        ops,
                        adjacency,
                        members,
                        local_of,
                        queues,
                        capacity,
                        parallelism,
                        queue_cap,
                        dt,
                    )
                })
                .collect();
            for (members, pass) in self.nonsource_by_region.iter().zip(&passes) {
                for (k, &i) in members.iter().enumerate() {
                    self.queues[i] = pass.queue_new[k];
                    self.accum.processed[i] += pass.processed[k];
                    self.accum.busy_time[i] += pass.busy_add[k];
                    self.accum.input[i] += pass.input_add[k];
                    self.accum.output[i] += pass.output_add[k];
                    self.accum.queue_sum[i] += pass.queue_sum_add[k];
                    self.accum.capacity_sum[i] += pass.cap_sum_add[k];
                }
                self.accum.sink_completed += pass.sink_add;
            }
        }

        self.accum.consumed_from_kafka += consumed_this_tick;
        if let Some(&src) = self.source_indices.first() {
            self.accum.input[src] += consumed_this_tick;
        }

        // Phase 4: latency estimate for this tick.
        let mut proc_ms = 0.0;
        #[allow(clippy::needless_range_loop)] // index i spans parallel vecs
        for i in 0..n {
            let wait_ms = if self.capacity[i] > 1e-9 {
                self.queues[i] / self.capacity[i] * 1000.0
            } else {
                0.0
            };
            proc_ms += wait_ms + self.latency_const[i];
        }
        self.accum.proc_latency_sum += proc_ms;
        self.accum.ticks += 1.0;

        // Event-time latency: pending time in Kafka + processing latency.
        let consumption_rate = consumed_this_tick / dt;
        if consumption_rate > 1e-9 || self.kafka.lag() <= 1e-9 {
            let pending_ms = if consumption_rate > 1e-9 {
                self.kafka.lag() / consumption_rate * 1000.0
            } else {
                0.0
            };
            self.accum.event_latency_sum += pending_ms + proc_ms;
            self.accum.event_latency_ticks += 1.0;
        }

        // Fixed-point check: the tick is replayable iff Kafka started
        // clean and no queue bit moved.
        if track_steady {
            let queues_same = self
                .queues
                .iter()
                .zip(&self.queues_prev)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            if !(kafka_clean_at_start && queues_same) {
                self.cur_window_steady = false;
            }
        }
    }

    /// Attempts to skip one whole metric window without ticking.
    ///
    /// Sound when the previous window was a bitwise fixed point
    /// throughout and nothing can change inside the next window: then
    /// every tick of the next window is identical to a tick of the saved
    /// window, so restoring the saved accumulator sums, replaying the
    /// clock additions, and replaying Kafka's steady totals reproduces
    /// the tick-by-tick result bit for bit. Returns the number of ticks
    /// skipped, or `None` to fall back to honest ticking.
    fn try_fast_forward(&mut self, steps_remaining: u64) -> Option<u64> {
        if !(self.last_window_steady && self.cur_window_steady) {
            return None;
        }
        if self.downtime_until.is_some() || self.capacity_dirty {
            return None;
        }
        // Must sit exactly at a window boundary.
        if self.accum.ticks != 0.0 || self.time.to_bits() != self.accum.start.to_bits() {
            return None;
        }
        if !self.kafka.is_drained() || self.kafka.lag().to_bits() != 0.0f64.to_bits() {
            return None;
        }
        // Catches set_profile swaps the event heap knows nothing about.
        if self.config.profile.rate_at(self.time).to_bits() != self.last_window_rate.to_bits() {
            return None;
        }
        if let Some(registry) = &self.config.shared_machines {
            if registry.version() != self.registry_version_seen {
                return None;
            }
        }

        // Replay the clock to find the boundary and its tick count; the
        // additions must be the same sequential `+= dt` the tick path
        // would perform.
        let dt = self.config.dt;
        let start = self.accum.start;
        let mut t = self.time;
        let mut ticks: u64 = 0;
        loop {
            if ticks >= steps_remaining {
                return None;
            }
            t += dt;
            ticks += 1;
            if t - start >= self.config.metric_interval - 1e-9 {
                break;
            }
        }
        if ticks as f64 != self.last_window_ticks {
            return None;
        }

        // Nothing may fire inside the window (one tick of margin).
        let guard = t + dt;
        if let Some(next) = self.config.profile.next_change_after(self.time) {
            if next <= guard {
                return None;
            }
        }
        if let Some(event_time) = self.events.peek_time() {
            if event_time <= guard {
                return None;
            }
        }

        // Commit the skip.
        self.time = t;
        self.kafka
            .replay_steady(self.last_window_rate, dt, ticks, &self.last_window_takes);
        let window_start = self.accum.start;
        self.accum.copy_from(&self.steady_accum);
        self.accum.start = window_start;
        self.window_first_rate = self.last_window_rate;
        self.window_has_rate = true;
        self.ff_windows += 1;
        self.emit_window(true);
        Some(ticks)
    }

    /// Emits the accumulated window into the batcher and refreshes
    /// [`snapshot`](Self::snapshot) in place.
    fn emit_window(&mut self, running: bool) {
        let n = self.config.job.len();
        let window = (self.time - self.accum.start).max(self.config.dt);
        let t = self.time;

        while self.last_snapshot.per_operator.len() < n {
            self.last_snapshot
                .per_operator
                .push(OperatorSnapshot::empty());
        }
        self.last_snapshot.per_operator.truncate(n);

        #[allow(clippy::needless_range_loop)] // index i spans several accumulators
        for i in 0..n {
            let p = self.parallelism[i].max(1);
            let processed = self.accum.processed[i];
            let busy = self.accum.busy_time[i];
            let ticks = self.accum.ticks.max(1.0);

            // Paper Eq. 2: v = R / T_u, per instance (instances symmetric).
            let true_rate_inst = if busy > 1e-9 {
                processed / busy
            } else {
                // Fully idle: capability is the average available capacity.
                self.accum.capacity_sum[i] / ticks / p as f64
            };
            let observed_rate_inst = processed / window / p as f64;
            let input_rate = self.accum.input[i] / window;
            let output_rate = self.accum.output[i] / window;
            let queue = self.accum.queue_sum[i] / ticks;
            let op_capacity = self.accum.capacity_sum[i] / ticks;

            for inst in 0..p as usize {
                self.batcher
                    .push(self.emit_keys.true_rate[i][inst], t, true_rate_inst);
                self.batcher
                    .push(self.emit_keys.observed_rate[i][inst], t, observed_rate_inst);
            }
            self.batcher
                .push(self.emit_keys.input_rate[i], t, input_rate);
            self.batcher
                .push(self.emit_keys.output_rate[i], t, output_rate);
            self.batcher.push(self.emit_keys.queue_size[i], t, queue);

            let snap = &mut self.last_snapshot.per_operator[i];
            snap.name.clone_from(&self.config.job.operators()[i].name);
            snap.parallelism = self.parallelism[i];
            snap.input_rate = input_rate;
            snap.output_rate = output_rate;
            snap.queue = queue;
            snap.true_rate_per_instance = true_rate_inst;
            snap.observed_rate_per_instance = observed_rate_inst;
            snap.capacity = op_capacity;
        }

        let source_rate = self.accum.consumed_from_kafka / window;
        let sink_rate = self.accum.sink_completed / window;
        let producer_rate = self.accum.produced_to_kafka / window;
        let proc_latency = if self.accum.ticks > 0.0 && running {
            self.accum.proc_latency_sum / self.accum.ticks.max(1.0)
        } else {
            0.0
        };
        let event_latency = if self.accum.event_latency_ticks > 0.0 {
            Some(self.accum.event_latency_sum / self.accum.event_latency_ticks)
        } else {
            None
        };

        self.batcher.push(self.emit_keys.throughput, t, source_rate);
        self.batcher.push(self.emit_keys.sink_rate, t, sink_rate);
        self.batcher
            .push(self.emit_keys.producer_rate, t, producer_rate);
        self.batcher
            .push(self.emit_keys.kafka_lag, t, self.kafka.lag());
        self.batcher
            .push(self.emit_keys.proc_latency, t, proc_latency);
        if let Some(e) = event_latency {
            self.batcher.push(self.emit_keys.event_latency, t, e);
        }
        self.batcher
            .push(self.emit_keys.running, t, if running { 1.0 } else { 0.0 });

        self.last_snapshot.time = t;
        self.last_snapshot.running = running;
        self.last_snapshot.parallelism.clone_from(&self.parallelism);
        self.last_snapshot.source_consumption_rate = source_rate;
        self.last_snapshot.sink_rate = sink_rate;
        self.last_snapshot.producer_rate = producer_rate;
        self.last_snapshot.kafka_lag = self.kafka.lag();
        self.last_snapshot.processing_latency_ms = proc_latency;
        self.last_snapshot.event_time_latency_ms = event_latency;

        // Steady-window bookkeeping for the fast-forward path.
        self.last_window_steady = self.cur_window_steady && running;
        self.last_window_ticks = self.accum.ticks;
        self.last_window_rate = self.window_first_rate;
        if self.last_window_steady {
            self.steady_accum.copy_from(&self.accum);
            self.last_window_takes.clone_from(&self.window_takes);
        }
        self.accum.reset(t);
        self.cur_window_steady = true;
        self.window_has_rate = false;
        self.last_snapshot.state_hash = self.compute_state_hash();
    }

    /// Folds the live engine state into a deterministic `u64`; see
    /// [`SimSnapshot::state_hash`].
    fn compute_state_hash(&self) -> u64 {
        let mut h = StateHasher::new();
        h.write_f64(self.time);
        h.write_bool(self.deployed);
        h.write_u64(u64::from(self.deploy_count));
        match self.downtime_until {
            Some(t) => {
                h.write_bool(true);
                h.write_f64(t);
            }
            None => h.write_bool(false),
        }
        h.write_usize(self.parallelism.len());
        for &p in &self.parallelism {
            h.write_u64(u64::from(p));
        }
        h.write_f64_slice(&self.queues);
        h.write_f64_slice(&self.capacity);
        h.write_f64(self.kafka.lag());
        h.write_f64(self.kafka.produced_total());
        h.write_f64(self.kafka.consumed_total());
        h.write_f64(self.kafka.expired_total());
        h.write_f64(self.kafka.consumption_rate());
        h.write_usize(self.slowdowns.len());
        for s in &self.slowdowns {
            h.write_usize(s.operator);
            h.write_f64(s.factor);
            h.write_f64(s.until);
        }
        h.write_usize(self.pending_faults.len());
        for f in &self.pending_faults {
            h.write_f64(f.at);
            h.write_usize(f.operator);
            h.write_f64(f.factor);
            h.write_f64(f.duration_secs);
        }
        h.write_f64(self.accum.start);
        h.finish()
    }

    /// Deterministic hash of the current live state (not the snapshot's
    /// cached value — this one reflects the state *right now*).
    pub fn state_hash(&self) -> u64 {
        self.compute_state_hash()
    }

    /// The most recently completed metric window's view of the job.
    pub fn snapshot(&self) -> SimSnapshot {
        self.last_snapshot.clone()
    }

    /// Allocation-free [`snapshot`](Self::snapshot): copies the last
    /// window's view into `out`, reusing its buffers.
    pub fn snapshot_into(&self, out: &mut SimSnapshot) {
        out.clone_from(&self.last_snapshot);
    }

    /// Which driving loop this simulation uses.
    pub fn engine_kind(&self) -> EngineKind {
        self.config.engine
    }

    /// Number of metric windows the event engine skipped wholesale.
    pub fn fast_forwarded_windows(&self) -> u64 {
        self.ff_windows
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.time
    }

    /// The metric store backing this simulation.
    pub fn store(&self) -> Arc<MetricStore> {
        Arc::clone(&self.store)
    }

    /// Deployed parallelism vector.
    pub fn parallelism(&self) -> &[u32] {
        &self.parallelism
    }

    /// The job topology.
    pub fn job(&self) -> &JobGraph {
        &self.config.job
    }

    /// The cluster spec.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.config.cluster
    }

    /// Current external input rate v₀.
    pub fn input_rate(&self) -> f64 {
        self.config.profile.rate_at(self.time)
    }

    /// Replaces the producer rate profile (rate-change experiments).
    pub fn set_profile(&mut self, profile: RateProfile) {
        self.config.profile = profile;
        self.producer_rate_valid_until = f64::NEG_INFINITY;
        self.cur_window_steady = false;
        self.last_window_steady = false;
    }

    /// Current Kafka consumer lag, records.
    pub fn kafka_lag(&self) -> f64 {
        self.kafka.lag()
    }

    /// Total records dropped by Kafka retention so far.
    pub fn kafka_expired(&self) -> f64 {
        self.kafka.expired_total()
    }

    /// `true` while the job is in savepoint/restart downtime.
    pub fn in_downtime(&self) -> bool {
        matches!(self.downtime_until, Some(t) if self.time < t)
    }

    /// Number of deploys so far (including the initial submission).
    pub fn deploy_count(&self) -> u32 {
        self.deploy_count
    }

    /// Injects a transient fault: operator `operator`'s service rate is
    /// multiplied by `factor` (< 1 slows it down) for `duration_secs`.
    /// Faults stack multiplicatively; restarts do not clear them (the
    /// slow disk / noisy neighbor is still there after a redeploy).
    pub fn inject_slowdown(
        &mut self,
        operator: usize,
        factor: f64,
        duration_secs: f64,
    ) -> Result<(), SimError> {
        if operator >= self.config.job.len() {
            return Err(SimError::BadConfig(format!(
                "operator index {operator} out of range"
            )));
        }
        if !(factor > 0.0 && factor.is_finite() && duration_secs.is_finite())
            || duration_secs <= 0.0
        {
            return Err(SimError::BadConfig(
                "slowdown needs a finite factor > 0 and positive duration".into(),
            ));
        }
        let until = self.time + duration_secs;
        self.slowdowns.push(Slowdown {
            operator,
            factor,
            until,
        });
        self.events.push(until, EventKind::FaultExpiry);
        self.capacity_dirty = true;
        self.cur_window_steady = false;
        Ok(())
    }

    /// Number of currently active transient faults.
    pub fn active_faults(&self) -> usize {
        self.slowdowns.len()
    }

    /// Schedules a transient fault for future simulation time `at_secs`
    /// (absolute): operator `operator`'s service rate is multiplied by
    /// `factor` for `duration_secs` starting at `at_secs`. The building
    /// block of cascading-failure scenarios — stagger several calls and
    /// faults overlap/stack exactly as [`inject_slowdown`](Self::inject_slowdown)
    /// faults do.
    ///
    /// A schedule in the past (`at_secs ≤ now`) activates immediately. The
    /// activation instant is pushed as a wake-up event, so the event
    /// engine can never fast-forward a quiescent window across it.
    pub fn schedule_slowdown(
        &mut self,
        at_secs: f64,
        operator: usize,
        factor: f64,
        duration_secs: f64,
    ) -> Result<(), SimError> {
        if !at_secs.is_finite() {
            return Err(SimError::BadConfig(
                "scheduled fault time must be finite".into(),
            ));
        }
        if at_secs <= self.time {
            return self.inject_slowdown(operator, factor, duration_secs);
        }
        if operator >= self.config.job.len() {
            return Err(SimError::BadConfig(format!(
                "operator index {operator} out of range"
            )));
        }
        if !(factor > 0.0 && factor.is_finite() && duration_secs.is_finite())
            || duration_secs <= 0.0
        {
            return Err(SimError::BadConfig(
                "slowdown needs a finite factor > 0 and positive duration".into(),
            ));
        }
        self.pending_faults.push(PendingFault {
            at: at_secs,
            operator,
            factor,
            duration_secs,
        });
        self.events.push(at_secs, EventKind::FaultStart);
        Ok(())
    }

    /// Number of faults scheduled but not yet active.
    pub fn pending_faults(&self) -> usize {
        self.pending_faults.len()
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Any buffered metrics still reach the store.
        self.batcher.flush(&self.store);
        // A co-located job releases its machine occupancy when it goes
        // away, so neighbors stop paying interference for it.
        if let Some(registry) = &self.config.shared_machines {
            registry.replace(self.placement.instances_on(), &[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::OperatorSpec;

    fn small_job() -> JobGraph {
        JobGraph::linear(vec![
            OperatorSpec::source("Source", 50_000.0),
            OperatorSpec::transform("Map", 30_000.0, 1.0),
            OperatorSpec::sink("Sink", 60_000.0),
        ])
        .unwrap()
    }

    fn config(rate: f64) -> SimulationConfig {
        SimulationConfig {
            cluster: ClusterSpec::paper_cluster(),
            job: small_job(),
            profile: RateProfile::constant(rate),
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn step_before_deploy_errors() {
        let mut sim = Simulation::new(config(1000.0)).unwrap();
        assert_eq!(sim.step(), Err(SimError::NotDeployed));
    }

    #[test]
    fn deploy_validates_arity_and_range() {
        let mut sim = Simulation::new(config(1000.0)).unwrap();
        assert!(matches!(
            sim.deploy(&[1, 1]),
            Err(SimError::ArityMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            sim.deploy(&[1, 0, 1]),
            Err(SimError::ParallelismOutOfRange { .. })
        ));
        assert!(matches!(
            sim.deploy(&[1, 99, 1]),
            Err(SimError::ParallelismOutOfRange { .. })
        ));
        assert!(sim.deploy(&[1, 1, 1]).is_ok());
    }

    #[test]
    fn underprovisioned_job_accumulates_lag() {
        // Input 40k but Map can only do ~30k with p=1.
        let mut sim = Simulation::new(config(40_000.0)).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        sim.run_for(120.0).unwrap();
        let snap = sim.snapshot();
        assert!(snap.kafka_lag > 100_000.0, "lag {}", snap.kafka_lag);
        // Throughput pinned near Map's capacity, not the input rate.
        assert!(
            snap.source_consumption_rate < 35_000.0,
            "consumption {}",
            snap.source_consumption_rate
        );
        assert!(snap.source_consumption_rate > 25_000.0);
    }

    #[test]
    fn provisioned_job_keeps_up() {
        let mut sim = Simulation::new(config(40_000.0)).unwrap();
        sim.deploy(&[1, 3, 1]).unwrap();
        sim.run_for(120.0).unwrap();
        let snap = sim.snapshot();
        assert!(snap.kafka_lag < 10_000.0, "lag {}", snap.kafka_lag);
        assert!(
            (snap.source_consumption_rate - 40_000.0).abs() < 3_000.0,
            "consumption {}",
            snap.source_consumption_rate
        );
    }

    #[test]
    fn throughput_scales_sublinearly_with_parallelism() {
        // Saturating input: measure capacity at p = 1, 2, 4.
        let mut rates = Vec::new();
        for p in [1u32, 2, 4] {
            let mut sim = Simulation::new(config(200_000.0)).unwrap();
            sim.deploy(&[2, p, 2]).unwrap();
            sim.run_for(120.0).unwrap();
            rates.push(sim.snapshot().source_consumption_rate);
        }
        assert!(rates[1] > rates[0] * 1.2, "{rates:?}");
        assert!(rates[2] > rates[1], "{rates:?}");
        // Sub-linear: doubling p must not double throughput.
        assert!(rates[1] < rates[0] * 2.0, "{rates:?}");
        assert!(rates[2] < rates[1] * 2.0, "{rates:?}");
    }

    #[test]
    fn true_rate_exceeds_observed_when_underutilized() {
        // Input far below capacity: operators are mostly idle, so the
        // observed rate is low but the true rate reflects capability.
        let mut sim = Simulation::new(config(5_000.0)).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        sim.run_for(60.0).unwrap();
        let snap = sim.snapshot();
        let map = &snap.per_operator[1];
        assert!(
            map.true_rate_per_instance > map.observed_rate_per_instance * 2.0,
            "true {} observed {}",
            map.true_rate_per_instance,
            map.observed_rate_per_instance
        );
        // True rate should approximate the base capability (30k ± noise &
        // contention).
        assert!(map.true_rate_per_instance > 20_000.0);
    }

    #[test]
    fn redeploy_causes_downtime_and_lag_spike() {
        let mut sim = Simulation::new(config(30_000.0)).unwrap();
        sim.deploy(&[1, 2, 1]).unwrap();
        sim.run_for(60.0).unwrap();
        let lag_before = sim.snapshot().kafka_lag;
        sim.deploy(&[1, 3, 1]).unwrap();
        assert!(sim.in_downtime());
        sim.run_for(10.0).unwrap(); // inside the 30 s downtime window
        assert!(sim.in_downtime());
        let lag_during = sim.kafka_lag();
        assert!(
            lag_during > lag_before + 100_000.0,
            "{lag_during} vs {lag_before}"
        );
        sim.run_for(120.0).unwrap();
        assert!(!sim.in_downtime());
        // Catches up eventually (3 Maps ≈ 80k capacity > 30k input).
        assert!(sim.kafka_lag() < lag_during);
    }

    #[test]
    fn first_deploy_is_immediate() {
        let mut sim = Simulation::new(config(1000.0)).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        assert!(!sim.in_downtime());
    }

    #[test]
    fn latency_grows_with_underprovisioning() {
        let mut under = Simulation::new(config(40_000.0)).unwrap();
        under.deploy(&[1, 1, 1]).unwrap();
        under.run_for(120.0).unwrap();
        let mut ok = Simulation::new(config(40_000.0)).unwrap();
        ok.deploy(&[1, 3, 1]).unwrap();
        ok.run_for(120.0).unwrap();
        let lat_under = under.snapshot().processing_latency_ms;
        let lat_ok = ok.snapshot().processing_latency_ms;
        assert!(lat_under > lat_ok, "{lat_under} !> {lat_ok}");
        // Event-time latency diverges much harder for the laggy job.
        let evt_under = under.snapshot().event_time_latency_ms.unwrap_or(f64::MAX);
        let evt_ok = ok.snapshot().event_time_latency_ms.unwrap();
        assert!(evt_under > 5.0 * evt_ok, "{evt_under} vs {evt_ok}");
    }

    #[test]
    fn excess_parallelism_raises_latency_via_comm_cost() {
        let measure = |p: u32| {
            let mut sim = Simulation::new(config(10_000.0)).unwrap();
            sim.deploy(&[1, p, 1]).unwrap();
            sim.run_for(60.0).unwrap();
            sim.snapshot().processing_latency_ms
        };
        // Low rate: queues are empty either way, so comm cost dominates.
        assert!(measure(20) > measure(1));
    }

    #[test]
    fn external_limit_caps_throughput() {
        let mut job_ops = vec![
            OperatorSpec::source("Source", 50_000.0),
            OperatorSpec::transform("Map", 30_000.0, 1.0),
            OperatorSpec::sink("Sink", 60_000.0).with_external_limit(8_000.0),
        ];
        job_ops[1].base_rate = 50_000.0;
        let job = JobGraph::linear(job_ops).unwrap();
        let cfg = SimulationConfig {
            job,
            profile: RateProfile::constant(40_000.0),
            seed: 3,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.deploy(&[4, 4, 8]).unwrap();
        sim.run_for(120.0).unwrap();
        let snap = sim.snapshot();
        // No matter the parallelism, sink limit gates the whole pipeline.
        assert!(
            snap.source_consumption_rate < 10_000.0,
            "{}",
            snap.source_consumption_rate
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulation::new(config(35_000.0)).unwrap();
            sim.deploy(&[1, 2, 1]).unwrap();
            sim.run_for(60.0).unwrap();
            let s = sim.snapshot();
            (
                s.kafka_lag,
                s.source_consumption_rate,
                s.processing_latency_ms,
                s.state_hash,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        assert_eq!(a.2.to_bits(), b.2.to_bits());
        assert_eq!(a.3, b.3);
    }

    #[test]
    fn metrics_reach_the_store() {
        let mut sim = Simulation::new(config(20_000.0)).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        sim.run_for(30.0).unwrap();
        let store = sim.store();
        let key = metrics::instance_key(metrics::TRUE_PROCESSING_RATE, "Map", 0);
        assert!(store.last(&key).is_some());
        let lag_key = metrics::job_key(metrics::KAFKA_LAG);
        assert!(store.last(&lag_key).is_some());
    }

    #[test]
    fn selectivity_multiplies_flow() {
        let job = JobGraph::linear(vec![
            OperatorSpec::source("Source", 50_000.0),
            OperatorSpec::transform("FlatMap", 40_000.0, 2.0),
            OperatorSpec::sink("Sink", 200_000.0),
        ])
        .unwrap();
        let cfg = SimulationConfig {
            job,
            profile: RateProfile::constant(10_000.0),
            seed: 5,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        sim.run_for(60.0).unwrap();
        let snap = sim.snapshot();
        let flatmap = &snap.per_operator[1];
        // Output rate ≈ 2 × input rate.
        assert!(
            (flatmap.output_rate - 2.0 * flatmap.input_rate).abs() < 0.2 * flatmap.input_rate,
            "in {} out {}",
            flatmap.input_rate,
            flatmap.output_rate
        );
    }

    #[test]
    fn run_for_advances_clock() {
        let mut sim = Simulation::new(config(1000.0)).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        sim.run_for(12.5).unwrap();
        assert!((sim.now() - 12.5).abs() < 0.2);
    }

    #[test]
    fn run_for_rejects_non_finite_and_negative_durations() {
        let mut sim = Simulation::new(config(1000.0)).unwrap();
        sim.deploy(&[1, 1, 1]).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            assert!(
                matches!(sim.run_for(bad), Err(SimError::BadConfig(_))),
                "duration {bad} must be rejected"
            );
        }
        // The clock did not move and the simulation still works.
        assert_eq!(sim.now(), 0.0);
        sim.run_for(0.0).unwrap();
        sim.run_for(5.0).unwrap();
        assert!((sim.now() - 5.0).abs() < 0.2);
    }

    #[test]
    fn run_for_before_deploy_errors() {
        let mut sim = Simulation::new(config(1000.0)).unwrap();
        assert_eq!(sim.run_for(10.0), Err(SimError::NotDeployed));
    }

    #[test]
    fn snapshot_into_matches_snapshot() {
        let mut sim = Simulation::new(config(20_000.0)).unwrap();
        sim.deploy(&[1, 2, 1]).unwrap();
        sim.run_for(30.0).unwrap();
        let mut reused = SimSnapshot {
            time: -1.0,
            running: true,
            parallelism: vec![9; 7],
            source_consumption_rate: 0.0,
            sink_rate: 0.0,
            producer_rate: 0.0,
            kafka_lag: 0.0,
            processing_latency_ms: 0.0,
            event_time_latency_ms: None,
            per_operator: vec![OperatorSnapshot::empty(); 5],
            state_hash: 0,
        };
        sim.snapshot_into(&mut reused);
        assert_eq!(reused, sim.snapshot());
        // A second fill after more simulated time also matches.
        sim.run_for(30.0).unwrap();
        sim.snapshot_into(&mut reused);
        assert_eq!(reused, sim.snapshot());
    }
}

#[cfg(test)]
mod engine_parity_tests {
    use super::*;
    use crate::topology::OperatorSpec;

    fn linear_job() -> JobGraph {
        JobGraph::linear(vec![
            OperatorSpec::source("Source", 50_000.0),
            OperatorSpec::transform("Map", 30_000.0, 1.0),
            OperatorSpec::sink("Sink", 60_000.0),
        ])
        .unwrap()
    }

    /// Two disjoint source→work→sink chains in one job graph, so the
    /// adjacency splits into two regions and the parallel process phase
    /// actually runs the multi-region path.
    fn two_chain_job() -> JobGraph {
        let ops = vec![
            OperatorSpec::source("SrcA", 40_000.0),
            OperatorSpec::transform("WorkA", 25_000.0, 1.0),
            OperatorSpec::sink("SinkA", 50_000.0),
            OperatorSpec::source("SrcB", 40_000.0),
            OperatorSpec::transform("WorkB", 25_000.0, 1.5),
            OperatorSpec::sink("SinkB", 80_000.0),
        ];
        JobGraph::new(ops, vec![(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap()
    }

    fn sim_with(engine: EngineKind, job: JobGraph, profile: RateProfile, seed: u64) -> Simulation {
        Simulation::new(SimulationConfig {
            job,
            profile,
            seed,
            engine,
            ..Default::default()
        })
        .unwrap()
    }

    /// Runs the same eventful scenario on both engines and asserts the
    /// whole trajectory (hash at every checkpoint plus final snapshot)
    /// is bitwise identical.
    fn assert_parity(
        job: impl Fn() -> JobGraph,
        profile: impl Fn() -> RateProfile,
        seed: u64,
        script: impl Fn(&mut Simulation) -> Vec<u64>,
    ) {
        let mut ev = sim_with(EngineKind::EventDriven, job(), profile(), seed);
        let mut tk = sim_with(EngineKind::Tick, job(), profile(), seed);
        let hashes_ev = script(&mut ev);
        let hashes_tk = script(&mut tk);
        assert_eq!(hashes_ev, hashes_tk, "state-hash trajectories diverged");
        assert_eq!(ev.snapshot(), tk.snapshot(), "final snapshots diverged");
        assert_eq!(ev.now().to_bits(), tk.now().to_bits());
        assert_eq!(ev.kafka_lag().to_bits(), tk.kafka_lag().to_bits());
    }

    #[test]
    fn engines_agree_on_steady_provisioned_trace() {
        assert_parity(
            linear_job,
            || RateProfile::constant(10_000.0),
            21,
            |sim| {
                let arity = sim.job().len();
                sim.deploy(&vec![1u32; arity][..]).unwrap();
                let mut hashes = Vec::new();
                for _ in 0..10 {
                    sim.run_for(60.0).unwrap();
                    hashes.push(sim.state_hash());
                }
                hashes
            },
        );
    }

    #[test]
    fn engines_agree_with_fault_mid_trace() {
        assert_parity(
            linear_job,
            || RateProfile::constant(12_000.0),
            22,
            |sim| {
                sim.deploy(&[1, 1, 1]).unwrap();
                sim.run_for(90.0).unwrap();
                let h0 = sim.state_hash();
                sim.inject_slowdown(1, 0.3, 47.3).unwrap();
                sim.run_for(30.0).unwrap();
                let h1 = sim.state_hash();
                // Past the expiry: the event engine must wake for it.
                sim.run_for(120.0).unwrap();
                vec![h0, h1, sim.state_hash()]
            },
        );
    }

    #[test]
    fn engines_agree_across_rate_switches() {
        let profile =
            || RateProfile::piecewise(vec![(0.0, 8_000.0), (100.0, 20_000.0), (250.0, 5_000.0)]);
        assert_parity(linear_job, profile, 23, |sim| {
            sim.deploy(&[1, 1, 1]).unwrap();
            let mut hashes = Vec::new();
            for _ in 0..8 {
                sim.run_for(50.0).unwrap();
                hashes.push(sim.state_hash());
            }
            hashes
        });
    }

    #[test]
    fn engines_agree_through_redeploy_downtime() {
        assert_parity(
            linear_job,
            || RateProfile::constant(15_000.0),
            24,
            |sim| {
                sim.deploy(&[1, 1, 1]).unwrap();
                sim.run_for(80.0).unwrap();
                let h0 = sim.state_hash();
                sim.deploy(&[1, 2, 1]).unwrap();
                sim.run_for(10.0).unwrap(); // mid-downtime
                let h1 = sim.state_hash();
                sim.run_for(200.0).unwrap(); // through recovery
                vec![h0, h1, sim.state_hash()]
            },
        );
    }

    #[test]
    fn engines_agree_on_multi_region_job() {
        assert_parity(
            two_chain_job,
            || RateProfile::constant(9_000.0),
            25,
            |sim| {
                let a = sim.job().index_of("WorkA").unwrap();
                let arity = sim.job().len();
                sim.deploy(&vec![1u32; arity][..]).unwrap();
                sim.run_for(120.0).unwrap();
                let h0 = sim.state_hash();
                sim.inject_slowdown(a, 0.4, 60.0).unwrap();
                sim.run_for(180.0).unwrap();
                vec![h0, sim.state_hash()]
            },
        );
    }

    #[test]
    fn event_engine_fast_forwards_quiescent_windows() {
        // Provisioned, constant rate: after warm-up every window is a
        // fixed point and the event engine should skip nearly all of them.
        let mut sim = sim_with(
            EngineKind::EventDriven,
            linear_job(),
            RateProfile::constant(10_000.0),
            26,
        );
        sim.deploy(&[1, 1, 1]).unwrap();
        sim.run_for(600.0).unwrap();
        let skipped = sim.fast_forwarded_windows();
        // 600 s at metric_interval 5 s = 120 windows; warm-up plus the
        // two-window steady confirmation costs a handful.
        assert!(skipped > 100, "only {skipped} windows fast-forwarded");

        let mut tick = sim_with(
            EngineKind::Tick,
            linear_job(),
            RateProfile::constant(10_000.0),
            26,
        );
        tick.deploy(&[1, 1, 1]).unwrap();
        tick.run_for(600.0).unwrap();
        assert_eq!(tick.fast_forwarded_windows(), 0);
        assert_eq!(sim.state_hash(), tick.state_hash());
        assert_eq!(sim.snapshot(), tick.snapshot());
    }

    #[test]
    fn tick_engine_never_fast_forwards_and_default_tracks_feature() {
        let sim = sim_with(
            EngineKind::Tick,
            linear_job(),
            RateProfile::constant(1_000.0),
            27,
        );
        assert_eq!(sim.engine_kind(), EngineKind::Tick);
        #[cfg(feature = "tick-engine")]
        assert_eq!(EngineKind::default(), EngineKind::Tick);
        #[cfg(not(feature = "tick-engine"))]
        assert_eq!(EngineKind::default(), EngineKind::EventDriven);
    }

    #[test]
    fn set_profile_blocks_stale_fast_forward() {
        // Swap the profile mid-run without touching deploy state; the
        // event engine must not replay windows recorded under the old
        // rate.
        assert_parity(
            linear_job,
            || RateProfile::constant(8_000.0),
            28,
            |sim| {
                sim.deploy(&[1, 1, 1]).unwrap();
                sim.run_for(100.0).unwrap();
                let h0 = sim.state_hash();
                sim.set_profile(RateProfile::constant(16_000.0));
                sim.run_for(100.0).unwrap();
                vec![h0, sim.state_hash()]
            },
        );
    }

    #[test]
    fn engines_agree_on_scheduled_cascading_faults() {
        // Three faults scheduled up front, staggered so they overlap in a
        // cascade: the event engine must wake for each activation (the
        // FaultStart hints), and both engines must agree on activation
        // instants and `until` deadlines bit for bit.
        assert_parity(
            linear_job,
            || RateProfile::constant(9_000.0),
            31,
            |sim| {
                let arity = sim.job().len();
                sim.deploy(&vec![2u32; arity][..]).unwrap();
                sim.schedule_slowdown(300.0, 0, 0.5, 200.0).unwrap();
                sim.schedule_slowdown(400.0, 1, 0.4, 250.0).unwrap();
                sim.schedule_slowdown(450.0, 2, 0.6, 100.0).unwrap();
                assert_eq!(sim.pending_faults(), 3);
                let mut hashes = Vec::new();
                for _ in 0..20 {
                    sim.run_for(60.0).unwrap();
                    hashes.push(sim.state_hash());
                }
                assert_eq!(sim.pending_faults(), 0);
                assert_eq!(sim.active_faults(), 0, "all faults expired by 1200 s");
                hashes
            },
        );
    }

    #[test]
    fn engines_agree_across_flash_crowd_profile() {
        // Dense piecewise breakpoints through ramp and decay: every
        // change-point is covered by a wake-up hint, so a quiescent
        // pre-spike window never fast-forwards across the spike.
        assert_parity(
            linear_job,
            || {
                crate::rate::generators::flash_crowd(
                    4_000.0, 18_000.0, 600.0, 120.0, 300.0, 240.0, 30.0,
                )
            },
            32,
            |sim| {
                let arity = sim.job().len();
                sim.deploy(&vec![1u32; arity][..]).unwrap();
                let mut hashes = Vec::new();
                for _ in 0..30 {
                    sim.run_for(60.0).unwrap();
                    hashes.push(sim.state_hash());
                }
                hashes
            },
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::topology::OperatorSpec;

    fn sim(rate: f64) -> Simulation {
        let job = JobGraph::linear(vec![
            OperatorSpec::source("Source", 40_000.0),
            OperatorSpec::transform("Map", 20_000.0, 1.0),
            OperatorSpec::sink("Sink", 40_000.0),
        ])
        .unwrap();
        Simulation::new(SimulationConfig {
            job,
            profile: RateProfile::constant(rate),
            seed: 77,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn slowdown_reduces_throughput_then_expires() {
        let mut s = sim(15_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        s.run_for(60.0).unwrap();
        let healthy = s.snapshot().source_consumption_rate;
        assert!(healthy > 14_000.0, "{healthy}");

        // Map at 25% capacity for 120 s: 5k < 15k input.
        s.inject_slowdown(1, 0.25, 120.0).unwrap();
        s.run_for(60.0).unwrap();
        let degraded = s.snapshot().source_consumption_rate;
        assert!(degraded < 7_000.0, "{degraded}");
        assert_eq!(s.active_faults(), 1);

        // After expiry the job recovers (and drains the fault's backlog).
        s.run_for(120.0).unwrap();
        assert_eq!(s.active_faults(), 0);
        s.run_for(120.0).unwrap();
        let recovered = s.snapshot().source_consumption_rate;
        assert!(recovered > 14_000.0, "{recovered}");
    }

    #[test]
    fn faults_stack_multiplicatively() {
        let mut s = sim(15_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        s.inject_slowdown(1, 0.5, 300.0).unwrap();
        s.inject_slowdown(1, 0.5, 300.0).unwrap();
        s.run_for(60.0).unwrap();
        // 20k × 0.25 = 5k effective.
        let snap = s.snapshot();
        assert!(
            snap.source_consumption_rate < 7_000.0,
            "{}",
            snap.source_consumption_rate
        );
    }

    #[test]
    fn slowdown_survives_redeploy() {
        let mut s = sim(15_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        s.inject_slowdown(1, 0.25, 1_000.0).unwrap();
        s.deploy(&[1, 2, 1]).unwrap();
        assert_eq!(s.active_faults(), 1);
        s.run_for(120.0).unwrap();
        // Two instances at 25% ≈ 10k < 15k: still degraded.
        assert!(s.snapshot().source_consumption_rate < 12_000.0);
    }

    #[test]
    fn invalid_injections_rejected() {
        let mut s = sim(1_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        assert!(s.inject_slowdown(9, 0.5, 10.0).is_err());
        assert!(s.inject_slowdown(1, 0.0, 10.0).is_err());
        assert!(s.inject_slowdown(1, -1.0, 10.0).is_err());
        assert!(s.inject_slowdown(1, 0.5, 0.0).is_err());
    }

    #[test]
    fn scheduled_fault_activates_at_its_instant() {
        let mut s = sim(15_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        s.schedule_slowdown(120.0, 1, 0.25, 120.0).unwrap();
        assert_eq!(s.pending_faults(), 1);
        assert_eq!(s.active_faults(), 0);
        s.run_for(60.0).unwrap();
        // Still healthy before the scheduled instant.
        assert!(s.snapshot().source_consumption_rate > 14_000.0);
        assert_eq!(s.active_faults(), 0);
        s.run_for(120.0).unwrap();
        // Fault active inside [120, 240): degraded window.
        assert_eq!(s.pending_faults(), 0);
        assert_eq!(s.active_faults(), 1);
        assert!(s.snapshot().source_consumption_rate < 7_000.0);
        // Expires 120 s after *activation*, then the backlog drains.
        s.run_for(300.0).unwrap();
        assert_eq!(s.active_faults(), 0);
        let recovered = s.snapshot().source_consumption_rate;
        assert!(recovered > 14_000.0, "{recovered}");
    }

    #[test]
    fn scheduled_fault_in_the_past_activates_immediately() {
        let mut s = sim(15_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        s.run_for(60.0).unwrap();
        s.schedule_slowdown(0.0, 1, 0.25, 120.0).unwrap();
        assert_eq!(s.pending_faults(), 0);
        assert_eq!(s.active_faults(), 1);
    }

    #[test]
    fn invalid_schedules_rejected() {
        let mut s = sim(1_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        assert!(s.schedule_slowdown(f64::NAN, 1, 0.5, 10.0).is_err());
        assert!(s.schedule_slowdown(f64::INFINITY, 1, 0.5, 10.0).is_err());
        assert!(s.schedule_slowdown(100.0, 9, 0.5, 10.0).is_err());
        assert!(s.schedule_slowdown(100.0, 1, 0.0, 10.0).is_err());
        assert!(s.schedule_slowdown(100.0, 1, 0.5, -1.0).is_err());
        assert_eq!(s.pending_faults(), 0);
    }

    #[test]
    fn non_finite_slowdown_factor_rejected() {
        // An infinite factor used to pass the NaN-only check and register
        // a fault that "speeds up" the operator without bound.
        let mut s = sim(1_000.0);
        s.deploy(&[1, 1, 1]).unwrap();
        assert!(s.inject_slowdown(1, f64::INFINITY, 10.0).is_err());
        assert!(s.inject_slowdown(1, f64::NEG_INFINITY, 10.0).is_err());
        assert!(s.inject_slowdown(1, f64::NAN, 10.0).is_err());
        assert_eq!(s.active_faults(), 0);
    }
}

#[cfg(test)]
mod colocation_tests {
    use super::*;
    use crate::cluster::SharedMachineRegistry;
    use crate::topology::OperatorSpec;
    use std::sync::Arc;

    fn job() -> JobGraph {
        JobGraph::linear(vec![
            OperatorSpec::source("Source", 30_000.0),
            OperatorSpec::transform("Work", 10_000.0, 1.0),
            OperatorSpec::sink("Sink", 30_000.0),
        ])
        .unwrap()
    }

    fn colocated(registry: &Arc<SharedMachineRegistry>, rate: f64, seed: u64) -> Simulation {
        // A small 2-machine / 4-core cluster so neighbors bite quickly.
        let cluster = ClusterSpec::uniform(2, 4, 30);
        Simulation::new(SimulationConfig {
            cluster,
            job: job(),
            profile: RateProfile::constant(rate),
            shared_machines: Some(Arc::clone(registry)),
            seed,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn neighbor_occupancy_degrades_capacity() {
        let registry = Arc::new(SharedMachineRegistry::new(2));
        let mut job_a = colocated(&registry, 9_000.0, 1);
        job_a.deploy(&[1, 1, 1]).unwrap();
        job_a.run_for(60.0).unwrap();
        let alone = job_a.snapshot().per_operator[1].true_rate_per_instance;

        // A fat neighbor floods both machines.
        let mut job_b = colocated(&registry, 1_000.0, 2);
        job_b.deploy(&[10, 10, 10]).unwrap();
        assert_eq!(registry.total_instances(), 33);
        job_a.run_for(60.0).unwrap();
        let crowded = job_a.snapshot().per_operator[1].true_rate_per_instance;
        assert!(
            crowded < alone * 0.55,
            "neighbor should degrade capacity: alone {alone}, crowded {crowded}"
        );

        // Neighbor leaves: capacity recovers.
        drop(job_b);
        assert_eq!(registry.total_instances(), 3);
        job_a.run_for(60.0).unwrap();
        let recovered = job_a.snapshot().per_operator[1].true_rate_per_instance;
        assert!(
            recovered > alone * 0.9,
            "alone {alone}, recovered {recovered}"
        );
    }

    #[test]
    fn rescale_updates_shared_counts_exactly() {
        let registry = Arc::new(SharedMachineRegistry::new(2));
        let mut sim = colocated(&registry, 1_000.0, 3);
        sim.deploy(&[1, 2, 1]).unwrap();
        assert_eq!(registry.total_instances(), 4);
        sim.deploy(&[2, 4, 2]).unwrap();
        assert_eq!(registry.total_instances(), 8);
        sim.deploy(&[1, 1, 1]).unwrap();
        assert_eq!(registry.total_instances(), 3);
        drop(sim);
        assert_eq!(registry.total_instances(), 0);
    }

    #[test]
    fn solo_job_with_registry_matches_without() {
        // One job alone in the registry behaves identically to the
        // unshared path (totals equal its own placement).
        let registry = Arc::new(SharedMachineRegistry::new(2));
        let mut shared = colocated(&registry, 9_000.0, 4);
        shared.deploy(&[1, 1, 1]).unwrap();
        shared.run_for(60.0).unwrap();

        let cluster = ClusterSpec::uniform(2, 4, 30);
        let mut solo = Simulation::new(SimulationConfig {
            cluster,
            job: job(),
            profile: RateProfile::constant(9_000.0),
            seed: 4,
            ..Default::default()
        })
        .unwrap();
        solo.deploy(&[1, 1, 1]).unwrap();
        solo.run_for(60.0).unwrap();

        let a = shared.snapshot();
        let b = solo.snapshot();
        assert_eq!(
            a.source_consumption_rate.to_bits(),
            b.source_consumption_rate.to_bits()
        );
        assert_eq!(
            a.processing_latency_ms.to_bits(),
            b.processing_latency_ms.to_bits()
        );
        assert_eq!(a.state_hash, b.state_hash);
    }
}

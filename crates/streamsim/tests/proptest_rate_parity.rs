//! Property tests for the wake-up-hint contract between rate profiles and
//! the event engine's window fast-forward (ISSUE 7 satellite):
//!
//! 1. profile-level soundness — between `t` and `next_change_after(t)`
//!    the rate is bitwise constant, for randomized flash-crowd and
//!    piecewise profiles (a fast-forwarded window can therefore never
//!    straddle a breakpoint the hints missed);
//! 2. engine-level parity — the event engine's per-window state-hash
//!    trajectory matches the tick engine's on those same randomized
//!    profiles, with fast-forwarding demonstrably engaged.

use autrascale_streamsim::{
    rate_generators, EngineKind, JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig,
};
use proptest::prelude::*;

fn job() -> JobGraph {
    JobGraph::linear(vec![
        OperatorSpec::source("Source", 40_000.0),
        OperatorSpec::transform("Map", 30_000.0, 1.0),
        OperatorSpec::sink("Sink", 40_000.0),
    ])
    .expect("valid job")
}

fn sim(engine: EngineKind, profile: RateProfile, seed: u64) -> Simulation {
    let mut s = Simulation::new(SimulationConfig {
        job: job(),
        profile,
        seed,
        engine,
        ..Default::default()
    })
    .expect("valid config");
    s.deploy(&[2, 2, 2]).expect("valid parallelism");
    s
}

/// Randomized flash-crowd parameters (spike always lands inside the
/// simulated horizon; peak kept below provisioned capacity so pre- and
/// post-spike windows can go quiescent and fast-forward).
fn flash_crowd_params() -> impl Strategy<Value = RateProfile> {
    (
        2_000.0f64..8_000.0,   // base
        10_000.0f64..25_000.0, // peak
        300.0f64..900.0,       // at
        0.0f64..180.0,         // ramp
        60.0f64..300.0,        // hold
        0.0f64..240.0,         // decay
        15.0f64..60.0,         // step
    )
        .prop_map(|(base, peak, at, ramp, hold, decay, step)| {
            rate_generators::flash_crowd(base, peak, at, ramp, hold, decay, step)
        })
}

/// Randomized sorted piecewise profiles.
fn piecewise_params() -> impl Strategy<Value = RateProfile> {
    proptest::collection::vec((0.0f64..2_000.0, 1_000.0f64..20_000.0), 1usize..12).prop_map(
        |mut points| {
            points.sort_by(|a, b| a.0.total_cmp(&b.0));
            RateProfile::piecewise(points)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Wake-up-hint soundness: the rate is bitwise constant on every
    /// interval `(t, next_change_after(t))` of a random flash-crowd
    /// profile — i.e. the hints cover every breakpoint.
    #[test]
    fn flash_crowd_hints_cover_every_breakpoint(
        profile in flash_crowd_params(),
        probes in proptest::collection::vec(0.0f64..2_500.0, 8),
    ) {
        for &t in &probes {
            match profile.next_change_after(t) {
                Some(next) => {
                    prop_assert!(next > t, "hint {next} not after {t}");
                    for frac in [0.1, 0.5, 0.9] {
                        let mid = t + (next - t) * frac;
                        prop_assert_eq!(
                            profile.rate_at(t).to_bits(),
                            profile.rate_at(mid).to_bits(),
                            "rate changed inside ({}, {}) at {}", t, next, mid
                        );
                    }
                }
                None => {
                    prop_assert_eq!(
                        profile.rate_at(t).to_bits(),
                        profile.rate_at(t + 1e9).to_bits()
                    );
                }
            }
        }
    }

    /// Same soundness contract for arbitrary sorted piecewise profiles
    /// (duplicate change-point times included).
    #[test]
    fn piecewise_hints_cover_every_breakpoint(
        profile in piecewise_params(),
        probes in proptest::collection::vec(0.0f64..2_500.0, 8),
    ) {
        for &t in &probes {
            if let Some(next) = profile.next_change_after(t) {
                prop_assert!(next > t);
                let mid = t + (next - t) * 0.5;
                prop_assert_eq!(
                    profile.rate_at(t).to_bits(),
                    profile.rate_at(mid).to_bits()
                );
            }
        }
    }

    /// Engine parity on randomized flash-crowd profiles: identical
    /// per-window state-hash trajectories, so no fast-forwarded window
    /// ever straddled a rate breakpoint (a skipped breakpoint would
    /// change Kafka counters and diverge the hashes).
    #[test]
    fn engines_agree_on_randomized_flash_crowds(
        profile in flash_crowd_params(),
        seed in 0u64..500,
    ) {
        let mut ev = sim(EngineKind::EventDriven, profile.clone(), seed);
        let mut tk = sim(EngineKind::Tick, profile, seed);
        for window in 0..30 {
            ev.run_for(60.0).unwrap();
            tk.run_for(60.0).unwrap();
            prop_assert_eq!(
                ev.state_hash(),
                tk.state_hash(),
                "hash diverged at window {}", window
            );
        }
        prop_assert_eq!(tk.fast_forwarded_windows(), 0u64);
    }
}

/// Non-random companion: with a long quiet tail after the spike, the
/// event engine must actually fast-forward windows (the parity property
/// above is not vacuously about honest ticking).
#[test]
fn flash_crowd_tail_fast_forwards() {
    let profile = rate_generators::flash_crowd(3_000.0, 15_000.0, 300.0, 60.0, 120.0, 60.0, 30.0);
    let mut ev = sim(EngineKind::EventDriven, profile.clone(), 7);
    let mut tk = sim(EngineKind::Tick, profile, 7);
    ev.run_for(6_000.0).unwrap();
    tk.run_for(6_000.0).unwrap();
    assert_eq!(ev.state_hash(), tk.state_hash());
    assert!(
        ev.fast_forwarded_windows() > 10,
        "expected the quiet tail to fast-forward, got {}",
        ev.fast_forwarded_windows()
    );
}

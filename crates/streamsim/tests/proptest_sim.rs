//! Property-based tests for simulator invariants: conservation laws,
//! backpressure bounds and metric sanity over randomized topologies,
//! rates and parallelism vectors.

use autrascale_streamsim::{JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig};
use proptest::prelude::*;

/// Strategy: a random linear topology of 2–5 operators with varied
/// service rates and selectivities.
fn topology() -> impl Strategy<Value = JobGraph> {
    (2usize..=5).prop_flat_map(|n| {
        let middle =
            proptest::collection::vec((5_000.0f64..50_000.0, 0.5f64..2.0), n.saturating_sub(2));
        (
            Just(n),
            10_000.0f64..80_000.0,
            middle,
            10_000.0f64..80_000.0,
        )
            .prop_map(|(_, src_rate, middles, sink_rate)| {
                let mut ops = vec![OperatorSpec::source("Source", src_rate)];
                for (i, (rate, sel)) in middles.into_iter().enumerate() {
                    ops.push(OperatorSpec::transform(format!("Op{i}"), rate, sel));
                }
                ops.push(OperatorSpec::sink("Sink", sink_rate));
                JobGraph::linear(ops).expect("generated topology is valid")
            })
    })
}

fn run_sim(job: JobGraph, rate: f64, parallelism: Vec<u32>, seed: u64, secs: f64) -> Simulation {
    let mut sim = Simulation::new(SimulationConfig {
        job,
        profile: RateProfile::constant(rate),
        seed,
        ..Default::default()
    })
    .expect("valid config");
    sim.deploy(&parallelism).expect("valid parallelism");
    sim.run_for(secs).expect("finite duration");
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Records are conserved: everything produced is consumed, expired,
    /// or still lagging in Kafka.
    #[test]
    fn kafka_conservation(
        job in topology(),
        rate in 1_000.0f64..40_000.0,
        seed in 0u64..1000,
    ) {
        let n = job.len();
        let sim = run_sim(job, rate, vec![1; n], seed, 120.0);
        let produced = rate * sim.now();
        // consumed_total is internal; reconstruct via lag + expired:
        // produced − lag − expired = consumed ≥ 0, and no category exceeds
        // production.
        let lag = sim.kafka_lag();
        let expired = sim.kafka_expired();
        prop_assert!(lag >= -1e-6);
        prop_assert!(expired >= 0.0);
        prop_assert!(lag + expired <= produced * 1.001 + 1.0,
            "lag {lag} + expired {expired} vs produced {produced}");
    }

    /// Throughput never exceeds the producer rate at steady state by more
    /// than the initial transient allows (no record creation).
    #[test]
    fn no_record_creation(
        job in topology(),
        rate in 1_000.0f64..30_000.0,
        p in 1u32..6,
        seed in 0u64..1000,
    ) {
        let n = job.len();
        let sim = run_sim(job, rate, vec![p; n], seed, 180.0);
        let snap = sim.snapshot();
        // Consumption can only come from what was produced.
        prop_assert!(
            snap.source_consumption_rate <= rate * 1.05 + 1.0,
            "consumption {} vs producer {rate}",
            snap.source_consumption_rate
        );
    }

    /// Queues and latency stay non-negative and finite; lag is bounded by
    /// production.
    #[test]
    fn metrics_are_sane(
        job in topology(),
        rate in 1_000.0f64..60_000.0,
        p in 1u32..5,
        seed in 0u64..1000,
    ) {
        let n = job.len();
        let sim = run_sim(job, rate, vec![p; n], seed, 90.0);
        let snap = sim.snapshot();
        prop_assert!(snap.processing_latency_ms >= 0.0);
        prop_assert!(snap.processing_latency_ms.is_finite());
        prop_assert!(snap.kafka_lag >= 0.0);
        for op in &snap.per_operator {
            prop_assert!(op.queue >= 0.0, "{op:?}");
            prop_assert!(op.true_rate_per_instance >= 0.0, "{op:?}");
            prop_assert!(op.observed_rate_per_instance >= 0.0, "{op:?}");
            // Observed flow cannot exceed capability (both per instance).
            prop_assert!(
                op.observed_rate_per_instance <= op.true_rate_per_instance * 1.3 + 1.0,
                "{op:?}"
            );
        }
    }

    /// More parallelism never reduces steady throughput (monotone
    /// capacity, modulo noise and interference at small scales).
    #[test]
    fn capacity_is_weakly_monotone(
        rate in 20_000.0f64..50_000.0,
        seed in 0u64..100,
    ) {
        let job = || JobGraph::linear(vec![
            OperatorSpec::source("Source", 60_000.0),
            OperatorSpec::transform("Work", 8_000.0, 1.0).with_sync_coeff(0.02),
            OperatorSpec::sink("Sink", 60_000.0),
        ]).unwrap();
        let lo = run_sim(job(), rate, vec![1, 2, 1], seed, 120.0)
            .snapshot().source_consumption_rate;
        let hi = run_sim(job(), rate, vec![1, 6, 1], seed, 120.0)
            .snapshot().source_consumption_rate;
        prop_assert!(hi >= lo * 0.95, "hi {hi} lo {lo}");
    }

    /// Determinism as a property: any run replays bit-identically.
    #[test]
    fn any_run_is_replayable(
        job in topology(),
        rate in 1_000.0f64..30_000.0,
        seed in 0u64..1000,
    ) {
        let n = job.len();
        let a = run_sim(job.clone(), rate, vec![1; n], seed, 60.0).snapshot();
        let b = run_sim(job, rate, vec![1; n], seed, 60.0).snapshot();
        prop_assert_eq!(a.kafka_lag.to_bits(), b.kafka_lag.to_bits());
        prop_assert_eq!(
            a.source_consumption_rate.to_bits(),
            b.source_consumption_rate.to_bits()
        );
        prop_assert_eq!(
            a.processing_latency_ms.to_bits(),
            b.processing_latency_ms.to_bits()
        );
    }
}

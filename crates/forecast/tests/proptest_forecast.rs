//! Property-based fit/predict round-trips for the Holt-Winters
//! predictor: on synthetic seasonal signals the auto scan must recover
//! the generating period, the one-step residuals must stay below a
//! pinned fraction of the seasonal amplitude, and forecasts must extend
//! the signal within a pinned bound.

use autrascale_forecast::{ForecastModel, HoltWinters, Predictor};
use autrascale_metricsdb::Series;
use proptest::prelude::*;

/// A sawtooth season: strictly increasing within each period, so no
/// proper divisor of the period fits the signal.
fn sawtooth(phase: usize, period: usize, amplitude: f64) -> f64 {
    amplitude * (phase as f64 / (period - 1) as f64 - 0.5)
}

/// Strategy: (period, amplitude, base, cadence, periods observed).
fn seasonal_params() -> impl Strategy<Value = (usize, f64, f64, f64, usize)> {
    (
        3usize..10,
        10.0f64..100.0,
        100.0f64..1000.0,
        0.5f64..10.0,
        4usize..8,
    )
}

fn seasonal_series(
    period: usize,
    amplitude: f64,
    base: f64,
    cadence: f64,
    periods: usize,
) -> Series {
    let mut s = Series::new();
    for t in 0..period * periods {
        let v = base + sawtooth(t % period, period, amplitude);
        assert!(s.push(t as f64 * cadence, v));
    }
    s
}

proptest! {
    #[test]
    fn auto_scan_recovers_the_generating_period(
        (period, amplitude, base, cadence, periods) in seasonal_params()
    ) {
        let series = seasonal_series(period, amplitude, base, cadence, periods);
        let model = HoltWinters::auto(2 * period).fit(&series).unwrap();
        // Harmonics of the true period reproduce the signal exactly, so
        // any multiple is a faithful recovery; unrelated periods are not.
        prop_assert!(
            model.period().is_multiple_of(period),
            "recovered {} for true period {period}",
            model.period()
        );
        // Pinned residual bound: after the init transient the replay
        // tracks a noiseless periodic signal closely.
        let rmse = model.diagnostics().rmse;
        prop_assert!(
            rmse <= 0.15 * amplitude,
            "rmse {rmse} vs amplitude {amplitude}"
        );
    }

    #[test]
    fn forecasts_extend_the_signal_within_a_pinned_bound(
        (period, amplitude, base, cadence, periods) in seasonal_params()
    ) {
        let series = seasonal_series(period, amplitude, base, cadence, periods);
        let model = HoltWinters::with_period(period).fit(&series).unwrap();
        let horizon = period as f64 * cadence;
        let forecast = model.predict(horizon).unwrap();
        prop_assert!(forecast.len() >= period);
        let n = series.len();
        for (i, p) in forecast.iter().enumerate() {
            let truth = base + sawtooth((n + i) % period, period, amplitude);
            prop_assert!(
                (p.value - truth).abs() <= 0.25 * amplitude,
                "step {i}: forecast {} vs truth {truth}",
                p.value
            );
            // Timestamps continue the observed cadence.
            let expected_t = (n + i) as f64 * cadence;
            prop_assert!((p.time - expected_t).abs() < 1e-6 * (1.0 + expected_t.abs()));
        }
    }

    #[test]
    fn small_noise_does_not_break_the_round_trip(
        (period, amplitude, base, cadence, periods) in seasonal_params(),
        noise_seed in 0u64..1_000,
    ) {
        // Deterministic splitmix64 noise at 2% of the amplitude.
        let mut state = noise_seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64) - 0.5
        };
        let mut series = Series::new();
        for t in 0..period * periods {
            let v = base
                + sawtooth(t % period, period, amplitude)
                + 0.02 * amplitude * next();
            prop_assert!(series.push(t as f64 * cadence, v));
        }
        let model = HoltWinters::auto(2 * period).fit(&series).unwrap();
        prop_assert!(
            model.period().is_multiple_of(period),
            "recovered {} for true period {period}",
            model.period()
        );
        prop_assert!(model.diagnostics().rmse <= 0.2 * amplitude);
        let forecast = model.predict(period as f64 * cadence).unwrap();
        prop_assert!(forecast.iter().all(|p| p.value.is_finite()));
    }
}

//! Additive Holt-Winters (triple exponential smoothing).
//!
//! State: level ℓ, trend b, and a length-`m` seasonal vector s. One-step
//! recurrences for observation `y_t` (seasonal index `i = t mod m`):
//!
//! ```text
//! ŷ_t = ℓ + b + s[i]                      (one-step forecast)
//! ℓ'  = α (y_t − s[i]) + (1 − α)(ℓ + b)
//! b'  = β (ℓ' − ℓ) + (1 − β) b
//! s[i]' = γ (y_t − ℓ') + (1 − γ) s[i]
//! ```
//!
//! Smoothing parameters (α, β, γ) are chosen by coordinate descent over a
//! fixed grid on the one-step squared-error sum — deterministic, no
//! derivatives, and cheap because each objective evaluation is one O(n)
//! replay. The seasonal period is either pinned or selected by scanning
//! candidate periods with the same objective.

use crate::error::ForecastError;
use crate::predictor::{checked_values, horizon_steps, sample_cadence, ForecastModel, Predictor};
use autrascale_metricsdb::{DataPoint, Series};

/// Candidate grid for each smoothing parameter (open interval (0, 1);
/// the endpoints degenerate to no-smoothing / no-memory).
const PARAM_GRID: [f64; 10] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Coordinate-descent sweeps over (α, β, γ); each sweep re-optimizes every
/// coordinate once, so a handful converge on this smooth 3-d objective.
const DESCENT_SWEEPS: usize = 4;

/// Additive Holt-Winters predictor configuration.
#[derive(Debug, Clone)]
pub struct HoltWinters {
    period: Option<usize>,
    max_period: usize,
}

impl HoltWinters {
    /// Fits with a known seasonal period of `period` samples (≥ 2).
    pub fn with_period(period: usize) -> Self {
        HoltWinters {
            period: Some(period),
            max_period: period,
        }
    }

    /// Scans candidate periods `2..=max_period` (bounded by the data) and
    /// keeps the one whose fitted one-step error is smallest; ties prefer
    /// the shortest period.
    pub fn auto(max_period: usize) -> Self {
        HoltWinters {
            period: None,
            max_period,
        }
    }
}

/// One full replay of the smoothing recurrences.
struct Replay {
    level: f64,
    trend: f64,
    season: Vec<f64>,
    sse: f64,
    residuals: Vec<f64>,
}

fn initial_state(values: &[f64], m: usize) -> (f64, f64, Vec<f64>) {
    let inv_m = 1.0 / m as f64;
    let first: f64 = values.iter().take(m).sum::<f64>() * inv_m;
    let second: f64 = values.iter().skip(m).take(m).sum::<f64>() * inv_m;
    let level = first;
    let trend = (second - first) * inv_m;
    let season: Vec<f64> = values.iter().take(m).map(|v| v - level).collect();
    (level, trend, season)
}

fn replay(values: &[f64], m: usize, alpha: f64, beta: f64, gamma: f64, keep: bool) -> Replay {
    let (mut level, mut trend, mut season) = initial_state(values, m);
    let mut sse = 0.0;
    let mut residuals = Vec::with_capacity(if keep { values.len() } else { 0 });
    for (t, &v) in values.iter().enumerate() {
        let idx = t % m;
        let s_old = season.get(idx).copied().unwrap_or(0.0);
        let predicted = level + trend + s_old;
        let r = v - predicted;
        sse += r * r;
        if keep {
            residuals.push(r);
        }
        let new_level = alpha * (v - s_old) + (1.0 - alpha) * (level + trend);
        let new_trend = beta * (new_level - level) + (1.0 - beta) * trend;
        if let Some(slot) = season.get_mut(idx) {
            *slot = gamma * (v - new_level) + (1.0 - gamma) * s_old;
        }
        level = new_level;
        trend = new_trend;
    }
    Replay {
        level,
        trend,
        season,
        sse,
        residuals,
    }
}

/// Coordinate descent on (α, β, γ); returns the best parameters and their
/// objective value. Deterministic: fixed grid, fixed sweep order, strict
/// improvement only.
fn descend(values: &[f64], m: usize) -> (f64, f64, f64, f64) {
    let (mut alpha, mut beta, mut gamma) = (0.3, 0.1, 0.1);
    let mut best = replay(values, m, alpha, beta, gamma, false).sse;
    for _ in 0..DESCENT_SWEEPS {
        let mut improved = false;
        for coord in 0..3 {
            for &candidate in &PARAM_GRID {
                let (ta, tb, tg) = match coord {
                    0 => (candidate, beta, gamma),
                    1 => (alpha, candidate, gamma),
                    _ => (alpha, beta, candidate),
                };
                let sse = replay(values, m, ta, tb, tg, false).sse;
                if sse < best {
                    best = sse;
                    (alpha, beta, gamma) = (ta, tb, tg);
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    (alpha, beta, gamma, best)
}

impl Predictor for HoltWinters {
    type Model = HoltWintersModel;

    fn fit(&self, series: &Series) -> Result<HoltWintersModel, ForecastError> {
        if let Some(m) = self.period {
            if m < 2 {
                return Err(ForecastError::BadPeriod(m));
            }
        } else if self.max_period < 2 {
            return Err(ForecastError::BadPeriod(self.max_period));
        }
        let min_period = self.period.unwrap_or(2);
        // Two full seasons initialize level/trend/season; one more point
        // gives the objective at least one non-trivial forecast.
        let values = checked_values(series, 2 * min_period + 1)?;
        let cadence = sample_cadence(series)?;
        let n = values.len();

        let candidates: Vec<usize> = match self.period {
            Some(m) => vec![m],
            // A period needs two full seasons of data to initialize.
            None => (2..=self.max_period.min((n - 1) / 2)).collect(),
        };
        let mut chosen: Option<(usize, f64, f64, f64, f64)> = None;
        for &m in &candidates {
            if n < 2 * m + 1 {
                continue;
            }
            let (alpha, beta, gamma, sse) = descend(&values, m);
            let better = match chosen {
                Some((_, _, _, _, best_sse)) => sse < best_sse,
                None => true,
            };
            if better {
                chosen = Some((m, alpha, beta, gamma, sse));
            }
        }
        let Some((period, alpha, beta, gamma, sse)) = chosen else {
            return Err(ForecastError::TooFewPoints {
                needed: 2 * min_period + 1,
                got: n,
            });
        };

        let fitted = replay(&values, period, alpha, beta, gamma, true);
        let last_time = series.last().map(|p| p.time).unwrap_or(0.0);
        Ok(HoltWintersModel {
            level: fitted.level,
            trend: fitted.trend,
            season: fitted.season,
            next_phase: n % period,
            alpha,
            beta,
            gamma,
            period,
            sse,
            last_time,
            cadence,
            residuals: fitted.residuals,
        })
    }
}

/// A fitted additive Holt-Winters model.
#[derive(Debug, Clone)]
pub struct HoltWintersModel {
    level: f64,
    trend: f64,
    season: Vec<f64>,
    /// Seasonal index of the first forecast step (`n mod m`).
    next_phase: usize,
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
    sse: f64,
    last_time: f64,
    cadence: f64,
    residuals: Vec<f64>,
}

impl HoltWintersModel {
    /// The fitted (or pinned) seasonal period, in samples.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Fitted smoothing parameters (α, β, γ).
    pub fn params(&self) -> (f64, f64, f64) {
        (self.alpha, self.beta, self.gamma)
    }

    /// One-step squared-error sum of the winning fit.
    pub fn sse(&self) -> f64 {
        self.sse
    }

    /// The forecast cadence (mean sample spacing), seconds.
    pub fn cadence(&self) -> f64 {
        self.cadence
    }
}

impl ForecastModel for HoltWintersModel {
    fn predict(&self, horizon_secs: f64) -> Result<Vec<DataPoint>, ForecastError> {
        let steps = horizon_steps(horizon_secs, self.cadence)?;
        let mut out = Vec::with_capacity(steps);
        for i in 1..=steps {
            let idx = (self.next_phase + i - 1) % self.period;
            let seasonal = self.season.get(idx).copied().unwrap_or(0.0);
            out.push(DataPoint {
                time: self.last_time + self.cadence * i as f64,
                value: self.level + self.trend * i as f64 + seasonal,
            });
        }
        Ok(out)
    }

    fn residuals(&self) -> &[f64] {
        &self.residuals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::ResidualDiagnostics;

    fn seasonal_series(n: usize, period: usize, slope: f64) -> Series {
        let mut s = Series::new();
        for t in 0..n {
            let phase = (t % period) as f64 / period as f64;
            let seasonal = (phase * std::f64::consts::TAU).sin() * 500.0;
            s.push(t as f64 * 10.0, 8_000.0 + slope * t as f64 + seasonal);
        }
        s
    }

    #[test]
    fn fit_recovers_pinned_period_trend_direction() {
        let series = seasonal_series(96, 12, 5.0);
        let model = HoltWinters::with_period(12).fit(&series).unwrap();
        assert_eq!(model.period(), 12);
        // Slope is 5 per sample; the fitted trend must be positive and of
        // the right magnitude.
        assert!(model.trend > 1.0 && model.trend < 10.0, "{}", model.trend);
    }

    #[test]
    fn auto_scan_recovers_the_true_period() {
        let series = seasonal_series(120, 12, 2.0);
        let model = HoltWinters::auto(24).fit(&series).unwrap();
        // The scan may lock onto the period or a harmonic; either way it
        // must divide evenly into the truth for the forecast to phase-align.
        assert_eq!(model.period() % 12, 0, "period {}", model.period());
    }

    #[test]
    fn forecast_extends_beyond_last_time_at_cadence() {
        let series = seasonal_series(60, 6, 0.0);
        let model = HoltWinters::with_period(6).fit(&series).unwrap();
        let last = series.last().unwrap().time;
        let f = model.predict(30.0).unwrap();
        assert_eq!(f.len(), 3); // cadence 10s → 3 steps cover 30s
        assert!(f.iter().all(|p| p.time > last));
        assert!((f.last().unwrap().time - (last + 30.0)).abs() < 1e-9);
        assert!(f.iter().all(|p| p.value.is_finite()));
    }

    #[test]
    fn residual_diagnostics_are_tight_on_clean_signal() {
        let series = seasonal_series(96, 12, 5.0);
        let model = HoltWinters::with_period(12).fit(&series).unwrap();
        let d: ResidualDiagnostics = model.diagnostics();
        assert_eq!(d.n, 96);
        // Signal amplitude is 500; a fitted model must do far better than
        // predicting the mean.
        assert!(d.rmse < 100.0, "rmse {}", d.rmse);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let series = seasonal_series(10, 4, 0.0);
        assert!(matches!(
            HoltWinters::with_period(1).fit(&series),
            Err(ForecastError::BadPeriod(1))
        ));
        assert!(matches!(
            HoltWinters::with_period(24).fit(&series),
            Err(ForecastError::TooFewPoints { .. })
        ));
        let mut tiny = Series::new();
        tiny.push(0.0, 1.0);
        assert!(HoltWinters::auto(8).fit(&tiny).is_err());
    }

    #[test]
    fn bad_horizons_are_typed_errors() {
        let series = seasonal_series(60, 6, 0.0);
        let model = HoltWinters::with_period(6).fit(&series).unwrap();
        assert!(model.predict(0.0).is_err());
        assert!(model.predict(-1.0).is_err());
        assert!(model.predict(f64::NAN).is_err());
        assert!(model.predict(f64::INFINITY).is_err());
    }

    #[test]
    fn fit_is_deterministic() {
        let series = seasonal_series(96, 12, 3.0);
        let a = HoltWinters::auto(16).fit(&series).unwrap();
        let b = HoltWinters::auto(16).fit(&series).unwrap();
        assert_eq!(a.params(), b.params());
        assert_eq!(a.period(), b.period());
        let fa = a.predict(60.0).unwrap();
        let fb = b.predict(60.0).unwrap();
        for (pa, pb) in fa.iter().zip(&fb) {
            assert_eq!(pa.value.to_bits(), pb.value.to_bits());
        }
    }
}

//! Classical time-series forecasting over `metricsdb` series.
//!
//! The paper's controller (Algorithms 1–2) is purely reactive: it re-tunes
//! only after a rate change has already degraded latency. This crate is the
//! forecasting front-end for the opt-in *proactive* mode: fit a model on
//! the trailing producer-rate series, extrapolate over the next control
//! interval, and let the controller warm-start its benefit model before
//! the rate arrives (ROADMAP "Proactive scaling via rate forecasting").
//!
//! Two pure-rust classical models, both O(n) per evaluation pass:
//!
//! - [`HoltWinters`] — additive level/trend/season exponential smoothing.
//!   Smoothing parameters (α, β, γ) are fit by coordinate descent over a
//!   grid on the one-step-ahead squared-error objective; the season length
//!   is either pinned ([`HoltWinters::with_period`]) or scanned
//!   ([`HoltWinters::auto`]).
//! - [`ArPredictor`] — an AR(p) autoregression fit by Yule-Walker: the
//!   Toeplitz autocovariance system is solved with the jitter-robust
//!   [`autrascale_linalg::Cholesky`] used by the GP layer.
//!
//! Both models report one-step-ahead residual diagnostics
//! ([`ForecastModel::diagnostics`]) so callers can gate decisions on the
//! model's in-sample error instead of trusting point forecasts blindly.
//!
//! Points are treated as equally spaced at the series' mean cadence; the
//! simulator emits metrics on a fixed interval, so this holds by
//! construction for the rate series this crate targets.
//!
//! Determinism: fitting is pure arithmetic over the input series — no
//! randomness, no ambient time, no hash iteration — so equal inputs give
//! bit-equal models and forecasts on every platform.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod ar;
mod error;
mod holt_winters;
mod predictor;

pub use ar::{ArModel, ArPredictor};
pub use error::ForecastError;
pub use holt_winters::{HoltWinters, HoltWintersModel};
pub use predictor::{sample_cadence, ForecastModel, Predictor, ResidualDiagnostics};

//! The pluggable predictor trait and shared fit plumbing.

use crate::error::ForecastError;
use autrascale_metricsdb::{DataPoint, Series};

/// A forecasting algorithm: configuration that fits a [`ForecastModel`]
/// to a series.
pub trait Predictor {
    /// The fitted model type.
    type Model: ForecastModel;

    /// Fits a model to the series. Points are treated as equally spaced
    /// at the series' mean cadence.
    fn fit(&self, series: &Series) -> Result<Self::Model, ForecastError>;
}

/// A fitted forecaster: extrapolates beyond the last observed point and
/// exposes its one-step-ahead in-sample residuals.
pub trait ForecastModel: std::fmt::Debug {
    /// Forecast points after the last observation, one per fitted cadence
    /// step, covering at least `horizon_secs` of future time (the final
    /// point's timestamp is `>= last_time + horizon_secs`).
    fn predict(&self, horizon_secs: f64) -> Result<Vec<DataPoint>, ForecastError>;

    /// One-step-ahead residuals (observed − forecast) accumulated while
    /// replaying the training series.
    fn residuals(&self) -> &[f64];

    /// Summary statistics of [`residuals`](Self::residuals).
    fn diagnostics(&self) -> ResidualDiagnostics {
        ResidualDiagnostics::from_residuals(self.residuals())
    }
}

/// Summary of one-step-ahead forecast errors; the controller gates
/// proactive decisions on these instead of trusting point forecasts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualDiagnostics {
    /// Number of one-step forecasts scored.
    pub n: usize,
    /// Mean signed error (bias; positive = model under-forecasts).
    pub mean_error: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Root-mean-squared error.
    pub rmse: f64,
}

impl ResidualDiagnostics {
    /// Computes the summary; all-zero for an empty residual set.
    pub fn from_residuals(residuals: &[f64]) -> Self {
        let n = residuals.len();
        if n == 0 {
            return ResidualDiagnostics {
                n: 0,
                mean_error: 0.0,
                mae: 0.0,
                rmse: 0.0,
            };
        }
        let inv = 1.0 / n as f64;
        let mean_error = residuals.iter().sum::<f64>() * inv;
        let mae = residuals.iter().map(|r| r.abs()).sum::<f64>() * inv;
        let rmse = (residuals.iter().map(|r| r * r).sum::<f64>() * inv).sqrt();
        ResidualDiagnostics {
            n,
            mean_error,
            mae,
            rmse,
        }
    }
}

/// Mean spacing between consecutive points — the cadence forecasts are
/// emitted at. Errors when fewer than two points or no positive span.
pub fn sample_cadence(series: &Series) -> Result<f64, ForecastError> {
    let points = series.points();
    let (Some(first), Some(last)) = (points.first(), points.last()) else {
        return Err(ForecastError::TooFewPoints {
            needed: 2,
            got: points.len(),
        });
    };
    if points.len() < 2 {
        return Err(ForecastError::TooFewPoints {
            needed: 2,
            got: points.len(),
        });
    }
    let span = last.time - first.time;
    let cadence = span / (points.len() - 1) as f64;
    if cadence > 0.0 && cadence.is_finite() {
        Ok(cadence)
    } else {
        Err(ForecastError::NonPositiveCadence)
    }
}

/// Extracts values, validating finiteness and minimum length.
pub(crate) fn checked_values(series: &Series, needed: usize) -> Result<Vec<f64>, ForecastError> {
    let points = series.points();
    if points.len() < needed {
        return Err(ForecastError::TooFewPoints {
            needed,
            got: points.len(),
        });
    }
    if points.iter().any(|p| !p.value.is_finite()) {
        return Err(ForecastError::NonFiniteInput);
    }
    Ok(points.iter().map(|p| p.value).collect())
}

/// Validates a horizon and converts it to a step count at `cadence`
/// (ceiling, at least one step).
pub(crate) fn horizon_steps(horizon_secs: f64, cadence: f64) -> Result<usize, ForecastError> {
    if !horizon_secs.is_finite() || horizon_secs <= 0.0 {
        return Err(ForecastError::BadHorizon(horizon_secs));
    }
    let steps = (horizon_secs / cadence).ceil();
    // Cap pathological horizons (e.g. horizon ≫ cadence·usize::MAX).
    if steps >= 1e9 {
        return Err(ForecastError::BadHorizon(horizon_secs));
    }
    Ok((steps as usize).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_of_empty_residuals_are_zero() {
        let d = ResidualDiagnostics::from_residuals(&[]);
        assert_eq!(d.n, 0);
        assert_eq!(d.mae, 0.0);
        assert_eq!(d.rmse, 0.0);
    }

    #[test]
    fn diagnostics_match_hand_computation() {
        let d = ResidualDiagnostics::from_residuals(&[1.0, -1.0, 3.0, -3.0]);
        assert_eq!(d.n, 4);
        assert!((d.mean_error - 0.0).abs() < 1e-12);
        assert!((d.mae - 2.0).abs() < 1e-12);
        assert!((d.rmse - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cadence_is_mean_spacing() {
        let mut s = Series::new();
        s.push(0.0, 1.0);
        s.push(1.0, 1.0);
        s.push(4.0, 1.0);
        let c = sample_cadence(&s).unwrap();
        assert!((c - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cadence_rejects_degenerate_series() {
        let mut s = Series::new();
        s.push(1.0, 1.0);
        assert!(matches!(
            sample_cadence(&s),
            Err(ForecastError::TooFewPoints { .. })
        ));
        s.push(1.0, 2.0);
        assert_eq!(sample_cadence(&s), Err(ForecastError::NonPositiveCadence));
    }

    #[test]
    fn horizon_steps_rounds_up_and_validates() {
        assert_eq!(horizon_steps(30.0, 10.0), Ok(3));
        assert_eq!(horizon_steps(25.0, 10.0), Ok(3));
        assert_eq!(horizon_steps(1.0, 10.0), Ok(1));
        assert!(horizon_steps(0.0, 10.0).is_err());
        assert!(horizon_steps(-5.0, 10.0).is_err());
        assert!(horizon_steps(f64::NAN, 10.0).is_err());
        assert!(horizon_steps(f64::INFINITY, 10.0).is_err());
    }
}

//! AR(p) autoregression fit by Yule-Walker.
//!
//! The mean-centered series `d_t = y_t − μ` is modeled as
//! `d_t = Σ_{j=1..p} φ_j d_{t−j} + ε_t`. The Yule-Walker equations
//! `R φ = r` use the biased autocovariance estimate (divisor `n`), which
//! keeps the Toeplitz matrix `R[i][j] = c[|i−j|]` positive semi-definite,
//! so the jitter-escalating [`Cholesky`] from `autrascale_linalg` — the
//! same factorization under the GP surrogate — solves it robustly.

use crate::error::ForecastError;
use crate::predictor::{checked_values, horizon_steps, sample_cadence, ForecastModel, Predictor};
use autrascale_linalg::{Cholesky, Matrix};
use autrascale_metricsdb::{DataPoint, Series};

/// AR(p) predictor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ArPredictor {
    order: usize,
}

impl ArPredictor {
    /// An autoregression of the given order (≥ 1; validated at fit).
    pub fn new(order: usize) -> Self {
        ArPredictor { order }
    }
}

/// Biased autocovariances `c[0..=lags]` of the centered values.
fn autocovariance(centered: &[f64], lags: usize) -> Vec<f64> {
    let n = centered.len();
    let inv = 1.0 / n as f64;
    (0..=lags)
        .map(|k| {
            centered
                .iter()
                .zip(centered.iter().skip(k))
                .map(|(a, b)| a * b)
                .sum::<f64>()
                * inv
        })
        .collect()
}

impl Predictor for ArPredictor {
    type Model = ArModel;

    fn fit(&self, series: &Series) -> Result<ArModel, ForecastError> {
        let p = self.order;
        if p == 0 {
            return Err(ForecastError::BadOrder(0));
        }
        // p lags plus at least two scored forecasts.
        let values = checked_values(series, p + 2)?;
        let cadence = sample_cadence(series)?;
        let n = values.len();
        let mu = values.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = values.iter().map(|v| v - mu).collect();

        let c = autocovariance(&centered, p);
        let c0 = c.first().copied().unwrap_or(0.0);
        if c0 <= 0.0 {
            // A constant series has zero variance: Yule-Walker is
            // degenerate, but the flat forecast μ is exact.
            let residuals = vec![0.0; n.saturating_sub(p)];
            let last_time = series.last().map(|q| q.time).unwrap_or(0.0);
            return Ok(ArModel {
                phi: vec![0.0; p],
                mu,
                history: vec![0.0; p],
                last_time,
                cadence,
                residuals,
            });
        }
        let toeplitz = Matrix::from_fn(p, p, |i, j| {
            let lag = i.abs_diff(j);
            c.get(lag).copied().unwrap_or(0.0)
        });
        let rhs: Vec<f64> = c.iter().skip(1).take(p).copied().collect();
        let chol = Cholesky::decompose(&toeplitz).map_err(|_| ForecastError::Singular)?;
        let phi = chol.solve(&rhs);

        // One-step-ahead residuals over the training window: forecast
        // d_t from the p previous deviations.
        let residuals: Vec<f64> = (p..n)
            .map(|t| {
                let predicted: f64 = phi
                    .iter()
                    .enumerate()
                    .map(|(j, f)| f * centered.get(t - 1 - j).copied().unwrap_or(0.0))
                    .sum();
                centered.get(t).copied().unwrap_or(0.0) - predicted
            })
            .collect();

        // Most-recent-first deviations seed the recursive forecast.
        let history: Vec<f64> = centered.iter().rev().take(p).copied().collect();
        let last_time = series.last().map(|q| q.time).unwrap_or(0.0);
        Ok(ArModel {
            phi,
            mu,
            history,
            last_time,
            cadence,
            residuals,
        })
    }
}

/// A fitted AR(p) model.
#[derive(Debug, Clone)]
pub struct ArModel {
    /// AR coefficients, lag 1 first.
    phi: Vec<f64>,
    mu: f64,
    /// Last `p` centered observations, most recent first.
    history: Vec<f64>,
    last_time: f64,
    cadence: f64,
    residuals: Vec<f64>,
}

impl ArModel {
    /// Fitted coefficients, lag 1 first.
    pub fn coefficients(&self) -> &[f64] {
        &self.phi
    }

    /// Series mean the autoregression is centered on.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// The forecast cadence (mean sample spacing), seconds.
    pub fn cadence(&self) -> f64 {
        self.cadence
    }
}

impl ForecastModel for ArModel {
    fn predict(&self, horizon_secs: f64) -> Result<Vec<DataPoint>, ForecastError> {
        let steps = horizon_steps(horizon_secs, self.cadence)?;
        let mut history = self.history.clone();
        let mut out = Vec::with_capacity(steps);
        for i in 1..=steps {
            let next: f64 = self
                .phi
                .iter()
                .zip(history.iter())
                .map(|(f, d)| f * d)
                .sum();
            out.push(DataPoint {
                time: self.last_time + self.cadence * i as f64,
                value: self.mu + next,
            });
            history.insert(0, next);
            history.truncate(self.phi.len());
        }
        Ok(out)
    }

    fn residuals(&self) -> &[f64] {
        &self.residuals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1_series(n: usize, phi: f64, seed: u64) -> Series {
        // Deterministic splitmix64 noise, no external rng.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64) - 0.5
        };
        let mut s = Series::new();
        let mut d = 0.0;
        for t in 0..n {
            d = phi * d + next() * 100.0;
            s.push(t as f64 * 5.0, 10_000.0 + d);
        }
        s
    }

    #[test]
    fn recovers_ar1_coefficient_sign_and_scale() {
        let series = ar1_series(400, 0.8, 7);
        let model = ArPredictor::new(1).fit(&series).unwrap();
        let phi1 = model.coefficients().first().copied().unwrap();
        assert!((phi1 - 0.8).abs() < 0.15, "phi1 {phi1}");
        assert!((model.mean() - 10_000.0).abs() < 200.0);
    }

    #[test]
    fn forecast_decays_toward_the_mean() {
        let series = ar1_series(400, 0.7, 3);
        let model = ArPredictor::new(2).fit(&series).unwrap();
        let f = model.predict(5.0 * 50.0).unwrap();
        assert_eq!(f.len(), 50);
        let first_dev = (f.first().unwrap().value - model.mean()).abs();
        let last_dev = (f.last().unwrap().value - model.mean()).abs();
        assert!(last_dev <= first_dev + 1e-9, "{first_dev} -> {last_dev}");
        assert!(f.iter().all(|p| p.value.is_finite()));
    }

    #[test]
    fn constant_series_forecasts_flat_without_singular_error() {
        let mut s = Series::new();
        for t in 0..20 {
            s.push(t as f64, 42.0);
        }
        let model = ArPredictor::new(3).fit(&s).unwrap();
        let f = model.predict(5.0).unwrap();
        assert!(f.iter().all(|p| (p.value - 42.0).abs() < 1e-9));
        assert!(model.residuals().iter().all(|r| r.abs() < 1e-9));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let series = ar1_series(10, 0.5, 1);
        assert!(matches!(
            ArPredictor::new(0).fit(&series),
            Err(ForecastError::BadOrder(0))
        ));
        assert!(matches!(
            ArPredictor::new(20).fit(&series),
            Err(ForecastError::TooFewPoints { .. })
        ));
    }

    #[test]
    fn residuals_shrink_with_model_order_on_ar2_signal() {
        // An AR(2)-ish signal: order-2 fit must not be worse than order-1.
        let mut s = Series::new();
        let (mut d1, mut d2) = (50.0, -30.0);
        for t in 0..300 {
            let d = 0.6 * d1 - 0.3 * d2 + ((t * 2654435761_usize) % 97) as f64 - 48.0;
            s.push(t as f64, 5_000.0 + d);
            d2 = d1;
            d1 = d;
        }
        let m1 = ArPredictor::new(1).fit(&s).unwrap();
        let m2 = ArPredictor::new(2).fit(&s).unwrap();
        use crate::predictor::ForecastModel;
        assert!(m2.diagnostics().rmse <= m1.diagnostics().rmse * 1.05);
    }

    #[test]
    fn fit_is_deterministic() {
        let series = ar1_series(200, 0.6, 11);
        let a = ArPredictor::new(3).fit(&series).unwrap();
        let b = ArPredictor::new(3).fit(&series).unwrap();
        for (x, y) in a.coefficients().iter().zip(b.coefficients()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let fa = a.predict(100.0).unwrap();
        let fb = b.predict(100.0).unwrap();
        for (pa, pb) in fa.iter().zip(&fb) {
            assert_eq!(pa.value.to_bits(), pb.value.to_bits());
        }
    }
}

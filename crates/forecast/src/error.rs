//! Typed forecasting errors.

use std::fmt;

/// Errors from fitting or evaluating a forecaster.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// The series is shorter than the model's minimum fit length.
    TooFewPoints {
        /// Minimum points the model needs.
        needed: usize,
        /// Points actually available.
        got: usize,
    },
    /// A non-finite value or timestamp in the input (defence in depth —
    /// `Series::push` rejects these at ingest).
    NonFiniteInput,
    /// The series has no positive time spacing (all points share one
    /// timestamp), so no forecast cadence exists.
    NonPositiveCadence,
    /// A forecast horizon that is not positive and finite.
    BadHorizon(f64),
    /// A seasonal period outside `2..` (Holt-Winters needs at least two
    /// observations per season to separate level from season).
    BadPeriod(usize),
    /// An autoregressive order of zero.
    BadOrder(usize),
    /// The Yule-Walker system was numerically singular even after jitter
    /// escalation (constant series degenerate here).
    Singular,
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::TooFewPoints { needed, got } => {
                write!(
                    f,
                    "series too short to fit: need {needed} points, got {got}"
                )
            }
            ForecastError::NonFiniteInput => write!(f, "non-finite value in input series"),
            ForecastError::NonPositiveCadence => {
                write!(f, "series has no positive time spacing")
            }
            ForecastError::BadHorizon(h) => {
                write!(f, "forecast horizon must be positive and finite, got {h}")
            }
            ForecastError::BadPeriod(m) => {
                write!(f, "seasonal period must be at least 2, got {m}")
            }
            ForecastError::BadOrder(p) => write!(f, "AR order must be at least 1, got {p}"),
            ForecastError::Singular => {
                write!(f, "Yule-Walker system singular (constant series?)")
            }
        }
    }
}

impl std::error::Error for ForecastError {}

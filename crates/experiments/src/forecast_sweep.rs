//! Proactive-forecasting sweep — SLO-violating windows and Kafka lag,
//! proactive vs reactive MAPE loop on the seeded diurnal and flash-crowd
//! scenarios.
//!
//! For each (scenario, mode, seed) point the full MAPE loop runs to the
//! scenario's horizon at an equal simulated-time budget; the only toggle
//! is [`AuTraScaleConfig::proactive_forecasting`]. Scores are computed
//! post-hoc from the metric store over the whole run, so optimization
//! probes and restart downtime are charged to the mode that incurred
//! them. The `lag avoided` columns are reactive-minus-proactive deltas:
//! positive means forecasting kept the job ahead of the rate change.

use crate::output;
use autrascale::{AuTraScaleConfig, ControllerEvent, MapeController};
use autrascale_flinkctl::FlinkCluster;
use autrascale_metricsdb::Query;
use autrascale_streamsim::metrics;
use autrascale_workloads::scenarios::{diurnal, flash_crowd, Scenario};
use rayon::prelude::*;
use serde::Serialize;

/// One (scenario, mode) row, averaged over the sweep seeds.
#[derive(Debug, Clone, Serialize)]
pub struct ForecastRow {
    /// Scenario name (`diurnal`, `flash-crowd`).
    pub scenario: &'static str,
    /// `true` for the proactive forecasting mode, `false` for reactive.
    pub proactive: bool,
    /// Mean SLO-violating `policy_interval` windows over the run.
    pub violating_windows: f64,
    /// Mean of the per-run peak Kafka consumer lag, records.
    pub peak_kafka_lag: f64,
    /// Mean Kafka consumer lag over the whole run, records.
    pub mean_kafka_lag: f64,
    /// Mean re-optimizations (throughput + elasticity passes) run.
    pub retunes: f64,
    /// Mean proactive forecast triggers (always 0 for reactive rows).
    pub forecast_triggers: f64,
}

/// Reactive-minus-proactive deltas for one scenario.
#[derive(Debug, Clone, Serialize)]
pub struct LagAvoided {
    /// Scenario name.
    pub scenario: &'static str,
    /// Violating windows avoided by forecasting (positive = proactive
    /// better).
    pub windows_avoided: f64,
    /// Peak-lag reduction in records (positive = proactive better).
    pub peak_lag_avoided: f64,
}

/// The sweep report: two rows per scenario plus per-scenario deltas.
#[derive(Debug, Clone, Serialize)]
pub struct ForecastSweepReport {
    pub rows: Vec<ForecastRow>,
    pub lag_avoided: Vec<LagAvoided>,
}

/// Raw scores of one end-to-end MAPE run.
struct RunScore {
    violating_windows: usize,
    peak_kafka_lag: f64,
    mean_kafka_lag: f64,
    retunes: usize,
    forecast_triggers: usize,
}

/// The battery pair and per-scenario horizons. Flash-crowd runs past the
/// point where the reactive loop pays its second re-optimization at the
/// 30k peak; diurnal covers most of one day/night cycle.
fn battery() -> Vec<(Scenario, f64)> {
    vec![(diurnal(), 1_500.0), (flash_crowd(), 2_400.0)]
}

/// Budget-matched controller config; `proactive` toggles only the
/// forecasting front-end. Mirrors `tests/forecast_proactive.rs` so the
/// sweep reproduces the pinned regressions.
fn battery_config(s: &Scenario, seed: u64, proactive: bool) -> AuTraScaleConfig {
    let cfg = AuTraScaleConfig {
        target_latency_ms: s.target_latency_ms,
        policy_running_time: 60.0,
        bootstrap_m: 3,
        max_bo_iters: 5,
        n_num: 3,
        seed,
        ..Default::default()
    };
    if proactive {
        cfg.with_proactive_forecasting()
    } else {
        cfg
    }
}

/// One end-to-end run: MAPE loop to the horizon, then post-hoc scoring
/// from the metric store.
fn run_point(s: &Scenario, seed: u64, proactive: bool, horizon_secs: f64) -> RunScore {
    let mut fc = FlinkCluster::new(s.build(seed).expect("scenario builds"));
    fc.submit(&s.initial_parallelism).expect("submit");
    fc.run_for(60.0).expect("warmup");
    let cfg = battery_config(s, seed, proactive);
    let interval = cfg.policy_interval;
    let target = cfg.target_latency_ms;
    let mut ctrl = MapeController::new(cfg);
    let mut retunes = 0usize;
    let mut forecast_triggers = 0usize;
    while fc.now() < horizon_secs {
        for e in ctrl.activate(&mut fc).expect("activation") {
            match e {
                ControllerEvent::ThroughputOptimized(_) => retunes += 1,
                ControllerEvent::RateForecasted { .. } => forecast_triggers += 1,
                _ => {}
            }
        }
        fc.run_for(interval).expect("interval advance");
    }

    let store = fc.simulation().store();
    let end = fc.now();
    let latency_key = metrics::job_key(metrics::PROCESSING_LATENCY_MS);
    let mut violating_windows = 0usize;
    let mut t = 0.0;
    while t < end {
        let mean = store
            .window_mean(&latency_key, t, (t + interval).min(end))
            .expect("finite bounds")
            .unwrap_or(0.0);
        if mean > target {
            violating_windows += 1;
        }
        t += interval;
    }

    let lag: Vec<f64> = store
        .select(&Query::new(metrics::KAFKA_LAG, 0.0, end))
        .expect("finite bounds")
        .into_iter()
        .flat_map(|(_, pts)| pts)
        .map(|p| p.value)
        .collect();
    let peak_kafka_lag = lag.iter().copied().fold(0.0, f64::max);
    let mean_kafka_lag = if lag.is_empty() {
        0.0
    } else {
        lag.iter().sum::<f64>() / lag.len() as f64
    };

    RunScore {
        violating_windows,
        peak_kafka_lag,
        mean_kafka_lag,
        retunes,
        forecast_triggers,
    }
}

/// Runs the battery × {reactive, proactive} × seeds grid — every point is
/// an independent simulation, so the grid parallelizes — then aggregates
/// serially in grid order for byte-identical reports.
pub fn run(seed: u64) -> ForecastSweepReport {
    let seeds: Vec<u64> = (0..3).map(|i| seed.wrapping_add(i * 7919)).collect();
    let battery = battery();
    let grid: Vec<(usize, bool, u64)> = battery
        .iter()
        .enumerate()
        .flat_map(|(i, _)| {
            [false, true]
                .into_iter()
                .flat_map(|p| seeds.iter().map(move |&s| (i, p, s)))
                .collect::<Vec<_>>()
        })
        .collect();
    let points: Vec<RunScore> = grid
        .par_iter()
        .map(|&(i, p, s)| {
            let (scenario, horizon) = &battery[i];
            run_point(scenario, s, p, *horizon)
        })
        .collect();

    let n = seeds.len() as f64;
    let mut rows = Vec::new();
    for (chunk, &(i, p, _)) in points
        .chunks(seeds.len())
        .zip(grid.iter().step_by(seeds.len()))
    {
        let mut windows = 0.0;
        let mut peak = 0.0;
        let mut mean_lag = 0.0;
        let mut retunes = 0.0;
        let mut triggers = 0.0;
        for r in chunk {
            windows += r.violating_windows as f64;
            peak += r.peak_kafka_lag;
            mean_lag += r.mean_kafka_lag;
            retunes += r.retunes as f64;
            triggers += r.forecast_triggers as f64;
        }
        let (scenario, _) = &battery[i];
        rows.push(ForecastRow {
            scenario: scenario.name,
            proactive: p,
            violating_windows: windows / n,
            peak_kafka_lag: peak / n,
            mean_kafka_lag: mean_lag / n,
            retunes: retunes / n,
            forecast_triggers: triggers / n,
        });
    }

    let lag_avoided = battery
        .iter()
        .map(|(s, _)| {
            let pick = |proactive: bool, f: fn(&ForecastRow) -> f64| {
                rows.iter()
                    .find(|r| r.scenario == s.name && r.proactive == proactive)
                    .map(f)
                    .unwrap_or(0.0)
            };
            LagAvoided {
                scenario: s.name,
                windows_avoided: pick(false, |r| r.violating_windows)
                    - pick(true, |r| r.violating_windows),
                peak_lag_avoided: pick(false, |r| r.peak_kafka_lag)
                    - pick(true, |r| r.peak_kafka_lag),
            }
        })
        .collect();

    let report = ForecastSweepReport { rows, lag_avoided };

    let dir = output::results_dir();
    let csv_rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.proactive.to_string(),
                format!("{:.2}", r.violating_windows),
                format!("{:.0}", r.peak_kafka_lag),
                format!("{:.0}", r.mean_kafka_lag),
                format!("{:.2}", r.retunes),
                format!("{:.2}", r.forecast_triggers),
            ]
        })
        .collect();
    output::write_csv(
        &dir.join("forecast_sweep.csv"),
        &[
            "scenario",
            "proactive",
            "violating_windows",
            "peak_kafka_lag",
            "mean_kafka_lag",
            "retunes",
            "forecast_triggers",
        ],
        csv_rows,
    )
    .expect("write forecast_sweep.csv");
    output::write_json(&dir.join("forecast_sweep.json"), &report)
        .expect("write forecast_sweep.json");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_both_scenarios_in_both_modes() {
        let report = run(0xF0CA);
        assert_eq!(report.rows.len(), 4);
        for (s, _) in battery() {
            for p in [false, true] {
                let row = report
                    .rows
                    .iter()
                    .find(|r| r.scenario == s.name && r.proactive == p)
                    .expect("row for every (scenario, mode) pair");
                if p {
                    assert!(row.forecast_triggers >= 0.0);
                } else {
                    assert_eq!(row.forecast_triggers, 0.0);
                }
            }
        }
        assert_eq!(report.lag_avoided.len(), 2);
    }

    #[test]
    fn flash_crowd_deltas_favor_proactive() {
        // The same inequality `tests/forecast_proactive.rs` pins per-seed,
        // here at the sweep's aggregated operating point.
        let report = run(42);
        let fc = report
            .lag_avoided
            .iter()
            .find(|d| d.scenario == "flash-crowd")
            .expect("flash-crowd delta");
        assert!(
            fc.windows_avoided > 0.0,
            "expected proactive to avoid violating windows, delta {}",
            fc.windows_avoided
        );
    }
}

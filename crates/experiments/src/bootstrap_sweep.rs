//! Bootstrap-size sweep — §V-C's observation "the more train samples,
//! the fewer iterations", which the paper states (WordCount trained with
//! 10 samples vs Yahoo with 40) but does not tabulate.
//!
//! Sweeps the uniform-family size `M` of the §III-D bootstrap design and
//! measures how many BO iterations Algorithm 1 needs afterwards, plus the
//! quality of the terminal configuration. Expected shape: iterations fall
//! (or stay flat) as the initial design grows, at the cost of more
//! bootstrap evaluations — the exploration is paid for either way, but
//! designed samples are better placed than acquisition-driven ones early
//! on.

use crate::{output, paper_config};
use autrascale::{Algorithm1, ThroughputOptimizer};
use autrascale_flinkctl::FlinkCluster;
use autrascale_streamsim::Simulation;
use autrascale_workloads::wordcount;
use serde::Serialize;

/// One sweep point, averaged over several seeds (BO is stochastic; a
/// single run per M would mostly show acquisition variance).
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Uniform-family size M of the bootstrap design.
    pub bootstrap_m: usize,
    /// Bootstrap samples evaluated (after dedup, incl. base + one-hots).
    pub bootstrap_samples: usize,
    /// Mean BO iterations to termination across seeds.
    pub bo_iterations: f64,
    /// Mean total cluster evaluations (bootstrap + BO).
    pub total_evaluations: f64,
    /// Mean terminal Σ parallelism.
    pub total_parallelism: f64,
    /// Mean terminal latency, ms.
    pub final_latency_ms: f64,
    /// Fraction of seeds whose terminal configuration met QoS.
    pub qos_success_rate: f64,
}

/// The sweep report.
#[derive(Debug, Clone, Serialize)]
pub struct BootstrapSweepReport {
    /// One row per M.
    pub rows: Vec<SweepRow>,
}

/// Runs the sweep on WordCount at its paper rate, with a latency target
/// tightened to 140 ms so the throughput-optimal base does NOT already
/// satisfy QoS — the BO loop has real work to do at every M.
pub fn run(seed: u64) -> BootstrapSweepReport {
    let mut w = wordcount();
    w.target_latency_ms = 140.0;
    let ms = [2usize, 5, 10, 15];
    let seeds = [seed, seed + 1000, seed + 2000];
    let rows: Vec<SweepRow> = std::thread::scope(|scope| {
        let handles: Vec<_> = ms
            .iter()
            .map(|&m| {
                let w = w.clone();
                scope.spawn(move || {
                    let mut boot = 0usize;
                    let mut iters = 0.0;
                    let mut total_p = 0.0;
                    let mut latency = 0.0;
                    let mut met = 0usize;
                    for &run_seed in &seeds {
                        let sim =
                            Simulation::new(w.default_config(run_seed)).expect("valid workload");
                        let mut cluster = FlinkCluster::new(sim);
                        let mut config = paper_config(&w, run_seed);
                        config.bootstrap_m = m;
                        let thr = ThroughputOptimizer::new(&config)
                            .run(&mut cluster)
                            .expect("throughput phase");
                        let alg1 = Algorithm1::new(&config, thr.final_parallelism, w.p_max());
                        let outcome = alg1.run(&mut cluster, Vec::new()).expect("Algorithm 1");
                        boot = outcome.bootstrap_samples;
                        iters += outcome.iterations as f64;
                        total_p += outcome
                            .final_parallelism
                            .iter()
                            .map(|&p| f64::from(p))
                            .sum::<f64>();
                        latency += outcome.final_latency_ms;
                        met += usize::from(outcome.meets_qos);
                    }
                    let n = seeds.len() as f64;
                    SweepRow {
                        bootstrap_m: m,
                        bootstrap_samples: boot,
                        bo_iterations: iters / n,
                        total_evaluations: boot as f64 + iters / n,
                        total_parallelism: total_p / n,
                        final_latency_ms: latency / n,
                        qos_success_rate: met as f64 / n,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread"))
            .collect()
    });

    let report = BootstrapSweepReport { rows };
    let dir = output::results_dir();
    output::write_csv(
        &dir.join("bootstrap_sweep.csv"),
        &[
            "bootstrap_m",
            "bootstrap_samples",
            "bo_iterations",
            "total_evaluations",
            "total_parallelism",
            "final_latency_ms",
            "qos_success_rate",
        ],
        report.rows.iter().map(|r| {
            vec![
                r.bootstrap_m.to_string(),
                r.bootstrap_samples.to_string(),
                format!("{:.1}", r.bo_iterations),
                format!("{:.1}", r.total_evaluations),
                format!("{:.1}", r.total_parallelism),
                format!("{:.1}", r.final_latency_ms),
                format!("{:.2}", r.qos_success_rate),
            ]
        }),
    )
    .expect("write sweep csv");
    output::write_json(&dir.join("bootstrap_sweep.json"), &report).expect("write sweep json");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_row_accounting_is_consistent() {
        // A single fast point (not the full sweep) to keep test time sane.
        let w = wordcount();
        let sim = Simulation::new(w.default_config(3)).unwrap();
        let mut cluster = FlinkCluster::new(sim);
        let mut config = paper_config(&w, 3);
        config.bootstrap_m = 3;
        config.max_bo_iters = 6;
        config.policy_running_time = 150.0;
        let thr = ThroughputOptimizer::new(&config).run(&mut cluster).unwrap();
        let alg1 = Algorithm1::new(&config, thr.final_parallelism, w.p_max());
        let outcome = alg1.run(&mut cluster, Vec::new()).unwrap();
        // Base + up to M uniform + up to N one-hot, minus dedup.
        assert!(outcome.bootstrap_samples >= 4);
        assert!(outcome.bootstrap_samples <= 1 + 3 + 4);
        assert!(outcome.iterations >= 1);
    }
}

//! Bootstrap-size sweep — §V-C's observation "the more train samples,
//! the fewer iterations", which the paper states (WordCount trained with
//! 10 samples vs Yahoo with 40) but does not tabulate.
//!
//! Sweeps the uniform-family size `M` of the §III-D bootstrap design and
//! measures how many BO iterations Algorithm 1 needs afterwards, plus the
//! quality of the terminal configuration. Expected shape: iterations fall
//! (or stay flat) as the initial design grows, at the cost of more
//! bootstrap evaluations — the exploration is paid for either way, but
//! designed samples are better placed than acquisition-driven ones early
//! on.

use crate::{output, paper_config};
use autrascale::{Algorithm1, AuTraScaleConfig, ThroughputOptimizer};
use autrascale_flinkctl::FlinkCluster;
use autrascale_streamsim::Simulation;
use autrascale_workloads::{wordcount, Workload};
use rayon::prelude::*;
use serde::Serialize;

/// One sweep point, averaged over several seeds (BO is stochastic; a
/// single run per M would mostly show acquisition variance).
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Uniform-family size M of the bootstrap design.
    pub bootstrap_m: usize,
    /// Bootstrap samples evaluated (after dedup, incl. base + one-hots).
    pub bootstrap_samples: usize,
    /// Mean BO iterations to termination across seeds.
    pub bo_iterations: f64,
    /// Mean total cluster evaluations (bootstrap + BO).
    pub total_evaluations: f64,
    /// Mean terminal Σ parallelism.
    pub total_parallelism: f64,
    /// Mean terminal latency, ms.
    pub final_latency_ms: f64,
    /// Fraction of seeds whose terminal configuration met QoS.
    pub qos_success_rate: f64,
}

/// The sweep report.
#[derive(Debug, Clone, Serialize)]
pub struct BootstrapSweepReport {
    /// One row per M.
    pub rows: Vec<SweepRow>,
}

/// What one `(M, seed)` simulator run contributes to its sweep row.
struct RunPoint {
    bootstrap_samples: usize,
    iterations: f64,
    total_parallelism: f64,
    final_latency_ms: f64,
    meets_qos: bool,
}

/// Runs one `(M, seed)` point of the sweep end to end (simulator →
/// throughput phase → Algorithm 1). Each point owns its simulation and
/// cluster, so points are independent and safe to run concurrently.
fn run_point(
    w: &Workload,
    m: usize,
    run_seed: u64,
    tweak: &dyn Fn(&mut AuTraScaleConfig),
) -> RunPoint {
    let sim = Simulation::new(w.default_config(run_seed)).expect("valid workload");
    let mut cluster = FlinkCluster::new(sim);
    let mut config = paper_config(w, run_seed);
    config.bootstrap_m = m;
    tweak(&mut config);
    let thr = ThroughputOptimizer::new(&config)
        .run(&mut cluster)
        .expect("throughput phase");
    let alg1 = Algorithm1::new(&config, thr.final_parallelism, w.p_max());
    let outcome = alg1.run(&mut cluster, Vec::new()).expect("Algorithm 1");
    RunPoint {
        bootstrap_samples: outcome.bootstrap_samples,
        iterations: outcome.iterations as f64,
        total_parallelism: outcome
            .final_parallelism
            .iter()
            .map(|&p| f64::from(p))
            .sum::<f64>(),
        final_latency_ms: outcome.final_latency_ms,
        meets_qos: outcome.meets_qos,
    }
}

/// Runs every `(M, seed)` point — in parallel over the flattened pair list
/// when `parallel` — then aggregates per M with a serial pass in seed
/// order. Aggregation order is fixed regardless of execution order (rayon
/// `collect` preserves input order), so parallel and serial sweeps produce
/// byte-identical rows.
fn sweep_rows(
    w: &Workload,
    ms: &[usize],
    seeds: &[u64],
    parallel: bool,
    tweak: &dyn Fn(&mut AuTraScaleConfig),
) -> Vec<SweepRow> {
    let pairs: Vec<(usize, u64)> = ms
        .iter()
        .flat_map(|&m| seeds.iter().map(move |&s| (m, s)))
        .collect();
    let points: Vec<RunPoint> = if parallel {
        pairs
            .par_iter()
            .map(|&(m, s)| run_point(w, m, s, tweak))
            .collect()
    } else {
        pairs
            .iter()
            .map(|&(m, s)| run_point(w, m, s, tweak))
            .collect()
    };
    let n = seeds.len() as f64;
    ms.iter()
        .zip(points.chunks(seeds.len()))
        .map(|(&m, chunk)| {
            let mut iters = 0.0;
            let mut total_p = 0.0;
            let mut latency = 0.0;
            let mut met = 0usize;
            for p in chunk {
                iters += p.iterations;
                total_p += p.total_parallelism;
                latency += p.final_latency_ms;
                met += usize::from(p.meets_qos);
            }
            // Bootstrap-design size is seed-independent in practice; keep
            // the last seed's count as the original serial loop did.
            let boot = chunk.last().expect("at least one seed").bootstrap_samples;
            SweepRow {
                bootstrap_m: m,
                bootstrap_samples: boot,
                bo_iterations: iters / n,
                total_evaluations: boot as f64 + iters / n,
                total_parallelism: total_p / n,
                final_latency_ms: latency / n,
                qos_success_rate: met as f64 / n,
            }
        })
        .collect()
}

/// Runs the sweep on WordCount at its paper rate, with a latency target
/// tightened to 140 ms so the throughput-optimal base does NOT already
/// satisfy QoS — the BO loop has real work to do at every M.
///
/// The `(M, seed)` grid runs on the rayon pool (12 independent simulator
/// runs), with deterministic per-M aggregation.
pub fn run(seed: u64) -> BootstrapSweepReport {
    let mut w = wordcount();
    w.target_latency_ms = 140.0;
    let ms = [2usize, 5, 10, 15];
    let seeds = [seed, seed + 1000, seed + 2000];
    let rows = sweep_rows(&w, &ms, &seeds, true, &|_| {});

    let report = BootstrapSweepReport { rows };
    let dir = output::results_dir();
    output::write_csv(
        &dir.join("bootstrap_sweep.csv"),
        &[
            "bootstrap_m",
            "bootstrap_samples",
            "bo_iterations",
            "total_evaluations",
            "total_parallelism",
            "final_latency_ms",
            "qos_success_rate",
        ],
        report.rows.iter().map(|r| {
            vec![
                r.bootstrap_m.to_string(),
                r.bootstrap_samples.to_string(),
                format!("{:.1}", r.bo_iterations),
                format!("{:.1}", r.total_evaluations),
                format!("{:.1}", r.total_parallelism),
                format!("{:.1}", r.final_latency_ms),
                format!("{:.2}", r.qos_success_rate),
            ]
        }),
    )
    .expect("write sweep csv");
    output::write_json(&dir.join("bootstrap_sweep.json"), &report).expect("write sweep json");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_row_accounting_is_consistent() {
        // A single fast point (not the full sweep) to keep test time sane.
        let w = wordcount();
        let sim = Simulation::new(w.default_config(3)).unwrap();
        let mut cluster = FlinkCluster::new(sim);
        let mut config = paper_config(&w, 3);
        config.bootstrap_m = 3;
        config.max_bo_iters = 6;
        config.policy_running_time = 150.0;
        let thr = ThroughputOptimizer::new(&config).run(&mut cluster).unwrap();
        let alg1 = Algorithm1::new(&config, thr.final_parallelism, w.p_max());
        let outcome = alg1.run(&mut cluster, Vec::new()).unwrap();
        // Base + up to M uniform + up to N one-hot, minus dedup.
        assert!(outcome.bootstrap_samples >= 4);
        assert!(outcome.bootstrap_samples <= 1 + 3 + 4);
        assert!(outcome.iterations >= 1);
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        // A shrunken grid with capped BO iterations, so both passes stay
        // fast; the equivalence claim is independent of grid size.
        let mut w = wordcount();
        w.target_latency_ms = 140.0;
        let ms = [2usize, 3];
        let seeds = [7u64, 1007];
        let tweak = |config: &mut autrascale::AuTraScaleConfig| {
            config.max_bo_iters = 4;
            config.policy_running_time = 150.0;
        };
        let serial = sweep_rows(&w, &ms, &seeds, false, &tweak);
        let parallel = sweep_rows(&w, &ms, &seeds, true, &tweak);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.bootstrap_m, p.bootstrap_m);
            assert_eq!(s.bootstrap_samples, p.bootstrap_samples);
            assert_eq!(s.bo_iterations.to_bits(), p.bo_iterations.to_bits());
            assert_eq!(s.total_evaluations.to_bits(), p.total_evaluations.to_bits());
            assert_eq!(s.total_parallelism.to_bits(), p.total_parallelism.to_bits());
            assert_eq!(s.final_latency_ms.to_bits(), p.final_latency_ms.to_bits());
            assert_eq!(s.qos_success_rate.to_bits(), p.qos_success_rate.to_bits());
        }
    }
}

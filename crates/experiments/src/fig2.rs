//! Fig. 2 — CASE 2: fixed 300k records/s input, uniform parallelism 1–6.
//!
//! Expected shapes (paper Observations 2.1 and 2.2): throughput grows
//! sub-linearly (~150k, ~250k, ~275k at p = 1, 2, 3); latency falls with
//! parallelism while under-provisioned, then rises again as communication
//! cost dominates (the U-shape).

use crate::output;
use autrascale_streamsim::Simulation;
use autrascale_workloads::wordcount;
use serde::Serialize;

/// Result of one CASE 2 sub-test.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Point {
    /// Uniform parallelism applied to every operator.
    pub parallelism: u32,
    /// Steady throughput, records/s.
    pub throughput: f64,
    /// Steady in-job processing latency, ms.
    pub processing_latency_ms: f64,
    /// Kafka lag at the end of the sub-test, records.
    pub kafka_lag: f64,
}

/// The CASE 2 report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Report {
    /// One point per parallelism 1..=6.
    pub points: Vec<Fig2Point>,
}

/// Runs the six independent sub-tests (in parallel threads — each owns
/// its simulator, so this is data-race free by construction).
pub fn run(run_secs: f64, seed: u64) -> Fig2Report {
    let mut points: Vec<Fig2Point> = std::thread::scope(|scope| {
        let handles: Vec<_> = (1..=6u32)
            .map(|p| {
                scope.spawn(move || {
                    let w = wordcount();
                    let mut sim = Simulation::new(w.config(300_000.0, seed + u64::from(p)))
                        .expect("valid workload config");
                    sim.deploy(&[p; 4]).expect("uniform parallelism is valid");
                    sim.run_for(run_secs).expect("finite duration");
                    let snap = sim.snapshot();
                    Fig2Point {
                        parallelism: p,
                        throughput: snap.source_consumption_rate,
                        processing_latency_ms: snap.processing_latency_ms,
                        kafka_lag: snap.kafka_lag,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sub-test thread"))
            .collect()
    });
    points.sort_by_key(|p| p.parallelism);

    let report = Fig2Report { points };
    let dir = output::results_dir();
    output::write_csv(
        &dir.join("fig2_case2.csv"),
        &["parallelism", "throughput", "proc_latency_ms", "kafka_lag"],
        report.points.iter().map(|p| {
            vec![
                p.parallelism.to_string(),
                format!("{:.0}", p.throughput),
                format!("{:.1}", p.processing_latency_ms),
                format!("{:.0}", p.kafka_lag),
            ]
        }),
    )
    .expect("write fig2 csv");
    output::write_json(&dir.join("fig2_case2.json"), &report).expect("write fig2 json");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case2_reproduces_both_observations() {
        let report = run(420.0, 77);
        let t: Vec<f64> = report.points.iter().map(|p| p.throughput).collect();
        // Observation 2.1: sub-linear growth.
        assert!(t[1] > t[0] * 1.3, "{t:?}");
        assert!(t[1] < t[0] * 2.0, "{t:?}");
        assert!(t[2] >= t[1], "{t:?}");
        // Observation 2.2: latency improves from p=1 to mid-range…
        let l: Vec<f64> = report
            .points
            .iter()
            .map(|p| p.processing_latency_ms)
            .collect();
        let l_min = l.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(l[0] > l_min, "{l:?}");
        // …and the provisioned tail (p≥4) is not monotonically improving:
        // comm cost makes p=6 worse than the best provisioned point.
        let best_tail = l[3].min(l[4]);
        assert!(l[5] > best_tail, "{l:?}");
    }
}

//! Table IV — CPU overhead of the algorithms vs. operator count (§V-E).
//!
//! Three measurements per operator count N ∈ {2, 4, 6, 8, 10}:
//!
//! * **Alg1_train** — fitting the Gaussian-process surrogate on the
//!   current training set (the per-iteration model update);
//! * **Alg1_use** — recommending a configuration from an already-fitted
//!   model (the paper reports < 1 ms);
//! * **Alg2** — one transfer-learning computation: residual fit +
//!   bootstrap-set predictions + a recommendation.
//!
//! All measurements are pure CPU (no cluster), timed with
//! `std::time::Instant` over several repetitions. Expected shape: linear
//! growth in N, Alg1_use orders of magnitude cheaper than the fits.

use crate::output;
use autrascale_bayesopt::{bootstrap_set, expected_improvement, BayesOpt, BoOptions, SearchSpace};
use autrascale_gp::{fit_auto, FitOptions, GaussianProcess};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// Timing row for one operator count.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Number of operators N.
    pub operators: usize,
    /// Surrogate fit time, seconds (Alg1_train).
    pub alg1_train_s: f64,
    /// Recommendation time from a fitted model, seconds (Alg1_use).
    pub alg1_use_s: f64,
    /// One transfer-learning computation, seconds (Alg2).
    pub alg2_s: f64,
}

/// The Table IV report.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Report {
    /// One row per operator count.
    pub rows: Vec<Table4Row>,
}

/// A synthetic scored dataset over `[1, p_max]^n` mimicking a benefit
/// model: high scores near a hidden lean optimum.
fn synthetic_dataset(
    n: usize,
    samples: usize,
    p_max: u32,
    rng: &mut StdRng,
) -> Vec<(Vec<u32>, f64)> {
    (0..samples)
        .map(|_| {
            let k: Vec<u32> = (0..n).map(|_| rng.gen_range(1..=p_max)).collect();
            let mean = k.iter().map(|&v| f64::from(v)).sum::<f64>() / n as f64;
            let score = 1.0 / (1.0 + (mean - 4.0).abs() / 4.0) + rng.gen_range(-0.02..0.02);
            (k, score)
        })
        .collect()
}

fn features(dataset: &[(Vec<u32>, f64)]) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x = dataset
        .iter()
        .map(|(k, _)| k.iter().map(|&v| f64::from(v)).collect())
        .collect();
    let y = dataset.iter().map(|(_, s)| *s).collect();
    (x, y)
}

fn fit(dataset: &[(Vec<u32>, f64)], seed: u64) -> GaussianProcess {
    let (x, y) = features(dataset);
    fit_auto(
        x,
        y,
        &FitOptions {
            seed,
            restarts: 3,
            ..Default::default()
        },
    )
    .expect("synthetic dataset fits")
}

/// Median wall time of `f` over `reps` runs, seconds.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Runs the Table IV overhead sweep.
pub fn run(seed: u64) -> Table4Report {
    let p_max = 20u32;
    let samples = 20usize;
    let reps = 5usize;
    let mut rows = Vec::new();

    for n in [2usize, 4, 6, 8, 10] {
        let mut rng = StdRng::seed_from_u64(seed + n as u64);
        let dataset = synthetic_dataset(n, samples, p_max, &mut rng);

        // Alg1_train: the per-iteration surrogate refit.
        let alg1_train_s = time_median(reps, || {
            let _ = fit(&dataset, seed);
        });

        // Alg1_use: EI ranking against an already-fitted model.
        let gp = fit(&dataset, seed);
        let space = SearchSpace::new(vec![1; n], vec![p_max; n]).expect("valid space");
        let f_best = gp.best_observed();
        let mut rng2 = StdRng::seed_from_u64(seed);
        let candidates: Vec<Vec<u32>> = (0..256).map(|_| space.sample(&mut rng2)).collect();
        let alg1_use_s = time_median(reps, || {
            let mut best = f64::NEG_INFINITY;
            for c in &candidates {
                let f: Vec<f64> = c.iter().map(|&v| f64::from(v)).collect();
                best = best.max(expected_improvement(&gp, &f, f_best, 0.01));
            }
            std::hint::black_box(best);
        });

        // Alg2: residual fit + bootstrap predictions + recommendation.
        let new_rate_samples = synthetic_dataset(n, 4, p_max, &mut rng);
        let alg2_s = time_median(reps, || {
            // Residual dataset against the prior model.
            let residual: Vec<(Vec<u32>, f64)> = new_rate_samples
                .iter()
                .map(|(k, s)| {
                    let f: Vec<f64> = k.iter().map(|&v| f64::from(v)).collect();
                    (k.clone(), s - gp.predict(&f).mean)
                })
                .collect();
            let res_gp = fit(&residual, seed + 1);
            // Predictions over the bootstrap design.
            let design = bootstrap_set(&vec![2; n], p_max, 5);
            let mut d_predict: Vec<(Vec<u32>, f64)> = new_rate_samples.clone();
            for x in design.all() {
                let f: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
                d_predict.push((x, gp.predict(&f).mean + res_gp.predict(&f).mean));
            }
            // Recommendation on the augmented set.
            let mut bo = BayesOpt::new(
                space.clone(),
                BoOptions {
                    sampled_candidates: 256,
                    ..Default::default()
                },
            );
            for (k, s) in &d_predict {
                bo.observe(k.clone(), *s);
            }
            let _ = std::hint::black_box(bo.suggest());
        });

        rows.push(Table4Row {
            operators: n,
            alg1_train_s,
            alg1_use_s,
            alg2_s,
        });
    }

    let report = Table4Report { rows };
    let dir = output::results_dir();
    output::write_csv(
        &dir.join("table4_overhead.csv"),
        &["operators", "alg1_train_s", "alg1_use_s", "alg2_s"],
        report.rows.iter().map(|r| {
            vec![
                r.operators.to_string(),
                format!("{:.4}", r.alg1_train_s),
                format!("{:.6}", r.alg1_use_s),
                format!("{:.4}", r.alg2_s),
            ]
        }),
    )
    .expect("write table4 csv");
    output::write_json(&dir.join("table4.json"), &report).expect("write table4 json");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_shapes_match_table4() {
        let report = run(42);
        assert_eq!(report.rows.len(), 5);
        for row in &report.rows {
            // Alg1_use is far cheaper than the fits (paper: <1 ms vs tens
            // of ms).
            assert!(row.alg1_use_s < row.alg1_train_s, "{row:?}");
            assert!(row.alg1_use_s < 0.05, "{row:?}");
            // Fit and transfer stay well under a second — "not enough to
            // affect the QoS of the job".
            assert!(row.alg1_train_s < 5.0, "{row:?}");
            assert!(row.alg2_s < 5.0, "{row:?}");
        }
    }

    #[test]
    fn synthetic_dataset_is_reproducible() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(
            synthetic_dataset(3, 5, 10, &mut a),
            synthetic_dataset(3, 5, 10, &mut b)
        );
    }
}

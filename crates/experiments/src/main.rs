//! `autrascale-experiments` — regenerate every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! autrascale-experiments <fig1|fig2|fig5a|fig5b|elasticity|fig8|table4|bootstrap|slo|forecast|fleet|all> [seed]
//! ```
//!
//! Artifacts land in `results/` (override with `AUTRASCALE_RESULTS_DIR`);
//! a markdown summary prints to stdout.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use autrascale_experiments::{
    bootstrap_sweep, elasticity, fig1, fig2, fig5, fig8, fleet_sweep, forecast_sweep, output,
    slo_sweep, table4,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let seed: u64 = args
        .get(2)
        .map(|s| s.parse().expect("seed must be an unsigned integer"))
        .unwrap_or(42);

    match which {
        "fig1" => run_fig1(seed),
        "fig2" => run_fig2(seed),
        "fig5a" => run_fig5a(seed),
        "fig5b" => run_fig5b(seed),
        "elasticity" => run_elasticity(seed),
        "fig8" => run_fig8(seed),
        "table4" => run_table4(seed),
        "bootstrap" => run_bootstrap_sweep(seed),
        "slo" => run_slo_sweep(seed),
        "forecast" => run_forecast_sweep(seed),
        "fleet" => run_fleet_sweep(seed),
        "all" => {
            run_fig1(seed);
            run_fig2(seed);
            run_fig5a(seed);
            run_fig5b(seed);
            run_elasticity(seed);
            run_fig8(seed);
            run_table4(seed);
            run_bootstrap_sweep(seed);
            run_slo_sweep(seed);
            run_forecast_sweep(seed);
            run_fleet_sweep(seed);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            eprintln!(
                "usage: autrascale-experiments <fig1|fig2|fig5a|fig5b|elasticity|fig8|table4|bootstrap|slo|forecast|fleet|all> [seed]"
            );
            std::process::exit(2);
        }
    }
}

fn run_fig1(seed: u64) {
    println!("## Fig. 1 — CASE 1: fixed parallelism, rising input rate\n");
    let report = fig1::run(3000.0, seed);
    let rows: Vec<Vec<String>> = report
        .series
        .iter()
        .step_by(30)
        .map(|p| {
            vec![
                output::fmt1(p.minute),
                output::fmt_rate(p.input_rate),
                output::fmt_rate(p.throughput),
                format!("{:.0}", p.kafka_lag),
                p.event_time_latency_ms
                    .map(output::fmt1)
                    .unwrap_or_else(|| "∞".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        output::markdown_table(
            &[
                "minute",
                "input",
                "throughput",
                "kafka lag",
                "event latency (ms)"
            ],
            &rows
        )
    );
    println!(
        "Plateau throughput ≈ {} (paper: ~250k); final lag {:.0} records.\n",
        output::fmt_rate(report.plateau_throughput),
        report.final_lag
    );
}

fn run_fig2(seed: u64) {
    println!("## Fig. 2 — CASE 2: fixed 300k rate, parallelism 1–6\n");
    let report = fig2::run(900.0, seed);
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.parallelism.to_string(),
                output::fmt_rate(p.throughput),
                output::fmt1(p.processing_latency_ms),
                format!("{:.0}", p.kafka_lag),
            ]
        })
        .collect();
    println!(
        "{}",
        output::markdown_table(
            &["parallelism", "throughput", "latency (ms)", "kafka lag"],
            &rows
        )
    );
}

fn run_fig5a(seed: u64) {
    println!("## Fig. 5(a) — throughput optimization across workloads\n");
    let report = fig5::run_fig5a(seed);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                output::fmt_rate(r.input_rate),
                r.iterations.to_string(),
                output::fmt_parallelism(&r.final_parallelism),
                output::fmt_rate(r.final_throughput),
                if r.reached_input_rate {
                    "yes".into()
                } else {
                    "no (capped)".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        output::markdown_table(
            &[
                "workload",
                "input rate",
                "iterations",
                "terminal parallelism",
                "throughput",
                "reached rate"
            ],
            &rows
        )
    );
}

fn run_fig5b(seed: u64) {
    println!("## Fig. 5(b) — Yahoo throughput-optimization trace\n");
    let report = fig5::run_fig5b(seed);
    let rows: Vec<Vec<String>> = report
        .steps
        .iter()
        .enumerate()
        .map(|(i, (k, t))| {
            vec![
                format!("p{}", i + 1),
                output::fmt_parallelism(k),
                output::fmt_rate(*t),
            ]
        })
        .collect();
    println!(
        "{}",
        output::markdown_table(&["step", "parallelism", "throughput"], &rows)
    );
    println!(
        "Selected {} at {}; max uniform parallelism gives only {} (input rate {}) — the Redis cap holds.\n",
        output::fmt_parallelism(&report.final_parallelism),
        output::fmt_rate(report.final_throughput),
        output::fmt_rate(report.max_uniform_throughput),
        output::fmt_rate(report.input_rate),
    );
}

fn run_elasticity(seed: u64) {
    println!("## Tables II & III + Figs. 6 & 7 — elasticity at a steady rate\n");
    let report = elasticity::run(seed);
    for block in &report.scenarios {
        println!(
            "### {} — {:?} (target latency {} ms, rate {})\n",
            block.workload,
            block.scenario,
            block.target_latency_ms,
            output::fmt_rate(block.input_rate)
        );
        let rows: Vec<Vec<String>> = block
            .methods
            .iter()
            .map(|m| {
                vec![
                    m.method.clone(),
                    m.iterations.to_string(),
                    output::fmt_parallelism(&m.final_parallelism),
                    m.total_parallelism.to_string(),
                    output::fmt1(m.final_latency_ms),
                    output::fmt_rate(m.final_throughput),
                    m.meets_qos.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            output::markdown_table(
                &[
                    "method",
                    "iterations",
                    "terminal parallelism",
                    "Σp",
                    "latency (ms)",
                    "throughput",
                    "meets QoS"
                ],
                &rows
            )
        );
    }
    println!(
        "Resource saving vs DRS — scale-down: {:.1}% (paper 66.6%), scale-up: {:.1}% (paper 36.7%).\n",
        report.scale_down_saving_pct, report.scale_up_saving_pct
    );
}

fn run_fig8(seed: u64) {
    println!("## Fig. 8 — transfer learning vs DS2 at a changed rate\n");
    let report = fig8::run(seed);
    for q in &report.queries {
        println!(
            "### {} — {} → {} (target latency {} ms)\n",
            q.query,
            output::fmt_rate(q.old_rate),
            output::fmt_rate(q.new_rate),
            q.target_latency_ms
        );
        let rows: Vec<Vec<String>> = q
            .methods
            .iter()
            .map(|m| {
                vec![
                    m.method.clone(),
                    m.iterations.to_string(),
                    output::fmt_parallelism(&m.final_parallelism),
                    m.total_parallelism.to_string(),
                    output::fmt1(m.latency.mean_ms),
                    output::fmt1(m.latency.p99_ms),
                    m.cpu_cores.to_string(),
                    m.memory_gb.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            output::markdown_table(
                &[
                    "method",
                    "iterations",
                    "terminal parallelism",
                    "Σp",
                    "mean lat (ms)",
                    "p99 lat (ms)",
                    "CPU cores",
                    "mem (GB)"
                ],
                &rows
            )
        );
    }
    println!(
        "Average savings vs DS2 — parallelism {:.1}% (paper 13.5%), CPU {:.1}% (paper 5.2%), memory {:.1}% (paper 6.2%).\n",
        report.avg_parallelism_saving_pct, report.avg_cpu_saving_pct, report.avg_memory_saving_pct
    );
}

fn run_bootstrap_sweep(seed: u64) {
    println!("## Bootstrap-size sweep — \"the more train samples, the fewer iterations\"\n");
    let report = bootstrap_sweep::run(seed);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.bootstrap_m.to_string(),
                r.bootstrap_samples.to_string(),
                output::fmt1(r.bo_iterations),
                output::fmt1(r.total_evaluations),
                output::fmt1(r.total_parallelism),
                output::fmt1(r.final_latency_ms),
                format!("{:.2}", r.qos_success_rate),
            ]
        })
        .collect();
    println!(
        "{}",
        output::markdown_table(
            &[
                "M",
                "bootstrap evals",
                "mean BO iters",
                "mean total evals",
                "mean Σp",
                "mean latency (ms)",
                "QoS success"
            ],
            &rows
        )
    );
}

fn run_slo_sweep(seed: u64) {
    println!("## SLO-safety sweep — constrained vs unconstrained acquisition, scenario battery\n");
    let report = slo_sweep::run(seed);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                if r.constrained { "cEI" } else { "EI" }.to_string(),
                format!("{:.2}", r.slo_violations),
                output::fmt1(r.iterations),
                output::fmt1(r.total_evaluations),
                output::fmt1(r.final_latency_ms),
                format!("{:.2}", r.qos_success_rate),
            ]
        })
        .collect();
    println!(
        "{}",
        output::markdown_table(
            &[
                "scenario",
                "acquisition",
                "mean SLO violations",
                "mean BO iters",
                "mean total evals",
                "mean latency (ms)",
                "QoS success"
            ],
            &rows
        )
    );
    println!(
        "Battery-wide mean violations — unconstrained {:.2}, constrained {:.2}.\n",
        report.total_violations_unconstrained, report.total_violations_constrained
    );
}

fn run_forecast_sweep(seed: u64) {
    println!("## Proactive-forecasting sweep — proactive vs reactive MAPE loop\n");
    let report = forecast_sweep::run(seed);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                if r.proactive { "proactive" } else { "reactive" }.to_string(),
                format!("{:.2}", r.violating_windows),
                format!("{:.0}", r.peak_kafka_lag),
                format!("{:.0}", r.mean_kafka_lag),
                format!("{:.2}", r.retunes),
                format!("{:.2}", r.forecast_triggers),
            ]
        })
        .collect();
    println!(
        "{}",
        output::markdown_table(
            &[
                "scenario",
                "mode",
                "mean violating windows",
                "mean peak lag",
                "mean lag",
                "mean re-tunes",
                "mean forecasts"
            ],
            &rows
        )
    );
    for d in &report.lag_avoided {
        println!(
            "{}: forecasting avoided {:.2} violating windows and {:.0} records of peak lag.",
            d.scenario, d.windows_avoided, d.peak_lag_avoided
        );
    }
    println!();
}

fn run_fleet_sweep(seed: u64) {
    println!("## Fleet control plane — steady-state MAPE throughput\n");
    let report = fleet_sweep::run(seed);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.jobs.to_string(),
                if r.concurrent { "concurrent" } else { "serial" }.to_string(),
                r.rounds.to_string(),
                format!("{:.3}", r.wall_secs),
                format!("{:.1}", r.loops_per_sec),
                r.max_shard_points.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        output::markdown_table(
            &[
                "jobs",
                "mode",
                "rounds",
                "wall (s)",
                "MAPE loops/s",
                "max shard points"
            ],
            &rows
        )
    );
    if let Some(big) = report.rows.iter().rfind(|r| r.concurrent) {
        println!(
            "Sustained {:.0} steady-state MAPE loops/s across {} simulated jobs.\n",
            big.loops_per_sec, big.jobs
        );
    }
}

fn run_table4(seed: u64) {
    println!("## Table IV — algorithm overhead (seconds of CPU time)\n");
    let report = table4::run(seed);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.operators.to_string(),
                format!("{:.4}", r.alg1_train_s),
                format!("{:.6}", r.alg1_use_s),
                format!("{:.4}", r.alg2_s),
            ]
        })
        .collect();
    println!(
        "{}",
        output::markdown_table(
            &["operators", "Alg1_train (s)", "Alg1_use (s)", "Alg2 (s)"],
            &rows
        )
    );
}

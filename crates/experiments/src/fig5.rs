//! Fig. 5 — throughput optimization (§V-B).
//!
//! (a) All four workloads reach their optimal throughput within a few
//! iterations; the Yahoo job is capped by Redis below its 60k input rate
//! and terminates through the repeated-recommendation condition.
//!
//! (b) The Yahoo iteration trace: per-step parallelism and throughput,
//! plus verification that maximal uniform parallelism does not lift the
//! external cap.

use crate::{output, paper_config};
use autrascale::ThroughputOptimizer;
use autrascale_flinkctl::{FlinkCluster, JobControl};
use autrascale_streamsim::Simulation;
use autrascale_workloads::{all_paper_workloads, yahoo, Workload};
use serde::Serialize;

/// Fig. 5(a): one row per workload.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5aRow {
    /// Workload name.
    pub workload: String,
    /// Input data rate, records/s.
    pub input_rate: f64,
    /// Iterations used (paper: ≤ 4).
    pub iterations: usize,
    /// Terminal parallelism vector.
    pub final_parallelism: Vec<u32>,
    /// Optimal throughput reached, records/s.
    pub final_throughput: f64,
    /// Whether throughput reached the input rate.
    pub reached_input_rate: bool,
}

/// The Fig. 5(a) report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5aReport {
    /// One row per workload (WordCount, Yahoo, Q5, Q11).
    pub rows: Vec<Fig5aRow>,
}

fn optimize(workload: &Workload, seed: u64) -> Fig5aRow {
    let sim = Simulation::new(workload.default_config(seed)).expect("valid workload");
    let mut cluster = FlinkCluster::new(sim);
    let config = paper_config(workload, seed);
    let outcome = ThroughputOptimizer::new(&config)
        .run(&mut cluster)
        .expect("throughput optimization runs");
    Fig5aRow {
        workload: workload.name.to_string(),
        input_rate: workload.input_rate,
        iterations: outcome.iterations,
        final_parallelism: outcome.final_parallelism,
        final_throughput: outcome.final_throughput,
        reached_input_rate: outcome.reached_input_rate,
    }
}

/// Runs Fig. 5(a) across all four workloads (parallel threads).
pub fn run_fig5a(seed: u64) -> Fig5aReport {
    let workloads = all_paper_workloads();
    let rows: Vec<Fig5aRow> = std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| scope.spawn(move || optimize(w, seed)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload thread"))
            .collect()
    });

    let report = Fig5aReport { rows };
    let dir = output::results_dir();
    output::write_csv(
        &dir.join("fig5a_throughput_optimization.csv"),
        &[
            "workload",
            "input_rate",
            "iterations",
            "final_parallelism",
            "final_throughput",
            "reached",
        ],
        report.rows.iter().map(|r| {
            vec![
                r.workload.clone(),
                format!("{:.0}", r.input_rate),
                r.iterations.to_string(),
                output::fmt_parallelism(&r.final_parallelism).replace(", ", ";"),
                format!("{:.0}", r.final_throughput),
                r.reached_input_rate.to_string(),
            ]
        }),
    )
    .expect("write fig5a csv");
    output::write_json(&dir.join("fig5a.json"), &report).expect("write fig5a json");
    report
}

/// Fig. 5(b): the Yahoo iteration trace.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5bReport {
    /// `(parallelism, throughput)` per optimizer step.
    pub steps: Vec<(Vec<u32>, f64)>,
    /// The selected final configuration.
    pub final_parallelism: Vec<u32>,
    /// Throughput of the selected configuration.
    pub final_throughput: f64,
    /// Throughput at maximal uniform parallelism (the paper's p5/p6
    /// check): must NOT exceed the selected throughput meaningfully.
    pub max_uniform_throughput: f64,
    /// The input rate the job can never reach (Redis cap).
    pub input_rate: f64,
}

/// Runs Fig. 5(b).
pub fn run_fig5b(seed: u64) -> Fig5bReport {
    let w = yahoo();
    let sim = Simulation::new(w.default_config(seed)).expect("valid workload");
    let mut cluster = FlinkCluster::new(sim);
    let config = paper_config(&w, seed);
    let outcome = ThroughputOptimizer::new(&config)
        .run(&mut cluster)
        .expect("throughput optimization runs");

    // Paper's post-termination check: crank everything to P_max and show
    // the external limit still gates throughput.
    let p_max = cluster.max_parallelism();
    cluster
        .deploy(&vec![p_max; w.num_operators()])
        .expect("max uniform parallelism is valid");
    cluster
        .advance(config.policy_running_time)
        .expect("fixed positive duration");
    let max_uniform_throughput = cluster
        .metrics(config.policy_running_time / 4.0)
        .map(|m| m.throughput)
        .unwrap_or(0.0);

    let report = Fig5bReport {
        steps: outcome
            .history
            .iter()
            .map(|s| (s.parallelism.clone(), s.throughput))
            .collect(),
        final_parallelism: outcome.final_parallelism,
        final_throughput: outcome.final_throughput,
        max_uniform_throughput,
        input_rate: w.input_rate,
    };
    let dir = output::results_dir();
    output::write_csv(
        &dir.join("fig5b_yahoo_trace.csv"),
        &["step", "parallelism", "throughput"],
        report.steps.iter().enumerate().map(|(i, (k, t))| {
            vec![
                (i + 1).to_string(),
                output::fmt_parallelism(k).replace(", ", ";"),
                format!("{t:.0}"),
            ]
        }),
    )
    .expect("write fig5b csv");
    output::write_json(&dir.join("fig5b.json"), &report).expect("write fig5b json");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use autrascale_workloads::nexmark_q5;

    #[test]
    fn q5_reaches_rate_in_few_iterations() {
        let row = optimize(&nexmark_q5(), 9);
        assert!(row.reached_input_rate, "{row:?}");
        assert!(row.iterations <= 6, "{row:?}");
        // Window operator lands near the paper's 18 instances.
        let window_p = row.final_parallelism[1];
        assert!((12..=25).contains(&window_p), "{row:?}");
    }

    #[test]
    fn yahoo_trace_is_capped() {
        let report = run_fig5b(13);
        assert!(
            report.final_throughput < report.input_rate * 0.8,
            "{report:?}"
        );
        // Max uniform parallelism doesn't break the Redis ceiling.
        assert!(
            report.max_uniform_throughput < report.final_throughput * 1.25,
            "{report:?}"
        );
    }
}

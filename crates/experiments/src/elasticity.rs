//! Tables II & III + Figs. 6 & 7 — elasticity tests at a steady rate
//! (§V-C).
//!
//! Two jobs (WordCount: 350k records/s, l_t = 180 ms; Yahoo: 34k
//! records/s, l_t = 300 ms), two scenarios each:
//!
//! * **scale-up** — the job starts at parallelism 1 everywhere
//!   (under-provisioned);
//! * **scale-down** — the job starts heavily over-provisioned.
//!
//! Three methods per scenario: AuTraScale (throughput optimization →
//! bootstrap → Algorithm 1), DRS with the true processing rate, and DRS
//! with the observed rate. The paper's headline: AuTraScale meets QoS
//! with fewer resources — −66.6% (scale-down) and −36.7% (scale-up)
//! versus DRS.

use crate::{output, paper_config};
use autrascale::{Algorithm1, ThroughputOptimizer};
use autrascale_baselines::{DrsConfig, DrsPolicy, RateMetric};
use autrascale_flinkctl::FlinkCluster;
use autrascale_streamsim::Simulation;
use autrascale_workloads::{wordcount, yahoo, Workload};
use serde::Serialize;

/// Which initial provisioning the scenario starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scenario {
    /// Start at parallelism 1 everywhere.
    ScaleUp,
    /// Start heavily over-provisioned.
    ScaleDown,
}

impl Scenario {
    fn initial_parallelism(self, workload: &Workload) -> Vec<u32> {
        match self {
            Scenario::ScaleUp => vec![1; workload.num_operators()],
            Scenario::ScaleDown => match workload.name {
                // Clearly wasteful yet functional starting points (a
                // uniform fraction of P_max would melt down under CPU
                // interference and never even meet the rate).
                "WordCount" => vec![10, 14, 16, 16],
                "Yahoo" => vec![40, 6, 6, 6, 40],
                _ => {
                    let p = (workload.p_max() / 2).max(2);
                    vec![p; workload.num_operators()]
                }
            },
        }
    }
}

/// One method's result in one scenario.
#[derive(Debug, Clone, Serialize)]
pub struct MethodResult {
    /// "AuTraScale", "DRS-true" or "DRS-observed".
    pub method: String,
    /// Reconfiguration iterations used (for AuTraScale: bootstrap + BO).
    pub iterations: usize,
    /// Terminal parallelism vector.
    pub final_parallelism: Vec<u32>,
    /// Σ parallelism — the Fig. 7 resource measure.
    pub total_parallelism: u64,
    /// Measured latency at the terminal configuration, ms (Fig. 6).
    pub final_latency_ms: f64,
    /// Measured throughput at the terminal configuration, records/s.
    pub final_throughput: f64,
    /// Whether the terminal configuration met the QoS requirements.
    pub meets_qos: bool,
}

/// One (workload, scenario) block.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioResult {
    /// Workload name.
    pub workload: String,
    /// Scale-up or scale-down.
    pub scenario: Scenario,
    /// Latency target, ms.
    pub target_latency_ms: f64,
    /// Input rate, records/s.
    pub input_rate: f64,
    /// AuTraScale + the two DRS variants.
    pub methods: Vec<MethodResult>,
}

/// The full Tables II/III + Figs. 6/7 report.
#[derive(Debug, Clone, Serialize)]
pub struct ElasticityReport {
    /// All four (workload, scenario) blocks.
    pub scenarios: Vec<ScenarioResult>,
    /// Mean resource saving of AuTraScale vs the best QoS-meeting DRS
    /// variant, scale-down scenarios (paper: 66.6%).
    pub scale_down_saving_pct: f64,
    /// Same for scale-up scenarios (paper: 36.7%).
    pub scale_up_saving_pct: f64,
}

fn total(k: &[u32]) -> u64 {
    k.iter().map(|&p| u64::from(p)).sum()
}

/// The elasticity input rates: Yahoo runs at its achievable 34k target
/// rather than the Redis-starved 60k (§V-C).
fn elasticity_rate(workload: &Workload) -> f64 {
    if workload.name == "Yahoo" {
        34_000.0
    } else {
        workload.input_rate
    }
}

fn fresh_cluster(workload: &Workload, scenario: Scenario, seed: u64) -> FlinkCluster {
    let rate = elasticity_rate(workload);
    let sim = Simulation::new(workload.config(rate, seed)).expect("valid workload");
    let mut cluster = FlinkCluster::new(sim);
    cluster
        .submit(&scenario.initial_parallelism(workload))
        .expect("initial parallelism valid");
    // Settle before any method observes it.
    cluster.run_for(120.0).expect("fixed positive duration");
    cluster
}

/// Steady-state verdict: settle the terminal configuration, then measure
/// latency, throughput and lag trend over a clean window. All methods are
/// judged by this same yardstick (Fig. 6 plots these latencies).
fn steady_verdict(cluster: &mut FlinkCluster, workload: &Workload) -> (f64, f64, bool) {
    cluster.run_for(600.0).expect("fixed positive duration");
    let Some(m) = cluster.metrics_over(150.0) else {
        return (f64::INFINITY, 0.0, false);
    };
    let meets = m.processing_latency_ms <= workload.target_latency_ms && m.keeping_up(0.05);
    (m.processing_latency_ms, m.throughput, meets)
}

fn run_autrascale(workload: &Workload, scenario: Scenario, seed: u64) -> MethodResult {
    let mut cluster = fresh_cluster(workload, scenario, seed);
    let config = paper_config(workload, seed);
    let thr = ThroughputOptimizer::new(&config)
        .run(&mut cluster)
        .expect("throughput optimization runs");
    let alg1 = Algorithm1::new(&config, thr.final_parallelism.clone(), workload.p_max());
    let outcome = alg1
        .run(&mut cluster, Vec::new())
        .expect("Algorithm 1 runs");
    let (latency, throughput, meets) = steady_verdict(&mut cluster, workload);
    MethodResult {
        method: "AuTraScale".into(),
        iterations: thr.iterations + outcome.bootstrap_samples + outcome.iterations,
        total_parallelism: total(&outcome.final_parallelism),
        final_parallelism: outcome.final_parallelism,
        final_latency_ms: latency,
        final_throughput: throughput,
        meets_qos: meets,
    }
}

fn run_drs(workload: &Workload, scenario: Scenario, metric: RateMetric, seed: u64) -> MethodResult {
    let mut cluster = fresh_cluster(workload, scenario, seed);
    let drs = DrsPolicy::new(DrsConfig {
        target_latency_ms: workload.target_latency_ms,
        rate_metric: metric,
        policy_running_time: 300.0,
        max_iters: 8,
    });
    let outcome = drs.run(&mut cluster).expect("DRS runs");
    let (latency, throughput, meets) = steady_verdict(&mut cluster, workload);
    MethodResult {
        method: match metric {
            RateMetric::True => "DRS-true".into(),
            RateMetric::Observed => "DRS-observed".into(),
        },
        iterations: outcome.iterations,
        total_parallelism: total(&outcome.final_parallelism),
        final_parallelism: outcome.final_parallelism,
        final_latency_ms: latency,
        final_throughput: throughput,
        meets_qos: meets,
    }
}

fn run_scenario(workload: &Workload, scenario: Scenario, seed: u64) -> ScenarioResult {
    let methods: Vec<MethodResult> = std::thread::scope(|scope| {
        let a = scope.spawn(move || run_autrascale(workload, scenario, seed));
        let dt = scope.spawn(move || run_drs(workload, scenario, RateMetric::True, seed + 1));
        let dobs = scope.spawn(move || run_drs(workload, scenario, RateMetric::Observed, seed + 2));
        vec![
            a.join().expect("autrascale thread"),
            dt.join().expect("drs-true thread"),
            dobs.join().expect("drs-observed thread"),
        ]
    });
    ScenarioResult {
        workload: workload.name.to_string(),
        scenario,
        target_latency_ms: workload.target_latency_ms,
        input_rate: elasticity_rate(workload),
        methods,
    }
}

/// Saving of AuTraScale vs DRS as published (the observed-rate variant —
/// the true-rate variant is the paper's own instrumented derivative and
/// is reported separately in the tables).
fn saving_pct(block: &ScenarioResult) -> f64 {
    let autra = block
        .methods
        .iter()
        .find(|m| m.method == "AuTraScale")
        .expect("AuTraScale result present");
    let drs = block
        .methods
        .iter()
        .find(|m| m.method == "DRS-observed")
        .expect("DRS-observed result present");
    if drs.total_parallelism == 0 {
        return 0.0;
    }
    (1.0 - autra.total_parallelism as f64 / drs.total_parallelism as f64) * 100.0
}

/// Runs the full elasticity suite (4 blocks × 3 methods, in parallel).
pub fn run(seed: u64) -> ElasticityReport {
    let wc = wordcount();
    let yh = yahoo();
    let blocks: Vec<ScenarioResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = [
            (&wc, Scenario::ScaleUp, seed),
            (&wc, Scenario::ScaleDown, seed + 10),
            (&yh, Scenario::ScaleUp, seed + 20),
            (&yh, Scenario::ScaleDown, seed + 30),
        ]
        .map(|(w, s, sd)| scope.spawn(move || run_scenario(w, s, sd)))
        .into_iter()
        .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scenario thread"))
            .collect()
    });

    let mean = |scenario: Scenario| {
        let vals: Vec<f64> = blocks
            .iter()
            .filter(|b| b.scenario == scenario)
            .map(saving_pct)
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let report = ElasticityReport {
        scale_down_saving_pct: mean(Scenario::ScaleDown),
        scale_up_saving_pct: mean(Scenario::ScaleUp),
        scenarios: blocks,
    };

    let dir = output::results_dir();
    output::write_csv(
        &dir.join("elasticity_tables_2_3.csv"),
        &[
            "workload",
            "scenario",
            "method",
            "iterations",
            "final_parallelism",
            "total_parallelism",
            "latency_ms",
            "throughput",
            "meets_qos",
        ],
        report.scenarios.iter().flat_map(|b| {
            b.methods.iter().map(move |m| {
                vec![
                    b.workload.clone(),
                    format!("{:?}", b.scenario),
                    m.method.clone(),
                    m.iterations.to_string(),
                    output::fmt_parallelism(&m.final_parallelism).replace(", ", ";"),
                    m.total_parallelism.to_string(),
                    format!("{:.1}", m.final_latency_ms),
                    format!("{:.0}", m.final_throughput),
                    m.meets_qos.to_string(),
                ]
            })
        }),
    )
    .expect("write elasticity csv");
    output::write_json(&dir.join("elasticity.json"), &report).expect("write elasticity json");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_initial_parallelism() {
        let w = wordcount();
        assert_eq!(Scenario::ScaleUp.initial_parallelism(&w), vec![1, 1, 1, 1]);
        let down = Scenario::ScaleDown.initial_parallelism(&w);
        // Over-provisioned relative to the ~(3,4,5,6) optimum, yet feasible.
        assert_eq!(down, vec![10, 14, 16, 16]);
        let yd = Scenario::ScaleDown.initial_parallelism(&yahoo());
        assert_eq!(yd, vec![40, 6, 6, 6, 40]);
    }

    #[test]
    fn yahoo_elasticity_rate_is_achievable() {
        assert_eq!(elasticity_rate(&yahoo()), 34_000.0);
        assert_eq!(elasticity_rate(&wordcount()), 350_000.0);
    }

    #[test]
    fn saving_pct_prefers_qos_meeting_drs() {
        let block = ScenarioResult {
            workload: "X".into(),
            scenario: Scenario::ScaleUp,
            target_latency_ms: 100.0,
            input_rate: 1000.0,
            methods: vec![
                MethodResult {
                    method: "AuTraScale".into(),
                    iterations: 3,
                    final_parallelism: vec![2, 2],
                    total_parallelism: 4,
                    final_latency_ms: 50.0,
                    final_throughput: 1000.0,
                    meets_qos: true,
                },
                MethodResult {
                    method: "DRS-true".into(),
                    iterations: 2,
                    final_parallelism: vec![1, 2],
                    total_parallelism: 3,
                    final_latency_ms: 500.0,
                    final_throughput: 900.0,
                    meets_qos: false, // cheaper but violates QoS — ignored
                },
                MethodResult {
                    method: "DRS-observed".into(),
                    iterations: 2,
                    final_parallelism: vec![4, 4],
                    total_parallelism: 8,
                    final_latency_ms: 60.0,
                    final_throughput: 1000.0,
                    meets_qos: true,
                },
            ],
        };
        // Compared against DRS as published (observed rate, Σp = 8).
        assert!((saving_pct(&block) - 50.0).abs() < 1e-9);
    }
}

//! Experiment harness: one module per table/figure of the paper's
//! evaluation (§II case studies and §V), plus shared output plumbing.
//!
//! Every module exposes a `run(...) -> Report` function returning a
//! serializable report and, via [`output`], writes CSV artifacts under
//! `results/`. The `autrascale-experiments` binary wires them to
//! subcommands:
//!
//! ```text
//! cargo run -p autrascale-experiments --release -- fig1
//! cargo run -p autrascale-experiments --release -- all
//! ```
//!
//! | Subcommand   | Paper artifact | Module |
//! |---|---|---|
//! | `fig1`       | Fig. 1 (CASE 1: fixed parallelism, rising rate) | [`fig1`] |
//! | `fig2`       | Fig. 2 (CASE 2: fixed rate, rising parallelism) | [`fig2`] |
//! | `fig5a`      | Fig. 5(a) throughput optimization, 4 workloads  | [`fig5`] |
//! | `fig5b`      | Fig. 5(b) Yahoo iteration trace                 | [`fig5`] |
//! | `elasticity` | Tables II & III + Figs. 6 & 7                   | [`elasticity`] |
//! | `fig8`       | Fig. 8 transfer learning vs DS2                 | [`fig8`] |
//! | `table4`     | Table IV algorithm overhead                     | [`table4`] |
//! | `bootstrap`  | §V-C's "more samples, fewer iterations" claim   | [`bootstrap_sweep`] |
//! | `slo`        | SLO-safety sweep: constrained vs unconstrained acquisition across the scenario battery | [`slo_sweep`] |
//! | `forecast`   | Proactive-forecasting sweep: violating windows + lag avoided vs reactive on diurnal/flash-crowd | [`forecast_sweep`] |
//! | `fleet`      | Fleet control plane: steady-state MAPE loops/s at 1 000 simulated jobs | [`fleet_sweep`] |

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod bootstrap_sweep;
pub mod elasticity;
pub mod fig1;
pub mod fig2;
pub mod fig5;
pub mod fig8;
pub mod fleet_sweep;
pub mod forecast_sweep;
pub mod output;
pub mod slo_sweep;
pub mod table4;

use autrascale::AuTraScaleConfig;
use autrascale_workloads::Workload;

/// The controller configuration used by every §V experiment: the paper's
/// targets with a 10:1 policy-running-time : restart-downtime ratio
/// (the paper used 5–10 min policy running times against ~30 s restarts).
pub fn paper_config(workload: &Workload, seed: u64) -> AuTraScaleConfig {
    AuTraScaleConfig {
        target_latency_ms: workload.target_latency_ms,
        policy_running_time: 300.0,
        policy_interval: 60.0,
        // Threshold 0.9 as in §V-C: α=0.5, w=0.25 ⇒ 0.5 + 0.5/1.25 = 0.9.
        alpha: 0.5,
        over_allocation_ratio: 0.25,
        // Yahoo's 5-operator space up to P_max = 40 needs a larger budget
        // than the 25-iteration default.
        max_bo_iters: 40,
        seed,
        ..Default::default()
    }
}

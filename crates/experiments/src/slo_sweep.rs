//! SLO-safety sweep — violations vs. convergence across the scenario
//! battery, constrained acquisition against the unconstrained default.
//!
//! For every scenario in [`autrascale_workloads::scenarios`] this runs
//! Algorithm 1 twice at an equal observation budget — once with the plain
//! EI acquisition and once with the SLO-gated cEI = EI · Φ((SLO − μ_c)/σ_c)
//! — and tabulates per-evaluation SLO violations, iterations to
//! termination, and terminal quality. The operating point is the
//! resource-frugal α = 0.3 regime from `tests/scenarios.rs`, where
//! under-provisioned configurations score highest and an unguarded
//! acquisition actively chases violating configurations.

use crate::output;
use autrascale::{Algorithm1, AuTraScaleConfig, ElasticityOutcome};
use autrascale_flinkctl::FlinkCluster;
use autrascale_workloads::scenarios::{self, Scenario};
use rayon::prelude::*;
use serde::Serialize;

/// One (scenario, acquisition-mode) row, averaged over the sweep seeds.
#[derive(Debug, Clone, Serialize)]
pub struct SloRow {
    /// Scenario name (`flash-crowd`, `cascading-failure`, …).
    pub scenario: &'static str,
    /// `true` for the SLO-gated acquisition, `false` for plain EI.
    pub constrained: bool,
    /// Mean per-evaluation SLO violations (bootstrap + BO history).
    pub slo_violations: f64,
    /// Mean BO iterations to termination.
    pub iterations: f64,
    /// Mean total evaluations spent (bootstrap + BO).
    pub total_evaluations: f64,
    /// Mean terminal latency, ms.
    pub final_latency_ms: f64,
    /// Fraction of seeds whose terminal configuration met QoS.
    pub qos_success_rate: f64,
}

/// The sweep report: two rows per scenario plus battery-wide totals.
#[derive(Debug, Clone, Serialize)]
pub struct SloSweepReport {
    pub rows: Vec<SloRow>,
    /// Battery-wide mean violations, unconstrained acquisition.
    pub total_violations_unconstrained: f64,
    /// Battery-wide mean violations, constrained acquisition.
    pub total_violations_constrained: f64,
}

/// The scenario-battery operating point: equal observation budget in both
/// modes, with only the acquisition gate toggled. Mirrors
/// `tests/scenarios.rs` so the sweep reproduces the pinned regressions.
fn battery_config(s: &Scenario, seed: u64, constrained: bool) -> AuTraScaleConfig {
    let base = AuTraScaleConfig {
        target_latency_ms: s.target_latency_ms,
        alpha: 0.3,
        policy_running_time: 60.0,
        bootstrap_m: 3,
        max_bo_iters: 8,
        seed,
        ..Default::default()
    };
    if constrained {
        base.with_constrained_acquisition(0.9)
    } else {
        base
    }
}

/// Warmup placing the search window over each scenario's stress phase.
fn warmup_for(s: &Scenario) -> f64 {
    match s.name {
        "flash-crowd" => 960.0,
        "cascading-failure" => 200.0,
        _ => 60.0,
    }
}

/// One end-to-end run: scenario simulator → warmup → Algorithm 1.
fn run_point(s: &Scenario, seed: u64, constrained: bool) -> ElasticityOutcome {
    let sim = s.build(seed).expect("scenario builds");
    let mut cluster = FlinkCluster::new(sim);
    cluster.submit(&s.initial_parallelism).expect("submit");
    cluster
        .run_for(warmup_for(s))
        .expect("fixed positive duration");
    let cfg = battery_config(s, seed, constrained);
    let alg = Algorithm1::new(&cfg, s.initial_parallelism.clone(), s.as_workload().p_max());
    alg.run(&mut cluster, Vec::new()).expect("algorithm 1 runs")
}

/// Runs the full battery × {unconstrained, constrained} × seeds grid —
/// every point is an independent simulation, so the grid parallelizes —
/// then aggregates serially in grid order for byte-identical reports.
pub fn run(seed: u64) -> SloSweepReport {
    let seeds: Vec<u64> = (0..3).map(|i| seed.wrapping_add(i * 7919)).collect();
    let battery = scenarios::all_scenarios();
    let grid: Vec<(usize, bool, u64)> = battery
        .iter()
        .enumerate()
        .flat_map(|(i, _)| {
            [false, true]
                .into_iter()
                .flat_map(|c| seeds.iter().map(move |&s| (i, c, s)))
                .collect::<Vec<_>>()
        })
        .collect();
    let points: Vec<ElasticityOutcome> = grid
        .par_iter()
        .map(|&(i, c, s)| run_point(&battery[i], s, c))
        .collect();

    let n = seeds.len() as f64;
    let mut rows = Vec::new();
    for (chunk, &(i, c, _)) in points
        .chunks(seeds.len())
        .zip(grid.iter().step_by(seeds.len()))
    {
        let mut violations = 0.0;
        let mut iters = 0.0;
        let mut evals = 0.0;
        let mut latency = 0.0;
        let mut met = 0usize;
        for o in chunk {
            violations += o.slo_violations as f64;
            iters += o.iterations as f64;
            evals += (o.bootstrap_samples + o.iterations) as f64;
            latency += o.final_latency_ms;
            met += usize::from(o.meets_qos);
        }
        rows.push(SloRow {
            scenario: battery[i].name,
            constrained: c,
            slo_violations: violations / n,
            iterations: iters / n,
            total_evaluations: evals / n,
            final_latency_ms: latency / n,
            qos_success_rate: met as f64 / n,
        });
    }

    let total = |constrained: bool| {
        rows.iter()
            .filter(|r| r.constrained == constrained)
            .map(|r| r.slo_violations)
            .sum::<f64>()
    };
    let report = SloSweepReport {
        total_violations_unconstrained: total(false),
        total_violations_constrained: total(true),
        rows,
    };

    let dir = output::results_dir();
    let csv_rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.constrained.to_string(),
                format!("{:.2}", r.slo_violations),
                format!("{:.2}", r.iterations),
                format!("{:.2}", r.total_evaluations),
                format!("{:.1}", r.final_latency_ms),
                format!("{:.2}", r.qos_success_rate),
            ]
        })
        .collect();
    output::write_csv(
        &dir.join("slo_sweep.csv"),
        &[
            "scenario",
            "constrained",
            "slo_violations",
            "iterations",
            "total_evaluations",
            "final_latency_ms",
            "qos_success_rate",
        ],
        csv_rows,
    )
    .expect("write slo_sweep.csv");
    output::write_json(&dir.join("slo_sweep.json"), &report).expect("write slo_sweep.json");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_battery_in_both_modes() {
        let report = run(0xBEEF);
        let battery = scenarios::all_scenarios().len();
        assert_eq!(report.rows.len(), battery * 2);
        for s in scenarios::all_scenarios() {
            for c in [false, true] {
                assert!(
                    report
                        .rows
                        .iter()
                        .any(|r| r.scenario == s.name && r.constrained == c),
                    "missing row for {} constrained={c}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn constrained_totals_never_worse() {
        let report = run(0xBEEF);
        assert!(
            report.total_violations_constrained <= report.total_violations_unconstrained,
            "constrained {} > unconstrained {}",
            report.total_violations_constrained,
            report.total_violations_unconstrained
        );
    }

    #[test]
    fn sweep_is_seed_deterministic() {
        let a = run(7);
        let b = run(7);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.scenario, rb.scenario);
            assert_eq!(ra.constrained, rb.constrained);
            assert_eq!(ra.slo_violations, rb.slo_violations);
            assert_eq!(ra.iterations, rb.iterations);
        }
    }
}

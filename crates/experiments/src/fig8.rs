//! Fig. 8 — transfer efficiency when the data rate changes (§V-D).
//!
//! Nexmark Query 5 (rate 20k → 30k, l_t = 500 ms) and Query 11 (rate
//! 80k → 100k, l_t = 150 ms). A benefit model is trained in advance at
//! the old rate; at the new rate AuTraScale runs throughput optimization
//! followed by Algorithm 2 (transfer learning), compared against DS2 in
//! offline mode.
//!
//! Paper shapes: comparable iteration counts (Q11 equal, Q5 two more for
//! AuTraScale), AuTraScale's terminal configuration saves ~13.5%
//! parallelism on average (≈5.2% CPU, 6.2% memory), and its per-record
//! latency is slightly better while DS2 does not optimize latency at all.

use crate::{output, paper_config};
use autrascale::{Algorithm1, ModelLibrary, ThroughputOptimizer, TransferLearner};
use autrascale_baselines::{Ds2Config, Ds2Policy};
use autrascale_flinkctl::FlinkCluster;
use autrascale_metricsdb::Query;
use autrascale_streamsim::{metrics as simmetrics, Simulation};
use autrascale_workloads::{nexmark_q11, nexmark_q5, Workload};
use serde::Serialize;

/// Latency distribution summary of a terminal configuration.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyDistribution {
    /// Mean per-record processing latency, ms.
    pub mean_ms: f64,
    /// Median, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
}

/// One method's result on one query.
#[derive(Debug, Clone, Serialize)]
pub struct TransferMethodResult {
    /// "AuTraScale-transfer" or "DS2-offline".
    pub method: String,
    /// Iterations to terminate.
    pub iterations: usize,
    /// Terminal parallelism vector.
    pub final_parallelism: Vec<u32>,
    /// Σ parallelism (the resource-unit measure of Fig. 8a).
    pub total_parallelism: u64,
    /// Per-record latency at the terminal configuration (Fig. 8b).
    pub latency: LatencyDistribution,
    /// Estimated CPU cores in use (1 slot = 1 core, Fig. 8c).
    pub cpu_cores: u64,
    /// Estimated memory in GB (1 slot = 4 GB, Fig. 8c).
    pub memory_gb: u64,
}

/// One query's block of the Fig. 8 report.
#[derive(Debug, Clone, Serialize)]
pub struct TransferQueryResult {
    /// "Nexmark-Q5" or "Nexmark-Q11".
    pub query: String,
    /// The pre-training rate, records/s.
    pub old_rate: f64,
    /// The evaluation rate, records/s.
    pub new_rate: f64,
    /// Latency target, ms.
    pub target_latency_ms: f64,
    /// AuTraScale-transfer and DS2-offline results.
    pub methods: Vec<TransferMethodResult>,
}

/// The full Fig. 8 report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Report {
    /// Per-query blocks.
    pub queries: Vec<TransferQueryResult>,
    /// Mean parallelism saving of AuTraScale vs DS2 (paper: 13.5%).
    pub avg_parallelism_saving_pct: f64,
    /// Mean CPU saving (paper: 5.2%).
    pub avg_cpu_saving_pct: f64,
    /// Mean memory saving (paper: 6.2%).
    pub avg_memory_saving_pct: f64,
}

const MEMORY_GB_PER_SLOT: u64 = 4;

fn latency_distribution(cluster: &FlinkCluster, window: f64) -> LatencyDistribution {
    let store = cluster.simulation().store();
    let now = cluster.now();
    let from = (now - window).max(0.0);
    let points: Vec<_> = store
        .select(&Query::new(simmetrics::PROCESSING_LATENCY_MS, from, now))
        .expect("finite bounds")
        .into_iter()
        .flat_map(|(_, pts)| pts)
        .collect();
    // Ranks are the literals below, so the Err arm is impossible.
    let pct = |q: f64| {
        autrascale_metricsdb::percentile(&points, q)
            .ok()
            .flatten()
            .unwrap_or(0.0)
    };
    LatencyDistribution {
        mean_ms: autrascale_metricsdb::mean(&points).unwrap_or(0.0),
        p50_ms: pct(50.0),
        p95_ms: pct(95.0),
        p99_ms: pct(99.0),
    }
}

fn method_result(
    method: &str,
    iterations: usize,
    parallelism: Vec<u32>,
    cluster: &FlinkCluster,
) -> TransferMethodResult {
    let total: u64 = parallelism.iter().map(|&p| u64::from(p)).sum();
    TransferMethodResult {
        method: method.into(),
        iterations,
        total_parallelism: total,
        latency: latency_distribution(cluster, 150.0),
        cpu_cores: total,
        memory_gb: total * MEMORY_GB_PER_SLOT,
        final_parallelism: parallelism,
    }
}

/// Drains any backlog the reconfiguration phases accumulated so the
/// terminal configuration's latency reflects IT, not its predecessors
/// (the paper measures per-record latency at the terminal configuration
/// of each method). Bounded.
fn settle(cluster: &mut FlinkCluster, rate: f64) {
    for _ in 0..30 {
        if cluster.simulation().kafka_lag() <= rate {
            break;
        }
        cluster.run_for(120.0).expect("fixed positive duration");
    }
    cluster.run_for(150.0).expect("fixed positive duration");
}

/// Runs one query's transfer experiment.
///
/// Following §V-D's protocol: the benefit model for the OLD rate is
/// trained in advance; both methods are then evaluated on a deployment
/// receiving the NEW rate, starting from the old rate's base
/// configuration (the state a running job would be in when its input
/// rate changes).
pub fn run_query(
    workload: &Workload,
    old_rate: f64,
    new_rate: f64,
    seed: u64,
) -> TransferQueryResult {
    let config = paper_config(workload, seed);

    // --- Pre-training at the old rate (shared by both methods' setup). ---
    let (library, old_base) = {
        let sim = Simulation::new(workload.config(old_rate, seed)).expect("valid workload");
        let mut cluster = FlinkCluster::new(sim);
        let thr_old = ThroughputOptimizer::new(&config)
            .run(&mut cluster)
            .expect("old-rate throughput optimization");
        let alg1 = Algorithm1::new(&config, thr_old.final_parallelism.clone(), workload.p_max());
        let trained = alg1
            .run(&mut cluster, Vec::new())
            .expect("old-rate Algorithm 1");
        let mut library = ModelLibrary::new();
        library.insert(old_rate, trained.dataset);
        (library, thr_old.final_parallelism)
    };

    // --- AuTraScale: throughput optimization + Algorithm 2 at new rate. ---
    let autrascale = {
        let sim = Simulation::new(workload.config(new_rate, seed)).expect("valid workload");
        let mut cluster = FlinkCluster::new(sim);
        cluster.submit(&old_base).expect("old base is valid");
        cluster.run_for(60.0).expect("fixed positive duration"); // one policy interval until detection

        let thr_new = ThroughputOptimizer::new(&config)
            .run(&mut cluster)
            .expect("new-rate throughput optimization");
        settle(&mut cluster, new_rate);
        let tl = TransferLearner::new(&config, thr_new.final_parallelism.clone(), workload.p_max());
        let prior = library
            .closest(new_rate)
            .expect("library has the old model")
            .clone();
        let outcome = tl
            .run(&mut cluster, &prior, Vec::new())
            .expect("Algorithm 2 runs");
        settle(&mut cluster, new_rate);
        method_result(
            "AuTraScale-transfer",
            outcome.iterations,
            outcome.final_parallelism,
            &cluster,
        )
    };

    // --- DS2 offline at the new rate, from the same starting state. ---
    let ds2 = {
        let sim = Simulation::new(workload.config(new_rate, seed + 1)).expect("valid workload");
        let mut cluster = FlinkCluster::new(sim);
        cluster.submit(&old_base).expect("old base is valid");
        cluster.run_for(60.0).expect("fixed positive duration");
        let policy = Ds2Policy::new(Ds2Config {
            policy_running_time: config.policy_running_time,
            ..Default::default()
        });
        let outcome = policy.run(&mut cluster).expect("DS2 runs");
        settle(&mut cluster, new_rate);
        method_result(
            "DS2-offline",
            outcome.iterations,
            outcome.final_parallelism,
            &cluster,
        )
    };

    TransferQueryResult {
        query: workload.name.to_string(),
        old_rate,
        new_rate,
        target_latency_ms: workload.target_latency_ms,
        methods: vec![autrascale, ds2],
    }
}

/// Runs both queries (parallel threads) and aggregates savings.
pub fn run(seed: u64) -> Fig8Report {
    let q5 = nexmark_q5();
    let q11 = nexmark_q11();
    let queries: Vec<TransferQueryResult> = std::thread::scope(|scope| {
        let h5 = scope.spawn(|| run_query(&q5, 20_000.0, 30_000.0, seed));
        let h11 = scope.spawn(|| run_query(&q11, 80_000.0, 100_000.0, seed + 100));
        vec![
            h5.join().expect("q5 thread"),
            h11.join().expect("q11 thread"),
        ]
    });

    let savings: Vec<(f64, f64, f64)> = queries
        .iter()
        .map(|q| {
            let autra = &q.methods[0];
            let ds2 = &q.methods[1];
            let pct = |a: u64, b: u64| {
                if b == 0 {
                    0.0
                } else {
                    (1.0 - a as f64 / b as f64) * 100.0
                }
            };
            (
                pct(autra.total_parallelism, ds2.total_parallelism),
                pct(autra.cpu_cores, ds2.cpu_cores),
                pct(autra.memory_gb, ds2.memory_gb),
            )
        })
        .collect();
    let n = savings.len() as f64;
    let report = Fig8Report {
        avg_parallelism_saving_pct: savings.iter().map(|s| s.0).sum::<f64>() / n,
        avg_cpu_saving_pct: savings.iter().map(|s| s.1).sum::<f64>() / n,
        avg_memory_saving_pct: savings.iter().map(|s| s.2).sum::<f64>() / n,
        queries,
    };

    let dir = output::results_dir();
    output::write_csv(
        &dir.join("fig8_transfer.csv"),
        &[
            "query",
            "method",
            "iterations",
            "final_parallelism",
            "total_parallelism",
            "latency_mean_ms",
            "latency_p50_ms",
            "latency_p95_ms",
            "latency_p99_ms",
            "cpu_cores",
            "memory_gb",
        ],
        report.queries.iter().flat_map(|q| {
            q.methods.iter().map(move |m| {
                vec![
                    q.query.clone(),
                    m.method.clone(),
                    m.iterations.to_string(),
                    output::fmt_parallelism(&m.final_parallelism).replace(", ", ";"),
                    m.total_parallelism.to_string(),
                    format!("{:.1}", m.latency.mean_ms),
                    format!("{:.1}", m.latency.p50_ms),
                    format!("{:.1}", m.latency.p95_ms),
                    format!("{:.1}", m.latency.p99_ms),
                    m.cpu_cores.to_string(),
                    m.memory_gb.to_string(),
                ]
            })
        }),
    )
    .expect("write fig8 csv");
    output::write_json(&dir.join("fig8.json"), &report).expect("write fig8 json");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_distribution_orders_percentiles() {
        let w = nexmark_q11();
        let sim = Simulation::new(w.config(50_000.0, 3)).unwrap();
        let mut cluster = FlinkCluster::new(sim);
        cluster.submit(&[1, 6]).unwrap();
        cluster.run_for(200.0).expect("fixed positive duration");
        let d = latency_distribution(&cluster, 150.0);
        assert!(d.p50_ms <= d.p95_ms);
        assert!(d.p95_ms <= d.p99_ms);
        assert!(d.mean_ms > 0.0);
    }
}

//! Result artifacts: CSV files under `results/` and markdown tables on
//! stdout.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Resolves (and creates) the results directory. Honors
/// `AUTRASCALE_RESULTS_DIR`, defaulting to `./results`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("AUTRASCALE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Writes a CSV file with a header row and stringified records.
pub fn write_csv(
    path: &Path,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> std::io::Result<()> {
    let mut file = fs::File::create(path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(())
}

/// Serializes any report to pretty JSON next to the CSVs.
pub fn write_json<T: serde::Serialize>(path: &Path, report: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    fs::write(path, json)
}

/// Renders a markdown table to a string.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Compact formatting for parallelism vectors: `(3, 4, 12, 10)`.
pub fn fmt_parallelism(k: &[u32]) -> String {
    let inner: Vec<String> = k.iter().map(u32::to_string).collect();
    format!("({})", inner.join(", "))
}

/// Rounds to one decimal for table display.
pub fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

/// Thousands-friendly rate display (`350.0k`).
pub fn fmt_rate(v: f64) -> String {
    format!("{:.1}k", v / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let md = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(md.starts_with("| a | b |\n|---|---|\n"));
        assert!(md.contains("| 3 | 4 |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_parallelism(&[3, 4, 12, 10]), "(3, 4, 12, 10)");
        assert_eq!(fmt1(1.25), "1.2");
        assert_eq!(fmt_rate(350_000.0), "350.0k");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("autrascale_test_csv");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(&path, &["x", "y"], vec![vec!["1".into(), "2".into()]]).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
    }
}

//! Fig. 1 — CASE 1: fixed parallelism 2, input rate rising 100k→300k in
//! 50k steps every 10 minutes.
//!
//! Expected shape (paper Observation 1): throughput tracks the input rate
//! up to ~250k records/s, then plateaus; Kafka lag and end-to-end
//! (event-time) latency grow without bound once the rate exceeds the
//! fixed configuration's capacity.

use crate::output;
use autrascale_streamsim::{RateProfile, Simulation};
use autrascale_workloads::wordcount;
use serde::Serialize;

/// One sampled point of the CASE 1 time series.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Point {
    /// Time, minutes.
    pub minute: f64,
    /// External input rate, records/s.
    pub input_rate: f64,
    /// Job throughput (source consumption), records/s.
    pub throughput: f64,
    /// Kafka consumer lag, records.
    pub kafka_lag: f64,
    /// In-job processing latency, ms.
    pub processing_latency_ms: f64,
    /// Event-time latency (Kafka pending + processing), ms; very large
    /// values are reported as-is, `None` while fully stalled.
    pub event_time_latency_ms: Option<f64>,
}

/// The CASE 1 report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Report {
    /// Sampled every `sample_interval` seconds.
    pub series: Vec<Fig1Point>,
    /// The plateau throughput over the final 10 minutes, records/s.
    pub plateau_throughput: f64,
    /// Lag at the end of the run, records.
    pub final_lag: f64,
}

/// Runs CASE 1. `duration_secs` defaults to the paper's 50 minutes.
pub fn run(duration_secs: f64, seed: u64) -> Fig1Report {
    let w = wordcount();
    // 100k start, +50k per 10 min, capped at 300k.
    let profile = RateProfile::staircase(100_000.0, 50_000.0, 600.0, 300_000.0);
    let mut sim =
        Simulation::new(w.config_with_profile(profile, seed)).expect("valid workload config");
    sim.deploy(&[2, 2, 2, 2]).expect("parallelism 2 is valid");

    let sample_interval = 10.0;
    let mut series = Vec::new();
    let mut elapsed = 0.0;
    // One snapshot buffer refilled in place each sample — the hot
    // sampling loop does no per-iteration allocation.
    let mut snap = sim.snapshot();
    while elapsed < duration_secs {
        sim.run_for(sample_interval)
            .expect("finite sample interval");
        elapsed += sample_interval;
        sim.snapshot_into(&mut snap);
        series.push(Fig1Point {
            minute: snap.time / 60.0,
            input_rate: snap.producer_rate,
            throughput: snap.source_consumption_rate,
            kafka_lag: snap.kafka_lag,
            processing_latency_ms: snap.processing_latency_ms,
            event_time_latency_ms: snap.event_time_latency_ms,
        });
    }

    let tail = (duration_secs / sample_interval * 0.2) as usize;
    let tail_points = &series[series.len().saturating_sub(tail.max(1))..];
    let plateau_throughput =
        tail_points.iter().map(|p| p.throughput).sum::<f64>() / tail_points.len() as f64;

    let report = Fig1Report {
        final_lag: series.last().map(|p| p.kafka_lag).unwrap_or(0.0),
        plateau_throughput,
        series,
    };

    let dir = output::results_dir();
    output::write_csv(
        &dir.join("fig1_case1.csv"),
        &[
            "minute",
            "input_rate",
            "throughput",
            "kafka_lag",
            "proc_latency_ms",
            "event_latency_ms",
        ],
        report.series.iter().map(|p| {
            vec![
                format!("{:.2}", p.minute),
                format!("{:.0}", p.input_rate),
                format!("{:.0}", p.throughput),
                format!("{:.0}", p.kafka_lag),
                format!("{:.1}", p.processing_latency_ms),
                p.event_time_latency_ms
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "inf".into()),
            ]
        }),
    )
    .expect("write fig1 csv");
    output::write_json(&dir.join("fig1_case1.json"), &report).expect("write fig1 json");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_reproduces_observation1() {
        // Shortened run: 100k for 120 s (fine), then jump straight into
        // the over-capacity regime via the staircase at 10x speed.
        let w = wordcount();
        let profile = RateProfile::staircase(100_000.0, 50_000.0, 60.0, 300_000.0);
        let mut sim = Simulation::new(w.config_with_profile(profile, 5)).unwrap();
        sim.deploy(&[2, 2, 2, 2]).unwrap();
        // At 100k: keeps up.
        sim.run_for(50.0).unwrap();
        let early = sim.snapshot();
        assert!(early.kafka_lag < 50_000.0, "lag {}", early.kafka_lag);
        // At 300k (t > 240 s): far over the ~250k capacity ⇒ lag grows.
        sim.run_for(400.0).unwrap();
        let late = sim.snapshot();
        assert!(late.kafka_lag > 1_000_000.0, "lag {}", late.kafka_lag);
        assert!(late.source_consumption_rate < 280_000.0);
        assert!(late.source_consumption_rate > 200_000.0);
    }
}

//! Fleet control-plane sweep — steady-state MAPE throughput at 1 000
//! simulated jobs (ISSUE 10).
//!
//! One donor job cold-tunes on the smoke topology; its checkpoint then
//! pre-warms an `n`-job fleet (every tenant resumed at the tuned
//! parallelism and steady rate), the regime the fleet scheduler is built
//! for: each 30 s scheduling round runs one cheap steady-state MAPE
//! activation per job. The sweep times `rounds` concurrent rounds with
//! `std::time::Instant` (this crate is ambient-exempt) and reports
//! **MAPE loops per wall-clock second** — the control plane's sustained
//! multi-tenant throughput — plus the serial reference on a smaller
//! fleet and the per-job metric footprint retention holds it to.
//!
//! Run with `cargo run --release -p autrascale-experiments -- fleet`;
//! artifacts land in `results/fleet_sweep.{csv,json}`. Recorded medians
//! live in `BENCH_fleet.json` at the repo root.

use crate::output;
use autrascale::AuTraScaleConfig;
use autrascale_fleet::{Admission, Fleet, FleetConfig, JobSpec, ResumeState, WorkloadFeatures};
use autrascale_streamsim::{JobGraph, OperatorSpec, RateProfile, SimulationConfig};
use serde::Serialize;
use std::time::Instant;

/// One timed configuration of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FleetRow {
    /// Number of simulated jobs in the fleet.
    pub jobs: usize,
    /// `true` for `advance_round` (sharded/concurrent), `false` for the
    /// serial reference.
    pub concurrent: bool,
    /// Scheduling rounds timed (after a warm-up round).
    pub rounds: usize,
    /// Wall-clock seconds for the timed rounds.
    pub wall_secs: f64,
    /// Steady-state MAPE activations completed per wall-clock second.
    pub loops_per_sec: f64,
    /// Largest per-job metric shard after the run, points (bounded by
    /// retention regardless of how long the fleet has run).
    pub max_shard_points: usize,
}

/// The sweep report.
#[derive(Debug, Clone, Serialize)]
pub struct FleetSweepReport {
    pub rows: Vec<FleetRow>,
}

fn sim_config(rate: f64, seed: u64) -> SimulationConfig {
    let job = JobGraph::linear(vec![
        OperatorSpec::source("Source", 30_000.0),
        OperatorSpec::sink("Sink", 5_000.0)
            .with_sync_coeff(0.02)
            .with_comm_cost_ms(3.0),
    ])
    .expect("smoke topology is valid");
    SimulationConfig {
        job,
        profile: RateProfile::constant(rate),
        seed,
        restart_downtime: 2.0,
        ..Default::default()
    }
}

fn controller_config() -> AuTraScaleConfig {
    AuTraScaleConfig {
        target_latency_ms: 150.0,
        policy_interval: 30.0,
        policy_running_time: 60.0,
        bootstrap_m: 3,
        max_bo_iters: 4,
        n_num: 3,
        ..Default::default()
    }
}

fn spec(id: u64, rate: f64, seed: u64) -> JobSpec {
    JobSpec {
        id,
        sim: sim_config(rate, seed.wrapping_add(id)),
        controller: controller_config(),
        initial_parallelism: vec![1, 1],
        features: WorkloadFeatures::of_job(2, 20, rate, 150.0),
        resume: None,
    }
}

/// Cold-tunes one donor and returns its checkpoint plus the tuned
/// parallelism every resumed tenant is submitted at.
fn donor_checkpoint(seed: u64) -> (ResumeState, Vec<u32>) {
    let mut donor = Fleet::new(FleetConfig::default());
    donor.admit(spec(0, 10_000.0, seed)).expect("donor admits");
    donor.advance_round(60.0).expect("donor tunes");
    let tuned = donor.job(0).expect("donor exists");
    let resume = ResumeState {
        rate: tuned
            .controller()
            .current_rate()
            .expect("donor saw its steady rate"),
        base: tuned
            .controller()
            .base()
            .expect("donor tuned a base")
            .to_vec(),
        library: tuned.controller().library().clone(),
    };
    (resume, tuned.cluster().parallelism().to_vec())
}

/// Builds a pre-warmed `jobs`-tenant fleet from the donor checkpoint.
fn warm_fleet(jobs: usize, resume: &ResumeState, parallelism: &[u32], seed: u64) -> Fleet {
    let mut fleet = Fleet::new(FleetConfig {
        retention_secs: Some(60.0),
        shard_count: 16,
        ..Default::default()
    });
    for id in 0..jobs as u64 {
        let mut s = spec(id, 10_000.0, seed);
        s.initial_parallelism = parallelism.to_vec();
        s.resume = Some(resume.clone());
        let admission = fleet.admit(s).expect("resumed admission");
        assert_eq!(admission, Admission::Resumed);
    }
    // One warm-up round past the metric windows so every timed round is
    // pure steady state.
    fleet.advance_round(120.0).expect("warm-up round");
    fleet
}

/// Times `rounds` scheduling rounds on a pre-warmed fleet.
fn time_rounds(fleet: &mut Fleet, rounds: usize, concurrent: bool) -> FleetRow {
    let jobs = fleet.len();
    let start = Instant::now();
    for _ in 0..rounds {
        let outcomes = if concurrent {
            fleet.advance_round(30.0).expect("timed round")
        } else {
            fleet.advance_round_serial(30.0).expect("timed round")
        };
        assert_eq!(outcomes.len(), jobs);
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let loops = jobs * rounds;
    let max_shard_points = fleet
        .metrics()
        .shard_ids()
        .into_iter()
        .map(|id| fleet.metrics().shard_points(id))
        .max()
        .unwrap_or(0);
    FleetRow {
        jobs,
        concurrent,
        rounds,
        wall_secs,
        loops_per_sec: if wall_secs > 0.0 {
            loops as f64 / wall_secs
        } else {
            f64::INFINITY
        },
        max_shard_points,
    }
}

/// The sweep at explicit fleet sizes: concurrent rounds at each size,
/// plus a serial reference at the smallest size (the determinism contract
/// makes the two bitwise identical, so the serial row is purely a timing
/// baseline).
pub fn run_with(sizes: &[usize], rounds: usize, seed: u64) -> FleetSweepReport {
    let (resume, parallelism) = donor_checkpoint(seed);
    let mut rows = Vec::new();
    for (i, &jobs) in sizes.iter().enumerate() {
        let mut fleet = warm_fleet(jobs, &resume, &parallelism, seed);
        rows.push(time_rounds(&mut fleet, rounds, true));
        if i == 0 {
            let mut serial = warm_fleet(jobs, &resume, &parallelism, seed);
            rows.push(time_rounds(&mut serial, rounds, false));
        }
    }
    let report = FleetSweepReport { rows };

    let dir = output::results_dir();
    let csv_rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.jobs.to_string(),
                r.concurrent.to_string(),
                r.rounds.to_string(),
                format!("{:.3}", r.wall_secs),
                format!("{:.1}", r.loops_per_sec),
                r.max_shard_points.to_string(),
            ]
        })
        .collect();
    output::write_csv(
        &dir.join("fleet_sweep.csv"),
        &[
            "jobs",
            "concurrent",
            "rounds",
            "wall_secs",
            "loops_per_sec",
            "max_shard_points",
        ],
        csv_rows,
    )
    .expect("write fleet_sweep.csv");
    output::write_json(&dir.join("fleet_sweep.json"), &report).expect("write fleet_sweep.json");
    report
}

/// The headline sweep: 1 000 simulated jobs (the ISSUE 10 acceptance
/// scale) with a 64-job point for the serial comparison.
pub fn run(seed: u64) -> FleetSweepReport {
    run_with(&[64, 1_000], 4, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_positive_throughput_and_bounded_shards() {
        let report = run_with(&[8], 2, 0xF1EE7);
        // One concurrent row + one serial reference row.
        assert_eq!(report.rows.len(), 2);
        let concurrent = &report.rows[0];
        let serial = &report.rows[1];
        assert!(concurrent.concurrent);
        assert!(!serial.concurrent);
        assert_eq!(concurrent.jobs, 8);
        assert!(concurrent.loops_per_sec > 0.0);
        assert!(serial.loops_per_sec > 0.0);
        // Retention keeps every shard bounded; identical fleets advanced
        // the same rounds hold identical footprints.
        assert!(concurrent.max_shard_points > 0);
        assert_eq!(concurrent.max_shard_points, serial.max_shard_points);
    }
}

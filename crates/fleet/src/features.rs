//! Workload feature vectors — the retrieval key of cross-job transfer.
//!
//! A new job should inherit models from the finished session whose
//! *workload* looks most like its own, not from whichever session
//! happened to finish last. This module defines the feature embedding
//! that comparison runs in: a small fixed-meaning vector (operator count,
//! resource ceiling, input rate, latency target) plus free-form extra
//! dimensions, compared by squared Euclidean distance in a normalized
//! space (rates and latencies are log-scaled so a 10k→20k rec/s gap
//! counts like a 100k→200k one).

use std::fmt;

/// Errors constructing a feature vector.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureError {
    /// A feature value was NaN or infinite.
    NonFinite {
        /// Index of the offending dimension.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// The vector was empty.
    Empty,
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::NonFinite { index, value } => {
                write!(f, "non-finite feature {value} at dimension {index}")
            }
            FeatureError::Empty => write!(f, "empty feature vector"),
        }
    }
}

impl std::error::Error for FeatureError {}

/// A workload's position in feature space. Construction validates every
/// dimension finite, so distances over stored features are always
/// well-ordered (no NaN poisoning the nearest-neighbor scan).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadFeatures {
    dims: Vec<f64>,
}

impl WorkloadFeatures {
    /// A feature vector from raw dimensions.
    pub fn new(dims: Vec<f64>) -> Result<Self, FeatureError> {
        if dims.is_empty() {
            return Err(FeatureError::Empty);
        }
        for (index, &value) in dims.iter().enumerate() {
            if !value.is_finite() {
                return Err(FeatureError::NonFinite { index, value });
            }
        }
        Ok(Self { dims })
    }

    /// The canonical embedding of a streaming job: operator count, the
    /// cluster's parallelism ceiling, input rate and latency target, the
    /// last two log-scaled (`ln(1 + x)`, clamped at zero) so distances
    /// compare workloads by *ratio* rather than absolute magnitude.
    pub fn of_job(
        num_operators: usize,
        max_parallelism: u32,
        input_rate: f64,
        target_latency_ms: f64,
    ) -> Self {
        let log1p = |x: f64| {
            if x.is_finite() && x > 0.0 {
                x.ln_1p()
            } else {
                0.0
            }
        };
        Self {
            dims: vec![
                num_operators as f64,
                f64::from(max_parallelism),
                log1p(input_rate),
                log1p(target_latency_ms),
            ],
        }
    }

    /// The raw dimensions.
    pub fn dims(&self) -> &[f64] {
        &self.dims
    }

    /// Squared Euclidean distance to another feature vector; `None` when
    /// the vectors have different arity (incomparable embeddings never
    /// win a nearest-neighbor scan — they are skipped, not coerced).
    pub fn sq_distance(&self, other: &Self) -> Option<f64> {
        if self.dims.len() != other.dims.len() {
            return None;
        }
        Some(
            self.dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| (a - b) * (a - b))
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_finite_and_empty() {
        assert_eq!(WorkloadFeatures::new(Vec::new()), Err(FeatureError::Empty));
        assert!(matches!(
            WorkloadFeatures::new(vec![1.0, f64::NAN]),
            Err(FeatureError::NonFinite { index: 1, .. })
        ));
        assert!(matches!(
            WorkloadFeatures::new(vec![f64::INFINITY]),
            Err(FeatureError::NonFinite { index: 0, .. })
        ));
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = WorkloadFeatures::of_job(4, 20, 350_000.0, 180.0);
        let b = WorkloadFeatures::of_job(2, 25, 30_000.0, 500.0);
        let ab = a.sq_distance(&b).unwrap();
        let ba = b.sq_distance(&a).unwrap();
        assert_eq!(ab.to_bits(), ba.to_bits());
        assert_eq!(a.sq_distance(&a), Some(0.0));
        assert!(ab > 0.0);
    }

    #[test]
    fn mismatched_arity_is_incomparable() {
        let a = WorkloadFeatures::new(vec![1.0, 2.0]).unwrap();
        let b = WorkloadFeatures::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.sq_distance(&b), None);
    }

    #[test]
    fn log_scaling_compares_rates_by_ratio() {
        // 10k vs 20k must be about as far as 100k vs 200k.
        let lo = WorkloadFeatures::of_job(2, 10, 10_000.0, 100.0);
        let lo2 = WorkloadFeatures::of_job(2, 10, 20_000.0, 100.0);
        let hi = WorkloadFeatures::of_job(2, 10, 100_000.0, 100.0);
        let hi2 = WorkloadFeatures::of_job(2, 10, 200_000.0, 100.0);
        let d_lo = lo.sq_distance(&lo2).unwrap();
        let d_hi = hi.sq_distance(&hi2).unwrap();
        assert!((d_lo - d_hi).abs() < 0.01 * d_lo.max(d_hi));
    }
}

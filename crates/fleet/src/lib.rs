//! Fleet-scale multi-job control plane.
//!
//! The paper tunes one streaming job at a time; a production deployment
//! of the same controller runs *fleets* of them. This crate scales the
//! single-job MAPE stack out to many tenants without giving up the
//! repo's determinism discipline:
//!
//! * [`Fleet`] — a sharded scheduler advancing many simulated jobs
//!   concurrently (rayon over contiguous shards of the id-sorted job
//!   vector), each job owning its own `MapeController` + `FlinkCluster`;
//! * [`FleetLibrary`] — a concurrently readable donor library with
//!   cross-job transfer: nearest-neighbor retrieval over
//!   [`WorkloadFeatures`] seeds a new job's transfer cascade from the
//!   closest published session, falling back to cold start;
//! * per-job metric shards (`autrascale_metricsdb::ShardedMetricStore`)
//!   with retention caps that keep a 1k-job fleet's memory bounded.
//!
//! The batched suggestion entry point for fleets that drive raw
//! optimizers directly is `autrascale_bayesopt::suggest_batch`.
//!
//! # Determinism contract
//!
//! Concurrency here is *parallelism of independent work*, never a source
//! of nondeterminism: a fleet of N jobs advanced concurrently is
//! bit-identical per job to the same N jobs advanced serially in job-ID
//! order, and a single-job fleet is bit-identical to driving the bare
//! controller loop yourself. `tests/fleet_determinism.rs` pins both
//! under each simulator engine.
//!
//! # Example
//!
//! ```
//! use autrascale::AuTraScaleConfig;
//! use autrascale_fleet::{Admission, Fleet, FleetConfig, JobSpec, WorkloadFeatures};
//! use autrascale_streamsim::{JobGraph, OperatorSpec, RateProfile, SimulationConfig};
//!
//! let job = JobGraph::linear(vec![
//!     OperatorSpec::source("Source", 30_000.0),
//!     OperatorSpec::sink("Sink", 8_000.0).with_sync_coeff(0.05),
//! ])
//! .unwrap();
//! let mut fleet = Fleet::new(FleetConfig::default());
//! fleet
//!     .admit(JobSpec {
//!         id: 1,
//!         sim: SimulationConfig {
//!             job,
//!             profile: RateProfile::constant(10_000.0),
//!             seed: 7,
//!             ..Default::default()
//!         },
//!         controller: AuTraScaleConfig::default(),
//!         initial_parallelism: vec![1, 1],
//!         features: WorkloadFeatures::of_job(2, 20, 10_000.0, 250.0),
//!         resume: None,
//!     })
//!     .unwrap();
//! assert_eq!(fleet.job(1).unwrap().admission(), Admission::ColdStart);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod features;
mod library;
mod scheduler;

pub use features::{FeatureError, WorkloadFeatures};
pub use library::{DonorEntry, FleetLibrary};
pub use scheduler::{
    Admission, Fleet, FleetConfig, FleetError, FleetJob, JobOutcome, JobSpec, ResumeState,
};

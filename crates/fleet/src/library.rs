//! The fleet-wide model library: finished sessions publish their per-rate
//! benefit models here; new jobs retrieve the closest donor at admission.
//!
//! Concurrency contract: the map is `RwLock`-guarded so scheduler shards
//! can *read* (nearest-neighbor retrieval at admission) concurrently,
//! while writes (publication) happen at explicit points in job-ID order —
//! never from inside a parallel round. Keys are a `BTreeMap` so every
//! scan runs in ascending job-ID order regardless of publication order,
//! which is what makes tie-breaking deterministic.

use crate::features::WorkloadFeatures;
use autrascale::ModelLibrary;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// One published session: where a donor's models came from and what its
/// workload looked like.
#[derive(Debug, Clone)]
pub struct DonorEntry {
    /// The publishing job's id.
    pub job_id: u64,
    /// The publishing job's workload embedding.
    pub features: WorkloadFeatures,
    /// The models it established (one per steady rate seen).
    pub library: ModelLibrary,
}

/// A concurrently readable map of donor sessions, keyed by job id.
#[derive(Debug, Default)]
pub struct FleetLibrary {
    entries: RwLock<BTreeMap<u64, (WorkloadFeatures, ModelLibrary)>>,
}

impl FleetLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or republishes) a session's models. Empty model
    /// libraries are ignored — a job that never tuned has nothing to
    /// donate, and keeping it out means retrieval can only ever seed a
    /// transfer cascade with at least one usable prior.
    pub fn publish(&self, job_id: u64, features: WorkloadFeatures, library: ModelLibrary) {
        if library.is_empty() {
            return;
        }
        self.entries.write().insert(job_id, (features, library));
    }

    /// Removes a donor (e.g. its models were found to be stale).
    pub fn retire(&self, job_id: u64) -> bool {
        self.entries.write().remove(&job_id).is_some()
    }

    /// Number of published donors.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// `true` when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Published donor ids, ascending.
    pub fn donor_ids(&self) -> Vec<u64> {
        self.entries.read().keys().copied().collect()
    }

    /// The donor closest to `query` in feature space, excluding
    /// `exclude` (a job never donates to itself on re-admission).
    ///
    /// Deterministic by construction: donors are scanned in ascending
    /// job-ID order and a later donor wins only on *strictly* smaller
    /// squared distance, so exact ties resolve to the lowest job id no
    /// matter the publication order. Donors with incomparable embeddings
    /// (different arity) are skipped.
    pub fn nearest(&self, query: &WorkloadFeatures, exclude: Option<u64>) -> Option<DonorEntry> {
        let guard = self.entries.read();
        let mut best: Option<(u64, f64)> = None;
        for (&job_id, (features, _)) in guard.iter() {
            if Some(job_id) == exclude {
                continue;
            }
            let Some(d) = query.sq_distance(features) else {
                continue;
            };
            let closer = match best {
                None => true,
                Some((_, best_d)) => d < best_d,
            };
            if closer {
                best = Some((job_id, d));
            }
        }
        let (job_id, _) = best?;
        guard.get(&job_id).map(|(features, library)| DonorEntry {
            job_id,
            features: features.clone(),
            library: library.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(x: f64) -> WorkloadFeatures {
        WorkloadFeatures::new(vec![x, 0.0]).unwrap()
    }

    fn lib_with_rate(rate: f64) -> ModelLibrary {
        let mut lib = ModelLibrary::new();
        lib.insert(rate, vec![(vec![1, 1], 0.5)]);
        lib
    }

    #[test]
    fn empty_library_retrieves_nothing() {
        let fleet = FleetLibrary::new();
        assert!(fleet.is_empty());
        assert!(fleet.nearest(&feats(0.0), None).is_none());
    }

    #[test]
    fn nearest_picks_minimum_distance() {
        let fleet = FleetLibrary::new();
        fleet.publish(1, feats(0.0), lib_with_rate(1_000.0));
        fleet.publish(2, feats(5.0), lib_with_rate(2_000.0));
        fleet.publish(3, feats(9.0), lib_with_rate(3_000.0));
        let hit = fleet.nearest(&feats(6.0), None).unwrap();
        assert_eq!(hit.job_id, 2);
        assert_eq!(hit.library.len(), 1);
    }

    #[test]
    fn exact_tie_resolves_to_lowest_id_regardless_of_publish_order() {
        for order in [[1u64, 5], [5, 1]] {
            let fleet = FleetLibrary::new();
            for id in order {
                // Ids 1 and 5 sit symmetrically around the query at 2.0.
                let x = if id == 1 { 0.0 } else { 4.0 };
                fleet.publish(id, feats(x), lib_with_rate(1_000.0));
            }
            let hit = fleet.nearest(&feats(2.0), None).unwrap();
            assert_eq!(hit.job_id, 1, "publish order {order:?}");
        }
    }

    #[test]
    fn exclusion_and_retire() {
        let fleet = FleetLibrary::new();
        fleet.publish(1, feats(0.0), lib_with_rate(1_000.0));
        fleet.publish(2, feats(10.0), lib_with_rate(2_000.0));
        let hit = fleet.nearest(&feats(0.0), Some(1)).unwrap();
        assert_eq!(hit.job_id, 2);
        assert!(fleet.retire(1));
        assert!(!fleet.retire(1));
        assert_eq!(fleet.donor_ids(), vec![2]);
    }

    #[test]
    fn empty_models_are_not_published() {
        let fleet = FleetLibrary::new();
        fleet.publish(1, feats(0.0), ModelLibrary::new());
        assert!(fleet.is_empty());
    }

    #[test]
    fn incomparable_embeddings_are_skipped() {
        let fleet = FleetLibrary::new();
        fleet.publish(1, WorkloadFeatures::new(vec![0.0]).unwrap(), {
            let mut l = ModelLibrary::new();
            l.insert(1.0, vec![(vec![1], 0.1)]);
            l
        });
        fleet.publish(2, feats(100.0), lib_with_rate(2_000.0));
        // Query in 2-d space: donor 1 (1-d) cannot be compared; donor 2
        // wins despite its huge distance.
        let hit = fleet.nearest(&feats(0.0), None).unwrap();
        assert_eq!(hit.job_id, 2);
    }

    #[test]
    fn republish_replaces_models() {
        let fleet = FleetLibrary::new();
        fleet.publish(7, feats(1.0), lib_with_rate(1_000.0));
        let mut bigger = lib_with_rate(1_000.0);
        bigger.insert(9_000.0, vec![(vec![2, 2], 0.9)]);
        fleet.publish(7, feats(1.0), bigger);
        let hit = fleet.nearest(&feats(1.0), None).unwrap();
        assert_eq!(hit.library.len(), 2);
        assert_eq!(fleet.len(), 1);
    }
}

//! The sharded fleet scheduler.
//!
//! A [`Fleet`] owns many independent jobs, each a full control stack
//! (simulated cluster + [`MapeController`]). A scheduling round advances
//! every job by the same wall-clock span; jobs are partitioned into
//! contiguous shards of the id-sorted job vector and shards run
//! concurrently (rayon), which is safe *and* bit-reproducible because
//! jobs share no mutable state during a round:
//!
//! * each job owns its simulator, its RNG stream and its metric shard;
//! * the shared [`FleetLibrary`] is only read at admission and only
//!   written at the explicit publication point after the round's
//!   barrier, serially in job-ID order.
//!
//! The determinism contract — pinned by `tests/fleet_determinism.rs` —
//! is therefore exact: [`Fleet::advance_round`] produces per-job state
//! bitwise identical to [`Fleet::advance_round_serial`], and a
//! single-job fleet is bitwise identical to driving the bare
//! [`MapeController::run_loop`] yourself.
//!
//! Per-job metric retention ([`FleetConfig::retention_secs`]) keeps each
//! shard's memory bounded at fleet scale. The effective horizon is
//! clamped so it can never evict a window any controller read still
//! reaches: `max(policy_interval, policy_running_time)` of that job's
//! own config, widened by `forecast_window_secs` when proactive
//! forecasting is on (the only mode that reads the rate history). Every
//! future read at time `T' ≥ T` looks back at most that far, so points
//! older than `T − W_max` are provably dead — eviction is invisible to
//! control decisions, which is what keeps the single-job parity exact
//! even with retention enabled.

use crate::features::WorkloadFeatures;
use crate::library::FleetLibrary;
use autrascale::{AuTraScaleConfig, ControllerEvent, MapeController, ModelLibrary};
use autrascale_flinkctl::FlinkCluster;
use autrascale_metricsdb::ShardedMetricStore;
use autrascale_streamsim::{Simulation, SimulationConfig};
use rayon::prelude::*;
use std::fmt;

/// Fleet-level knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of contiguous shards a round is split into. Purely a
    /// parallelism hint — results are identical for any value ≥ 1.
    pub shard_count: usize,
    /// Per-job metric retention: after each round, points older than this
    /// many seconds are evicted from the job's metric shard (clamped so
    /// no controller-readable window is ever dropped). `None` keeps full
    /// history — the seed behavior.
    pub retention_secs: Option<f64>,
    /// Cross-job transfer at admission: seed a new job's controller from
    /// the nearest published donor. `false` admits every job cold.
    pub transfer: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shard_count: 8,
            retention_secs: None,
            transfer: true,
        }
    }
}

/// Checkpointed controller state for pre-warmed admission: the job
/// resumes at a known steady rate instead of tuning from scratch.
#[derive(Debug, Clone)]
pub struct ResumeState {
    /// The steady rate the restored model corresponds to, records/s.
    pub rate: f64,
    /// The throughput-optimal base configuration at that rate.
    pub base: Vec<u32>,
    /// The per-rate model library established so far.
    pub library: ModelLibrary,
}

/// Everything needed to admit one job into the fleet.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Fleet-unique job id; rounds and publications process jobs in
    /// ascending id order.
    pub id: u64,
    /// The simulated cluster this job runs on.
    pub sim: SimulationConfig,
    /// The job's controller configuration.
    pub controller: AuTraScaleConfig,
    /// Parallelism the job is submitted with.
    pub initial_parallelism: Vec<u32>,
    /// The job's workload embedding (transfer retrieval key).
    pub features: WorkloadFeatures,
    /// Pre-warmed admission: restore this controller state instead of
    /// cold-starting or transferring.
    pub resume: Option<ResumeState>,
}

/// How a job's controller was seeded at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Empty library; the first activation tunes from scratch.
    ColdStart,
    /// Library inherited from the nearest published donor; the first
    /// activation warm-starts via Algorithm 2.
    Transferred {
        /// The donor job's id.
        donor: u64,
    },
    /// Checkpoint resume: steady rate and base restored directly.
    Resumed,
}

/// One job's slice of a scheduling round.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's id.
    pub id: u64,
    /// Controller events emitted during the round, in activation order.
    pub events: Vec<ControllerEvent>,
    /// The job's simulator state hash after the round.
    pub state_hash: u64,
}

/// Errors from fleet operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A job with this id is already admitted.
    DuplicateJob(u64),
    /// No job with this id exists.
    UnknownJob(u64),
    /// A scheduling round was requested with a non-finite or negative
    /// duration. Caught at the fleet boundary: the bare controller loop
    /// would silently no-op (a NaN deadline fails every comparison).
    InvalidRound(f64),
    /// Building or submitting a job's simulation failed.
    Build {
        /// The job being admitted.
        id: u64,
        /// The underlying simulator error.
        message: String,
    },
    /// A job's controller errored during a round. Other jobs completed
    /// the round; the fleet is still usable.
    Job {
        /// The failing job (lowest id when several fail in one round).
        id: u64,
        /// The underlying controller error.
        message: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::DuplicateJob(id) => write!(f, "job {id} is already admitted"),
            FleetError::UnknownJob(id) => write!(f, "no job with id {id}"),
            FleetError::InvalidRound(secs) => {
                write!(f, "round duration {secs} must be finite and non-negative")
            }
            FleetError::Build { id, message } => write!(f, "building job {id}: {message}"),
            FleetError::Job { id, message } => write!(f, "job {id}: {message}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// One admitted job: a full per-tenant control stack.
#[derive(Debug)]
pub struct FleetJob {
    id: u64,
    features: WorkloadFeatures,
    cluster: FlinkCluster,
    controller: MapeController,
    admission: Admission,
    rounds: usize,
}

impl FleetJob {
    /// The job's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// How this job's controller was seeded.
    pub fn admission(&self) -> Admission {
        self.admission
    }

    /// The job's workload embedding.
    pub fn features(&self) -> &WorkloadFeatures {
        &self.features
    }

    /// The job's cluster handle.
    pub fn cluster(&self) -> &FlinkCluster {
        &self.cluster
    }

    /// The job's controller.
    pub fn controller(&self) -> &MapeController {
        &self.controller
    }

    /// Scheduling rounds this job has participated in.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The job's simulator state hash (excludes the metric store, so
    /// retention does not perturb it).
    pub fn state_hash(&self) -> u64 {
        self.cluster.simulation().state_hash()
    }

    /// Advances this job by one round: the controller's MAPE loop for
    /// `secs` of simulated time. Pure per-job work — reads and writes
    /// nothing outside the job, which is what makes concurrent rounds
    /// bitwise equal to serial ones.
    fn advance(&mut self, secs: f64) -> Result<Vec<ControllerEvent>, String> {
        let events = self.controller.run_loop(&mut self.cluster, secs)?;
        self.rounds += 1;
        Ok(events)
    }
}

/// The fleet: id-sorted jobs, the shared donor library, and the sharded
/// metric store.
#[derive(Debug, Default)]
pub struct Fleet {
    config: FleetConfig,
    /// Sorted by id, unique.
    jobs: Vec<FleetJob>,
    library: FleetLibrary,
    metrics: ShardedMetricStore,
}

impl Fleet {
    /// An empty fleet.
    pub fn new(config: FleetConfig) -> Self {
        Self {
            config,
            jobs: Vec::new(),
            library: FleetLibrary::new(),
            metrics: ShardedMetricStore::new(),
        }
    }

    /// Admits a job: builds its simulator, submits it, registers its
    /// metric shard, and seeds its controller — from the given
    /// [`ResumeState`] when present, else from the nearest published
    /// donor (when [`FleetConfig::transfer`] is on and any donor exists),
    /// else cold. Returns how the controller was seeded.
    pub fn admit(&mut self, spec: JobSpec) -> Result<Admission, FleetError> {
        let index = match self.jobs.binary_search_by_key(&spec.id, FleetJob::id) {
            Ok(_) => return Err(FleetError::DuplicateJob(spec.id)),
            Err(i) => i,
        };
        let build_err = |message: String| FleetError::Build {
            id: spec.id,
            message,
        };
        let sim = Simulation::new(spec.sim).map_err(|e| build_err(e.to_string()))?;
        let mut cluster = FlinkCluster::new(sim);
        cluster
            .submit(&spec.initial_parallelism)
            .map_err(|e| build_err(e.to_string()))?;

        let (controller, admission) = match spec.resume {
            Some(state) => (
                MapeController::resume(spec.controller, state.library, state.rate, state.base),
                Admission::Resumed,
            ),
            None => {
                let donor = if self.config.transfer {
                    self.library.nearest(&spec.features, Some(spec.id))
                } else {
                    None
                };
                match donor {
                    Some(entry) => (
                        MapeController::with_library(spec.controller, entry.library),
                        Admission::Transferred {
                            donor: entry.job_id,
                        },
                    ),
                    None => (MapeController::new(spec.controller), Admission::ColdStart),
                }
            }
        };

        self.metrics.register(spec.id, cluster.simulation().store());
        self.jobs.insert(
            index,
            FleetJob {
                id: spec.id,
                features: spec.features,
                cluster,
                controller,
                admission,
                rounds: 0,
            },
        );
        Ok(admission)
    }

    /// Retires a job: publishes its models to the donor library one last
    /// time, unregisters its metric shard, and removes it from the fleet.
    pub fn retire(&mut self, id: u64) -> Result<FleetJob, FleetError> {
        let index = self
            .jobs
            .binary_search_by_key(&id, FleetJob::id)
            .map_err(|_| FleetError::UnknownJob(id))?;
        let job = self.jobs.remove(index);
        self.library.publish(
            job.id,
            job.features.clone(),
            job.controller.library().clone(),
        );
        self.metrics.remove(id);
        Ok(job)
    }

    /// Advances every job by `secs` of simulated time, shards running
    /// concurrently. Per-job results are bitwise identical to
    /// [`advance_round_serial`](Self::advance_round_serial).
    pub fn advance_round(&mut self, secs: f64) -> Result<Vec<JobOutcome>, FleetError> {
        if !secs.is_finite() || secs < 0.0 {
            return Err(FleetError::InvalidRound(secs));
        }
        let shard_size = self.shard_size();
        let raw: Vec<Vec<(u64, Result<Vec<ControllerEvent>, String>)>> = self
            .jobs
            .chunks_mut(shard_size)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|shard| {
                shard
                    .iter_mut()
                    .map(|job| (job.id, job.advance(secs)))
                    .collect()
            })
            .collect();
        self.finish_round(raw.into_iter().flatten().collect())
    }

    /// The serial reference: identical per-job work in ascending id
    /// order, no concurrency. Exists so the determinism battery (and any
    /// debugging session) can compare against it directly.
    pub fn advance_round_serial(&mut self, secs: f64) -> Result<Vec<JobOutcome>, FleetError> {
        if !secs.is_finite() || secs < 0.0 {
            return Err(FleetError::InvalidRound(secs));
        }
        let raw = self
            .jobs
            .iter_mut()
            .map(|job| (job.id, job.advance(secs)))
            .collect();
        self.finish_round(raw)
    }

    /// Post-round barrier work, serial in job-ID order: error selection,
    /// metric retention, and library publication.
    fn finish_round(
        &mut self,
        raw: Vec<(u64, Result<Vec<ControllerEvent>, String>)>,
    ) -> Result<Vec<JobOutcome>, FleetError> {
        let mut outcomes = Vec::with_capacity(raw.len());
        let mut hashes = self.jobs.iter().map(FleetJob::state_hash);
        for (id, result) in raw {
            let events = result.map_err(|message| FleetError::Job { id, message })?;
            let state_hash = hashes.next().unwrap_or(0);
            outcomes.push(JobOutcome {
                id,
                events,
                state_hash,
            });
        }
        drop(hashes);
        self.apply_retention();
        self.publish_all();
        Ok(outcomes)
    }

    /// Evicts each job's dead metric history (see the module docs for
    /// the clamp that makes this invisible to control decisions).
    /// Returns the total points evicted.
    pub fn apply_retention(&self) -> usize {
        let Some(cap) = self.config.retention_secs else {
            return 0;
        };
        let mut evicted = 0;
        for job in &self.jobs {
            let cfg = job.controller.config();
            // The forecast window is only ever read in proactive mode, so
            // a reactive controller's clamp ignores it.
            let mut min_keep = cfg.policy_interval.max(cfg.policy_running_time);
            if cfg.proactive_forecasting {
                min_keep = min_keep.max(cfg.forecast_window_secs);
            }
            let keep = cap.max(min_keep);
            if !keep.is_finite() {
                continue;
            }
            let horizon = job.cluster.now() - keep;
            if horizon > 0.0 {
                evicted += self.metrics.apply_retention(job.id, horizon).unwrap_or(0);
            }
        }
        evicted
    }

    /// Publishes every job's current models to the donor library,
    /// serially in ascending job-ID order — the only write path into the
    /// shared library, always outside the concurrent section.
    pub fn publish_all(&self) {
        for job in &self.jobs {
            self.library.publish(
                job.id,
                job.features.clone(),
                job.controller.library().clone(),
            );
        }
    }

    /// Jobs in ascending id order.
    pub fn jobs(&self) -> &[FleetJob] {
        &self.jobs
    }

    /// The job with this id.
    pub fn job(&self, id: u64) -> Option<&FleetJob> {
        self.jobs
            .binary_search_by_key(&id, FleetJob::id)
            .ok()
            .and_then(|i| self.jobs.get(i))
    }

    /// Number of admitted jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no job is admitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The shared donor library.
    pub fn library(&self) -> &FleetLibrary {
        &self.library
    }

    /// The per-job metric shards.
    pub fn metrics(&self) -> &ShardedMetricStore {
        &self.metrics
    }

    /// Per-job simulator state hashes, ascending id order — the
    /// determinism battery's comparison key.
    pub fn state_hashes(&self) -> Vec<(u64, u64)> {
        self.jobs.iter().map(|j| (j.id, j.state_hash())).collect()
    }

    /// Jobs per contiguous shard for the current fleet size.
    fn shard_size(&self) -> usize {
        let shards = self.config.shard_count.max(1);
        self.jobs.len().div_ceil(shards).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autrascale_streamsim::{JobGraph, OperatorSpec, RateProfile};

    fn sim_config(rate: f64, seed: u64) -> SimulationConfig {
        let job = JobGraph::linear(vec![
            OperatorSpec::source("Source", 30_000.0),
            OperatorSpec::sink("Sink", 5_000.0)
                .with_sync_coeff(0.02)
                .with_comm_cost_ms(3.0),
        ])
        .unwrap();
        SimulationConfig {
            job,
            profile: RateProfile::constant(rate),
            seed,
            restart_downtime: 2.0,
            ..Default::default()
        }
    }

    fn controller_config() -> AuTraScaleConfig {
        AuTraScaleConfig {
            target_latency_ms: 150.0,
            policy_interval: 30.0,
            policy_running_time: 60.0,
            bootstrap_m: 3,
            max_bo_iters: 4,
            n_num: 3,
            ..Default::default()
        }
    }

    fn spec(id: u64, rate: f64) -> JobSpec {
        JobSpec {
            id,
            sim: sim_config(rate, 100 + id),
            controller: controller_config(),
            initial_parallelism: vec![1, 1],
            features: WorkloadFeatures::of_job(2, 20, rate, 150.0),
            resume: None,
        }
    }

    #[test]
    fn duplicate_and_unknown_ids_are_errors() {
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.admit(spec(3, 10_000.0)).unwrap();
        assert_eq!(
            fleet.admit(spec(3, 11_000.0)),
            Err(FleetError::DuplicateJob(3))
        );
        assert!(matches!(fleet.retire(9), Err(FleetError::UnknownJob(9))));
        assert_eq!(fleet.len(), 1);
    }

    #[test]
    fn jobs_stay_sorted_by_id() {
        let mut fleet = Fleet::new(FleetConfig::default());
        for id in [9u64, 2, 5, 1] {
            fleet.admit(spec(id, 10_000.0)).unwrap();
        }
        let ids: Vec<u64> = fleet.jobs().iter().map(FleetJob::id).collect();
        assert_eq!(ids, vec![1, 2, 5, 9]);
        assert_eq!(fleet.metrics().shard_ids(), vec![1, 2, 5, 9]);
    }

    #[test]
    fn first_admission_is_cold_then_transfer_kicks_in() {
        let mut fleet = Fleet::new(FleetConfig::default());
        assert_eq!(
            fleet.admit(spec(1, 10_000.0)).unwrap(),
            Admission::ColdStart
        );
        // Tune job 1 so the round's publication gives it something to donate.
        fleet.advance_round(90.0).unwrap();
        assert_eq!(fleet.library().len(), 1);
        assert_eq!(
            fleet.admit(spec(2, 11_000.0)).unwrap(),
            Admission::Transferred { donor: 1 }
        );
    }

    #[test]
    fn transfer_disabled_always_cold_starts() {
        let mut fleet = Fleet::new(FleetConfig {
            transfer: false,
            ..Default::default()
        });
        fleet.admit(spec(1, 10_000.0)).unwrap();
        fleet.advance_round(90.0).unwrap();
        assert_eq!(
            fleet.admit(spec(2, 11_000.0)).unwrap(),
            Admission::ColdStart
        );
    }

    #[test]
    fn resumed_admission_restores_steady_state() {
        // A donor tunes; its state then pre-warms a second fleet's job,
        // whose first round must be pure steady-state (no re-tuning).
        let mut donor = Fleet::new(FleetConfig::default());
        donor.admit(spec(1, 10_000.0)).unwrap();
        donor.advance_round(90.0).unwrap();
        let tuned = donor.job(1).unwrap();
        let resume = ResumeState {
            rate: tuned.controller().current_rate().unwrap(),
            base: tuned.controller().base().unwrap().to_vec(),
            library: tuned.controller().library().clone(),
        };

        let mut fleet = Fleet::new(FleetConfig::default());
        let mut warm = spec(1, 10_000.0);
        // Resume means landing in the tuned configuration, not at [1, 1].
        warm.initial_parallelism = tuned.cluster().parallelism().to_vec();
        warm.resume = Some(resume);
        assert_eq!(fleet.admit(warm).unwrap(), Admission::Resumed);
        // Let metrics accumulate before the first activation.
        let outcomes = fleet.advance_round(120.0).unwrap();
        let events = &outcomes.first().unwrap().events;
        assert!(
            events
                .iter()
                .all(|e| matches!(e, ControllerEvent::NoActionNeeded)),
            "{events:?}"
        );
    }

    #[test]
    fn concurrent_round_matches_serial_round() {
        let build = || {
            let mut fleet = Fleet::new(FleetConfig {
                shard_count: 3,
                ..Default::default()
            });
            for id in 0..4u64 {
                fleet
                    .admit(spec(id, 8_000.0 + 1_000.0 * id as f64))
                    .unwrap();
            }
            fleet
        };
        let mut conc = build();
        let mut serial = build();
        for _ in 0..2 {
            let a = conc.advance_round(90.0).unwrap();
            let b = serial.advance_round_serial(90.0).unwrap();
            let key = |outs: &[JobOutcome]| {
                outs.iter()
                    .map(|o| (o.id, o.state_hash, format!("{:?}", o.events)))
                    .collect::<Vec<_>>()
            };
            assert_eq!(key(&a), key(&b));
        }
        assert_eq!(conc.state_hashes(), serial.state_hashes());
    }

    #[test]
    fn retention_bounds_shard_growth_without_touching_live_windows() {
        let build = |retention: Option<f64>| {
            let mut fleet = Fleet::new(FleetConfig {
                retention_secs: retention,
                ..Default::default()
            });
            fleet.admit(spec(1, 10_000.0)).unwrap();
            fleet
        };
        let mut capped = build(Some(120.0));
        let mut full = build(None);
        for _ in 0..4 {
            capped.advance_round(120.0).unwrap();
            full.advance_round(120.0).unwrap();
        }
        assert!(capped.metrics().total_points() < full.metrics().total_points());
        // The clamp keeps behavior identical: state hashes never diverge
        // (the hash excludes the store; divergence would mean a control
        // decision read an evicted window).
        assert_eq!(capped.state_hashes(), full.state_hashes());
    }

    #[test]
    fn retire_publishes_and_unregisters() {
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.admit(spec(1, 10_000.0)).unwrap();
        fleet.advance_round(90.0).unwrap();
        let job = fleet.retire(1).unwrap();
        assert!(job.rounds() >= 1);
        assert!(fleet.is_empty());
        assert_eq!(fleet.metrics().shard_count(), 0);
        // The donor's models outlive it.
        assert_eq!(fleet.library().donor_ids(), vec![1]);
    }

    #[test]
    fn non_finite_or_negative_round_durations_are_rejected() {
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.admit(spec(1, 10_000.0)).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -30.0] {
            let err = fleet.advance_round(bad).unwrap_err();
            assert!(matches!(err, FleetError::InvalidRound(_)), "{err}");
            let err = fleet.advance_round_serial(bad).unwrap_err();
            assert!(matches!(err, FleetError::InvalidRound(_)), "{err}");
        }
        // The guard left the fleet untouched and usable.
        assert!(fleet.advance_round(30.0).is_ok());
    }
}

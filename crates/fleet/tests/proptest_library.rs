//! Property battery for the fleet's shared donor library and retention
//! path (ISSUE 10).
//!
//! Three families of invariants:
//!
//! 1. **Retrieval** — nearest-donor lookup is a pure function of the
//!    *set* of published donors: permutation-independent of publication
//!    order, brute-force minimal, and symmetric ties resolve to the
//!    lowest job id.
//! 2. **Transfer safety** — on the seeded scenario battery, admitting a
//!    job with a transferred prior never produces more SLO violations
//!    than admitting the same job cold (aggregated across the battery,
//!    like the constrained-acquisition regression in
//!    `tests/scenarios.rs`, so it holds across RNG backends).
//! 3. **Retention** — the clamped retention cap never evicts a window
//!    any controller read still reaches: a capped fleet's in-flight
//!    window contents and state hashes stay identical to an uncapped
//!    fleet's, for arbitrary (even absurdly small) caps.

use autrascale::{AuTraScaleConfig, ControllerEvent, ModelLibrary};
use autrascale_fleet::{Admission, Fleet, FleetConfig, JobOutcome, JobSpec, WorkloadFeatures};
use autrascale_metricsdb::Query;
use autrascale_streamsim::{metrics, SimulationConfig};
use autrascale_workloads::scenarios::{self, Scenario};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn feats(x: f64) -> WorkloadFeatures {
    WorkloadFeatures::new(vec![x]).expect("finite 1-d feature")
}

fn lib_at(rate: f64) -> ModelLibrary {
    let mut lib = ModelLibrary::new();
    lib.insert(rate, vec![(vec![1, 1], 0.5)]);
    lib
}

/// Builds a library by publishing `donors` in the given order.
fn library_in_order(donors: &[(u64, f64)]) -> autrascale_fleet::FleetLibrary {
    let fleet = autrascale_fleet::FleetLibrary::new();
    for &(id, x) in donors {
        fleet.publish(id, feats(x), lib_at(1_000.0 + x));
    }
    fleet
}

/// Strategy: a donor set with unique ids and integer-valued coordinates
/// (exact in f64, so distances — and distance ties — are exact too).
fn donor_set() -> impl Strategy<Value = Vec<(u64, f64)>> {
    proptest::collection::vec((0u64..40, -50i64..50), 1..10).prop_map(|raw| {
        let mut unique: BTreeMap<u64, f64> = BTreeMap::new();
        for (id, x) in raw {
            unique.entry(id).or_insert(x as f64);
        }
        unique.into_iter().collect()
    })
}

proptest! {
    #[test]
    fn nearest_is_permutation_independent(donors in donor_set(), q in -60i64..60, rot in 0usize..10) {
        let query = feats(q as f64);
        let forward = library_in_order(&donors);
        let mut reversed_order = donors.clone();
        reversed_order.reverse();
        let reversed = library_in_order(&reversed_order);
        let mut rotated_order = donors.clone();
        rotated_order.rotate_left(rot % donors.len().max(1));
        let rotated = library_in_order(&rotated_order);

        let hit = |lib: &autrascale_fleet::FleetLibrary| {
            lib.nearest(&query, None).map(|d| d.job_id)
        };
        let a = hit(&forward);
        prop_assert_eq!(a, hit(&reversed), "reverse order changed retrieval");
        prop_assert_eq!(a, hit(&rotated), "rotated order changed retrieval");
    }

    #[test]
    fn nearest_matches_brute_force_minimum(donors in donor_set(), q in -60i64..60) {
        let query = q as f64;
        let lib = library_in_order(&donors);
        let hit = lib.nearest(&feats(query), None).expect("non-empty set retrieves");
        // Brute force: minimum squared distance, lowest id on ties.
        let best = donors
            .iter()
            .map(|&(id, x)| ((x - query) * (x - query), id))
            .fold(None::<(f64, u64)>, |acc, (d, id)| match acc {
                None => Some((d, id)),
                Some((bd, _)) if d < bd => Some((d, id)),
                Some(keep) => Some(keep),
            })
            .map(|(_, id)| id);
        prop_assert_eq!(Some(hit.job_id), best);
    }

    #[test]
    fn symmetric_ties_resolve_to_lowest_id(
        center in -40i64..40,
        delta in 1i64..30,
        lo in 0u64..20,
        gap in 1u64..20,
        swap in proptest::strategy::AnyBool,
    ) {
        // Two donors exactly `delta` either side of the query (integer
        // coordinates, so both squared distances are the same f64 bit
        // pattern), published in both orders.
        let hi = lo + gap;
        let (a, b) = (
            (lo, (center - delta) as f64),
            (hi, (center + delta) as f64),
        );
        let order = if swap { vec![b, a] } else { vec![a, b] };
        let lib = library_in_order(&order);
        let hit = lib.nearest(&feats(center as f64), None).expect("two donors");
        prop_assert_eq!(hit.job_id, lo, "tie must resolve to the lowest id");
    }

    #[test]
    fn excluded_donor_is_never_returned(donors in donor_set(), q in -60i64..60, pick in 0usize..10) {
        let lib = library_in_order(&donors);
        let excluded = donors[pick % donors.len()].0;
        let hit = lib.nearest(&feats(q as f64), Some(excluded));
        if let Some(d) = hit {
            prop_assert_ne!(d.job_id, excluded);
        } else {
            // Only an empty remainder may retrieve nothing.
            prop_assert_eq!(donors.len(), 1);
        }
    }
}

// ---------------------------------------------------------------------
// Transfer safety on the seeded scenario battery.
// ---------------------------------------------------------------------

fn scenario_controller(s: &Scenario) -> AuTraScaleConfig {
    AuTraScaleConfig {
        target_latency_ms: s.target_latency_ms,
        policy_interval: 30.0,
        policy_running_time: 60.0,
        bootstrap_m: 3,
        max_bo_iters: 6,
        ..Default::default()
    }
}

fn scenario_spec(s: &Scenario, id: u64, seed: u64) -> JobSpec {
    let sim: SimulationConfig = s.config(seed);
    let rate = s.profile.rate_at(0.0);
    JobSpec {
        id,
        sim,
        controller: scenario_controller(s),
        initial_parallelism: s.initial_parallelism.clone(),
        features: WorkloadFeatures::of_job(
            s.job.len(),
            s.cluster.max_parallelism,
            rate,
            s.target_latency_ms,
        ),
        resume: None,
    }
}

fn total_violations(rounds: &[Vec<JobOutcome>]) -> usize {
    rounds
        .iter()
        .flatten()
        .flat_map(|o| o.events.iter())
        .map(|e| match e {
            ControllerEvent::SteadyRateOptimized(out)
            | ControllerEvent::Transferred(out)
            | ControllerEvent::RateAwareWarmStarted(out) => out.slo_violations,
            _ => 0,
        })
        .sum()
}

/// Admits one job for the scenario (cold, or transfer-seeded from a
/// donor tuned on the same scenario) and runs it for three rounds,
/// returning the run's total SLO-violation count.
fn scenario_run(s: &Scenario, donor: Option<(WorkloadFeatures, ModelLibrary)>, seed: u64) -> usize {
    let mut fleet = Fleet::new(FleetConfig::default());
    let expect_transfer = donor.is_some();
    if let Some((features, library)) = donor {
        fleet.library().publish(1, features, library);
    }
    let admission = fleet
        .admit(scenario_spec(s, 2, seed))
        .unwrap_or_else(|e| panic!("{}: {e}", s.name));
    if expect_transfer {
        assert_eq!(admission, Admission::Transferred { donor: 1 }, "{}", s.name);
    } else {
        assert_eq!(admission, Admission::ColdStart, "{}", s.name);
    }
    let rounds: Vec<Vec<JobOutcome>> = (0..3)
        .map(|_| {
            fleet
                .advance_round(90.0)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name))
        })
        .collect();
    total_violations(&rounds)
}

#[test]
fn transfer_never_worse_than_cold_across_the_battery() {
    // Aggregate across every failure mode (like the constrained-vs-
    // unconstrained regression in tests/scenarios.rs): a transferred
    // prior can lose a round to model mismatch on one scenario, but
    // summed over the battery it must not increase violations — the
    // paper's transfer-learning claim at admission time.
    let mut total_cold = 0usize;
    let mut total_transfer = 0usize;
    for s in scenarios::all_scenarios() {
        // The donor tunes on the same scenario at a different seed, then
        // donates its per-rate models.
        let mut donor_fleet = Fleet::new(FleetConfig::default());
        donor_fleet
            .admit(scenario_spec(&s, 1, 0xD0_0D))
            .unwrap_or_else(|e| panic!("{}: {e}", s.name));
        donor_fleet
            .advance_round(180.0)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name));
        let donor = donor_fleet.job(1).expect("donor admitted");
        let prior = (
            donor.features().clone(),
            donor.controller().library().clone(),
        );

        let cold = scenario_run(&s, None, 0xBEEF);
        let transfer = scenario_run(&s, Some(prior), 0xBEEF);
        total_cold += cold;
        total_transfer += transfer;
    }
    assert!(
        total_transfer <= total_cold,
        "battery total: transfer {total_transfer} > cold {total_cold}"
    );
}

// ---------------------------------------------------------------------
// Retention never evicts the in-flight window.
// ---------------------------------------------------------------------

fn smoke_spec(id: u64, seed: u64) -> JobSpec {
    let s = scenarios::hot_keys();
    let mut spec = scenario_spec(&s, id, seed);
    spec.sim.profile = autrascale_streamsim::RateProfile::constant(9_000.0);
    spec
}

proptest! {
    // Each case runs two multi-round simulations; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn retention_cap_never_evicts_the_inflight_window(
        cap in 1.0f64..400.0,
        round_secs in 45.0f64..150.0,
        rounds in 2usize..5,
    ) {
        let build = |retention: Option<f64>| {
            let mut fleet = Fleet::new(FleetConfig {
                retention_secs: retention,
                ..Default::default()
            });
            fleet.admit(smoke_spec(1, 0xCAFE)).expect("admit");
            fleet
        };
        let mut capped = build(Some(cap));
        let mut full = build(None);
        for _ in 0..rounds {
            capped.advance_round(round_secs).expect("capped round");
            full.advance_round(round_secs).expect("full round");
            // Identical trajectories: no control decision ever read an
            // evicted point (the hash excludes the store itself).
            prop_assert_eq!(capped.state_hashes(), full.state_hashes());
        }
        // The in-flight window — everything a future activation may
        // still read — has identical contents in both stores.
        let job = capped.job(1).expect("job exists");
        let cfg = job.controller().config();
        let keep = cap.max(cfg.policy_interval.max(cfg.policy_running_time));
        let now = job.cluster().now();
        let window = |fleet: &Fleet, name: &str| {
            fleet
                .metrics()
                .shard(1)
                .expect("shard registered")
                .select(&Query::new(name, now - keep, now))
                .expect("finite window bounds")
        };
        for name in [
            metrics::JOB_THROUGHPUT,
            metrics::PROCESSING_LATENCY_MS,
            metrics::TRUE_PROCESSING_RATE,
        ] {
            prop_assert_eq!(window(&capped, name), window(&full, name), "{}", name);
        }
        // And retention really is active, not vacuously equal: once the
        // run outlives the keep window, the capped store must be smaller.
        if now > keep + round_secs {
            prop_assert!(
                capped.metrics().shard_points(1) < full.metrics().shard_points(1),
                "cap {} never evicted anything over {} secs",
                cap,
                now
            );
        }
    }
}

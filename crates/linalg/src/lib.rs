//! Dense linear-algebra kernels for the AuTraScale reproduction.
//!
//! The Gaussian-process surrogate in `autrascale-gp` needs exactly three
//! things from a linear-algebra layer: a dense row-major matrix, a Cholesky
//! factorization of symmetric positive-definite (SPD) Gram matrices that is
//! robust to near-singularity (via jitter escalation), and triangular solves.
//! The published GP/BO crates are thin (see DESIGN.md §4), so this crate
//! implements those kernels from scratch with a small, well-tested surface
//! rather than pulling in a large dependency.
//!
//! All storage is `f64` and row-major. Matrices here are small (the Bayesian
//! optimization loop trains on tens of samples), so the implementation
//! favours clarity and numerical robustness over blocking/SIMD.
//!
//! # Example
//!
//! ```
//! use autrascale_linalg::{Matrix, Cholesky};
//!
//! // Solve the SPD system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
//! let chol = Cholesky::decompose(&a).unwrap();
//! let x = chol.solve(&[2.0, 1.0]);
//! assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod cholesky;
pub mod lbfgs;
mod matrix;
mod vector;
mod woodbury;

pub use cholesky::{Cholesky, CholeskyError};
pub use matrix::Matrix;
pub use vector::{axpy, dot, l2_norm, linf_distance, mean, scale, variance};
pub use woodbury::LowRankWoodbury;

//! Cholesky factorization with jitter escalation for near-singular SPD
//! matrices, plus the triangular solves the Gaussian process needs.

use crate::matrix::Matrix;
use std::fmt;

/// Failure modes of [`Cholesky::decompose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholeskyError {
    /// The input matrix was not square.
    NotSquare,
    /// The matrix stayed non-positive-definite even after the maximum jitter
    /// was added to its diagonal.
    NotPositiveDefinite,
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CholeskyError::NotSquare => write!(f, "matrix is not square"),
            CholeskyError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite (even with max jitter)")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A + jitter·I`.
///
/// Gram matrices of Gaussian-process kernels become numerically
/// semi-definite when two training inputs are close (which happens
/// constantly in Bayesian optimization, where the loop re-samples near the
/// incumbent). `decompose` therefore escalates a diagonal jitter from
/// [`Cholesky::INITIAL_JITTER`] by factors of 10 up to
/// [`Cholesky::MAX_JITTER`] until the factorization succeeds, and records
/// the jitter that was required.
#[derive(Debug, Clone)]
pub struct Cholesky {
    factor: Matrix,
    jitter: f64,
}

impl Cholesky {
    /// First jitter magnitude tried when the raw factorization fails.
    pub const INITIAL_JITTER: f64 = 1e-10;
    /// Largest jitter tried before giving up.
    pub const MAX_JITTER: f64 = 1e-4;

    /// Factorizes an SPD matrix, escalating jitter if needed.
    pub fn decompose(a: &Matrix) -> Result<Self, CholeskyError> {
        if !a.is_square() {
            return Err(CholeskyError::NotSquare);
        }
        if let Some(factor) = try_factor(a) {
            return Ok(Self { factor, jitter: 0.0 });
        }
        let mut jitter = Self::INITIAL_JITTER;
        while jitter <= Self::MAX_JITTER {
            let mut jittered = a.clone();
            jittered.add_diagonal(jitter);
            if let Some(factor) = try_factor(&jittered) {
                return Ok(Self { factor, jitter });
            }
            jitter *= 10.0;
        }
        Err(CholeskyError::NotPositiveDefinite)
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.factor
    }

    /// Diagonal jitter that had to be added for the factorization to
    /// succeed (`0.0` when the matrix was well-conditioned).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.factor.rows()
    }

    /// Solves `A x = b` via the two triangular solves.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        self.solve_upper(&y)
    }

    /// Forward substitution: solves `L y = b`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower: dimension mismatch");
        let l = &self.factor;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (j, yj) in y.iter().enumerate().take(i) {
                sum -= l[(i, j)] * yj;
            }
            y[i] = sum / l[(i, i)];
        }
        y
    }

    /// Back substitution: solves `Lᵀ x = y`.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "solve_upper: dimension mismatch");
        let l = &self.factor;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= l[(j, i)] * x[j];
            }
            x[i] = sum / l[(i, i)];
        }
        x
    }

    /// `log |A|` computed from the factor diagonal: `2 Σ log L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.factor[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// One factorization attempt; `None` when a non-positive pivot appears.
fn try_factor(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 3.0, 0.4], &[0.6, 0.4, 2.0]])
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let chol = Cholesky::decompose(&a).unwrap();
        let l = chol.factor();
        let rebuilt = l.matmul(&l.transpose());
        assert!(rebuilt.max_abs_diff(&a).unwrap() < 1e-12);
        assert_eq!(chol.jitter(), 0.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = Cholesky::decompose(&a).unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{xi} vs {ti}");
        }
    }

    #[test]
    fn log_determinant_matches_manual_2x2() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        // det = 12 - 4 = 8.
        let chol = Cholesky::decompose(&a).unwrap();
        assert!((chol.log_determinant() - 8.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn not_square_is_error() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(CholeskyError::NotSquare)
        ));
    }

    #[test]
    fn negative_definite_is_error() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(CholeskyError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn semidefinite_succeeds_with_jitter() {
        // Rank-1 matrix: vvᵀ with v = (1, 1) is PSD but singular.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let chol = Cholesky::decompose(&a).unwrap();
        assert!(chol.jitter() > 0.0);
        assert!(chol.jitter() <= Cholesky::MAX_JITTER);
    }

    #[test]
    fn identity_solve_is_identity() {
        let chol = Cholesky::decompose(&Matrix::identity(4)).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(chol.solve(&b), b.to_vec());
        assert!((chol.log_determinant()).abs() < 1e-15);
    }
}

//! Cholesky factorization with jitter escalation for near-singular SPD
//! matrices, plus the triangular solves the Gaussian process needs.
//!
//! The factorization and solves are the innermost loops of the surrogate
//! hot path (every log-marginal-likelihood evaluation factors a Gram
//! matrix; every posterior prediction does a forward solve), so the inner
//! loops below iterate over row slices — which the optimizer can keep in
//! registers without bounds checks — and allocation-free `*_into` variants
//! are provided for callers that score thousands of candidates per
//! decision.

use crate::matrix::Matrix;
use std::fmt;

/// Failure modes of [`Cholesky::decompose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholeskyError {
    /// The input matrix was not square.
    NotSquare,
    /// The matrix stayed non-positive-definite even after the maximum jitter
    /// was added to its diagonal.
    NotPositiveDefinite,
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CholeskyError::NotSquare => write!(f, "matrix is not square"),
            CholeskyError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite (even with max jitter)")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A + jitter·I`.
///
/// Gram matrices of Gaussian-process kernels become numerically
/// semi-definite when two training inputs are close (which happens
/// constantly in Bayesian optimization, where the loop re-samples near the
/// incumbent). `decompose` therefore escalates a diagonal jitter from
/// [`Cholesky::INITIAL_JITTER`] by factors of 10 up to
/// [`Cholesky::MAX_JITTER`] until the factorization succeeds, and records
/// the jitter that was required.
#[derive(Debug, Clone)]
pub struct Cholesky {
    factor: Matrix,
    jitter: f64,
}

impl Cholesky {
    /// First jitter magnitude tried when the raw factorization fails.
    pub const INITIAL_JITTER: f64 = 1e-10;
    /// Largest jitter tried before giving up.
    pub const MAX_JITTER: f64 = 1e-4;

    /// Factorizes an SPD matrix, escalating jitter if needed.
    pub fn decompose(a: &Matrix) -> Result<Self, CholeskyError> {
        if !a.is_square() {
            return Err(CholeskyError::NotSquare);
        }
        if let Some(factor) = try_factor(a) {
            return Ok(Self {
                factor,
                jitter: 0.0,
            });
        }
        let mut jitter = Self::INITIAL_JITTER;
        while jitter <= Self::MAX_JITTER {
            let mut jittered = a.clone();
            jittered.add_diagonal(jitter);
            if let Some(factor) = try_factor(&jittered) {
                return Ok(Self { factor, jitter });
            }
            jitter *= 10.0;
        }
        Err(CholeskyError::NotPositiveDefinite)
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.factor
    }

    /// Diagonal jitter that had to be added for the factorization to
    /// succeed (`0.0` when the matrix was well-conditioned).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.factor.rows()
    }

    /// Solves `A x = b` via the two triangular solves.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        self.solve_upper(&y)
    }

    /// Forward substitution: solves `L y = b`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.solve_lower_into(b, &mut y);
        y
    }

    /// Forward substitution into a caller-owned buffer, for hot paths that
    /// solve against the same factor thousands of times (e.g. candidate
    /// scoring). `y` is cleared and refilled; its capacity is reused.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_lower_into(&self, b: &[f64], y: &mut Vec<f64>) {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower: dimension mismatch");
        let l = self.factor.as_slice();
        y.clear();
        y.reserve(n);
        for (i, &bi) in b.iter().enumerate() {
            let row = &l[i * n..i * n + i + 1];
            let mut sum = bi;
            for (lij, yj) in row[..i].iter().zip(y.iter()) {
                sum -= lij * yj;
            }
            y.push(sum / row[i]);
        }
    }

    /// Forward substitution against every column of `b` at once: solves
    /// `L Y = B` for an n×c right-hand-side matrix.
    ///
    /// Row-major over the flat buffer, so the inner update is an axpy of
    /// one finished output row into the row being built — the same
    /// streaming pattern as `try_factor`. This is the low-rank (FITC)
    /// surrogate's workhorse: whitening the m×n cross-Gram `K_mn` costs
    /// one call here instead of n strided per-column solves.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.dim()`.
    pub fn solve_lower_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.rows(), n, "solve_lower_matrix: dimension mismatch");
        let cols = b.cols();
        let l = self.factor.as_slice();
        let mut out = b.as_slice().to_vec();
        for i in 0..n {
            let (done, rest) = out.split_at_mut(i * cols);
            let row_i = &mut rest[..cols];
            for (k, &lik) in l[i * n..i * n + i].iter().enumerate() {
                let row_k = &done[k * cols..k * cols + cols];
                for (o, v) in row_i.iter_mut().zip(row_k) {
                    *o -= lik * v;
                }
            }
            // Divide (not multiply-by-reciprocal) so each column is
            // bit-identical to a per-column `solve_lower` call.
            let diag = l[i * n + i];
            for o in row_i.iter_mut() {
                *o /= diag;
            }
        }
        Matrix::from_vec(n, cols, out)
    }

    /// Back substitution: solves `Lᵀ x = y`.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_upper_into(y, &mut x);
        x
    }

    /// Back substitution into a caller-owned buffer (see
    /// [`solve_lower_into`](Self::solve_lower_into)). `x` is cleared and
    /// refilled.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.dim()`.
    pub fn solve_upper_into(&self, y: &[f64], x: &mut Vec<f64>) {
        let n = self.dim();
        assert_eq!(y.len(), n, "solve_upper: dimension mismatch");
        let l = self.factor.as_slice();
        x.clear();
        x.resize(n, 0.0);
        for i in (0..n).rev() {
            let mut sum = y[i];
            // Column i of L below the diagonal (stride-n walk).
            let col = l.get((i + 1) * n + i..).unwrap_or(&[]);
            for (xj, lji) in x[i + 1..].iter().zip(col.iter().step_by(n)) {
                sum -= lji * xj;
            }
            x[i] = sum / l[i * n + i];
        }
    }

    /// `log |A|` computed from the factor diagonal: `2 Σ log L_ii`.
    pub fn log_determinant(&self) -> f64 {
        let n = self.dim();
        let l = self.factor.as_slice();
        (0..n).map(|i| l[i * n + i].ln()).sum::<f64>() * 2.0
    }

    /// Extends the factor of an n×n matrix `A` to the factor of the
    /// (n+1)×(n+1) bordered matrix `[[A, k], [kᵀ, d]]` in O(n²): one
    /// forward solve `y = L⁻¹ k` for the new row plus the downdated pivot
    /// `√(d + jitter − yᵀy)`.
    ///
    /// The carried jitter is applied to the new diagonal entry exactly as
    /// [`decompose`](Self::decompose) would apply it to the bordered
    /// matrix, and the new row/pivot arithmetic replays `try_factor`'s
    /// last-row operations term for term — so when the append succeeds,
    /// the result is bit-identical to `Cholesky::decompose` of the
    /// bordered matrix (whose jitter escalation stops at the same level:
    /// the leading n×n rows alone determine every earlier failure).
    ///
    /// # Errors
    ///
    /// Returns [`CholeskyError::NotPositiveDefinite`] when the downdated
    /// pivot is non-positive (or non-finite) — i.e. the bordered matrix
    /// needs *more* jitter than this factor carries, which happens when
    /// the new column nearly duplicates an existing one. `self` is
    /// unchanged; callers should refactorize the bordered matrix from
    /// scratch so the usual jitter escalation can run.
    ///
    /// # Panics
    ///
    /// Panics if `col.len() != self.dim()`.
    pub fn rank1_append(&self, col: &[f64], diag: f64) -> Result<Self, CholeskyError> {
        let n = self.dim();
        assert_eq!(col.len(), n, "rank1_append: column dimension mismatch");
        // New off-diagonal row: y_j = (k_j − Σ_{m<j} L_{n,m} L_{j,m}) / L_{jj},
        // which is exactly the forward solve L y = k.
        let y = self.solve_lower(col);
        // Downdate guard: the new pivot² must stay strictly positive after
        // subtracting the solved row, matching try_factor's check.
        let mut sum = diag + self.jitter;
        for yi in &y {
            sum -= yi * yi;
        }
        if sum <= 0.0 || !sum.is_finite() {
            return Err(CholeskyError::NotPositiveDefinite);
        }
        let m = n + 1;
        let old = self.factor.as_slice();
        let mut l = vec![0.0; m * m];
        for i in 0..n {
            l[i * m..i * m + n].copy_from_slice(&old[i * n..i * n + n]);
        }
        l[n * m..n * m + n].copy_from_slice(&y);
        l[n * m + n] = sum.sqrt();
        Ok(Self {
            factor: Matrix::from_vec(m, m, l),
            jitter: self.jitter,
        })
    }

    /// The diagonal of `A⁻¹`, computed in one pass from `L⁻¹`:
    /// `[A⁻¹]_{ii} = Σ_{j≥i} (L⁻¹)_{ji}²` (column `i` of `L⁻¹` is the
    /// forward solve of the unit vector `e_i`, restricted to the trailing
    /// subsystem).
    ///
    /// This is O(n³/6) total — versus O(n³) when callers solve `A z = e_i`
    /// column by column — and is what closed-form leave-one-out residuals
    /// need.
    pub fn inverse_diagonal(&self) -> Vec<f64> {
        let n = self.dim();
        let l = self.factor.as_slice();
        let mut diag = vec![0.0; n];
        let mut v = vec![0.0; n];
        for i in 0..n {
            // v[i..] holds column i of L⁻¹ (entries above i are zero).
            v[i] = 1.0 / l[i * n + i];
            let mut acc = v[i] * v[i];
            for j in (i + 1)..n {
                let row = &l[j * n..j * n + j + 1];
                let mut sum = 0.0;
                for (ljk, vk) in row[i..j].iter().zip(v[i..j].iter()) {
                    sum -= ljk * vk;
                }
                let vj = sum / row[j];
                v[j] = vj;
                acc += vj * vj;
            }
            diag[i] = acc;
        }
        diag
    }

    /// The full inverse `A⁻¹ = L⁻ᵀ L⁻¹`, computed by forward-solving the
    /// columns of `L⁻¹` (the same trailing-subsystem walk as
    /// [`inverse_diagonal`](Self::inverse_diagonal)) and accumulating the
    /// symmetric product `[A⁻¹]_{ij} = Σ_{k ≥ max(i,j)} (L⁻¹)_{ki} (L⁻¹)_{kj}`.
    ///
    /// O(n³) like the factorization itself — the analytic log-marginal-
    /// likelihood gradient needs the whole inverse once per gradient
    /// evaluation (for `tr(K⁻¹ ∂K/∂θ)`), not just its diagonal.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let l = self.factor.as_slice();
        // L⁻¹ row by row: row_j = (e_j − Σ_{k<j} L_{jk}·row_k) / L_{jj}.
        // Every inner loop is an axpy over the contiguous prefix
        // row_k[..=k], so the whole triangular inversion streams row-major
        // like `try_factor` does (a stride-n column walk here dominates
        // the gradient evaluations that call this once per step).
        let mut linv = vec![0.0; n * n];
        for j in 0..n {
            let (done, rest) = linv.split_at_mut(j * n);
            let row_j = &mut rest[..j + 1];
            for (k, &ljk) in l[j * n..j * n + j].iter().enumerate() {
                let row_k = &done[k * n..k * n + k + 1];
                for (r, v) in row_j[..k + 1].iter_mut().zip(row_k) {
                    *r -= ljk * v;
                }
            }
            let inv_diag = 1.0 / l[j * n + j];
            for r in row_j[..j].iter_mut() {
                *r *= inv_diag;
            }
            row_j[j] = inv_diag;
        }
        // A⁻¹ = L⁻ᵀ L⁻¹ as a sum of row outer products: row k of L⁻¹
        // contributes row_k[i]·row_k[j] to every (i, j) with i, j ≤ k —
        // again contiguous in the inner loop.
        let mut inv = vec![0.0; n * n];
        for k in 0..n {
            let row_k = &linv[k * n..k * n + k + 1];
            for i in 0..=k {
                let v = row_k[i];
                let out = &mut inv[i * n..i * n + i + 1];
                for (o, w) in out.iter_mut().zip(&row_k[..i + 1]) {
                    *o += v * w;
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                inv[j * n + i] = inv[i * n + j];
            }
        }
        Matrix::from_vec(n, n, inv)
    }
}

/// One factorization attempt; `None` when a non-positive pivot appears.
///
/// The update loop works on the flat row-major buffer so the `k`-loop is a
/// dot product of two row prefixes — bounds-check-free after the slice
/// split — instead of per-element 2-D indexing.
fn try_factor(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        let a_row = a.row(i);
        // Rows `0..i` of `l` are finished; `row_i` is being built.
        let (done, rest) = l.split_at_mut(i * n);
        let row_i = &mut rest[..n];
        for j in 0..i {
            let row_j = &done[j * n..j * n + j + 1];
            let mut sum = a_row[j];
            for (lik, ljk) in row_i[..j].iter().zip(&row_j[..j]) {
                sum -= lik * ljk;
            }
            row_i[j] = sum / row_j[j];
        }
        let mut sum = a_row[i];
        for lik in &row_i[..i] {
            sum -= lik * lik;
        }
        if sum <= 0.0 || !sum.is_finite() {
            return None;
        }
        row_i[i] = sum.sqrt();
    }
    Some(Matrix::from_vec(n, n, l))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 3.0, 0.4], &[0.6, 0.4, 2.0]])
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let chol = Cholesky::decompose(&a).unwrap();
        let l = chol.factor();
        let rebuilt = l.matmul(&l.transpose());
        assert!(rebuilt.max_abs_diff(&a).unwrap() < 1e-12);
        assert_eq!(chol.jitter(), 0.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = Cholesky::decompose(&a).unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{xi} vs {ti}");
        }
    }

    #[test]
    fn solve_into_matches_allocating_solves() {
        let a = spd3();
        let chol = Cholesky::decompose(&a).unwrap();
        let b = [0.3, -1.2, 2.5];
        let mut y = vec![9.0; 7]; // dirty, wrong-sized buffer
        chol.solve_lower_into(&b, &mut y);
        assert_eq!(y, chol.solve_lower(&b));
        let mut x = Vec::new();
        chol.solve_upper_into(&y, &mut x);
        assert_eq!(x, chol.solve_upper(&y));
        assert_eq!(x, chol.solve(&b));
    }

    #[test]
    fn log_determinant_matches_manual_2x2() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        // det = 12 - 4 = 8.
        let chol = Cholesky::decompose(&a).unwrap();
        assert!((chol.log_determinant() - 8.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn inverse_diagonal_matches_unit_vector_solves() {
        let a = Matrix::from_rows(&[
            &[4.0, 2.0, 0.6, 0.1],
            &[2.0, 3.0, 0.4, 0.2],
            &[0.6, 0.4, 2.0, 0.3],
            &[0.1, 0.2, 0.3, 1.5],
        ]);
        let chol = Cholesky::decompose(&a).unwrap();
        let diag = chol.inverse_diagonal();
        for i in 0..4 {
            let mut e = vec![0.0; 4];
            e[i] = 1.0;
            let z = chol.solve(&e);
            assert!(
                (diag[i] - z[i]).abs() < 1e-12,
                "entry {i}: one-pass {} vs unit-vector {}",
                diag[i],
                z[i]
            );
        }
    }

    #[test]
    fn inverse_matches_unit_vector_solves() {
        let a = Matrix::from_rows(&[
            &[4.0, 2.0, 0.6, 0.1],
            &[2.0, 3.0, 0.4, 0.2],
            &[0.6, 0.4, 2.0, 0.3],
            &[0.1, 0.2, 0.3, 1.5],
        ]);
        let chol = Cholesky::decompose(&a).unwrap();
        let inv = chol.inverse();
        for i in 0..4 {
            let mut e = vec![0.0; 4];
            e[i] = 1.0;
            let z = chol.solve(&e);
            for j in 0..4 {
                assert!(
                    (inv[(j, i)] - z[j]).abs() < 1e-12,
                    "entry ({j}, {i}): {} vs {}",
                    inv[(j, i)],
                    z[j]
                );
            }
        }
        // Symmetric, and its diagonal agrees with the one-pass routine.
        let diag = chol.inverse_diagonal();
        for i in 0..4 {
            assert!((inv[(i, i)] - diag[i]).abs() < 1e-14);
            for j in 0..4 {
                assert_eq!(inv[(i, j)].to_bits(), inv[(j, i)].to_bits());
            }
        }
    }

    #[test]
    fn not_square_is_error() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(CholeskyError::NotSquare)
        ));
    }

    #[test]
    fn negative_definite_is_error() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(CholeskyError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn semidefinite_succeeds_with_jitter() {
        // Rank-1 matrix: vvᵀ with v = (1, 1) is PSD but singular.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let chol = Cholesky::decompose(&a).unwrap();
        assert!(chol.jitter() > 0.0);
        assert!(chol.jitter() <= Cholesky::MAX_JITTER);
    }

    /// The bordered matrix `[[A, k], [kᵀ, d]]`.
    fn bordered(a: &Matrix, col: &[f64], diag: f64) -> Matrix {
        let n = a.rows();
        Matrix::from_fn(n + 1, n + 1, |i, j| match (i == n, j == n) {
            (false, false) => a[(i, j)],
            (false, true) => col[i],
            (true, false) => col[j],
            (true, true) => diag,
        })
    }

    #[test]
    fn rank1_append_matches_from_scratch_factor_bitwise() {
        let a = spd3();
        let col = [0.9, -0.3, 0.5];
        let diag = 3.0;
        let base = Cholesky::decompose(&a).unwrap();
        let extended = base.rank1_append(&col, diag).unwrap();
        let scratch = Cholesky::decompose(&bordered(&a, &col, diag)).unwrap();
        assert_eq!(extended.jitter(), scratch.jitter());
        assert_eq!(extended.dim(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    extended.factor()[(i, j)].to_bits(),
                    scratch.factor()[(i, j)].to_bits(),
                    "entry ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn rank1_append_reconstructs_bordered_matrix() {
        let a = spd3();
        let col = [0.2, 1.1, -0.4];
        let diag = 5.0;
        let ext = Cholesky::decompose(&a)
            .unwrap()
            .rank1_append(&col, diag)
            .unwrap();
        let l = ext.factor();
        let rebuilt = l.matmul(&l.transpose());
        assert!(rebuilt.max_abs_diff(&bordered(&a, &col, diag)).unwrap() < 1e-12);
    }

    #[test]
    fn rank1_append_solves_like_bordered_factor() {
        let a = spd3();
        let col = [0.7, 0.1, 0.3];
        let ext = Cholesky::decompose(&a)
            .unwrap()
            .rank1_append(&col, 2.5)
            .unwrap();
        let b = bordered(&a, &col, 2.5);
        let x_true = [0.5, -1.0, 2.0, 0.25];
        let rhs = b.matvec(&x_true);
        for (xi, ti) in ext.solve(&rhs).iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn rank1_append_duplicate_column_is_rejected() {
        // Appending a copy of training column 0 makes the bordered matrix
        // singular: the downdated pivot collapses to ~0 and the guard must
        // refuse rather than emit a garbage factor.
        let a = spd3();
        let base = Cholesky::decompose(&a).unwrap();
        let col = [a[(0, 0)], a[(0, 1)], a[(0, 2)]];
        assert!(matches!(
            base.rank1_append(&col, a[(0, 0)]),
            Err(CholeskyError::NotPositiveDefinite)
        ));
        // The base factor is untouched and still usable.
        assert_eq!(base.dim(), 3);
    }

    #[test]
    fn rank1_append_carries_jitter_and_matches_scratch() {
        // PSD-singular base: decompose succeeds only with jitter. Appending
        // an orthogonal-ish column must reuse that jitter and stay
        // bit-identical to factoring the bordered matrix from scratch.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let base = Cholesky::decompose(&a).unwrap();
        assert!(base.jitter() > 0.0);
        let col = [0.1, 0.1];
        let ext = base.rank1_append(&col, 2.0).unwrap();
        assert_eq!(ext.jitter(), base.jitter());
        let scratch = Cholesky::decompose(&bordered(&a, &col, 2.0)).unwrap();
        assert_eq!(scratch.jitter(), base.jitter());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    ext.factor()[(i, j)].to_bits(),
                    scratch.factor()[(i, j)].to_bits(),
                    "entry ({i}, {j})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rank1_append_wrong_length_panics() {
        let base = Cholesky::decompose(&spd3()).unwrap();
        let _ = base.rank1_append(&[1.0], 1.0);
    }

    #[test]
    fn solve_lower_matrix_matches_per_column_solves_bitwise() {
        let a = spd3();
        let chol = Cholesky::decompose(&a).unwrap();
        let b = Matrix::from_rows(&[
            &[0.3, -1.2, 2.5, 0.0],
            &[1.7, 0.4, -0.9, 1.0],
            &[-0.6, 2.2, 0.8, -3.5],
        ]);
        let solved = chol.solve_lower_matrix(&b);
        for j in 0..b.cols() {
            let col: Vec<f64> = (0..b.rows()).map(|i| b[(i, j)]).collect();
            let y = chol.solve_lower(&col);
            for i in 0..b.rows() {
                assert_eq!(solved[(i, j)].to_bits(), y[i].to_bits(), "entry ({i}, {j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn solve_lower_matrix_wrong_rows_panics() {
        let chol = Cholesky::decompose(&spd3()).unwrap();
        let _ = chol.solve_lower_matrix(&Matrix::zeros(2, 4));
    }

    #[test]
    fn identity_solve_is_identity() {
        let chol = Cholesky::decompose(&Matrix::identity(4)).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(chol.solve(&b), b.to_vec());
        assert!((chol.log_determinant()).abs() < 1e-15);
        assert_eq!(chol.inverse_diagonal(), vec![1.0; 4]);
    }
}

//! Limited-memory BFGS minimization (two-loop recursion, Armijo
//! backtracking line search).
//!
//! Built for the Gaussian-process hyperparameter fit in `autrascale-gp`:
//! once the Gram matrix is Cholesky-factored, the log-marginal-likelihood
//! gradient is one extra O(n³) pass, so a gradient method replaces the
//! ~10³ Nelder–Mead simplex evaluations per fit with a few dozen
//! value-and-gradient evaluations. The search space stays tiny (2–6
//! log-hyperparameters), which is why the compact two-loop recursion —
//! O(m·d) per direction, no Hessian storage — is a better fit than a full
//! BFGS matrix.
//!
//! The objective contract matches `autrascale-gp`'s Nelder–Mead usage:
//! returning a non-finite value (or writing a non-finite gradient) marks
//! the point invalid. Unlike Nelder–Mead — which can walk around NaN
//! regions — a gradient method cannot recover from an invalid *initial*
//! point, so [`minimize`] reports failure (`None`) and lets the caller
//! fall back to a derivative-free search.

/// Options for [`minimize`].
#[derive(Debug, Clone, Copy)]
pub struct LbfgsOptions {
    /// Maximum number of value-and-gradient evaluations.
    pub max_evals: usize,
    /// Number of curvature pairs kept for the two-loop recursion.
    pub memory: usize,
    /// Convergence threshold on the gradient infinity norm.
    pub grad_tol: f64,
    /// Convergence threshold on the relative objective decrease per
    /// accepted step.
    pub f_tol: f64,
    /// Cap on the proposed step's infinity norm (before line search).
    /// Infinite by default; callers whose variables have a known natural
    /// scale (e.g. log-hyperparameters) can bound it so a badly scaled
    /// quasi-Newton direction cannot propose an absurd jump that the line
    /// search then spends several evaluations walking back.
    pub max_step: f64,
}

impl Default for LbfgsOptions {
    fn default() -> Self {
        Self {
            max_evals: 200,
            memory: 8,
            grad_tol: 1e-6,
            f_tol: 1e-9,
            max_step: f64::INFINITY,
        }
    }
}

/// Result of a successful [`minimize`] run.
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x` (always finite).
    pub fx: f64,
    /// Number of value-and-gradient evaluations consumed.
    pub evals: usize,
}

/// Sufficient-decrease constant for the Armijo condition.
const ARMIJO_C1: f64 = 1e-4;
/// Curvature constant for the weak Wolfe condition.
const WOLFE_C2: f64 = 0.9;
/// Maximum trial steps per line search.
const MAX_LINE_ITERS: usize = 40;
/// Relative curvature threshold below which an (s, y) pair is discarded.
const CURVATURE_EPS: f64 = 1e-12;
/// Displacement norm of the first (steepest-descent) trial step when the
/// gradient is large.
const FIRST_STEP_NORM: f64 = 0.1;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Minimizes `f` from `x0` with L-BFGS. `f` evaluates the objective at its
/// first argument and writes the gradient into its second (same length).
///
/// Returns `None` when the initial evaluation is non-finite (value or any
/// gradient entry) — the caller should fall back to a derivative-free
/// method. Otherwise returns the best point reached, which is `x0` itself
/// if no line search ever finds sufficient decrease.
///
/// Steps that land on non-finite values are rejected by the backtracking
/// line search exactly like steps that fail the Armijo test, so NaN
/// regions of the objective shrink the step rather than poisoning the
/// iterate — the same rejection contract the Nelder–Mead search uses.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn minimize<F>(mut f: F, x0: &[f64], options: &LbfgsOptions) -> Option<LbfgsResult>
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let n = x0.len();
    assert!(n > 0, "minimize: empty start point");
    let memory = options.memory.max(1);

    let mut x = x0.to_vec();
    let mut g = vec![0.0; n];
    let mut evals = 1usize;
    let mut fx = f(&x, &mut g);
    if !fx.is_finite() || g.iter().any(|v| !v.is_finite()) {
        return None;
    }

    // Curvature history, oldest first: (s, y, 1/sᵀy).
    let mut pairs: Vec<(Vec<f64>, Vec<f64>, f64)> = Vec::with_capacity(memory);
    let mut x_new = vec![0.0; n];
    let mut g_new = vec![0.0; n];
    let mut small_decreases = 0usize;
    let mut barren_retry = false;

    while evals < options.max_evals {
        if g.iter().all(|v| v.abs() <= options.grad_tol) {
            break;
        }

        // Two-loop recursion: d = -H·g with H₀ = γ·I scaled from the most
        // recent curvature pair.
        let mut d: Vec<f64> = g.iter().map(|v| -v).collect();
        let mut alphas = vec![0.0; pairs.len()];
        for (idx, (s, yv, rho)) in pairs.iter().enumerate().rev() {
            let a = rho * dot(s, &d);
            alphas[idx] = a;
            for (di, yi) in d.iter_mut().zip(yv) {
                *di -= a * yi;
            }
        }
        if let Some((s, yv, _)) = pairs.last() {
            let yy = dot(yv, yv);
            if yy > 0.0 {
                let gamma = dot(s, yv) / yy;
                for di in d.iter_mut() {
                    *di *= gamma;
                }
            }
        }
        for (idx, (s, yv, rho)) in pairs.iter().enumerate() {
            let beta = rho * dot(yv, &d);
            let a = alphas[idx];
            for (di, si) in d.iter_mut().zip(s) {
                *di += (a - beta) * si;
            }
        }

        // Descent safeguard: a corrupted history can propose an ascent (or
        // non-finite) direction; reset to steepest descent.
        let mut dg = dot(&d, &g);
        if !dg.is_finite() || dg >= 0.0 {
            pairs.clear();
            for (di, gi) in d.iter_mut().zip(&g) {
                *di = -gi;
            }
            dg = -dot(&g, &g);
        }
        // Without curvature history the direction is raw steepest descent,
        // whose natural scale is the gradient magnitude — a unit step can
        // overshoot by orders of magnitude and waste the whole line search
        // recovering. Normalize the first trial to a short, safe step; the
        // line search's expansion branch doubles it back up cheaply when
        // the objective turns out to be mild.
        if pairs.is_empty() {
            let gnorm = (-dg).sqrt();
            if gnorm > FIRST_STEP_NORM {
                let scale = FIRST_STEP_NORM / gnorm;
                for di in d.iter_mut() {
                    *di *= scale;
                }
                dg *= scale;
            }
        }
        // Step cap: bound the unit-step displacement so a badly scaled
        // direction cannot jump further than the caller's declared scale.
        let d_inf = d.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        if d_inf > options.max_step {
            let scale = options.max_step / d_inf;
            for di in d.iter_mut() {
                *di *= scale;
            }
            dg *= scale;
        }

        // Weak-Wolfe line search by bracketing bisection: sufficient
        // decrease (Armijo) plus the curvature condition `gᵀd ≥ c₂·g₀ᵀd`.
        // Armijo-only backtracking is not enough for L-BFGS — it happily
        // accepts steps with `sᵀy < 0`, whose pairs must be discarded, and
        // a frozen curvature history degenerates into a badly scaled
        // crawl. The curvature condition guarantees `sᵀy > 0` on accept.
        let fx_prev = fx;
        let mut lo = 0.0_f64;
        let mut hi = f64::INFINITY;
        let mut t = 1.0_f64;
        let mut accepted = false;
        // Best Armijo-satisfying point, kept as a fallback when the
        // curvature condition cannot be met within the iteration cap.
        let mut fallback: Option<(Vec<f64>, Vec<f64>, f64)> = None;
        let mut f_acc = fx;
        for _ in 0..MAX_LINE_ITERS {
            if evals >= options.max_evals {
                break;
            }
            for ((xn, xi), di) in x_new.iter_mut().zip(&x).zip(&d) {
                *xn = xi + t * di;
            }
            evals += 1;
            let f_new = f(&x_new, &mut g_new);
            let finite = f_new.is_finite() && g_new.iter().all(|v| v.is_finite());
            if !finite || f_new > fx_prev + ARMIJO_C1 * t * dg {
                // Too long (or invalid): shrink toward the bracket floor,
                // preferring the minimizer of the quadratic through
                // (0, fx_prev) with slope dg and (t, f_new) over plain
                // bisection — it usually lands in one trial.
                hi = t;
                let mut t_next = 0.5 * (lo + hi);
                if finite {
                    let denom = 2.0 * (f_new - fx_prev - dg * t);
                    if denom > 0.0 {
                        let t_q = -dg * t * t / denom;
                        let width = hi - lo;
                        if t_q.is_finite() {
                            t_next = t_q.clamp(lo + 0.1 * width, hi - 0.1 * width);
                        }
                    }
                }
                t = t_next;
            } else if dot(&g_new, &d) < WOLFE_C2 * dg {
                // Decrease is fine but the slope is still steep: the
                // minimizer along d lies further out.
                if fallback
                    .as_ref()
                    .map(|(_, _, ff)| f_new < *ff)
                    .unwrap_or(true)
                {
                    fallback = Some((x_new.clone(), g_new.clone(), f_new));
                }
                lo = t;
                t = if hi.is_finite() {
                    0.5 * (lo + hi)
                } else {
                    2.0 * t
                };
            } else {
                f_acc = f_new;
                accepted = true;
                break;
            }
        }

        if accepted {
            // Wolfe accept: store the curvature pair (the curvature
            // condition makes sᵀy > 0, up to the numerical threshold).
            let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
            let yv: Vec<f64> = g_new.iter().zip(&g).map(|(a, b)| a - b).collect();
            let sy = dot(&s, &yv);
            if sy > CURVATURE_EPS * dot(&yv, &yv).max(1.0) {
                if pairs.len() == memory {
                    pairs.remove(0);
                }
                pairs.push((s, yv, 1.0 / sy));
            }
            std::mem::swap(&mut x, &mut x_new);
            std::mem::swap(&mut g, &mut g_new);
            fx = f_acc;
        } else if let Some((xf, gf, ff)) = fallback {
            // Armijo progress but no curvature within the cap: advance to
            // the best decrease found, storing no pair (sᵀy may be ≤ 0).
            x = xf;
            g = gf;
            fx = ff;
        } else {
            if pairs.is_empty() || barren_retry {
                // Even steepest descent found no decrease: converged to
                // line-search precision.
                break;
            }
            // Retry the iteration once with a fresh (steepest-descent)
            // model; a second barren search in a row means we're done, not
            // badly scaled.
            barren_retry = true;
            pairs.clear();
            continue;
        }
        barren_retry = false;

        // A single tiny decrease can just be a heavily backtracked step
        // (e.g. skirting a NaN region); stop only when progress stalls on
        // consecutive iterations.
        if (fx_prev - fx).abs() <= options.f_tol * (1.0 + fx.abs()) {
            small_decreases += 1;
            if small_decreases >= 2 {
                break;
            }
        } else {
            small_decreases = 0;
        }
    }

    Some(LbfgsResult { x, fx, evals })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: &[f64], g: &mut [f64]) -> f64 {
        g[0] = 2.0 * (x[0] - 3.0);
        g[1] = 2.0 * (x[1] + 1.0);
        (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2)
    }

    #[test]
    fn minimizes_quadratic() {
        let r = minimize(quadratic, &[0.0, 0.0], &LbfgsOptions::default()).unwrap();
        assert!((r.x[0] - 3.0).abs() < 1e-8, "{:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 1e-8, "{:?}", r.x);
        assert!(r.fx < 1e-14);
        // A gradient method should need far fewer evaluations than the
        // ~100+ a simplex search spends here.
        assert!(r.evals < 30, "evals = {}", r.evals);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let rosen = |x: &[f64], g: &mut [f64]| {
            let (a, b) = (x[0], x[1]);
            g[0] = -400.0 * a * (b - a * a) - 2.0 * (1.0 - a);
            g[1] = 200.0 * (b - a * a);
            100.0 * (b - a * a).powi(2) + (1.0 - a).powi(2)
        };
        let r = minimize(
            rosen,
            &[-1.2, 1.0],
            &LbfgsOptions {
                max_evals: 400,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.fx < 1e-8, "fx = {}", r.fx);
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn respects_eval_budget() {
        let r = minimize(
            quadratic,
            &[100.0, -50.0],
            &LbfgsOptions {
                max_evals: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.evals <= 5, "evals = {}", r.evals);
    }

    #[test]
    fn non_finite_start_reports_failure() {
        let f = |_x: &[f64], g: &mut [f64]| {
            g[0] = f64::NAN;
            f64::NAN
        };
        assert!(minimize(f, &[1.0], &LbfgsOptions::default()).is_none());
        // Finite value but NaN gradient is just as unusable.
        let f = |_x: &[f64], g: &mut [f64]| {
            g[0] = f64::NAN;
            1.0
        };
        assert!(minimize(f, &[1.0], &LbfgsOptions::default()).is_none());
    }

    #[test]
    fn backtracks_around_nan_region() {
        // Objective undefined for x ≤ 0; minimum at x = 1 approached from
        // the right. The line search must shrink steps that overshoot into
        // the invalid region instead of accepting them.
        let f = |x: &[f64], g: &mut [f64]| {
            if x[0] <= 0.0 {
                g[0] = f64::NAN;
                return f64::NAN;
            }
            g[0] = 2.0 * (x[0] - 1.0) - 0.01 / x[0];
            (x[0] - 1.0).powi(2) - 0.01 * x[0].ln()
        };
        let r = minimize(f, &[4.0], &LbfgsOptions::default()).unwrap();
        assert!(r.x[0] > 0.0);
        assert!((r.x[0] - 1.0).abs() < 0.1, "{:?}", r.x);
    }

    #[test]
    fn already_optimal_start_converges_immediately() {
        let r = minimize(quadratic, &[3.0, -1.0], &LbfgsOptions::default()).unwrap();
        assert_eq!(r.evals, 1);
        assert_eq!(r.x, vec![3.0, -1.0]);
    }

    #[test]
    fn one_dimensional_works() {
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 4.0 * (x[0] - 0.25).powi(3);
            (x[0] - 0.25).powi(4)
        };
        let r = minimize(f, &[5.0], &LbfgsOptions::default()).unwrap();
        assert!((r.x[0] - 0.25).abs() < 1e-2, "{:?}", r.x);
    }
}

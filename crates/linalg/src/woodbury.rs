//! Woodbury-factored solves for "diagonal plus low rank" systems.
//!
//! The FITC sparse Gaussian process needs repeated solves against the n×n
//! training covariance `S = Λ + Uᵀ A⁻¹ U`, where `Λ` is a positive
//! diagonal, `A = K_mm` is the m×m inducing-point Gram and `U = K_mn` is
//! the m×n cross-Gram, with m ≪ n. Forming `S` would cost O(n²) memory
//! and O(n³) per factorization — exactly the wall the sparse surrogate
//! exists to avoid. [`LowRankWoodbury`] instead carries the two m×m
//! Cholesky factors
//!
//! ```text
//! A = L_A L_Aᵀ,        B = A + U Λ⁻¹ Uᵀ = L_B L_Bᵀ,
//! ```
//!
//! through which every quantity the GP needs is O(n·m) or O(m²) per call:
//!
//! * solves, via the Woodbury identity
//!   `S⁻¹ b = Λ⁻¹ b − Λ⁻¹ Uᵀ B⁻¹ U Λ⁻¹ b`;
//! * the log-determinant, via the matrix determinant lemma
//!   `log|S| = log|B| − log|A| + Σᵢ log λᵢ`;
//! * quadratic forms `bᵀ S⁻¹ b` (the likelihood's data-fit term); and
//! * the m-vector of representer weights `γ = B⁻¹ U Λ⁻¹ b`, which turns
//!   posterior-mean prediction into a single m-dot-product per query.
//!
//! Construction is O(n·m²) (the `U Λ⁻¹ Uᵀ` accumulation) plus O(m³) for
//! the factorization — the promised FITC cost.

use crate::cholesky::{Cholesky, CholeskyError};
use crate::matrix::Matrix;
use crate::vector::axpy;

/// Factored form of `S = Λ + Uᵀ A⁻¹ U` (never materialized), where `Λ` is
/// an n-vector of positive diagonal entries, `A` is m×m SPD and `U` is
/// m×n.
///
/// `A` enters through its [`Cholesky`] factor, so any jitter the factor
/// carries is inherited consistently: `B` is built from `L_A L_Aᵀ`
/// (i.e. the jittered `A`), and `log|A|` comes from the same factor —
/// the object is self-consistent for whatever SPD matrix the factor
/// actually represents.
#[derive(Debug, Clone)]
pub struct LowRankWoodbury {
    u: Matrix,
    lambda: Vec<f64>,
    chol_a: Cholesky,
    chol_b: Cholesky,
}

impl LowRankWoodbury {
    /// Builds the factorization from an already-factored `A`, the m×n
    /// cross term `U`, and the positive diagonal `Λ`.
    ///
    /// This is the entry point for callers (like the FITC surrogate) that
    /// need `L_A` *before* they can compute `Λ` — the FITC diagonal
    /// depends on the whitened columns `L_A⁻¹ U`.
    ///
    /// # Errors
    ///
    /// Returns the [`CholeskyError`] from factoring
    /// `B = A + U Λ⁻¹ Uᵀ` if even jitter escalation cannot make it SPD.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree (`u.rows() != chol_a.dim()` or
    /// `u.cols() != lambda.len()`) or any `λᵢ` is not strictly positive
    /// and finite.
    pub fn with_factor(
        chol_a: Cholesky,
        u: Matrix,
        lambda: Vec<f64>,
    ) -> Result<Self, CholeskyError> {
        let m = chol_a.dim();
        let n = lambda.len();
        assert_eq!(u.rows(), m, "low-rank factor: U row count != dim(A)");
        assert_eq!(u.cols(), n, "low-rank factor: U column count != len(Λ)");
        assert!(
            lambda.iter().all(|&l| l > 0.0 && l.is_finite()),
            "low-rank factor: Λ must be strictly positive and finite"
        );
        // B = L_A L_Aᵀ + U Λ⁻¹ Uᵀ = L_A L_Aᵀ + W Wᵀ with W = U Λ^{-1/2}
        // (columns scaled once, O(n·m)), so the dominant O(n·m²/2)
        // accumulation is a plain two-stream dot product. Lower triangle
        // then mirrored; every accumulation runs over contiguous slices.
        let inv_sqrt_lambda: Vec<f64> = lambda.iter().map(|&l| 1.0 / l.sqrt()).collect();
        let mut w = vec![0.0; m * n];
        for i in 0..m {
            for ((wv, uv), s) in w[i * n..(i + 1) * n]
                .iter_mut()
                .zip(u.row(i))
                .zip(&inv_sqrt_lambda)
            {
                *wv = uv * s;
            }
        }
        let l_a = chol_a.factor().as_slice();
        let mut b = vec![0.0; m * m];
        for i in 0..m {
            let w_i = &w[i * n..(i + 1) * n];
            let la_i = &l_a[i * m..i * m + i + 1];
            for j in 0..=i {
                let w_j = &w[j * n..(j + 1) * n];
                let la_j = &l_a[j * m..j * m + j + 1];
                let mut sum = 0.0;
                for (lik, ljk) in la_i[..j + 1].iter().zip(la_j) {
                    sum += lik * ljk;
                }
                for (wi, wj) in w_i.iter().zip(w_j) {
                    sum += wi * wj;
                }
                b[i * m + j] = sum;
                b[j * m + i] = sum;
            }
        }
        let chol_b = Cholesky::decompose(&Matrix::from_vec(m, m, b))?;
        Ok(Self {
            u,
            lambda,
            chol_a,
            chol_b,
        })
    }

    /// Convenience constructor that factors `A` itself first.
    ///
    /// # Errors
    ///
    /// Returns the [`CholeskyError`] from factoring `A` or `B`.
    pub fn new(a: &Matrix, u: Matrix, lambda: Vec<f64>) -> Result<Self, CholeskyError> {
        Self::with_factor(Cholesky::decompose(a)?, u, lambda)
    }

    /// Rank of the low-rank term (m, the inducing-point count).
    pub fn rank(&self) -> usize {
        self.chol_a.dim()
    }

    /// Dimension of the implicit system `S` (n, the training-set size).
    pub fn len(&self) -> usize {
        self.lambda.len()
    }

    /// True when the implicit system is 0×0.
    pub fn is_empty(&self) -> bool {
        self.lambda.is_empty()
    }

    /// The factor of `A`.
    pub fn chol_a(&self) -> &Cholesky {
        &self.chol_a
    }

    /// The factor of `B = A + U Λ⁻¹ Uᵀ`.
    pub fn chol_b(&self) -> &Cholesky {
        &self.chol_b
    }

    /// The diagonal `Λ`.
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// `S⁻¹ b` by the Woodbury identity, O(n·m + m²).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.len()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.len();
        assert_eq!(b.len(), n, "woodbury solve: dimension mismatch");
        let t: Vec<f64> = b.iter().zip(&self.lambda).map(|(bi, l)| bi / l).collect();
        let g = self.chol_b.solve(&self.u.matvec(&t));
        // correction = Uᵀ g accumulated row-wise so the inner loop is an
        // axpy over a contiguous row of U.
        let mut correction = vec![0.0; n];
        for (k, &gk) in g.iter().enumerate() {
            axpy(gk, self.u.row(k), &mut correction);
        }
        t.iter()
            .zip(&correction)
            .zip(&self.lambda)
            .map(|((ti, ci), l)| ti - ci / l)
            .collect()
    }

    /// `log|S|` via the matrix determinant lemma.
    pub fn log_determinant(&self) -> f64 {
        let lambda_term: f64 = self.lambda.iter().map(|l| l.ln()).sum();
        self.chol_b.log_determinant() - self.chol_a.log_determinant() + lambda_term
    }

    /// The quadratic form `bᵀ S⁻¹ b`, O(n·m + m²).
    ///
    /// Computed as `Σᵢ bᵢ²/λᵢ − ‖L_B⁻¹ U Λ⁻¹ b‖²`, so the subtraction is
    /// of a guaranteed-nonnegative term and the result cannot pick up the
    /// sign noise of a full `b · solve(b)` dot product.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.len()`.
    pub fn quad_form(&self, b: &[f64]) -> f64 {
        let n = self.len();
        assert_eq!(b.len(), n, "woodbury quad_form: dimension mismatch");
        let t: Vec<f64> = b.iter().zip(&self.lambda).map(|(bi, l)| bi / l).collect();
        let direct: f64 = b.iter().zip(&t).map(|(bi, ti)| bi * ti).sum();
        let w = self.chol_b.solve_lower(&self.u.matvec(&t));
        direct - w.iter().map(|wi| wi * wi).sum::<f64>()
    }

    /// The representer weights `γ = B⁻¹ U Λ⁻¹ b` (an m-vector).
    ///
    /// With `b` the training targets, the FITC posterior mean at a query
    /// `x*` is just `k_*ᵀ γ` where `k_*` is the m-vector of inducing-point
    /// kernel evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.len()`.
    pub fn representer_weights(&self, b: &[f64]) -> Vec<f64> {
        let n = self.len();
        assert_eq!(
            b.len(),
            n,
            "woodbury representer_weights: dimension mismatch"
        );
        let t: Vec<f64> = b.iter().zip(&self.lambda).map(|(bi, l)| bi / l).collect();
        self.chol_b.solve(&self.u.matvec(&t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (same LCG as the gp crate's
    /// gram tests) so the fixtures need no external RNG.
    struct Lcg(u64);

    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A well-conditioned random instance: SPD `A` (diagonally dominated),
    /// dense `U`, positive `Λ`.
    fn fixture(m: usize, n: usize, seed: u64) -> (Matrix, Matrix, Vec<f64>) {
        let mut rng = Lcg(seed);
        let mut a = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..=i {
                let v = rng.next_f64() - 0.5;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
            a[(i, i)] += m as f64;
        }
        let u = Matrix::from_fn(m, n, |_, _| rng.next_f64() * 2.0 - 1.0);
        let lambda: Vec<f64> = (0..n).map(|_| 0.1 + rng.next_f64()).collect();
        (a, u, lambda)
    }

    /// The dense n×n system `S = diag(Λ) + Uᵀ A⁻¹ U`, built the slow way.
    fn dense_s(a: &Matrix, u: &Matrix, lambda: &[f64]) -> Matrix {
        let chol = Cholesky::decompose(a).unwrap();
        let n = lambda.len();
        let mut s = Matrix::from_fn(n, n, |i, j| {
            let col_i: Vec<f64> = (0..u.rows()).map(|k| u[(k, i)]).collect();
            let col_j: Vec<f64> = (0..u.rows()).map(|k| u[(k, j)]).collect();
            let ainv_uj = chol.solve(&col_j);
            col_i.iter().zip(&ainv_uj).map(|(x, y)| x * y).sum()
        });
        for (i, l) in lambda.iter().enumerate() {
            s[(i, i)] += l;
        }
        s
    }

    #[test]
    fn solve_matches_dense_system() {
        let (a, u, lambda) = fixture(4, 9, 0xF1);
        let s = dense_s(&a, &u, &lambda);
        let wood = LowRankWoodbury::new(&a, u, lambda).unwrap();
        let mut rng = Lcg(0xB0B);
        let b: Vec<f64> = (0..9).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
        let x = wood.solve(&b);
        let rhs = s.matvec(&x);
        for (ri, bi) in rhs.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9, "S·x = {ri} vs b = {bi}");
        }
    }

    #[test]
    fn log_determinant_matches_dense_cholesky() {
        let (a, u, lambda) = fixture(3, 8, 0xD3);
        let s = dense_s(&a, &u, &lambda);
        let dense_logdet = Cholesky::decompose(&s).unwrap().log_determinant();
        let wood = LowRankWoodbury::new(&a, u, lambda).unwrap();
        assert!(
            (wood.log_determinant() - dense_logdet).abs() < 1e-9,
            "{} vs {}",
            wood.log_determinant(),
            dense_logdet
        );
    }

    #[test]
    fn quad_form_matches_dense_solve() {
        let (a, u, lambda) = fixture(5, 11, 0x7A);
        let s = dense_s(&a, &u, &lambda);
        let wood = LowRankWoodbury::new(&a, u, lambda).unwrap();
        let mut rng = Lcg(0x11);
        let b: Vec<f64> = (0..11).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
        let dense_quad: f64 = Cholesky::decompose(&s)
            .unwrap()
            .solve(&b)
            .iter()
            .zip(&b)
            .map(|(xi, bi)| xi * bi)
            .sum();
        assert!(
            (wood.quad_form(&b) - dense_quad).abs() < 1e-9,
            "{} vs {}",
            wood.quad_form(&b),
            dense_quad
        );
    }

    #[test]
    fn representer_weights_reproduce_solve() {
        // γ = B⁻¹UΛ⁻¹b implies Λ⁻¹(b − Uᵀγ) = S⁻¹b: check against solve().
        let (a, u, lambda) = fixture(4, 7, 0x42);
        let wood = LowRankWoodbury::new(&a, u.clone(), lambda.clone()).unwrap();
        let mut rng = Lcg(0x99);
        let b: Vec<f64> = (0..7).map(|_| rng.next_f64() - 0.5).collect();
        let gamma = wood.representer_weights(&b);
        let x = wood.solve(&b);
        for i in 0..7 {
            let ut_gamma: f64 = (0..4).map(|k| u[(k, i)] * gamma[k]).sum();
            let via_gamma = (b[i] - ut_gamma) / lambda[i];
            assert!(
                (via_gamma - x[i]).abs() < 1e-10,
                "entry {i}: {via_gamma} vs {}",
                x[i]
            );
        }
    }

    #[test]
    fn with_factor_is_jitter_consistent() {
        // A PSD-singular A forces jitter; the object must describe the
        // *jittered* A everywhere: B is assembled from L_A·L_Aᵀ (not the
        // raw A the caller saw), so reconstructing B's factor must
        // reproduce (A + jitter·I) + UΛ⁻¹Uᵀ exactly.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let chol_a = Cholesky::decompose(&a).unwrap();
        assert!(chol_a.jitter() > 0.0);
        let mut jittered = a.clone();
        jittered.add_diagonal(chol_a.jitter());
        let u = Matrix::from_rows(&[&[1.0, 0.5, -0.25], &[0.0, 1.0, 0.75]]);
        let lambda = vec![0.5, 0.8, 1.1];
        let a_logdet = chol_a.log_determinant();
        let wood = LowRankWoodbury::with_factor(chol_a, u.clone(), lambda.clone()).unwrap();
        let mut expected_b = jittered.clone();
        for i in 0..2 {
            for j in 0..2 {
                expected_b[(i, j)] += (0..3)
                    .map(|t| u[(i, t)] * u[(j, t)] / lambda[t])
                    .sum::<f64>();
            }
        }
        let l_b = wood.chol_b().factor();
        let mut rebuilt_b = l_b.matmul(&l_b.transpose());
        rebuilt_b.add_diagonal(-wood.chol_b().jitter());
        assert!(rebuilt_b.max_abs_diff(&expected_b).unwrap() < 1e-12);
        // log|S| likewise uses the jittered A's determinant.
        let b_logdet = wood.chol_b().log_determinant();
        let lambda_term: f64 = lambda.iter().map(|l| l.ln()).sum();
        let expected = b_logdet - a_logdet + lambda_term;
        assert!((wood.log_determinant() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn nonpositive_lambda_panics() {
        let (a, u, mut lambda) = fixture(2, 4, 0x5);
        lambda[2] = 0.0;
        let _ = LowRankWoodbury::new(&a, u, lambda);
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn mismatched_u_rows_panics() {
        let (a, _, lambda) = fixture(3, 4, 0x6);
        let _ = LowRankWoodbury::new(&a, Matrix::zeros(2, 4), lambda);
    }
}

//! A small dense row-major matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `f64` matrix.
///
/// Sized for the Gaussian-process use case: Gram matrices of a few dozen
/// training samples. Operations panic on dimension mismatch — a programming
/// error in this codebase, not a recoverable condition.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Builds an `n × n` matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` iff the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Adds `value` to every diagonal entry in place (used for jitter and
    /// observation-noise terms on Gram matrices).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, value: f64) {
        assert!(self.is_square(), "add_diagonal: matrix must be square");
        for i in 0..self.rows {
            self[(i, i)] += value;
        }
    }

    /// Maximum absolute entry-wise difference to `other`; `None` when shapes
    /// differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// `true` iff the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_rejects_bad_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diagonal(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]);
        assert!(!a.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(0.0));
    }

    #[test]
    fn max_abs_diff_shape_mismatch_is_none() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.max_abs_diff(&b).is_none());
        let c = Matrix::identity(2);
        assert_eq!(a.max_abs_diff(&c), Some(1.0));
    }
}

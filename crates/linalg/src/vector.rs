//! Small vector helpers shared across the GP and controller crates.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn l2_norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Maximum absolute component-wise distance between two slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "linf_distance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scalar multiply.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance; `0.0` for slices shorter than two elements.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[2.0, 4.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn linf() {
        assert_eq!(linf_distance(&[0.0, 1.0], &[0.5, -1.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}

//! Property-based tests for the linear-algebra kernels: factorization and
//! solve invariants on randomly generated SPD systems.

use autrascale_linalg::{dot, l2_norm, Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: a random `n × n` matrix `B` with entries in [-1, 1]; `B Bᵀ + εI`
/// is then SPD by construction.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data);
        let mut a = b.matmul(&b.transpose());
        a.add_diagonal(0.1);
        a
    })
}

/// `A` bordered with a new column `col` and diagonal entry `diag`.
fn bordered_matrix(a: &Matrix, col: &[f64], diag: f64) -> Matrix {
    let n = a.rows();
    Matrix::from_fn(n + 1, n + 1, |i, j| match (i == n, j == n) {
        (false, false) => a[(i, j)],
        (true, false) => col[j],
        (false, true) => col[i],
        (true, true) => diag,
    })
}

proptest! {
    #[test]
    fn cholesky_reconstructs(a in (1usize..8).prop_flat_map(spd_matrix)) {
        let chol = Cholesky::decompose(&a).unwrap();
        let l = chol.factor();
        let rebuilt = l.matmul(&l.transpose());
        // Allow for the jitter the decomposition may have added.
        let tol = 1e-9 + chol.jitter() * 2.0;
        prop_assert!(rebuilt.max_abs_diff(&a).unwrap() <= tol);
    }

    #[test]
    fn solve_satisfies_system(
        (a, x) in (1usize..8).prop_flat_map(|n| {
            (spd_matrix(n), proptest::collection::vec(-10.0f64..10.0, n))
        })
    ) {
        let b = a.matvec(&x);
        let solved = Cholesky::decompose(&a).unwrap().solve(&b);
        let residual = a.matvec(&solved);
        for (r, t) in residual.iter().zip(&b) {
            prop_assert!((r - t).abs() < 1e-6, "residual {r} target {t}");
        }
    }

    #[test]
    fn factor_is_lower_triangular(a in (2usize..8).prop_flat_map(spd_matrix)) {
        let chol = Cholesky::decompose(&a).unwrap();
        let l = chol.factor();
        for i in 0..l.rows() {
            for j in (i + 1)..l.cols() {
                prop_assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn log_det_is_finite_for_spd(a in (1usize..8).prop_flat_map(spd_matrix)) {
        let chol = Cholesky::decompose(&a).unwrap();
        prop_assert!(chol.log_determinant().is_finite());
    }

    #[test]
    fn transpose_preserves_matvec_adjoint(
        (m, x, y) in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
            (
                proptest::collection::vec(-5.0f64..5.0, r * c)
                    .prop_map(move |d| Matrix::from_vec(r, c, d)),
                proptest::collection::vec(-5.0f64..5.0, c),
                proptest::collection::vec(-5.0f64..5.0, r),
            )
        })
    ) {
        // <A x, y> == <x, Aᵀ y>
        let lhs = dot(&m.matvec(&x), &y);
        let rhs = dot(&x, &m.transpose().matvec(&y));
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn rank1_append_matches_bordered_factor(
        (a, col, diag) in (1usize..8).prop_flat_map(|n| {
            (
                spd_matrix(n),
                // Small enough that colᵀ A⁻¹ col < diag for every generated
                // A (λ_min ≥ 0.1), so the appended pivot is always positive.
                proptest::collection::vec(-0.1f64..0.1, n),
                2.0f64..6.0,
            )
        })
    ) {
        // Border A with (col, diag). The diagonal dominates the column, so
        // the appended pivot is positive and rank1_append must succeed and
        // agree with factoring the bordered matrix from scratch.
        let n = a.rows();
        let bordered = bordered_matrix(&a, &col, diag);
        let base = Cholesky::decompose(&a).unwrap();
        let appended = base.rank1_append(&col, diag).unwrap();
        let scratch = Cholesky::decompose(&bordered).unwrap();
        prop_assert_eq!(appended.dim(), n + 1);
        prop_assert!(
            appended
                .factor()
                .max_abs_diff(scratch.factor())
                .unwrap()
                <= 1e-10,
            "appended factor diverged from scratch factor"
        );
        // And the appended factor really factors the bordered matrix.
        let l = appended.factor();
        let rebuilt = l.matmul(&l.transpose());
        let tol = 1e-9 + appended.jitter() * 2.0;
        prop_assert!(rebuilt.max_abs_diff(&bordered).unwrap() <= tol);
    }

    #[test]
    fn rank1_append_jitter_fallback_agrees_with_full_decompose(
        (a, scale) in (2usize..6).prop_flat_map(|n| (spd_matrix(n), 0.9f64..1.1))
    ) {
        // Duplicate the last row/column of A (scaled ~1): the bordered
        // matrix is singular or near-singular, so the append either fails —
        // in which case a full decompose with escalating jitter must still
        // succeed (the caller's fallback path) — or succeeds with a factor
        // matching the from-scratch bordered factorization.
        let n = a.rows();
        let col: Vec<f64> = (0..n).map(|j| a[(n - 1, j)] * scale).collect();
        let diag = a[(n - 1, n - 1)] * scale * scale;
        let bordered = bordered_matrix(&a, &col, diag);
        let base = Cholesky::decompose(&a).unwrap();
        match base.rank1_append(&col, diag) {
            Ok(appended) => {
                let scratch = Cholesky::decompose(&bordered).unwrap();
                prop_assert!(
                    appended
                        .factor()
                        .max_abs_diff(scratch.factor())
                        .unwrap()
                        <= 1e-10
                );
            }
            Err(_) => {
                // Fallback: from-scratch decomposition bumps the jitter
                // past the carried level and still factors the matrix.
                let scratch = Cholesky::decompose(&bordered).unwrap();
                prop_assert!(scratch.log_determinant().is_finite());
                prop_assert!(scratch.jitter() >= base.jitter());
            }
        }
    }

    #[test]
    fn cauchy_schwarz(
        (a, b) in (1usize..16).prop_flat_map(|n| {
            (
                proptest::collection::vec(-10.0f64..10.0, n),
                proptest::collection::vec(-10.0f64..10.0, n),
            )
        })
    ) {
        let lhs = dot(&a, &b).abs();
        let rhs = l2_norm(&a) * l2_norm(&b);
        prop_assert!(lhs <= rhs + 1e-9);
    }
}

//! Property-based tests for the linear-algebra kernels: factorization and
//! solve invariants on randomly generated SPD systems.

use autrascale_linalg::{dot, l2_norm, Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: a random `n × n` matrix `B` with entries in [-1, 1]; `B Bᵀ + εI`
/// is then SPD by construction.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data);
        let mut a = b.matmul(&b.transpose());
        a.add_diagonal(0.1);
        a
    })
}

proptest! {
    #[test]
    fn cholesky_reconstructs(a in (1usize..8).prop_flat_map(spd_matrix)) {
        let chol = Cholesky::decompose(&a).unwrap();
        let l = chol.factor();
        let rebuilt = l.matmul(&l.transpose());
        // Allow for the jitter the decomposition may have added.
        let tol = 1e-9 + chol.jitter() * 2.0;
        prop_assert!(rebuilt.max_abs_diff(&a).unwrap() <= tol);
    }

    #[test]
    fn solve_satisfies_system(
        (a, x) in (1usize..8).prop_flat_map(|n| {
            (spd_matrix(n), proptest::collection::vec(-10.0f64..10.0, n))
        })
    ) {
        let b = a.matvec(&x);
        let solved = Cholesky::decompose(&a).unwrap().solve(&b);
        let residual = a.matvec(&solved);
        for (r, t) in residual.iter().zip(&b) {
            prop_assert!((r - t).abs() < 1e-6, "residual {r} target {t}");
        }
    }

    #[test]
    fn factor_is_lower_triangular(a in (2usize..8).prop_flat_map(spd_matrix)) {
        let chol = Cholesky::decompose(&a).unwrap();
        let l = chol.factor();
        for i in 0..l.rows() {
            for j in (i + 1)..l.cols() {
                prop_assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn log_det_is_finite_for_spd(a in (1usize..8).prop_flat_map(spd_matrix)) {
        let chol = Cholesky::decompose(&a).unwrap();
        prop_assert!(chol.log_determinant().is_finite());
    }

    #[test]
    fn transpose_preserves_matvec_adjoint(
        (m, x, y) in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
            (
                proptest::collection::vec(-5.0f64..5.0, r * c)
                    .prop_map(move |d| Matrix::from_vec(r, c, d)),
                proptest::collection::vec(-5.0f64..5.0, c),
                proptest::collection::vec(-5.0f64..5.0, r),
            )
        })
    ) {
        // <A x, y> == <x, Aᵀ y>
        let lhs = dot(&m.matvec(&x), &y);
        let rhs = dot(&x, &m.transpose().matvec(&y));
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn cauchy_schwarz(
        (a, b) in (1usize..16).prop_flat_map(|n| {
            (
                proptest::collection::vec(-10.0f64..10.0, n),
                proptest::collection::vec(-10.0f64..10.0, n),
            )
        })
    ) {
        let lhs = dot(&a, &b).abs();
        let rhs = l2_norm(&a) * l2_norm(&b);
        prop_assert!(lhs <= rhs + 1e-9);
    }
}

//! The job-control client.

use crate::metrics_view::{JobMetrics, OperatorMetrics};
use autrascale_metricsdb::{aggregate, Query};
use autrascale_streamsim::{metrics, SimError, Simulation};

/// Coarse job state, as Flink's REST API reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted but never deployed.
    Created,
    /// Processing records.
    Running,
    /// Stopped with a savepoint, waiting for the restart to complete.
    Restarting,
}

/// A handle on the simulated cluster exposing the control-plane surface
/// the paper's System Scheduler and Metric Aggregator need.
#[derive(Debug)]
pub struct FlinkCluster {
    sim: Simulation,
    submitted: bool,
}

impl FlinkCluster {
    /// Wraps a simulation.
    pub fn new(sim: Simulation) -> Self {
        Self {
            sim,
            submitted: false,
        }
    }

    /// Submits the job with its initial parallelism (starts immediately).
    pub fn submit(&mut self, parallelism: &[u32]) -> Result<(), SimError> {
        self.sim.deploy(parallelism)?;
        self.submitted = true;
        Ok(())
    }

    /// Stop-with-savepoint + restart with a new parallelism vector. The
    /// job is down for the simulator's configured restart downtime.
    pub fn rescale(&mut self, parallelism: &[u32]) -> Result<(), SimError> {
        if !self.submitted {
            return Err(SimError::NotDeployed);
        }
        self.sim.deploy(parallelism)
    }

    /// Current job status.
    pub fn status(&self) -> JobStatus {
        if !self.submitted {
            JobStatus::Created
        } else if self.sim.in_downtime() {
            JobStatus::Restarting
        } else {
            JobStatus::Running
        }
    }

    /// Lets wall-clock advance by `secs` of simulation time. Errors if
    /// `secs` is non-finite or negative (the simulator rejects such
    /// durations); the job state is untouched on error.
    pub fn run_for(&mut self, secs: f64) -> Result<(), SimError> {
        self.sim.run_for(secs)
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.sim.now()
    }

    /// Currently deployed parallelism vector.
    pub fn parallelism(&self) -> &[u32] {
        self.sim.parallelism()
    }

    /// Direct access to the underlying simulation (experiments need to
    /// swap rate profiles; a real deployment would restart the producer).
    pub fn simulation_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// Read-only access to the underlying simulation.
    pub fn simulation(&self) -> &Simulation {
        &self.sim
    }

    /// Aggregated metrics over the trailing `window_secs`. Returns `None`
    /// until at least one metric emission falls inside the window.
    ///
    /// This is the Metric Aggregator: it sums true/observed rates across
    /// each operator's subtask series and averages job-level series.
    pub fn metrics_over(&self, window_secs: f64) -> Option<JobMetrics> {
        let to = self.sim.now();
        let from = (to - window_secs).max(0.0);
        let store = self.sim.store();

        let job_mean = |name: &str| -> Option<f64> {
            // Bounds are finite by construction (now() and a clamped
            // trailing window), so BadBound cannot occur here.
            let results = store
                .select(&Query::new(name, from, to))
                .unwrap_or_default();
            let points: Vec<_> = results.into_iter().flat_map(|(_, pts)| pts).collect();
            aggregate::mean(&points)
        };
        let job_last = |name: &str| -> Option<f64> {
            store
                .select(&Query::new(name, from, to))
                .unwrap_or_default()
                .into_iter()
                .flat_map(|(_, pts)| pts)
                .last()
                .map(|p| p.value)
        };

        let throughput = job_mean(metrics::JOB_THROUGHPUT)?;
        let producer_rate = job_mean(metrics::PRODUCER_RATE)?;
        let sink_rate = job_mean(metrics::SINK_RATE).unwrap_or(0.0);
        let kafka_lag = job_last(metrics::KAFKA_LAG).unwrap_or(0.0);
        let kafka_lag_start = store
            .select(&Query::new(metrics::KAFKA_LAG, from, to))
            .unwrap_or_default()
            .into_iter()
            .flat_map(|(_, pts)| pts)
            .next()
            .map(|p| p.value)
            .unwrap_or(kafka_lag);
        let kafka_lag_delta = kafka_lag - kafka_lag_start;
        let processing_latency_ms = job_mean(metrics::PROCESSING_LATENCY_MS).unwrap_or(0.0);
        let event_time_latency_ms = job_mean(metrics::EVENT_TIME_LATENCY_MS);

        let job = self.sim.job();
        let parallelism = self.sim.parallelism();
        let mut operators = Vec::with_capacity(job.len());
        // zip (not indexing) keeps this total even if a deploy ever left
        // the parallelism vector shorter than the operator list.
        for (op, &p) in job.operators().iter().zip(parallelism) {
            // Per-subtask series: only subtasks of the CURRENT incarnation
            // (0..p) count; series from a previous, larger parallelism may
            // still hold points inside the window.
            let mut sum_true = 0.0;
            let mut sum_observed = 0.0;
            let mut counted = 0u32;
            for subtask in 0..p as usize {
                let tkey = metrics::instance_key(metrics::TRUE_PROCESSING_RATE, &op.name, subtask);
                let okey =
                    metrics::instance_key(metrics::OBSERVED_PROCESSING_RATE, &op.name, subtask);
                if let (Some(t), Some(o)) = (
                    store.window_mean(&tkey, from, to).ok().flatten(),
                    store.window_mean(&okey, from, to).ok().flatten(),
                ) {
                    sum_true += t;
                    sum_observed += o;
                    counted += 1;
                }
            }
            if counted == 0 {
                return None; // window predates this operator's metrics
            }
            let input_key = metrics::operator_key(metrics::OPERATOR_INPUT_RATE, &op.name);
            let output_key = metrics::operator_key(metrics::OPERATOR_OUTPUT_RATE, &op.name);
            let input_rate = store
                .window_mean(&input_key, from, to)
                .ok()
                .flatten()
                .unwrap_or(0.0);
            let output_rate = store
                .window_mean(&output_key, from, to)
                .ok()
                .flatten()
                .unwrap_or(0.0);

            // Scale subtask sums up to the full parallelism when some
            // subtasks lacked points (can only happen right after a
            // rescale mid-window).
            let scale = p as f64 / counted as f64;
            operators.push(OperatorMetrics {
                name: op.name.clone(),
                parallelism: p,
                true_rate_avg: sum_true / counted as f64,
                true_rate_total: sum_true * scale,
                observed_rate_avg: sum_observed / counted as f64,
                observed_rate_total: sum_observed * scale,
                input_rate,
                output_rate,
            });
        }

        Some(JobMetrics {
            window: (from, to),
            producer_rate,
            throughput,
            sink_rate,
            kafka_lag,
            kafka_lag_delta,
            processing_latency_ms,
            event_time_latency_ms,
            operators,
            edges: job.edges().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autrascale_streamsim::{
        ClusterSpec, JobGraph, OperatorSpec, RateProfile, SimulationConfig,
    };

    fn cluster(rate: f64) -> FlinkCluster {
        let job = JobGraph::linear(vec![
            OperatorSpec::source("Source", 50_000.0),
            OperatorSpec::transform("Map", 30_000.0, 1.0),
            OperatorSpec::sink("Sink", 60_000.0),
        ])
        .unwrap();
        let config = SimulationConfig {
            cluster: ClusterSpec::paper_cluster(),
            job,
            profile: RateProfile::constant(rate),
            seed: 21,
            ..Default::default()
        };
        FlinkCluster::new(Simulation::new(config).unwrap())
    }

    #[test]
    fn status_lifecycle() {
        let mut fc = cluster(10_000.0);
        assert_eq!(fc.status(), JobStatus::Created);
        assert!(matches!(fc.rescale(&[1, 1, 1]), Err(SimError::NotDeployed)));
        fc.submit(&[1, 1, 1]).unwrap();
        assert_eq!(fc.status(), JobStatus::Running);
        fc.run_for(30.0).unwrap();
        fc.rescale(&[1, 2, 1]).unwrap();
        assert_eq!(fc.status(), JobStatus::Restarting);
        fc.run_for(60.0).unwrap();
        assert_eq!(fc.status(), JobStatus::Running);
        assert_eq!(fc.parallelism(), &[1, 2, 1]);
    }

    #[test]
    fn run_for_rejects_bad_durations_without_panicking() {
        // Regression for the R1 lint fix: a negative or non-finite duration
        // used to abort via expect(); it is now the simulator's typed error
        // and leaves the job runnable.
        let mut fc = cluster(10_000.0);
        fc.submit(&[1, 1, 1]).unwrap();
        assert!(fc.run_for(-1.0).is_err());
        assert!(fc.run_for(f64::NAN).is_err());
        assert!(fc.run_for(f64::INFINITY).is_err());
        fc.run_for(10.0).unwrap();
        assert_eq!(fc.status(), JobStatus::Running);
        assert!((fc.now() - 10.0).abs() < 0.2, "now = {}", fc.now());
    }

    #[test]
    fn metrics_none_before_data() {
        let mut fc = cluster(10_000.0);
        fc.submit(&[1, 1, 1]).unwrap();
        assert!(fc.metrics_over(10.0).is_none());
        fc.run_for(15.0).unwrap();
        assert!(fc.metrics_over(10.0).is_some());
    }

    #[test]
    fn aggregator_sums_across_subtasks() {
        let mut fc = cluster(40_000.0);
        fc.submit(&[1, 3, 1]).unwrap();
        fc.run_for(60.0).unwrap();
        let m = fc.metrics_over(30.0).unwrap();
        let map = m.operator("Map").unwrap();
        assert_eq!(map.parallelism, 3);
        // Total ≈ 3 × the per-instance average.
        assert!((map.true_rate_total - 3.0 * map.true_rate_avg).abs() < 1e-6);
        // True rate total should be near 3 × 30k modulo contention.
        assert!(map.true_rate_total > 60_000.0, "{}", map.true_rate_total);
        // Throughput keeps up with the producer.
        assert!(
            m.meets_rate(0.1),
            "throughput {} rate {}",
            m.throughput,
            m.producer_rate
        );
    }

    #[test]
    fn observed_below_true_when_idle() {
        let mut fc = cluster(5_000.0);
        fc.submit(&[1, 1, 1]).unwrap();
        fc.run_for(60.0).unwrap();
        let m = fc.metrics_over(30.0).unwrap();
        let map = m.operator("Map").unwrap();
        assert!(map.observed_rate_total < map.true_rate_total / 2.0);
    }

    #[test]
    fn rescale_down_uses_current_subtasks_only() {
        let mut fc = cluster(20_000.0);
        fc.submit(&[1, 4, 1]).unwrap();
        fc.run_for(60.0).unwrap();
        fc.rescale(&[1, 1, 1]).unwrap();
        fc.run_for(60.0).unwrap();
        let m = fc.metrics_over(20.0).unwrap();
        let map = m.operator("Map").unwrap();
        assert_eq!(map.parallelism, 1);
        // Total must reflect 1 instance, not the old 4.
        assert!(map.true_rate_total < 40_000.0, "{}", map.true_rate_total);
    }
}

//! The control-plane abstraction scaling policies are written against.

use crate::client::{FlinkCluster, JobStatus};
use crate::metrics_view::JobMetrics;
use autrascale_metricsdb::{DataPoint, Query};
use autrascale_streamsim::metrics;

/// What a scaling policy (AuTraScale, DS2, DRS, …) needs from the cluster:
/// deploy configurations, let time pass, read aggregated metrics.
///
/// [`FlinkCluster`] implements this over the simulator; a production
/// implementation would speak Flink's REST API. Policies written against
/// this trait are substrate-agnostic.
pub trait JobControl {
    /// Number of operators in the job (arity of parallelism vectors).
    fn num_operators(&self) -> usize;

    /// Per-operator parallelism ceiling.
    fn max_parallelism(&self) -> u32;

    /// Deploys a parallelism vector — initial submission if the job is
    /// not running, stop-with-savepoint + restart otherwise.
    fn deploy(&mut self, parallelism: &[u32]) -> Result<(), String>;

    /// Lets `secs` of (simulation) time pass. Errors (stringified, like
    /// [`JobControl::deploy`]) on a non-finite or negative duration.
    fn advance(&mut self, secs: f64) -> Result<(), String>;

    /// Aggregated metrics over the trailing `window_secs`.
    fn metrics(&self, window_secs: f64) -> Option<JobMetrics>;

    /// Currently deployed parallelism vector (empty before submission).
    fn current_parallelism(&self) -> Vec<u32>;

    /// Current time, seconds.
    fn now(&self) -> f64;

    /// Raw points of the producer-rate series over the trailing
    /// `window_secs`, oldest first. Default: empty — control planes
    /// without a raw-series backend simply never trigger proactive
    /// forecasting.
    fn rate_history(&self, window_secs: f64) -> Vec<DataPoint> {
        let _ = window_secs;
        Vec::new()
    }
}

impl JobControl for FlinkCluster {
    fn num_operators(&self) -> usize {
        self.simulation().job().len()
    }

    fn max_parallelism(&self) -> u32 {
        self.simulation().cluster().max_parallelism
    }

    fn deploy(&mut self, parallelism: &[u32]) -> Result<(), String> {
        let result = if self.status() == JobStatus::Created {
            self.submit(parallelism)
        } else {
            self.rescale(parallelism)
        };
        result.map_err(|e| e.to_string())
    }

    fn advance(&mut self, secs: f64) -> Result<(), String> {
        self.run_for(secs).map_err(|e| e.to_string())
    }

    fn metrics(&self, window_secs: f64) -> Option<JobMetrics> {
        self.metrics_over(window_secs)
    }

    fn current_parallelism(&self) -> Vec<u32> {
        self.parallelism().to_vec()
    }

    fn now(&self) -> f64 {
        FlinkCluster::now(self)
    }

    fn rate_history(&self, window_secs: f64) -> Vec<DataPoint> {
        let to = FlinkCluster::now(self);
        let from = (to - window_secs).max(0.0);
        // Bounds are finite by construction, so select cannot fail.
        self.simulation()
            .store()
            .select(&Query::new(metrics::PRODUCER_RATE, from, to))
            .unwrap_or_default()
            .into_iter()
            .flat_map(|(_, points)| points)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autrascale_streamsim::{
        ClusterSpec, JobGraph, OperatorSpec, RateProfile, Simulation, SimulationConfig,
    };

    fn control() -> FlinkCluster {
        let job = JobGraph::linear(vec![
            OperatorSpec::source("Source", 20_000.0),
            OperatorSpec::sink("Sink", 20_000.0),
        ])
        .unwrap();
        let config = SimulationConfig {
            cluster: ClusterSpec::paper_cluster(),
            job,
            profile: RateProfile::constant(5_000.0),
            seed: 1,
            ..Default::default()
        };
        FlinkCluster::new(Simulation::new(config).unwrap())
    }

    #[test]
    fn deploy_submits_then_rescales() {
        let mut fc = control();
        assert_eq!(fc.num_operators(), 2);
        assert_eq!(fc.max_parallelism(), 50);
        JobControl::deploy(&mut fc, &[1, 1]).unwrap();
        assert_eq!(fc.status(), JobStatus::Running);
        JobControl::deploy(&mut fc, &[2, 2]).unwrap();
        assert_eq!(fc.status(), JobStatus::Restarting);
        assert_eq!(fc.current_parallelism(), vec![2, 2]);
    }

    #[test]
    fn deploy_error_is_stringified() {
        let mut fc = control();
        let err = JobControl::deploy(&mut fc, &[1]).unwrap_err();
        assert!(err.contains("arity"), "{err}");
    }

    #[test]
    fn advance_and_metrics_flow() {
        let mut fc = control();
        JobControl::deploy(&mut fc, &[1, 1]).unwrap();
        fc.advance(30.0).unwrap();
        assert!((JobControl::now(&fc) - 30.0).abs() < 0.2);
        assert!(fc.metrics(10.0).is_some());
    }

    #[test]
    fn rate_history_returns_producer_rate_points_oldest_first() {
        let mut fc = control();
        JobControl::deploy(&mut fc, &[1, 1]).unwrap();
        fc.advance(60.0).unwrap();
        let points = fc.rate_history(30.0);
        assert!(!points.is_empty());
        assert!(points.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(points.iter().all(|p| p.value.is_finite() && p.value > 0.0));
        // The window bound holds: nothing older than now − 30 s.
        let now = JobControl::now(&fc);
        assert!(points.iter().all(|p| p.time >= now - 30.0 - 1e-9));
    }

    #[test]
    fn advance_surfaces_bad_durations_as_errors() {
        // Regression for the R1 lint fix: advance() used to panic through
        // run_for's expect() on bad durations.
        let mut fc = control();
        JobControl::deploy(&mut fc, &[1, 1]).unwrap();
        assert!(fc.advance(-5.0).is_err());
        assert!(fc.advance(f64::NAN).is_err());
        fc.advance(1.0).unwrap();
    }
}

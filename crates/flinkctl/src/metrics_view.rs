//! Aggregated metric views — what the Metric Aggregator hands to the
//! Scaling Manager.

use serde::{Deserialize, Serialize};

/// Windowed aggregate metrics for one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorMetrics {
    /// Operator name.
    pub name: String,
    /// Parallelism at the end of the window.
    pub parallelism: u32,
    /// Mean per-instance true processing rate `v̄_i` (paper Eq. 2).
    pub true_rate_avg: f64,
    /// Total true processing rate `v*_i = Σ instances` — the Metric
    /// Aggregator's "total processing rate of all instances" (§IV).
    pub true_rate_total: f64,
    /// Mean per-instance observed processing rate (includes idle/blocked
    /// time — the metric DRS-observed runs on).
    pub observed_rate_avg: f64,
    /// Total observed processing rate.
    pub observed_rate_total: f64,
    /// Total input rate `λ*_i` (records/s arriving from upstream).
    pub input_rate: f64,
    /// Total output rate `o*_i`.
    pub output_rate: f64,
}

/// Windowed aggregate metrics for the whole job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Window `[from, to]` in simulation seconds.
    pub window: (f64, f64),
    /// External producer rate v₀ (records/s written to Kafka).
    pub producer_rate: f64,
    /// Records/s the sources pulled from Kafka — the job throughput the
    /// paper plots against the input rate.
    pub throughput: f64,
    /// Records/s completed at the sinks.
    pub sink_rate: f64,
    /// Kafka consumer lag at the end of the window, records.
    pub kafka_lag: f64,
    /// Lag change across the window (end − start), records. Positive
    /// values mean the job is falling behind even if throughput looks
    /// close to the input rate.
    pub kafka_lag_delta: f64,
    /// Mean in-job processing latency over the window, ms.
    pub processing_latency_ms: f64,
    /// Mean event-time latency over the window, ms (`None` while the job
    /// is stalled with unbounded pending time).
    pub event_time_latency_ms: Option<f64>,
    /// Per-operator aggregates in topological order.
    pub operators: Vec<OperatorMetrics>,
    /// DAG edges as `(from, to)` indices into `operators` — policies use
    /// them to propagate target rates through branching topologies.
    pub edges: Vec<(usize, usize)>,
}

impl JobMetrics {
    /// Looks up an operator's aggregates by name.
    pub fn operator(&self, name: &str) -> Option<&OperatorMetrics> {
        self.operators.iter().find(|o| o.name == name)
    }

    /// Indices of operator `i`'s predecessors. Empty for sources. When the
    /// edge list is missing (hand-built metrics), operator `i − 1` is
    /// assumed (linear chain).
    pub fn predecessors(&self, i: usize) -> Vec<usize> {
        if self.edges.is_empty() {
            if i == 0 {
                Vec::new()
            } else {
                vec![i - 1]
            }
        } else {
            self.edges
                .iter()
                .filter(|(_, t)| *t == i)
                .map(|(f, _)| *f)
                .collect()
        }
    }

    /// The current parallelism vector in topological order.
    pub fn parallelism(&self) -> Vec<u32> {
        self.operators.iter().map(|o| o.parallelism).collect()
    }

    /// `true` when throughput keeps up with the producer within
    /// `tolerance` (relative).
    pub fn meets_rate(&self, tolerance: f64) -> bool {
        if self.producer_rate <= 0.0 {
            return true;
        }
        self.throughput >= self.producer_rate * (1.0 - tolerance)
    }

    /// The full "throughput caught up" criterion: rate within tolerance
    /// AND the Kafka lag is not growing (shrinking, or below one second's
    /// worth of data). A configuration whose capacity sits between
    /// `(1 − tolerance)·v₀` and `v₀` passes the naive rate check while
    /// its backlog quietly diverges — this catches that.
    pub fn keeping_up(&self, tolerance: f64) -> bool {
        if !self.meets_rate(tolerance) {
            return false;
        }
        let window_len = (self.window.1 - self.window.0).max(1.0);

        self.kafka_lag <= self.producer_rate.max(1.0)
            || self.kafka_lag_delta <= 0.01 * self.producer_rate * window_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> JobMetrics {
        JobMetrics {
            window: (0.0, 10.0),
            producer_rate: 1000.0,
            throughput: 990.0,
            sink_rate: 990.0,
            kafka_lag: 10.0,
            kafka_lag_delta: -1.0,
            processing_latency_ms: 50.0,
            event_time_latency_ms: Some(60.0),
            operators: vec![OperatorMetrics {
                name: "Map".into(),
                parallelism: 3,
                true_rate_avg: 400.0,
                true_rate_total: 1200.0,
                observed_rate_avg: 330.0,
                observed_rate_total: 990.0,
                input_rate: 990.0,
                output_rate: 990.0,
            }],
            edges: Vec::new(),
        }
    }

    #[test]
    fn operator_lookup() {
        let m = metrics();
        assert!(m.operator("Map").is_some());
        assert!(m.operator("Nope").is_none());
        assert_eq!(m.parallelism(), vec![3]);
    }

    #[test]
    fn meets_rate_with_tolerance() {
        let m = metrics();
        assert!(m.meets_rate(0.05));
        assert!(!m.meets_rate(0.001));
        let mut idle = metrics();
        idle.producer_rate = 0.0;
        assert!(idle.meets_rate(0.0));
    }
}

//! A typed job-control facade over the cluster simulator — the stand-in
//! for Flink's REST API plus the paper's Metric Aggregator (§IV).
//!
//! The paper's controller talks to the cluster through exactly three
//! surfaces, all modeled here:
//!
//! 1. **job control** — submit, stop-with-savepoint, restart with a new
//!    parallelism vector ([`FlinkCluster::rescale`]);
//! 2. **job status** — running / restarting ([`FlinkCluster::status`]);
//! 3. **aggregated metrics** — windowed per-operator true/observed rates,
//!    input/output rates, throughput, latency and Kafka lag
//!    ([`FlinkCluster::metrics_over`]), which is what the Metric
//!    Aggregator computes from the raw time-series before handing it to
//!    the Scaling Manager.
//!
//! The repro note for this paper says "REST control possible" — this crate
//! is that control plane, minus HTTP: every method corresponds 1:1 to a
//! REST endpoint the real implementation would call.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod client;
mod control;
mod metrics_view;

pub use client::{FlinkCluster, JobStatus};
pub use control::JobControl;
pub use metrics_view::{JobMetrics, OperatorMetrics};

//! Exact Gaussian-process regression.
//!
//! Training follows the standard Rasmussen & Williams Algorithm 2.1:
//! factorize `K + σ_n² I` once with a jitter-robust Cholesky, precompute
//! `α = (K + σ_n² I)⁻¹ y`, then each prediction costs one kernel row and two
//! dot products. Targets are optionally normalized to zero mean / unit
//! variance so kernel hyperparameter priors stay scale-free — the benefit
//! scores AuTraScale trains on live in [0, 1], while residual models
//! (Algorithm 2) can be centered anywhere.

use crate::gram::{PairwiseSqDists, SqDistRow};
use crate::kernel::Kernel;
use autrascale_linalg::{Cholesky, CholeskyError};
use std::fmt;

/// Configuration of a [`GaussianProcess`].
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// The covariance kernel.
    pub kernel: Kernel,
    /// Observation noise variance `σ_n²` added to the Gram diagonal.
    pub noise_variance: f64,
    /// Normalize targets to zero mean / unit variance before training.
    pub normalize_y: bool,
}

impl GpConfig {
    /// The paper's default surrogate: Matérn 5/2, small noise, normalized
    /// targets.
    pub fn paper_default(dim_hint: f64) -> Self {
        Self {
            kernel: Kernel::isotropic(crate::kernel::KernelKind::Matern52, dim_hint.max(1e-3), 1.0),
            noise_variance: 1e-4,
            normalize_y: true,
        }
    }
}

/// Errors produced when fitting a GP.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// No training samples were supplied.
    EmptyTrainingSet,
    /// `x` and `y` lengths differ.
    LengthMismatch { x: usize, y: usize },
    /// Training inputs have inconsistent dimensionality.
    RaggedInputs,
    /// A target value was NaN or infinite.
    NonFiniteTarget,
    /// A sparse-surrogate routine was asked for an empty subset
    /// (`m = 0` inducing/subset points).
    EmptySubset,
    /// The Gram matrix could not be factorized even with maximum jitter.
    SingularKernelMatrix(CholeskyError),
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::EmptyTrainingSet => write!(f, "empty training set"),
            GpError::LengthMismatch { x, y } => {
                write!(f, "got {x} inputs but {y} targets")
            }
            GpError::RaggedInputs => write!(f, "training inputs have inconsistent dimensions"),
            GpError::NonFiniteTarget => write!(f, "training target is NaN or infinite"),
            GpError::EmptySubset => {
                write!(f, "sparse selection needs at least one subset point")
            }
            GpError::SingularKernelMatrix(e) => write!(f, "kernel matrix not factorizable: {e}"),
        }
    }
}

impl std::error::Error for GpError {}

/// Posterior mean and standard deviation at a query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean `μ(x)` in the original target scale.
    pub mean: f64,
    /// Posterior standard deviation `σ(x)` in the original target scale
    /// (clamped at zero).
    pub std: f64,
}

/// Reusable buffers for repeated prediction without per-query allocation.
///
/// Candidate scoring in `autrascale-bayesopt` calls the GP thousands of
/// times per `suggest`; routing those calls through
/// [`GaussianProcess::predict_with`] with one scratch per worker keeps the
/// hot loop allocation-free. A default-constructed scratch works for any
/// GP — buffers are grown on first use.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    /// Cross-covariance vector `k* = k(X, x)` (inducing-point
    /// cross-covariance for the sparse surrogate).
    pub(crate) k_star: Vec<f64>,
    /// Whitened cross-covariance `v = L⁻¹ k*`.
    pub(crate) v: Vec<f64>,
}

/// The surrogate interface the Bayesian-optimization loop scores
/// acquisition functions against: a posterior predictive and the incumbent.
///
/// Implemented by the exact [`GaussianProcess`] and the FITC
/// inducing-point approximation ([`crate::FitcSurrogate`]), so candidate
/// scoring is written once and switches engines past the sparsification
/// threshold without touching the acquisition code.
pub trait Surrogate {
    /// Posterior mean/std at `query`, using caller-owned scratch buffers
    /// so hot scoring loops stay allocation-free.
    fn predict_with(&self, query: &[f64], scratch: &mut PredictScratch) -> Prediction;

    /// The best (maximum) raw target value observed in training.
    fn best_observed(&self) -> f64;

    /// Allocating convenience wrapper around
    /// [`predict_with`](Surrogate::predict_with).
    fn predict(&self, query: &[f64]) -> Prediction {
        self.predict_with(query, &mut PredictScratch::default())
    }
}

impl Surrogate for GaussianProcess {
    fn predict_with(&self, query: &[f64], scratch: &mut PredictScratch) -> Prediction {
        GaussianProcess::predict_with(self, query, scratch)
    }

    fn best_observed(&self) -> f64 {
        GaussianProcess::best_observed(self)
    }
}

/// A trained exact Gaussian-process regressor.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    config: GpConfig,
    x: Vec<Vec<f64>>,
    /// Normalized targets actually used in the linear algebra.
    y_norm: Vec<f64>,
    /// Original-scale targets, kept for callers (e.g. incumbents in BO).
    y_raw: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    /// Pairwise squared distances of `x`, kept so the model can be
    /// extended one observation at a time without an O(n²·d) recompute.
    dists: PairwiseSqDists,
    chol: Cholesky,
    alpha: Vec<f64>,
    log_marginal_likelihood: f64,
}

impl GaussianProcess {
    /// Trains a GP on `(x, y)` with the given configuration.
    pub fn fit(x: Vec<Vec<f64>>, y: Vec<f64>, config: GpConfig) -> Result<Self, GpError> {
        Self::fit_impl(x, y, config, None)
    }

    /// Like [`fit`](Self::fit) but reusing a precomputed distance cache,
    /// skipping the O(n²·d) distance pass. Bit-identical to `fit`.
    ///
    /// # Panics
    ///
    /// Panics if `dists` was not built from exactly `x` (length mismatch)
    /// or lacks per-dimension matrices while `config.kernel` is ARD.
    pub fn fit_with_dists(
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        config: GpConfig,
        dists: PairwiseSqDists,
    ) -> Result<Self, GpError> {
        Self::fit_impl(x, y, config, Some(dists))
    }

    fn fit_impl(
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        config: GpConfig,
        dists: Option<PairwiseSqDists>,
    ) -> Result<Self, GpError> {
        if x.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        if x.len() != y.len() {
            return Err(GpError::LengthMismatch {
                x: x.len(),
                y: y.len(),
            });
        }
        let dim = x[0].len();
        if x.iter().any(|xi| xi.len() != dim) {
            return Err(GpError::RaggedInputs);
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFiniteTarget);
        }

        let (y_mean, y_std) = if config.normalize_y {
            let m = autrascale_linalg::mean(&y);
            let s = autrascale_linalg::variance(&y).sqrt();
            // Constant targets: keep scale 1 so predictions return the mean.
            (m, if s > 1e-12 { s } else { 1.0 })
        } else {
            (0.0, 1.0)
        };
        let y_norm: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let n = x.len();
        let ard = config.kernel.lengthscales().len() > 1;
        let dists = match dists {
            Some(d) => {
                assert_eq!(d.len(), n, "fit_with_dists: cache length mismatch");
                assert!(
                    !ard || d.has_per_dim(),
                    "fit_with_dists: ARD kernel needs a per-dimension cache"
                );
                d
            }
            None => PairwiseSqDists::new(&x, ard),
        };
        // Bit-identical to evaluating `kernel.eval` entry-wise and adding
        // the noise diagonal (the invariant `gram` documents and tests).
        let gram = dists.gram(&config.kernel, config.noise_variance.max(0.0));
        let chol = Cholesky::decompose(&gram).map_err(GpError::SingularKernelMatrix)?;
        let alpha = chol.solve(&y_norm);

        // log p(y|X) = -½ yᵀα - ½ log|K| - n/2 log 2π  (normalized scale).
        let data_fit: f64 = y_norm.iter().zip(&alpha).map(|(a, b)| a * b).sum();
        let lml = -0.5 * data_fit
            - 0.5 * chol.log_determinant()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(Self {
            config,
            x,
            y_norm,
            y_raw: y,
            y_mean,
            y_std,
            dists,
            chol,
            alpha,
            log_marginal_likelihood: lml,
        })
    }

    /// Appends one observation in O(n²) with hyperparameters held fixed:
    /// the cached distances gain a row, the Cholesky factor is extended by
    /// [`Cholesky::rank1_append`], and the normalization, `α` and log
    /// marginal likelihood are recomputed with exactly the arithmetic
    /// [`fit`](Self::fit) uses — so a successful extension is
    /// bit-identical to refitting from scratch on the extended training
    /// set with the same configuration.
    ///
    /// # Errors
    ///
    /// `self` is left unchanged on every error:
    ///
    /// * [`GpError::RaggedInputs`] — `x_new` has the wrong dimensionality;
    /// * [`GpError::NonFiniteTarget`] — `y_new` is NaN or infinite;
    /// * [`GpError::SingularKernelMatrix`] — the bordered Gram matrix
    ///   needs more jitter than the current factor carries (typically
    ///   `x_new` duplicates a training input at low noise). Recover by
    ///   refitting from scratch via `fit`, whose jitter escalation runs
    ///   the full ladder.
    pub fn extend_observation(&mut self, x_new: Vec<f64>, y_new: f64) -> Result<(), GpError> {
        if x_new.len() != self.x[0].len() {
            return Err(GpError::RaggedInputs);
        }
        if !y_new.is_finite() {
            return Err(GpError::NonFiniteTarget);
        }

        let row = SqDistRow::new(&self.x, &x_new, self.dists.has_per_dim());
        let col = row.kernel_column(&self.config.kernel);
        let diag = self.config.kernel.signal_variance() + self.config.noise_variance.max(0.0);
        let chol = self
            .chol
            .rank1_append(&col, diag)
            .map_err(GpError::SingularKernelMatrix)?;

        // Factor extended — commit the new point.
        self.dists.push_row(&row);
        self.x.push(x_new);
        self.y_raw.push(y_new);
        let (y_mean, y_std) = if self.config.normalize_y {
            let m = autrascale_linalg::mean(&self.y_raw);
            let s = autrascale_linalg::variance(&self.y_raw).sqrt();
            (m, if s > 1e-12 { s } else { 1.0 })
        } else {
            (0.0, 1.0)
        };
        self.y_mean = y_mean;
        self.y_std = y_std;
        self.y_norm = self.y_raw.iter().map(|v| (v - y_mean) / y_std).collect();
        self.alpha = chol.solve(&self.y_norm);
        let data_fit: f64 = self
            .y_norm
            .iter()
            .zip(&self.alpha)
            .map(|(a, b)| a * b)
            .sum();
        self.log_marginal_likelihood = -0.5 * data_fit
            - 0.5 * chol.log_determinant()
            - 0.5 * self.x.len() as f64 * (2.0 * std::f64::consts::PI).ln();
        self.chol = chol;
        Ok(())
    }

    /// Posterior prediction at a query point.
    ///
    /// # Panics
    ///
    /// Panics if `query` has a different dimensionality than the training
    /// inputs.
    pub fn predict(&self, query: &[f64]) -> Prediction {
        self.predict_with(query, &mut PredictScratch::default())
    }

    /// [`Self::predict`] reusing caller-owned buffers: zero allocations
    /// once `scratch` has been warmed by a first call against this GP.
    ///
    /// Produces bit-identical results to `predict` — it *is* the
    /// implementation behind it.
    ///
    /// # Panics
    ///
    /// Panics if `query` has a different dimensionality than the training
    /// inputs.
    pub fn predict_with(&self, query: &[f64], scratch: &mut PredictScratch) -> Prediction {
        assert_eq!(
            query.len(),
            self.x[0].len(),
            "query dimensionality differs from training inputs"
        );
        scratch.k_star.clear();
        scratch
            .k_star
            .extend(self.x.iter().map(|xi| self.config.kernel.eval(xi, query)));
        let mean_norm: f64 = scratch
            .k_star
            .iter()
            .zip(&self.alpha)
            .map(|(a, b)| a * b)
            .sum();

        // var = k(x,x) - vᵀv with v = L⁻¹ k*.
        self.chol.solve_lower_into(&scratch.k_star, &mut scratch.v);
        let prior_var = self.config.kernel.eval(query, query);
        let var_norm = (prior_var - scratch.v.iter().map(|vi| vi * vi).sum::<f64>()).max(0.0);

        Prediction {
            mean: mean_norm * self.y_std + self.y_mean,
            std: var_norm.sqrt() * self.y_std,
        }
    }

    /// Posterior predictions at many query points, sharing one scratch
    /// allocation across the batch. Equivalent to (and bit-identical with)
    /// calling [`Self::predict`] per query.
    ///
    /// # Panics
    ///
    /// Panics if any query has a different dimensionality than the
    /// training inputs.
    pub fn predict_batch(&self, queries: &[Vec<f64>]) -> Vec<Prediction> {
        let mut scratch = PredictScratch::default();
        queries
            .iter()
            .map(|q| self.predict_with(q, &mut scratch))
            .collect()
    }

    /// Log marginal likelihood of the (normalized) training targets.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal_likelihood
    }

    /// The training inputs.
    pub fn train_x(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// The training targets in their original scale.
    pub fn train_y(&self) -> &[f64] {
        &self.y_raw
    }

    /// Best (maximum) observed target, used as the EI incumbent `f(x⁺)`.
    pub fn best_observed(&self) -> f64 {
        self.y_raw.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// The configuration this GP was trained with.
    pub fn config(&self) -> &GpConfig {
        &self.config
    }

    /// Number of training samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when there are no training samples (never true for a
    /// successfully fitted GP; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Normalized training targets (test/diagnostic use).
    pub fn normalized_y(&self) -> &[f64] {
        &self.y_norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, KernelKind};

    fn config() -> GpConfig {
        GpConfig {
            kernel: Kernel::isotropic(KernelKind::Matern52, 1.0, 1.0),
            noise_variance: 1e-8,
            normalize_y: true,
        }
    }

    #[test]
    fn interpolates_training_points_with_low_noise() {
        let x: Vec<Vec<f64>> = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0.0, 1.0, 4.0, 9.0];
        let gp = GaussianProcess::fit(x.clone(), y.clone(), config()).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let p = gp.predict(xi);
            assert!((p.mean - yi).abs() < 1e-3, "at {xi:?}: {} vs {yi}", p.mean);
            assert!(
                p.std < 0.05,
                "training-point std should be tiny, got {}",
                p.std
            );
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 1.0];
        let gp = GaussianProcess::fit(x, y, config()).unwrap();
        let near = gp.predict(&[0.5]).std;
        let far = gp.predict(&[10.0]).std;
        assert!(far > near, "{far} !> {near}");
    }

    #[test]
    fn reverts_to_mean_far_from_data() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![2.0, 4.0];
        let gp = GaussianProcess::fit(x, y, config()).unwrap();
        let p = gp.predict(&[100.0]);
        assert!(
            (p.mean - 3.0).abs() < 1e-6,
            "should revert to mean 3, got {}",
            p.mean
        );
    }

    #[test]
    fn constant_targets_predict_constant() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![5.0, 5.0, 5.0];
        let gp = GaussianProcess::fit(x, y, config()).unwrap();
        assert!((gp.predict(&[0.7]).mean - 5.0).abs() < 1e-9);
    }

    #[test]
    fn input_validation() {
        assert!(matches!(
            GaussianProcess::fit(vec![], vec![], config()),
            Err(GpError::EmptyTrainingSet)
        ));
        assert!(matches!(
            GaussianProcess::fit(vec![vec![0.0]], vec![1.0, 2.0], config()),
            Err(GpError::LengthMismatch { x: 1, y: 2 })
        ));
        assert!(matches!(
            GaussianProcess::fit(vec![vec![0.0], vec![0.0, 1.0]], vec![1.0, 2.0], config()),
            Err(GpError::RaggedInputs)
        ));
        assert!(matches!(
            GaussianProcess::fit(vec![vec![0.0]], vec![f64::NAN], config()),
            Err(GpError::NonFiniteTarget)
        ));
    }

    #[test]
    fn duplicate_inputs_survive_via_jitter() {
        let x = vec![vec![1.0], vec![1.0], vec![2.0]];
        let y = vec![3.0, 3.1, 5.0];
        let gp = GaussianProcess::fit(x, y, config()).unwrap();
        let p = gp.predict(&[1.0]);
        assert!((p.mean - 3.05).abs() < 0.2);
    }

    #[test]
    fn best_observed_is_max() {
        let gp = GaussianProcess::fit(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![0.3, 0.9, 0.1],
            config(),
        )
        .unwrap();
        assert_eq!(gp.best_observed(), 0.9);
    }

    #[test]
    fn higher_noise_means_smoother_fit() {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        // Alternating targets — pure noise.
        let y: Vec<f64> = (0..8)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mut noisy_cfg = config();
        noisy_cfg.noise_variance = 10.0;
        let smooth = GaussianProcess::fit(x.clone(), y.clone(), noisy_cfg).unwrap();
        let exact = GaussianProcess::fit(x, y, config()).unwrap();
        // The high-noise fit should stay near the mean (0) at a training point.
        assert!(smooth.predict(&[0.0]).mean.abs() < exact.predict(&[0.0]).mean.abs());
    }

    #[test]
    fn lml_prefers_correct_lengthscale_for_smooth_function() {
        let x: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 * 0.5]).collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0] * 0.8).sin()).collect();
        let fit_with = |ls: f64| {
            let cfg = GpConfig {
                kernel: Kernel::isotropic(KernelKind::Matern52, ls, 1.0),
                noise_variance: 1e-6,
                normalize_y: true,
            };
            GaussianProcess::fit(x.clone(), y.clone(), cfg)
                .unwrap()
                .log_marginal_likelihood()
        };
        // A sane lengthscale should beat a wildly-too-small one.
        assert!(fit_with(1.5) > fit_with(0.01));
    }

    #[test]
    fn predict_batch_matches_scalar_predict_bitwise() {
        let x: Vec<Vec<f64>> = (0..15)
            .map(|i| vec![i as f64 * 0.4, (i % 4) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0] * 0.9).sin() + 0.1 * v[1]).collect();
        let gp = GaussianProcess::fit(x, y, GpConfig::paper_default(1.0)).unwrap();
        let queries: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 * 0.17, (i % 5) as f64 * 0.5])
            .collect();
        let batch = gp.predict_batch(&queries);
        let mut scratch = PredictScratch::default();
        for (q, b) in queries.iter().zip(&batch) {
            let p = gp.predict(q);
            assert_eq!(p.mean.to_bits(), b.mean.to_bits());
            assert_eq!(p.std.to_bits(), b.std.to_bits());
            let pw = gp.predict_with(q, &mut scratch);
            assert_eq!(pw.mean.to_bits(), b.mean.to_bits());
            assert_eq!(pw.std.to_bits(), b.std.to_bits());
        }
    }

    /// Asserts two GPs are bitwise-identical observables: LML plus
    /// mean/std at a probe grid.
    fn assert_models_identical(a: &GaussianProcess, b: &GaussianProcess, probes: &[Vec<f64>]) {
        assert_eq!(
            a.log_marginal_likelihood().to_bits(),
            b.log_marginal_likelihood().to_bits(),
            "lml {} vs {}",
            a.log_marginal_likelihood(),
            b.log_marginal_likelihood()
        );
        for q in probes {
            let pa = a.predict(q);
            let pb = b.predict(q);
            assert_eq!(pa.mean.to_bits(), pb.mean.to_bits(), "mean at {q:?}");
            assert_eq!(pa.std.to_bits(), pb.std.to_bits(), "std at {q:?}");
        }
    }

    #[test]
    fn extend_observation_matches_full_refit_bitwise() {
        let mut x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.7]).collect();
        let mut y: Vec<f64> = x.iter().map(|v| (v[0] * 0.5).sin()).collect();
        let mut gp = GaussianProcess::fit(x.clone(), y.clone(), config()).unwrap();
        let probes: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.41 - 1.0]).collect();
        // Grow one point at a time; every intermediate model must equal a
        // from-scratch fit bit for bit.
        for step in 0..5 {
            let x_new = vec![7.3 + step as f64 * 0.9];
            let y_new = (x_new[0] * 0.5).sin() + 0.01 * step as f64;
            gp.extend_observation(x_new.clone(), y_new).unwrap();
            x.push(x_new);
            y.push(y_new);
            let scratch = GaussianProcess::fit(x.clone(), y.clone(), config()).unwrap();
            assert_eq!(gp.len(), scratch.len());
            assert_models_identical(&gp, &scratch, &probes);
        }
    }

    #[test]
    fn extend_observation_matches_full_refit_ard_and_unnormalized() {
        let mut x: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![i as f64 * 0.5, (i % 3) as f64])
            .collect();
        let mut y: Vec<f64> = x.iter().map(|v| v[0].cos() + 0.3 * v[1]).collect();
        let cfg = GpConfig {
            kernel: Kernel::ard(KernelKind::Rbf, vec![1.1, 2.3], 1.4),
            noise_variance: 1e-5,
            normalize_y: false,
        };
        let mut gp = GaussianProcess::fit(x.clone(), y.clone(), cfg.clone()).unwrap();
        let probes = vec![vec![0.3, 0.5], vec![2.7, 1.9], vec![5.0, 0.0]];
        for step in 0..3 {
            let x_new = vec![4.1 + step as f64, 1.5];
            let y_new = x_new[0].cos() + 0.3 * x_new[1];
            gp.extend_observation(x_new.clone(), y_new).unwrap();
            x.push(x_new);
            y.push(y_new);
            let scratch = GaussianProcess::fit(x.clone(), y.clone(), cfg.clone()).unwrap();
            assert_models_identical(&gp, &scratch, &probes);
        }
    }

    #[test]
    fn extend_observation_on_jittered_factor_matches_full_refit() {
        // Duplicate inputs in the original fit force jitter > 0; extending
        // that factor must carry the jitter and still agree with a
        // from-scratch refit on the extended set.
        let cfg = GpConfig {
            noise_variance: 0.0,
            ..config()
        };
        let x = vec![vec![1.0], vec![1.0], vec![3.0]];
        let y = vec![0.5, 0.5, 0.9];
        let mut gp = GaussianProcess::fit(x.clone(), y.clone(), cfg.clone()).unwrap();
        gp.extend_observation(vec![5.0], 0.2).unwrap();
        let mut x2 = x;
        x2.push(vec![5.0]);
        let mut y2 = y;
        y2.push(0.2);
        let scratch = GaussianProcess::fit(x2, y2, cfg).unwrap();
        assert_models_identical(&gp, &scratch, &[vec![0.0], vec![2.0], vec![4.5]]);
    }

    #[test]
    fn extend_observation_duplicate_input_errors_and_leaves_model_intact() {
        let cfg = GpConfig {
            noise_variance: 0.0,
            ..config()
        };
        let x = vec![vec![0.0], vec![2.0], vec![4.0]];
        let y = vec![0.1, 0.7, 0.3];
        let mut gp = GaussianProcess::fit(x, y, cfg).unwrap();
        let before_lml = gp.log_marginal_likelihood();
        let before_p = gp.predict(&[1.0]);
        // An exact duplicate of a training input with zero noise makes the
        // bordered Gram singular at the carried jitter.
        let err = gp.extend_observation(vec![2.0], 0.7).unwrap_err();
        assert!(matches!(err, GpError::SingularKernelMatrix(_)), "{err:?}");
        assert_eq!(gp.len(), 3, "failed extension must not grow the model");
        assert_eq!(gp.log_marginal_likelihood().to_bits(), before_lml.to_bits());
        let after_p = gp.predict(&[1.0]);
        assert_eq!(before_p.mean.to_bits(), after_p.mean.to_bits());
    }

    #[test]
    fn extend_observation_validates_inputs() {
        let mut gp =
            GaussianProcess::fit(vec![vec![0.0], vec![1.0]], vec![0.0, 1.0], config()).unwrap();
        assert!(matches!(
            gp.extend_observation(vec![0.5, 0.5], 1.0),
            Err(GpError::RaggedInputs)
        ));
        assert!(matches!(
            gp.extend_observation(vec![0.5], f64::NAN),
            Err(GpError::NonFiniteTarget)
        ));
        assert_eq!(gp.len(), 2);
    }

    #[test]
    fn fit_with_dists_matches_fit_bitwise() {
        let x: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![i as f64 * 0.3, (i % 4) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| v[0].sin() + 0.2 * v[1]).collect();
        let cfg = GpConfig::paper_default(1.0);
        let dists = crate::gram::PairwiseSqDists::new(&x, false);
        let a = GaussianProcess::fit(x.clone(), y.clone(), cfg.clone()).unwrap();
        let b = GaussianProcess::fit_with_dists(x, y, cfg, dists).unwrap();
        assert_models_identical(&a, &b, &[vec![0.7, 1.1], vec![2.0, 3.0]]);
    }

    #[test]
    fn predict_panics_on_dim_mismatch() {
        let gp = GaussianProcess::fit(
            vec![vec![0.0, 1.0]],
            vec![1.0],
            GpConfig::paper_default(1.0),
        )
        .unwrap();
        let result = std::panic::catch_unwind(|| gp.predict(&[0.0]));
        assert!(result.is_err());
    }
}

impl GaussianProcess {
    /// Leave-one-out cross-validation residuals, computed in closed form
    /// from the Cholesky factor (Rasmussen & Williams §5.4.2):
    /// `r_i = y_i − μ_{−i}(x_i) = α_i / [K⁻¹]_{ii}` in the normalized
    /// scale, returned in the original target scale.
    ///
    /// The model library uses the RMS of these residuals as the model's
    /// accuracy estimate — the paper's §IV observation that "the accuracy
    /// of the model will gradually increase as the training data
    /// increases" made measurable.
    pub fn loo_residuals(&self) -> Vec<f64> {
        // [K⁻¹]_{ii} for all i in one O(n³/6) pass over L⁻¹ — replaces the
        // former O(n³) per-index unit-vector solves.
        let kinv_diag = self.chol.inverse_diagonal();
        self.alpha
            .iter()
            .zip(&kinv_diag)
            .map(|(alpha_i, kinv_ii)| alpha_i / kinv_ii.max(1e-300) * self.y_std)
            .collect()
    }

    /// Root-mean-square leave-one-out error in the original target scale.
    pub fn loo_rmse(&self) -> f64 {
        let r = self.loo_residuals();
        (r.iter().map(|v| v * v).sum::<f64>() / r.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod loo_tests {
    use super::*;
    use crate::kernel::{Kernel, KernelKind};

    fn fit(n: usize) -> GaussianProcess {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 8.0 / n as f64]).collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0] * 0.7).sin()).collect();
        GaussianProcess::fit(
            x,
            y,
            GpConfig {
                kernel: Kernel::isotropic(KernelKind::Matern52, 1.5, 1.0),
                noise_variance: 1e-4,
                normalize_y: true,
            },
        )
        .unwrap()
    }

    #[test]
    fn loo_matches_explicit_refit() {
        // Closed-form LOO must agree with actually refitting without the
        // held-out point.
        let n = 8;
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0] * 0.5).cos() * 2.0).collect();
        let cfg = GpConfig {
            kernel: Kernel::isotropic(KernelKind::Matern52, 1.5, 1.0),
            noise_variance: 1e-3,
            normalize_y: false, // keep scales identical for the comparison
        };
        let full = GaussianProcess::fit(x.clone(), y.clone(), cfg.clone()).unwrap();
        let residuals = full.loo_residuals();
        for held_out in [0usize, 3, 7] {
            let mut x_rest = x.clone();
            let mut y_rest = y.clone();
            x_rest.remove(held_out);
            y_rest.remove(held_out);
            let refit = GaussianProcess::fit(x_rest, y_rest, cfg.clone()).unwrap();
            let expected = y[held_out] - refit.predict(&x[held_out]).mean;
            assert!(
                (residuals[held_out] - expected).abs() < 1e-6,
                "point {held_out}: closed-form {} vs refit {expected}",
                residuals[held_out]
            );
        }
    }

    #[test]
    fn loo_error_shrinks_with_more_data() {
        let sparse = fit(5).loo_rmse();
        let dense = fit(25).loo_rmse();
        assert!(dense < sparse, "dense {dense} !< sparse {sparse}");
    }

    #[test]
    fn loo_rmse_is_finite_and_nonnegative() {
        let gp = fit(10);
        let rmse = gp.loo_rmse();
        assert!(rmse.is_finite());
        assert!(rmse >= 0.0);
    }
}

impl GaussianProcess {
    /// Joint posterior over several query points: means and the full
    /// posterior covariance matrix
    /// `Σ* = K(X*, X*) − K(X*, X) (K + σ_n²I)⁻¹ K(X, X*)`.
    ///
    /// This is what exact Thompson sampling needs (a function sample must
    /// be correlated across candidates); the marginal approximation in
    /// `autrascale-bayesopt` ignores the off-diagonal terms.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or has mismatched dimensionality.
    pub fn predict_joint(&self, queries: &[Vec<f64>]) -> (Vec<f64>, autrascale_linalg::Matrix) {
        assert!(!queries.is_empty(), "predict_joint: no query points");
        let dim = self.x[0].len();
        assert!(
            queries.iter().all(|q| q.len() == dim),
            "query dimensionality differs from training inputs"
        );
        let m = queries.len();

        // Cross-covariances and whitened versions v_j = L⁻¹ k*_j.
        let mut means = Vec::with_capacity(m);
        let mut whitened: Vec<Vec<f64>> = Vec::with_capacity(m);
        for q in queries {
            let k_star: Vec<f64> = self
                .x
                .iter()
                .map(|xi| self.config.kernel.eval(xi, q))
                .collect();
            let mean_norm: f64 = k_star.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
            means.push(mean_norm * self.y_std + self.y_mean);
            whitened.push(self.chol.solve_lower(&k_star));
        }

        // Σ*_{ij} = k(q_i, q_j) − v_iᵀ v_j, scaled back to target units.
        let scale = self.y_std * self.y_std;
        let cov = autrascale_linalg::Matrix::from_fn(m, m, |i, j| {
            let prior = self.config.kernel.eval(&queries[i], &queries[j]);
            let reduction: f64 = whitened[i]
                .iter()
                .zip(&whitened[j])
                .map(|(a, b)| a * b)
                .sum();
            (prior - reduction) * scale
        });
        (means, cov)
    }

    /// One exact Thompson sample: a correlated draw from the joint
    /// posterior at `queries`, using caller-supplied standard normal
    /// deviates `z` (one per query; pass seeded randomness for
    /// replayability).
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != queries.len()` (or on `predict_joint`'s
    /// conditions).
    pub fn sample_joint(&self, queries: &[Vec<f64>], z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), queries.len(), "need one deviate per query");
        let (means, cov) = self.predict_joint(queries);
        // Jitter-robust factorization of the (PSD) posterior covariance.
        let chol = Cholesky::decompose(&cov).expect("posterior covariance is PSD up to jitter");
        let l = chol.factor();
        means
            .iter()
            .enumerate()
            .map(|(i, mean)| {
                let noise: f64 = (0..=i).map(|j| l[(i, j)] * z[j]).sum();
                mean + noise
            })
            .collect()
    }
}

#[cfg(test)]
mod joint_tests {
    use super::*;
    use crate::kernel::{Kernel, KernelKind};

    fn gp() -> GaussianProcess {
        let x: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0] * 0.8).sin()).collect();
        GaussianProcess::fit(
            x,
            y,
            GpConfig {
                kernel: Kernel::isotropic(KernelKind::Matern52, 1.2, 1.0),
                noise_variance: 1e-4,
                normalize_y: true,
            },
        )
        .unwrap()
    }

    #[test]
    fn joint_diagonal_matches_marginal_variance() {
        let gp = gp();
        let queries = vec![vec![0.5], vec![2.5], vec![7.0]];
        let (means, cov) = gp.predict_joint(&queries);
        for (i, q) in queries.iter().enumerate() {
            let p = gp.predict(q);
            assert!((means[i] - p.mean).abs() < 1e-10);
            assert!(
                (cov[(i, i)].max(0.0).sqrt() - p.std).abs() < 1e-8,
                "diag {} vs marginal {}",
                cov[(i, i)].max(0.0).sqrt(),
                p.std
            );
        }
    }

    #[test]
    fn joint_covariance_is_symmetric_and_correlated_nearby() {
        let gp = gp();
        let queries = vec![vec![7.0], vec![7.1], vec![20.0]];
        let (_, cov) = gp.predict_joint(&queries);
        assert!(cov.is_symmetric(1e-9));
        // Nearby extrapolation points are strongly correlated; far apart
        // ones are nearly independent.
        let corr_near = cov[(0, 1)] / (cov[(0, 0)] * cov[(1, 1)]).sqrt();
        let corr_far = cov[(0, 2)] / (cov[(0, 0)] * cov[(2, 2)]).sqrt();
        assert!(corr_near > 0.9, "near correlation {corr_near}");
        assert!(corr_far.abs() < 0.3, "far correlation {corr_far}");
    }

    #[test]
    fn joint_sample_is_deterministic_and_smooth() {
        let gp = gp();
        let queries: Vec<Vec<f64>> = (0..20).map(|i| vec![6.0 + i as f64 * 0.1]).collect();
        let z: Vec<f64> = (0..20)
            .map(|i| ((i * 37 % 11) as f64 - 5.0) / 3.0)
            .collect();
        let a = gp.sample_joint(&queries, &z);
        let b = gp.sample_joint(&queries, &z);
        assert_eq!(a, b);
        // A correlated sample is smooth: adjacent values differ far less
        // than independent marginal draws would.
        let max_jump = a
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0, f64::max);
        let sigma = gp.predict(&queries[10]).std;
        assert!(max_jump < sigma, "jump {max_jump} vs sigma {sigma}");
    }

    #[test]
    #[should_panic(expected = "one deviate per query")]
    fn sample_joint_checks_lengths() {
        let gp = gp();
        let _ = gp.sample_joint(&[vec![0.0], vec![1.0]], &[0.1]);
    }
}

//! Derivative-free Nelder–Mead simplex minimization.
//!
//! Used to maximize the GP log marginal likelihood over log-hyperparameters
//! (lengthscales, signal variance, noise). The search space is tiny (2–4
//! dimensions) and the objective is cheap relative to a cluster
//! reconfiguration, so a robust derivative-free method beats implementing
//! kernel gradients.

/// Options for [`minimize`].
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Convergence threshold on the simplex objective spread.
    pub f_tol: f64,
    /// Initial simplex edge length relative to each coordinate.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        Self {
            max_evals: 400,
            f_tol: 1e-8,
            initial_step: 0.5,
        }
    }
}

/// Result of a [`minimize`] run.
#[derive(Debug, Clone)]
pub struct NelderMeadResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
}

/// Minimizes `f` starting from `x0` with the standard Nelder–Mead moves
/// (reflection, expansion, outside/inside contraction, shrink).
///
/// Non-finite objective values are treated as `+∞`, which lets callers
/// reject invalid hyperparameter regions by returning NaN.
pub fn minimize(
    f: impl Fn(&[f64]) -> f64,
    x0: &[f64],
    options: NelderMeadOptions,
) -> NelderMeadResult {
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    let n = x0.len();
    assert!(n > 0, "minimize: empty start point");
    let mut evals = 0usize;
    let eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    // Initial simplex: x0 plus a perturbation along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let fx0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), fx0));
    for i in 0..n {
        let mut xi = x0.to_vec();
        let step = if xi[i].abs() > 1e-12 {
            options.initial_step * xi[i].abs()
        } else {
            options.initial_step
        };
        xi[i] += step;
        let fxi = eval(&xi, &mut evals);
        simplex.push((xi, fxi));
    }

    while evals < options.max_evals {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() <= options.f_tol * (1.0 + best.abs()) {
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (x, _) in simplex.iter().take(n) {
            for (ci, xi) in centroid.iter_mut().zip(x) {
                *ci += xi / n as f64;
            }
        }

        let xw = simplex[n].0.clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&xw)
            .map(|(c, w)| c + ALPHA * (c - w))
            .collect();
        let fr = eval(&reflect, &mut evals);

        if fr < simplex[0].1 {
            // Try to expand further in the same direction.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&reflect)
                .map(|(c, r)| c + GAMMA * (r - c))
                .collect();
            let fe = eval(&expand, &mut evals);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            // Contract, from whichever side is better.
            let (toward, f_toward) = if fr < simplex[n].1 {
                (&reflect, fr)
            } else {
                (&xw, simplex[n].1)
            };
            let contract: Vec<f64> = centroid
                .iter()
                .zip(toward)
                .map(|(c, t)| c + RHO * (t - c))
                .collect();
            let fc = eval(&contract, &mut evals);
            if fc < f_toward {
                simplex[n] = (contract, fc);
            } else {
                // Shrink everything toward the best vertex.
                let x_best = simplex[0].0.clone();
                for (x, fx) in simplex.iter_mut().skip(1) {
                    for (xi, bi) in x.iter_mut().zip(&x_best) {
                        *xi = bi + SIGMA * (*xi - bi);
                    }
                    *fx = eval(x, &mut evals);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (x, fx) = simplex.swap_remove(0);
    NelderMeadResult { x, fx, evals }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let r = minimize(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 3.0).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 1e-3, "{:?}", r.x);
        assert!(r.fx < 1e-5);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let rosen = |x: &[f64]| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2);
        let r = minimize(
            rosen,
            &[-1.2, 1.0],
            NelderMeadOptions {
                max_evals: 4000,
                f_tol: 1e-12,
                initial_step: 0.5,
            },
        );
        assert!(r.fx < 1e-4, "fx = {}", r.fx);
    }

    #[test]
    fn respects_eval_budget() {
        let r = minimize(
            |x| x[0] * x[0],
            &[10.0],
            NelderMeadOptions {
                max_evals: 10,
                ..Default::default()
            },
        );
        // Budget may be exceeded only by the in-flight iteration's evals.
        assert!(r.evals <= 14, "evals = {}", r.evals);
    }

    #[test]
    fn handles_nan_regions() {
        // Objective undefined for x < 0; minimum at x = 1.
        let r = minimize(
            |x| {
                if x[0] < 0.0 {
                    f64::NAN
                } else {
                    (x[0] - 1.0).powi(2)
                }
            },
            &[4.0],
            NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn one_dimensional_works() {
        let r = minimize(
            |x| (x[0] - 0.25).abs(),
            &[5.0],
            NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 0.25).abs() < 1e-3);
    }
}

//! Distance-cached Gram matrix construction.
//!
//! All kernels in [`crate::kernel`] are stationary (see the invariant note
//! there), so the unscaled pairwise squared distances between training
//! inputs never change while hyperparameters are being searched.
//! [`PairwiseSqDists`] computes them once — the total `Σ_d Δ_d²` for
//! isotropic kernels, plus per-dimension `Δ_d²` matrices when an ARD
//! kernel needs independent rescaling — and [`PairwiseSqDists::gram`]
//! turns them into a Gram matrix for any hyperparameter setting with
//! O(n²) work instead of O(n²·d) kernel evaluations. Only the strict
//! lower triangle is evaluated (the matrix is symmetric and the diagonal
//! is `σ² + noise` exactly), which also halves the `exp` calls that
//! dominate a Matérn Gram build.

use crate::kernel::Kernel;
use autrascale_linalg::Matrix;

/// Hyperparameter-independent pairwise squared distances of a training set.
#[derive(Debug, Clone)]
pub struct PairwiseSqDists {
    n: usize,
    /// `Σ_d (x_i[d] − x_j[d])²`, flattened row-major n×n.
    total: Vec<f64>,
    /// `(x_i[d] − x_j[d])²` per dimension, each flattened n×n. Built only
    /// when requested (ARD kernels need per-dimension rescaling).
    per_dim: Option<Vec<Vec<f64>>>,
}

impl PairwiseSqDists {
    /// Precomputes pairwise squared distances for `x`.
    ///
    /// With `per_dim`, the per-dimension difference matrices required by
    /// ARD (multi-lengthscale) kernels are kept as well; isotropic-only
    /// callers should pass `false` to stay at O(n²) memory.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or ragged.
    pub fn new(x: &[Vec<f64>], per_dim: bool) -> Self {
        assert!(!x.is_empty(), "PairwiseSqDists: empty training set");
        let n = x.len();
        let dim = x[0].len();
        assert!(
            x.iter().all(|xi| xi.len() == dim),
            "PairwiseSqDists: ragged inputs"
        );

        let mut total = vec![0.0; n * n];
        let mut dims = if per_dim {
            vec![vec![0.0; n * n]; dim]
        } else {
            Vec::new()
        };
        for i in 0..n {
            for j in 0..i {
                // Accumulate dimension-ascending, matching Kernel::eval's
                // canonical order so both Gram paths agree bit for bit.
                let mut sum = 0.0;
                for (d, (a, b)) in x[i].iter().zip(&x[j]).enumerate() {
                    let delta = a - b;
                    let d2 = delta * delta;
                    sum += d2;
                    if per_dim {
                        dims[d][i * n + j] = d2;
                        dims[d][j * n + i] = d2;
                    }
                }
                total[i * n + j] = sum;
                total[j * n + i] = sum;
            }
        }
        Self {
            n,
            total,
            per_dim: per_dim.then_some(dims),
        }
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the cache holds no points (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `true` when per-dimension matrices were cached (ARD-capable).
    pub fn has_per_dim(&self) -> bool {
        self.per_dim.is_some()
    }

    /// Builds the noisy Gram matrix `K + noise·I` for `kernel` from the
    /// cached distances: O(n²) rescaling + kernel profile, no input access.
    ///
    /// The result is bit-identical to evaluating
    /// `kernel.eval(&x[i], &x[j])` entry-wise and adding `noise` to the
    /// diagonal.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is ARD (more than one lengthscale) but the cache
    /// was built without per-dimension matrices, or if the ARD
    /// dimensionality differs from the cached inputs.
    pub fn gram(&self, kernel: &Kernel, noise: f64) -> Matrix {
        let n = self.n;
        let mut out = vec![0.0; n * n];
        let n_ls = kernel.lengthscales().len();
        if n_ls == 1 {
            let inv = kernel.inv_sq_lengthscale(0);
            for i in 0..n {
                for j in 0..i {
                    let v = kernel.eval_from_sqdist(self.total[i * n + j] * inv);
                    out[i * n + j] = v;
                    out[j * n + i] = v;
                }
            }
        } else {
            let dims = self
                .per_dim
                .as_ref()
                .expect("ARD Gram build requires a per-dimension distance cache");
            assert_eq!(
                dims.len(),
                n_ls,
                "ARD lengthscale count differs from cached input dimensionality"
            );
            let inv: Vec<f64> = (0..n_ls).map(|d| kernel.inv_sq_lengthscale(d)).collect();
            for i in 0..n {
                for j in 0..i {
                    let mut r2 = 0.0;
                    for (dmat, inv_d) in dims.iter().zip(&inv) {
                        r2 += dmat[i * n + j] * inv_d;
                    }
                    let v = kernel.eval_from_sqdist(r2);
                    out[i * n + j] = v;
                    out[j * n + i] = v;
                }
            }
        }
        // k(x, x) = σ²·1 exactly for every stationary kernel here.
        let diag = kernel.signal_variance() + noise;
        for i in 0..n {
            out[i * n + i] = diag;
        }
        Matrix::from_vec(n, n, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;

    /// Deterministic pseudo-random stream (keeps the test free of external
    /// RNG dependencies).
    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self, lo: f64, hi: f64) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lo + ((self.0 >> 11) as f64 / (1u64 << 53) as f64) * (hi - lo)
        }
    }

    fn random_inputs(rng: &mut Lcg, n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| (0..dim).map(|_| rng.next_f64(-5.0, 5.0)).collect())
            .collect()
    }

    fn direct_gram(x: &[Vec<f64>], kernel: &Kernel, noise: f64) -> Matrix {
        let mut g = Matrix::from_fn(x.len(), x.len(), |i, j| kernel.eval(&x[i], &x[j]));
        g.add_diagonal(noise);
        g
    }

    #[test]
    fn cached_gram_matches_direct_eval_all_kernels() {
        let mut rng = Lcg(0x9E3779B9);
        for kind in [KernelKind::Rbf, KernelKind::Matern32, KernelKind::Matern52] {
            for dim in [1usize, 3] {
                let x = random_inputs(&mut rng, 12, dim);
                let dists = PairwiseSqDists::new(&x, true);

                // Isotropic.
                let iso = Kernel::isotropic(kind, rng.next_f64(0.1, 4.0), rng.next_f64(0.2, 3.0));
                let cached = dists.gram(&iso, 1e-4);
                let direct = direct_gram(&x, &iso, 1e-4);
                let diff = cached.max_abs_diff(&direct).unwrap();
                assert!(diff < 1e-12, "{kind:?} iso dim {dim}: diff {diff}");

                // ARD.
                let ls: Vec<f64> = (0..dim).map(|_| rng.next_f64(0.1, 4.0)).collect();
                let ard = Kernel::ard(kind, ls, rng.next_f64(0.2, 3.0));
                let cached = dists.gram(&ard, 1e-6);
                let direct = direct_gram(&x, &ard, 1e-6);
                let diff = cached.max_abs_diff(&direct).unwrap();
                assert!(diff < 1e-12, "{kind:?} ard dim {dim}: diff {diff}");
            }
        }
    }

    #[test]
    fn off_diagonal_entries_are_bit_identical() {
        let mut rng = Lcg(42);
        let x = random_inputs(&mut rng, 8, 2);
        let dists = PairwiseSqDists::new(&x, false);
        let k = Kernel::isotropic(KernelKind::Matern52, 1.3, 2.0);
        let cached = dists.gram(&k, 0.0);
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    assert_eq!(
                        cached[(i, j)].to_bits(),
                        k.eval(&x[i], &x[j]).to_bits(),
                        "entry ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn iso_cache_suffices_for_single_lengthscale_ard() {
        // An "ARD" kernel with one lengthscale is isotropic; the total-only
        // cache must serve it.
        let mut rng = Lcg(7);
        let x = random_inputs(&mut rng, 6, 1);
        let dists = PairwiseSqDists::new(&x, false);
        let k = Kernel::ard(KernelKind::Rbf, vec![0.8], 1.0);
        let g = dists.gram(&k, 1e-3);
        let d = direct_gram(&x, &k, 1e-3);
        assert!(g.max_abs_diff(&d).unwrap() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "per-dimension distance cache")]
    fn ard_without_per_dim_cache_panics() {
        let x = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        let dists = PairwiseSqDists::new(&x, false);
        let k = Kernel::ard(KernelKind::Rbf, vec![1.0, 2.0], 1.0);
        let _ = dists.gram(&k, 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_inputs_panic() {
        let _ = PairwiseSqDists::new(&[vec![0.0], vec![1.0, 2.0]], false);
    }
}
